"""Quickstart: index a synthetic broadcast and query video content.

Runs the complete COBRA pipeline on one generated tennis broadcast —
shot segmentation, classification, player tracking, event recognition —
then answers a content query ("show me the net-play scenes") from the
populated meta-index.

Usage::

    python examples/quickstart.py
"""

from repro.grammar.tennis import build_tennis_fde
from repro.video.generator import BroadcastConfig, BroadcastGenerator


def main() -> None:
    # 1. Raw data: a 12-shot synthetic broadcast (stand-in for real footage).
    generator = BroadcastGenerator(BroadcastConfig(gradual_fraction=0.2), seed=7)
    clip, truth = generator.generate(12, name="quickstart_broadcast")
    print(f"generated {clip.name}: {len(clip)} frames, {len(truth.shots)} shots")

    # 2. Build the tennis FDE (Figure 1 of the paper) and index the video.
    fde = build_tennis_fde()
    print("detector execution order:", " -> ".join(fde.execution_order()))
    fde.index_video(clip)

    # 3. Inspect the four COBRA layers.
    model = fde.model
    counts = model.counts()
    print(
        f"meta-index: {counts['raw']} video, {counts['feature']} shots, "
        f"{counts['object']} objects, {counts['event']} events"
    )
    video = model.videos[0]
    for shot in model.shots_of(video.video_id):
        print(f"  shot {shot.shot_id}: frames [{shot.start},{shot.stop}) {shot.category}")

    # 4. Content query: net-play scenes.
    print("\nnet-play scenes:")
    for event in model.events_of(video.video_id, label="net_play"):
        seconds = event.start / video.fps, event.stop / video.fps
        print(
            f"  frames [{event.start},{event.stop}) "
            f"= {seconds[0]:.1f}s..{seconds[1]:.1f}s (confidence {event.confidence:.2f})"
        )

    # 5. Sanity: compare with what the generator actually scripted.
    scripted = [e for e in truth.events if e.label == "net_play"]
    print(f"\nground truth scripted {len(scripted)} net-play interval(s):")
    for event in scripted:
        print(f"  frames [{event.start},{event.stop})")


if __name__ == "__main__":
    main()
