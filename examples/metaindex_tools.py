"""Meta-index tooling: persistence, the query language, MPEG-7 export.

The "adopt this library" workflow: index once, save the meta-index,
restore it in a later session (no re-extraction), answer typed queries
written in the query language, and hand the meta-data to other tools as
MPEG-7-style XML.

Usage::

    python examples/metaindex_tools.py
"""

import tempfile
from pathlib import Path

from repro.core.mpeg7 import export_mpeg7, import_mpeg7
from repro.dataset import build_australian_open
from repro.library import DigitalLibraryEngine, parse_query
from repro.library.persistence import load_model, save_model


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_"))

    # ---- session 1: index and save --------------------------------------
    dataset = build_australian_open(seed=7)
    engine = DigitalLibraryEngine(dataset)
    for plan in dataset.video_plans[:2]:
        print(f"indexing {plan.name} ...")
        engine.indexer.index_plan(plan)

    meta_path = workdir / "metaindex.json"
    save_model(engine.indexer.model, meta_path)
    print(f"saved meta-index -> {meta_path} ({meta_path.stat().st_size} bytes)")

    # ---- session 2: restore without re-extraction -----------------------
    dataset2 = build_australian_open(seed=7)  # same seed, same library
    engine2 = DigitalLibraryEngine(dataset2)
    restored = engine2.indexer.restore(load_model(meta_path))
    print(f"restored {restored} video(s) in a fresh session (no pixels touched)")

    # ---- typed queries in the query language -----------------------------
    for text in (
        "SCENES WHERE event = net_play",
        "SCENES WHERE event = rally LIMIT 3",
        'SCENES WHERE player.gender = female AND event = service',
        "SCENES WHERE event = service THEN rally WITHIN 120",
    ):
        query = parse_query(text)
        results = engine2.search(query)
        print(f"\n{text}\n  -> {len(results)} scene(s)")
        for scene in results[:3]:
            print(
                f"     {scene.video_name}  [{scene.start},{scene.stop})  "
                f"{scene.event_label}"
            )

    # ---- MPEG-7 export ----------------------------------------------------
    xml_text = export_mpeg7(engine2.indexer.model)
    xml_path = workdir / "metaindex.xml"
    xml_path.write_text(xml_text)
    print(f"\nMPEG-7 export -> {xml_path} ({len(xml_text)} chars)")
    round_tripped = import_mpeg7(xml_text)
    print(f"round-trip check: {round_tripped.counts()} == {engine2.indexer.model.counts()}")


if __name__ == "__main__":
    main()
