"""Full-text search with top-N optimization over the interview corpus.

Reproduces the Blok et al. trade-off on the library's own text: build
the inverted index over all pages and transcripts, fragment it on
descending term frequency, and compare exact evaluation against
early-terminated evaluation at several work budgets.

Usage::

    python examples/topn_search.py
"""

import time

from repro.dataset import build_australian_open
from repro.ir.inverted_index import InvertedIndex
from repro.ir.ranking import rank_full_scan
from repro.ir.topn import FragmentedIndex

QUERY = "approaching the net after long rallies"


def main() -> None:
    dataset = build_australian_open(seed=7)
    print(f"corpus: {len(dataset.pages)} documents")

    index = InvertedIndex(dataset.pages)
    print(
        f"index: {len(index.vocabulary)} terms, {index.total_postings()} postings, "
        f"avg doc length {index.average_doc_length:.1f}"
    )

    terms = dataset.pages.query_terms(QUERY)
    print(f"\nquery: {QUERY!r} -> terms {terms}")

    exact = rank_full_scan(index, terms, 10)
    print("\nexact top-10:")
    for hit in exact:
        print(f"  {hit.score:6.2f}  {dataset.pages.document(hit.doc_id).name}")

    fragmented = FragmentedIndex(index, n_fragments=8)
    exact_ids = [h.doc_id for h in exact]
    print(f"\n{'fragments':>9} {'work':>6} {'P@10':>6} {'time':>9}")
    for k in (1, 2, 4, 8):
        start = time.perf_counter()
        for _ in range(50):
            result = fragmented.search(terms, 10, max_fragments=k)
        elapsed = (time.perf_counter() - start) / 50
        overlap = len(set(result.doc_ids()) & set(exact_ids)) / 10
        print(
            f"{k:9d} {result.work_fraction:6.2f} {overlap:6.2f} {elapsed * 1e6:7.0f}us"
        )

    print(
        "\nshape: processing only the high-tf fragments does a fraction of "
        "the work while keeping most of the exact top-10 — the Blok et al. "
        "quality/speed dial."
    )


if __name__ == "__main__":
    main()
