"""Event recognition: white-box rules vs stochastic (HMM) recognition.

Reproduces the comparison of Petković & Jonker (2001): train one HMM
per event class on tracked trajectories, then classify held-out shots
with (a) the spatio-temporal rules, (b) the declarative grammar rules
and (c) the HMMs, at increasing trajectory noise.

Usage::

    python examples/event_recognition.py
"""

import numpy as np

from repro.core.defaults import tennis_grammar
from repro.core.inference import GrammarEventDetector
from repro.events.quantize import CourtZones, TrajectoryQuantizer
from repro.events.recognizer import RuleBasedRecognizer, train_hmm_recognizer
from repro.events.rules import RuleEventDetector
from repro.tracking.court_model import CourtColorModel
from repro.tracking.segmentation import court_bounds
from repro.tracking.tracker import PlayerTracker
from repro.video.generator import BroadcastGenerator

SCRIPT_TO_LABEL = {
    "rally": "rally",
    "net_approach": "net_play",
    "service": "service",
    "baseline_play": "baseline_play",
}


def build_corpus(seed: int, n_shots: int):
    """Tracked trajectories with labels, plus the court zoning."""
    generator = BroadcastGenerator(seed=seed)
    tracker = PlayerTracker()
    zones = None
    corpus = []
    for i in range(n_shots):
        script = list(SCRIPT_TO_LABEL)[i % 4]
        clip, _truth = generator.tennis_clip(script=script, n_frames=60)
        if zones is None:
            model = CourtColorModel.estimate(clip[0])
            zones = CourtZones.from_court_bounds(court_bounds(clip[0], model))
        trajectory = tracker.track(list(clip)).positions
        corpus.append((SCRIPT_TO_LABEL[script], trajectory))
    return zones, corpus


def perturb(trajectory, sigma, rng):
    return [
        None if p is None else (p[0] + rng.normal(0, sigma), p[1] + rng.normal(0, sigma))
        for p in trajectory
    ]


def main() -> None:
    print("building training corpus (24 tracked shots)...")
    zones, train_corpus = build_corpus(seed=100, n_shots=24)
    print("building test corpus (12 tracked shots)...")
    _, test_corpus = build_corpus(seed=200, n_shots=12)

    training = {}
    for label, trajectory in train_corpus:
        training.setdefault(label, []).append([p for p in trajectory if p])

    print("training HMMs (Baum-Welch, 3 states each)...")
    hmm = train_hmm_recognizer(TrajectoryQuantizer(zones), training, n_states=3)
    rules = RuleBasedRecognizer(RuleEventDetector(zones))
    grammar = GrammarEventDetector(tennis_grammar(), zones)

    def grammar_classify(trajectory):
        events = grammar.detect(trajectory)
        coverage = {}
        for event in events:
            if event.label in SCRIPT_TO_LABEL.values():
                coverage[event.label] = coverage.get(event.label, 0) + event.length
        if "net_play" in coverage:
            return "net_play"
        return max(coverage, key=coverage.get) if coverage else None

    rng = np.random.default_rng(0)
    print(f"\n{'noise':>6} {'rules':>7} {'grammar':>8} {'HMM':>6}")
    for sigma in (0.0, 1.0, 2.0, 4.0):
        noisy = [(label, perturb(t, sigma, rng)) for label, t in test_corpus]
        acc_rules = np.mean([rules.classify(t) == label for label, t in noisy])
        acc_grammar = np.mean([grammar_classify(t) == label for label, t in noisy])
        acc_hmm = np.mean([hmm.classify(t) == label for label, t in noisy])
        print(f"{sigma:6.1f} {acc_rules:7.2f} {acc_grammar:8.2f} {acc_hmm:6.2f}")

    # Show the per-class likelihoods for one shot.
    label, trajectory = test_corpus[1]
    print(f"\nHMM log-likelihoods for one '{label}' shot:")
    for name, score in sorted(hmm.log_likelihoods(trajectory).items()):
        print(f"  {name:14s} {score:10.2f}")


if __name__ == "__main__":
    main()
