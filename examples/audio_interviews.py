"""Audio interviews: the feature grammar framework beyond video.

The demo site carries "audio files of interviews"; this example
synthesises interview audio for real (generated) transcripts, runs the
*interview feature grammar* through the very same FDE that drives the
tennis video pipeline, and searches the spotted keywords — Acoi's
"multimedia documents in general" claim, demonstrated.

Usage::

    python examples/audio_interviews.py
"""

import numpy as np

from repro.audio.spotting import KeywordSpotter
from repro.audio.synth import synthesize_utterance
from repro.dataset import build_australian_open
from repro.grammar.dot import to_dot
from repro.grammar.interview import TENNIS_KEYWORDS, build_interview_fde
from repro.ir.tokenizer import tokenize


def main() -> None:
    dataset = build_australian_open(seed=7)
    transcripts = [
        (doc.name, tokenize(doc.text))
        for doc in dataset.pages
        if doc.metadata.get("class") == "Interview"
    ][:6]
    vocabulary = sorted({w for _name, words in transcripts for w in words})
    print(f"synthesising {len(transcripts)} interviews "
          f"(vocabulary: {len(vocabulary)} words)")

    fde = build_interview_fde(vocabulary=vocabulary)
    print("\nthe interview FDE (same machinery as the tennis FDE, new axiom):")
    print(to_dot(fde.dependency_graph(), title="interview_fde"))

    for name, words in transcripts:
        signal, _truth = synthesize_utterance(words, name=name)
        fde.index_video(signal)
    print("meta-index:", fde.model.counts())

    print(f"\nkeyword mentions found ({', '.join(TENNIS_KEYWORDS[:4])}, ...):")
    for video in fde.model.videos:
        events = fde.model.events_of(video_id=video.video_id)
        if not events:
            continue
        mentions = ", ".join(
            f"{e.label.split(':', 1)[1]}@{e.start / video.fps:.2f}s" for e in events
        )
        print(f"  {video.name}: {mentions}")

    # Noise robustness: re-spot one interview at several SNRs.
    name, words = transcripts[0]
    signal, _ = synthesize_utterance(words, name=f"{name}_noisy")
    spotter = KeywordSpotter(vocabulary)
    rng = np.random.default_rng(0)
    print(f"\nword accuracy vs SNR on {name!r} ({len(words)} words):")
    for snr in (40.0, 20.0, 10.0, 5.0):
        noisy = signal.with_noise(snr, rng)
        got = [w for _seg, w in spotter.transcribe(noisy)]
        correct = sum(g == w for g, w in zip(got, words))
        print(f"  {snr:5.1f} dB: {correct}/{len(words)}")


if __name__ == "__main__":
    main()
