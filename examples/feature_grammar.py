"""Feature grammars and the FDE: authoring, Figure 1, incremental updates.

Shows the Acoi workflow the paper demos:

1. author a feature grammar (detector dependencies as grammar rules),
2. let the FDE derive the execution schedule and index videos,
3. dump the dependency DAG (the paper's Figure 1) as Graphviz DOT,
4. change one detector and revalidate *incrementally* — only the
   changed detector and its dependants re-run.

Usage::

    python examples/feature_grammar.py
"""

from repro.grammar.dot import to_dot
from repro.grammar.tennis import TENNIS_FEATURE_GRAMMAR, build_tennis_fde
from repro.video.generator import BroadcastGenerator


def main() -> None:
    print("the tennis feature grammar:")
    print(TENNIS_FEATURE_GRAMMAR)

    fde = build_tennis_fde()
    print("derived execution order:", " -> ".join(fde.execution_order()))

    print("\nFigure 1 (detector dependencies) as DOT:")
    print(to_dot(fde.dependency_graph(), title="tennis_fde"))

    # Index three videos.
    generator = BroadcastGenerator(seed=55)
    for i in range(3):
        clip, _truth = generator.generate(6, name=f"match_{i}")
        context = fde.index_video(clip)
        print(f"indexed {clip.name}: invocations {context.invocations}")

    print("\nmeta-index:", fde.model.counts())

    # Scenario 1: the event rules are retuned (leaf detector changes).
    print("\n-- retuning the event rules (leaf detector) --")
    fde.registry.bump_version("rules")
    report = fde.revalidate_all()
    print(f"executed {dict(report.executed)}, reused {dict(report.reused)}")

    # Scenario 2: the segment detector changes (root): everything re-runs.
    print("\n-- replacing the segment detector (root) --")
    fde.registry.bump_version("segment")
    report = fde.revalidate_all()
    print(f"executed {dict(report.executed)}, reused {dict(report.reused)}")

    print("\nmeta-index after revalidation:", fde.model.counts())


if __name__ == "__main__":
    main()
