"""The full digital library demo: the paper's motivating query.

Builds the synthetic Australian Open library (players, matches, pages,
interviews, video plans), indexes a handful of broadcasts through the
tennis FDE, and runs the combined concept + content query of Section 2:

    "Show me video scenes of left-handed female players who have won
     the Australian Open in the past, in which they approach the net."

Also shows the keyword-search baseline for contrast.

Usage::

    python examples/australian_open.py
"""

from repro.dataset import build_australian_open
from repro.library import DigitalLibraryEngine, LibraryQuery


def main() -> None:
    # 1. Build the library: concept graph + pages + interview transcripts.
    dataset = build_australian_open(seed=7, video_shots=8)
    print(
        f"library: {len(dataset.players)} players, {len(dataset.matches)} matches, "
        f"{len(dataset.pages)} pages, {len(dataset.video_plans)} planned videos"
    )

    engine = DigitalLibraryEngine(dataset)

    # 2. Find the qualifying players first, so we index their videos.
    qualifying = engine.concept_players(
        {"handedness": "left", "gender": "female", "past_winner": True}
    )
    names = [p.get("name") for p in qualifying]
    print(f"left-handed female past champions: {names}")

    plans = [
        plan
        for plan in dataset.video_plans
        if any(name in plan.match_title for name in names)
    ][:2]
    # One control video of a non-qualifying match.
    plans += [
        plan
        for plan in dataset.video_plans
        if all(name not in plan.match_title for name in names)
    ][:1]
    for plan in plans:
        print(f"indexing {plan.name} ...")
        engine.indexer.index_plan(plan)

    # 3. The motivating combined query.
    query = LibraryQuery(
        player={"handedness": "left", "gender": "female", "past_winner": True},
        event="net_play",
    )
    print("\ncombined concept+content query results:")
    for scene in engine.search(query):
        print(
            f"  {scene.video_name}: frames [{scene.start},{scene.stop}) "
            f"({scene.event_label}) — {scene.match_title} — {', '.join(scene.players)}"
        )

    # 4. What a keyword search engine sees instead: pages, not scenes.
    print("\nkeyword baseline ('left-handed female winner net approach'):")
    for hit in engine.keyword_search("left-handed female winner net approach", n=5):
        page = dataset.pages.document(hit.doc_id)
        print(f"  {hit.score:6.2f}  {page.name}")


if __name__ == "__main__":
    main()
