"""Porter stemmer tests against the published algorithm's behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.stemmer import porter_stem

# Examples from Porter (1980) and the reference implementation's
# voc.txt/output.txt pairs.
REFERENCE = {
    "caresses": "caress",
    "ponies": "poni",
    "ties": "ti",
    "caress": "caress",
    "cats": "cat",
    "feed": "feed",
    "agreed": "agre",
    "plastered": "plaster",
    "bled": "bled",
    "motoring": "motor",
    "sing": "sing",
    "hopping": "hop",
    "tanned": "tan",
    "falling": "fall",
    "hissing": "hiss",
    "filing": "file",
    "happy": "happi",
    "sky": "sky",
    "relational": "relat",
    "conditional": "condit",
    "rational": "ration",
    "digitizer": "digit",
    "operator": "oper",
    "feudalism": "feudal",
    "hopefulness": "hope",
    "triplicate": "triplic",
    "formative": "form",
    "formalize": "formal",
    "electrical": "electr",
    "hopeful": "hope",
    "goodness": "good",
    "revival": "reviv",
    "allowance": "allow",
    "inference": "infer",
    "airliner": "airlin",
    "adjustable": "adjust",
    "defensible": "defens",
    "irritant": "irrit",
    "replacement": "replac",
    "adjustment": "adjust",
    "dependent": "depend",
    "adoption": "adopt",
    "communism": "commun",
    "activate": "activ",
    "effective": "effect",
    "probate": "probat",
    "rate": "rate",
    "controlling": "control",
    "roll": "roll",
}


class TestReferenceVocabulary:
    @pytest.mark.parametrize("word,expected", sorted(REFERENCE.items()))
    def test_matches_reference(self, word, expected):
        assert porter_stem(word) == expected


class TestEdgeCases:
    def test_short_words_unchanged(self):
        assert porter_stem("is") == "is"
        assert porter_stem("a") == "a"

    def test_idempotent_on_common_stems(self):
        for word in REFERENCE:
            once = porter_stem(word)
            assert porter_stem(once) == porter_stem(once)

    def test_inflections_conflate(self):
        """The IR property that matters: morphological variants meet."""
        assert porter_stem("player") == porter_stem("players")
        assert porter_stem("winning") != porter_stem("winner")  # distinct stems OK
        assert porter_stem("rally") == porter_stem("rallies")
        assert porter_stem("serving") == porter_stem("serve")

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=0, max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_never_crashes_never_grows_much(self, word):
        stem = porter_stem(word)
        assert isinstance(stem, str)
        assert len(stem) <= len(word) + 1  # only 'e' restoration may grow
