"""Differential suite: the IVF index against the brute-force oracle.

Mirrors the packed-postings differential suite: hypothesis generates
random feature sets and the IVF index must agree with
:func:`repro.ir.ann_reference.brute_force_search` — byte-identical ids
*and* distances when ``nprobe`` covers every cell, never-wrong
distances and gate-level recall below that.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.ann import AnnIndex
from repro.ir.ann_reference import brute_force_search, recall_at_k, replicate_vectors

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def normalized(rows: np.ndarray) -> np.ndarray:
    norms = np.sqrt((rows * rows).sum(axis=1, keepdims=True))
    norms[norms == 0.0] = 1.0
    return rows / norms


def random_corpus(seed: int, n: int, dim: int) -> np.ndarray:
    return normalized(np.random.default_rng(seed).normal(size=(n, dim)))


def random_query(seed: int, dim: int) -> np.ndarray:
    return normalized(np.random.default_rng(seed).normal(size=(1, dim)))[0]


class TestFullCoverageExactness:
    @given(
        n=st.integers(1, 48),
        dim=st.integers(3, 12),
        n_cells=st.integers(1, 8),
        seed=SEEDS,
        query_seed=SEEDS,
    )
    @settings(max_examples=60, deadline=None)
    def test_nprobe_spanning_all_cells_equals_oracle(self, n, dim, n_cells, seed, query_seed):
        corpus = random_corpus(seed, n, dim)
        query = random_query(query_seed, dim)
        index = AnnIndex.build(corpus, n_cells=n_cells, rng=np.random.default_rng(seed))
        got_ids, got_distances = index.search(query, k=10, nprobe=index.n_cells)
        want_ids, want_distances = brute_force_search(corpus, query, 10)
        assert np.array_equal(got_ids, want_ids)
        # Same floats, not approximately: both paths square and sum the
        # same float64 elements, so the arrays must match bit-for-bit.
        assert np.array_equal(got_distances, want_distances)

    @given(
        n=st.integers(1, 48),
        dim=st.integers(3, 12),
        n_cells=st.integers(1, 8),
        seed=SEEDS,
        query_seed=SEEDS,
    )
    @settings(max_examples=40, deadline=None)
    def test_recall_at_10_meets_gate_at_nprobe_cells(self, n, dim, n_cells, seed, query_seed):
        corpus = random_corpus(seed, n, dim)
        query = random_query(query_seed, dim)
        index = AnnIndex.build(corpus, n_cells=n_cells, rng=np.random.default_rng(seed))
        got_ids, _ = index.search(query, k=10, nprobe=index.n_cells)
        want_ids, _ = brute_force_search(corpus, query, 10)
        assert recall_at_k(got_ids, want_ids, 10) >= 0.9


class TestPartialCoverageSoundness:
    @given(
        n=st.integers(4, 64),
        dim=st.integers(3, 10),
        n_cells=st.integers(2, 8),
        nprobe=st.integers(1, 8),
        seed=SEEDS,
        query_seed=SEEDS,
    )
    @settings(max_examples=60, deadline=None)
    def test_approximate_but_never_wrong(self, n, dim, n_cells, nprobe, seed, query_seed):
        """Partial probes may miss neighbours but never invent distances."""
        corpus = random_corpus(seed, n, dim)
        query = random_query(query_seed, dim)
        index = AnnIndex.build(corpus, n_cells=n_cells, rng=np.random.default_rng(seed))
        got_ids, got_distances = index.search(query, k=10, nprobe=nprobe)
        exact_ids, exact_distances = brute_force_search(corpus, query, n)
        exact = dict(zip(exact_ids.tolist(), exact_distances.tolist()))
        # Unique ids, each carrying its exact distance.
        assert len(set(got_ids.tolist())) == len(got_ids)
        for ann_id, distance in zip(got_ids.tolist(), got_distances.tolist()):
            assert exact[ann_id] == distance
        # Sorted by (distance, id) — the lexsort tie rule.
        keys = list(zip(got_distances.tolist(), got_ids.tolist()))
        assert keys == sorted(keys)


class TestTieOrder:
    @given(
        bases=st.integers(1, 6),
        copies=st.integers(2, 5),
        dim=st.integers(3, 8),
        seed=SEEDS,
    )
    @settings(max_examples=40, deadline=None)
    def test_duplicate_vectors_break_ties_by_id(self, bases, copies, dim, seed):
        base = random_corpus(seed, bases, dim)
        corpus = np.ascontiguousarray(np.repeat(base, copies, axis=0))
        index = AnnIndex.build(corpus, n_cells=bases, rng=np.random.default_rng(seed))
        ids, distances = index.search(base[0], k=len(corpus), nprobe=index.n_cells)
        # Within every group of equal distances, ids ascend (lexsort).
        for value in np.unique(distances):
            group = ids[distances == value]
            assert (np.diff(group) > 0).all() if group.size > 1 else True
        # And the oracle agrees exactly.
        want_ids, want_distances = brute_force_search(corpus, base[0], len(corpus))
        assert np.array_equal(ids, want_ids)
        assert np.array_equal(distances, want_distances)


class TestEdgeCases:
    def test_empty_index_matches_oracle(self):
        corpus = np.zeros((0, 8))
        index = AnnIndex.build(corpus)
        got = index.search(np.zeros(8), k=5)
        want = brute_force_search(corpus, np.zeros(8), 5)
        assert got[0].size == 0 and want[0].size == 0

    def test_single_shot_corpus(self, make_rng):
        corpus = random_corpus(5, 1, 8)
        index = AnnIndex.build(corpus, n_cells=4, rng=make_rng(0))
        query = random_query(6, 8)
        got_ids, got_distances = index.search(query, k=3)
        want_ids, want_distances = brute_force_search(corpus, query, 3)
        assert np.array_equal(got_ids, want_ids)
        assert np.array_equal(got_distances, want_distances)

    def test_oracle_rejects_bad_k(self):
        with pytest.raises(ValueError):
            brute_force_search(np.zeros((2, 3)), np.zeros(3), 0)

    def test_replicated_corpus_scales(self, make_rng):
        corpus = random_corpus(9, 10, 6)
        scaled = replicate_vectors(corpus, 5, make_rng(1))
        assert scaled.shape == (50, 6)
        # Replicas are near-duplicates, not exact ones.
        assert not np.array_equal(scaled[:10], scaled[10:20])
        norms = np.sqrt((scaled * scaled).sum(axis=1))
        assert np.allclose(norms, 1.0)

    def test_recall_helper_bounds(self):
        assert recall_at_k([1, 2, 3], [1, 2, 3], 3) == 1.0
        assert recall_at_k([4, 5, 6], [1, 2, 3], 3) == 0.0
        assert recall_at_k([], [], 10) == 1.0
