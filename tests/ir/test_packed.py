"""Edge-case tests of the packed postings layer.

The varint/delta codecs, the roaring-style bitmap and the packed wire
format must be safe at every boundary the index can reach: doc id 0,
the largest uint64 value, zero gaps at fragment boundaries, truncated
or over-long byte streams, and universes that do not fill a whole
bitmap word.  The last section pins the full persistence loop: a packed
export survives a catalog snapshot, passes ``repro fsck`` and restores
bit-exactly.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.ir.collection import DocumentCollection
from repro.ir.inverted_index import InvertedIndex, load_packed_postings
from repro.ir.packed import (
    Bitmap,
    PackedPostings,
    decode_delta_varint,
    decode_varint,
    encode_delta_varint,
    encode_varint,
    intersect_sorted,
    union_sorted,
)
from repro.storage.catalog import Catalog
from repro.storage.persist import load_catalog, save_catalog

UINT64_MAX = 2**64 - 1


class TestVarint:
    def test_round_trip_boundaries(self):
        values = np.array(
            [0, 1, 127, 128, 129, 2**14 - 1, 2**14, 2**32, UINT64_MAX],
            dtype=np.uint64,
        )
        decoded = decode_varint(encode_varint(values))
        assert decoded.dtype == np.uint64
        assert np.array_equal(decoded, values)

    def test_zero_encodes_to_one_byte(self):
        assert encode_varint(np.array([0], dtype=np.uint64)) == b"\x00"

    def test_max_value_uses_ten_bytes(self):
        blob = encode_varint(np.array([UINT64_MAX], dtype=np.uint64))
        assert len(blob) == 10
        assert np.array_equal(
            decode_varint(blob), np.array([UINT64_MAX], dtype=np.uint64)
        )

    def test_empty_round_trip(self):
        assert encode_varint(np.empty(0, dtype=np.uint64)) == b""
        assert decode_varint(b"").size == 0

    def test_truncated_stream_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_varint(b"\x80")
        # A valid value followed by a dangling continuation byte.
        with pytest.raises(ValueError, match="truncated"):
            decode_varint(b"\x05\xff")

    def test_over_long_encoding_raises(self):
        with pytest.raises(ValueError, match="over-long"):
            decode_varint(b"\x80" * 11 + b"\x01")

    def test_random_round_trip(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, UINT64_MAX, size=1000, dtype=np.uint64)
        assert np.array_equal(decode_varint(encode_varint(values)), values)


class TestDeltaVarint:
    def test_round_trip_from_zero(self):
        ids = np.array([0, 1, 2, 50, 51, 1000], dtype=np.uint64)
        assert np.array_equal(decode_delta_varint(encode_delta_varint(ids)), ids)

    def test_single_max_id(self):
        ids = np.array([UINT64_MAX], dtype=np.uint64)
        assert np.array_equal(decode_delta_varint(encode_delta_varint(ids)), ids)

    def test_zero_gap_runs_survive(self):
        # Non-decreasing runs (gap 0) are legal on the wire.
        ids = np.array([3, 3, 3, 7, 7], dtype=np.uint64)
        assert np.array_equal(decode_delta_varint(encode_delta_varint(ids)), ids)

    def test_descending_ids_raise(self):
        with pytest.raises(ValueError, match="sorted"):
            encode_delta_varint(np.array([5, 4], dtype=np.uint64))

    def test_empty_round_trip(self):
        assert encode_delta_varint(np.empty(0, dtype=np.uint64)) == b""
        assert decode_delta_varint(b"").size == 0

    def test_fragment_boundary_slices_match(self):
        """Decoding then slicing at fragment boundaries loses nothing.

        The fragmented index stores one packed array per term and
        slices it per fragment; every slice of the decoded array must
        equal the same slice of the original ids, including boundaries
        that split a zero-gap run.
        """
        ids = np.array([0, 0, 1, 1, 1, 2, 9, 9, 10, 4096], dtype=np.uint64)
        decoded = decode_delta_varint(encode_delta_varint(ids))
        for n_fragments in (1, 2, 3, 4, len(ids)):
            base, remainder = divmod(len(ids), n_fragments)
            cursor = 0
            for f in range(n_fragments):
                size = base + (1 if f < remainder else 0)
                assert np.array_equal(
                    decoded[cursor : cursor + size], ids[cursor : cursor + size]
                )
                cursor += size
            assert cursor == len(ids)


class TestBitmap:
    def test_round_trip_with_edges(self):
        universe = 130  # spans three words, last one partial
        ids = np.array([0, 1, 63, 64, 65, 127, 128, 129], dtype=np.int64)
        bitmap = Bitmap.from_ids(ids, universe)
        assert np.array_equal(bitmap.ids(), ids)
        assert bitmap.count() == len(ids)
        assert 0 in bitmap and 129 in bitmap
        assert 2 not in bitmap
        assert 130 not in bitmap and -1 not in bitmap

    def test_out_of_universe_raises(self):
        with pytest.raises(ValueError, match="universe"):
            Bitmap.from_ids(np.array([4]), universe=4)
        with pytest.raises(ValueError, match="universe"):
            Bitmap.from_ids(np.array([-1]), universe=4)

    def test_and_or_match_set_algebra(self):
        universe = 200
        rng = np.random.default_rng(11)
        a = np.unique(rng.integers(0, universe, size=60))
        b = np.unique(rng.integers(0, universe, size=60))
        bm_a = Bitmap.from_ids(a, universe)
        bm_b = Bitmap.from_ids(b, universe)
        assert np.array_equal((bm_a & bm_b).ids(), intersect_sorted(a, b))
        assert np.array_equal((bm_a | bm_b).ids(), union_sorted(a, b))

    def test_mismatched_universes_raise(self):
        with pytest.raises(ValueError, match="universes differ"):
            Bitmap.from_ids(np.array([1]), 64) & Bitmap.from_ids(np.array([1]), 128)

    def test_empty_bitmap(self):
        bitmap = Bitmap.from_ids(np.empty(0, dtype=np.int64), universe=10)
        assert bitmap.count() == 0
        assert bitmap.ids().size == 0


class TestPackedPostings:
    def test_blob_round_trip(self):
        packed = PackedPostings(
            doc_ids=np.array([0, 2, 3, 900000], dtype=np.int64),
            tfs=np.array([1, 7, 1, 3], dtype=np.int64),
        )
        restored = PackedPostings.from_blobs(*packed.to_blobs())
        assert np.array_equal(restored.doc_ids, packed.doc_ids)
        assert np.array_equal(restored.tfs, packed.tfs)

    def test_mismatched_blob_lengths_raise(self):
        id_blob = encode_delta_varint(np.array([1, 2], dtype=np.uint64))
        tf_blob = encode_varint(np.array([1], dtype=np.uint64))
        with pytest.raises(ValueError, match="mismatched"):
            PackedPostings.from_blobs(id_blob, tf_blob)

    def test_parallel_shape_enforced(self):
        with pytest.raises(ValueError, match="parallel"):
            PackedPostings(doc_ids=np.array([1, 2]), tfs=np.array([1]))


def _small_index() -> InvertedIndex:
    collection = DocumentCollection()
    collection.add("a", "net volley net rally")
    collection.add("b", "baseline rally rally serve")
    collection.add("c", "net serve championship")
    return InvertedIndex(collection)


class TestSnapshotRoundTrip:
    def test_packed_export_survives_snapshot_and_fsck(self, tmp_path, capsys):
        """Packed blobs ride a catalog snapshot through ``repro fsck``."""
        index = _small_index()
        catalog = Catalog()
        index.export_packed_to_catalog(catalog)
        path = tmp_path / "meta.json"
        save_catalog(catalog, path)

        assert cli_main(["fsck", "--metaindex", str(path)]) == 0
        assert "fsck: clean" in capsys.readouterr().out

        restored = load_packed_postings(load_catalog(path))
        assert sorted(restored) == index.vocabulary
        for term, packed in restored.items():
            original = index.packed(term)
            assert np.array_equal(packed.doc_ids, original.doc_ids)
            assert np.array_equal(packed.tfs, original.tfs)

    def test_df_mismatch_detected_on_load(self, tmp_path):
        index = _small_index()
        catalog = Catalog()
        index.export_packed_to_catalog(catalog)
        table = catalog.table("ir_packed")
        rows = list(table.scan())
        corrupted = dict(rows[0])
        corrupted["df"] = int(corrupted["df"]) + 1
        rebuilt = Catalog()
        new_table = rebuilt.create_table(
            "ir_packed", {"term": "str", "df": "int", "id_blob": "str", "tf_blob": "str"}
        )
        new_table.append(corrupted)
        for row in rows[1:]:
            new_table.append(dict(row))
        with pytest.raises(ValueError, match="decode to df"):
            load_packed_postings(rebuilt)
