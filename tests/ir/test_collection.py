"""Document collection tests."""

import pytest

from repro.ir.collection import DocumentCollection


@pytest.fixture
def collection():
    coll = DocumentCollection()
    coll.add("a.html", "The players rallied at the net.", metadata={"year": 2001})
    coll.add("b.html", "A quiet baseline game.")
    return coll


class TestCollection:
    def test_ids_sequential(self, collection):
        assert collection.document(0).name == "a.html"
        assert collection.document(1).doc_id == 1

    def test_duplicate_names_rejected(self, collection):
        with pytest.raises(ValueError):
            collection.add("a.html", "again")

    def test_by_name(self, collection):
        assert collection.by_name("b.html").doc_id == 1

    def test_metadata_kept(self, collection):
        assert collection.document(0).metadata["year"] == 2001

    def test_terms_normalised(self, collection):
        terms = collection.terms(0)
        assert "the" not in terms
        assert "player" in terms  # stemmed
        assert "ralli" in terms

    def test_query_terms_same_pipeline(self, collection):
        assert collection.query_terms("players rallying") == ["player", "ralli"]

    def test_iteration(self, collection):
        assert [d.name for d in collection] == ["a.html", "b.html"]

    def test_unstemmed_collection(self):
        coll = DocumentCollection(stem=False)
        coll.add("x", "players")
        assert coll.terms(0) == ["players"]
