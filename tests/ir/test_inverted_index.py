"""Inverted index tests."""

import pytest

from repro.ir.collection import DocumentCollection
from repro.ir.inverted_index import InvertedIndex, Posting
from repro.storage.catalog import Catalog


@pytest.fixture
def index():
    coll = DocumentCollection()
    coll.add("d0", "net net net volley")
    coll.add("d1", "volley rally")
    coll.add("d2", "rally rally baseline")
    return InvertedIndex(coll)


class TestPosting:
    def test_tf_validated(self):
        with pytest.raises(ValueError):
            Posting(doc_id=0, tf=0)


class TestIndex:
    def test_document_frequency(self, index):
        assert index.document_frequency("net") == 1
        assert index.document_frequency("vollei") == 2  # stemmed "volley"
        assert index.document_frequency("ghost") == 0

    def test_term_frequency_in_postings(self, index):
        postings = index.postings("net")
        assert postings == [Posting(doc_id=0, tf=3)]

    def test_doc_lengths(self, index):
        assert index.doc_length(0) == 4
        assert index.doc_length(2) == 3

    def test_average_doc_length(self, index):
        assert index.average_doc_length == pytest.approx((4 + 2 + 3) / 3)

    def test_total_postings(self, index):
        # d0: net, volley; d1: volley, rally; d2: rally, baselin
        assert index.total_postings() == 6

    def test_vocabulary_sorted(self, index):
        assert index.vocabulary == sorted(index.vocabulary)

    def test_refresh_indexes_new_docs(self, index):
        index.collection.add("d3", "net smash")
        index.refresh()
        assert index.document_frequency("net") == 2
        assert index.n_documents == 4

    def test_refresh_idempotent(self, index):
        before = index.total_postings()
        index.refresh()
        assert index.total_postings() == before


class TestExport:
    def test_export_to_catalog(self, index):
        catalog = Catalog()
        index.export_to_catalog(catalog)
        postings = catalog.table("ir_postings")
        docs = catalog.table("ir_docs")
        assert len(postings) == index.total_postings()
        assert len(docs) == 3
        ids = catalog.hash_index("ir_postings", "term").lookup("ralli")
        assert len(ids) == 2
