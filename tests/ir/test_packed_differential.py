"""Differential suite: packed engine vs the pure-Python reference.

For random corpora and query mixes, every retrieval path of the packed
engine must be *byte-identical* to the seed's per-posting loops kept in
:mod:`repro.ir.reference` — same floats (bit for bit), same ids, same
order, same accounting.  The strategies deliberately reach the layout
edges: empty and singleton postings lists, terms dense enough to take
the bitmap path, unseen query terms, repeated query terms, fragment
counts that leave uneven fragment boundaries, and incremental refresh.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.collection import DocumentCollection
from repro.ir.inverted_index import InvertedIndex
from repro.ir.ranking import rank_full_scan
from repro.ir.reference import (
    ReferenceFragmentedIndex,
    boolean_docs_reference,
    rank_full_scan_reference,
)
from repro.ir.topn import FragmentedIndex

VOCAB = [
    "net", "vollei", "ralli", "serv", "baselin", "match", "open",
    "champion", "court", "crowd", "press", "coach",
]  # already-stemmed forms so queries and postings share terms

# "common" appears in most documents -> comfortably past the 1/16
# density threshold, forcing the bitmap boolean path.
DENSE_TERM = "common"

corpora = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=0, max_size=30),
    min_size=1,
    max_size=20,
)
queries = st.lists(
    st.sampled_from(VOCAB + [DENSE_TERM, "ghost"]), min_size=0, max_size=5
)
schemes = st.sampled_from(["tfidf", "bm25"])


def build_index(docs: list[list[str]], dense_every: int = 2) -> InvertedIndex:
    collection = DocumentCollection()
    for i, words in enumerate(docs):
        text = " ".join(words)
        if i % dense_every == 0:
            text = f"{DENSE_TERM} {text}".strip()
        collection.add(f"doc{i}", text if text else "placeholder")
    return InvertedIndex(collection)


class TestFullScan:
    @settings(max_examples=40, deadline=None)
    @given(docs=corpora, terms=queries, scheme=schemes, n=st.integers(1, 8))
    def test_rankings_byte_identical(self, docs, terms, scheme, n):
        index = build_index(docs)
        got = rank_full_scan(index, terms, n, scheme=scheme)
        want = rank_full_scan_reference(index, terms, n, scheme=scheme)
        # RankedHit equality compares exact float scores: byte-identical
        # or bust.
        assert got == want


class TestFragmented:
    @settings(max_examples=40, deadline=None)
    @given(
        docs=corpora,
        terms=queries,
        scheme=schemes,
        n_fragments=st.integers(1, 6),
        max_fragments=st.sampled_from([1, 2, 3, None]),
        n=st.integers(1, 8),
    )
    def test_early_termination_byte_identical(
        self, docs, terms, scheme, n_fragments, max_fragments, n
    ):
        index = build_index(docs)
        packed = FragmentedIndex(index, n_fragments=n_fragments)
        reference = ReferenceFragmentedIndex(index, n_fragments=n_fragments)
        limit = None if max_fragments is None else min(max_fragments, n_fragments)
        got = packed.search(terms, n, max_fragments=limit, scheme=scheme)
        want = reference.search(terms, n, max_fragments=limit, scheme=scheme)
        assert got.hits == want.hits
        assert got.postings_processed == want.postings_processed
        assert got.postings_total == want.postings_total
        assert got.fragments_processed == want.fragments_processed


class TestBoolean:
    @settings(max_examples=40, deadline=None)
    @given(docs=corpora, terms=queries, mode=st.sampled_from(["and", "or"]))
    def test_matching_docs_identical(self, docs, terms, mode):
        index = build_index(docs)
        got = index.matching_docs(terms, mode=mode).tolist()
        want = boolean_docs_reference(index, terms, mode=mode)
        assert got == want

    @settings(max_examples=20, deadline=None)
    @given(docs=corpora, mode=st.sampled_from(["and", "or"]))
    def test_dense_terms_take_bitmap_path_identically(self, docs, mode):
        # Every-document density: both query terms dense -> bitmap ops.
        index = build_index(docs, dense_every=1)
        terms = [DENSE_TERM, DENSE_TERM]
        got = index.matching_docs(terms, mode=mode).tolist()
        assert got == boolean_docs_reference(index, terms, mode=mode)


class TestRefresh:
    @settings(max_examples=20, deadline=None)
    @given(
        docs=corpora,
        extra=st.lists(
            st.lists(st.sampled_from(VOCAB), min_size=1, max_size=10),
            min_size=1,
            max_size=5,
        ),
        terms=queries,
        scheme=schemes,
    )
    def test_weight_caches_survive_incremental_refresh(
        self, docs, extra, terms, scheme
    ):
        """Querying, growing the collection, then querying again stays exact.

        The first search populates the per-term weight caches; refresh()
        must invalidate them (df and n_docs change), and the packed
        engine must agree with a reference built fresh over the grown
        corpus.
        """
        index = build_index(docs)
        rank_full_scan(index, terms, 5, scheme=scheme)  # warm the cache
        for i, words in enumerate(extra):
            index.collection.add(f"extra{i}", " ".join(words))
        index.refresh()
        got = rank_full_scan(index, terms, 5, scheme=scheme)
        want = rank_full_scan_reference(index, terms, 5, scheme=scheme)
        assert got == want
