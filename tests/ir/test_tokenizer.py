"""Tokeniser and normalisation tests."""

from repro.ir.stopwords import STOPWORDS
from repro.ir.tokenizer import normalize_terms, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Tennis NET Volley") == ["tennis", "net", "volley"]

    def test_strips_punctuation(self):
        assert tokenize("net-play, rally; serve!") == ["net", "play", "rally", "serve"]

    def test_keeps_apostrophes(self):
        assert tokenize("women's draw") == ["women's", "draw"]

    def test_digits(self):
        assert tokenize("the 2001 open") == ["the", "2001", "open"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   \n\t ") == []


class TestNormalize:
    def test_drops_stopwords(self):
        terms = normalize_terms("the player and the net")
        assert "the" not in terms
        assert "and" not in terms

    def test_stems(self):
        terms = normalize_terms("players playing rallies", drop_stopwords=False)
        assert terms == ["player", "plai", "ralli"]

    def test_no_stemming_option(self):
        terms = normalize_terms("players", stem=False)
        assert terms == ["players"]

    def test_stopwords_are_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)

    def test_common_words_in_list(self):
        for word in ("the", "and", "of", "a", "is"):
            assert word in STOPWORDS
