"""Unit tests of the IVF ANN index: build, search, pooling, snapshots."""

import base64

import numpy as np
import pytest

from repro.budget import DeadlineExceeded, QueryBudget
from repro.ir.ann import (
    FEATURE_SCHEMA_VERSION,
    AnnIndex,
    AnnSnapshotError,
    DistancePool,
    ShotVectorizer,
    export_ann_to_catalog,
    has_ann_tables,
    kmeans,
    load_ann_from_catalog,
)
from repro.storage.catalog import Catalog


def normalized(rows: np.ndarray) -> np.ndarray:
    norms = np.sqrt((rows * rows).sum(axis=1, keepdims=True))
    norms[norms == 0.0] = 1.0
    return rows / norms


@pytest.fixture(scope="module")
def corpus(make_rng):
    return normalized(make_rng(11).normal(size=(80, 12)))


@pytest.fixture(scope="module")
def index(corpus, make_rng):
    return AnnIndex.build(corpus, n_cells=6, rng=make_rng(0))


class TestKmeans:
    def test_requires_explicit_rng(self, corpus):
        with pytest.raises(TypeError):
            kmeans(corpus, 4, rng=None)
        with pytest.raises(TypeError):
            AnnIndex.build(corpus, n_cells=4, rng=None)

    def test_deterministic_for_a_seed(self, corpus, make_rng):
        a = kmeans(corpus, 5, rng=make_rng(3))
        b = kmeans(corpus, 5, rng=make_rng(3))
        assert np.array_equal(a, b)

    def test_cells_clamped_to_corpus(self, corpus, make_rng):
        centroids = kmeans(corpus[:3], 16, rng=make_rng(0))
        assert centroids.shape == (3, corpus.shape[1])

    def test_rejects_empty(self, make_rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 4)), 2, rng=make_rng(0))


class TestBuild:
    def test_members_partition_ids(self, index, corpus):
        assert sorted(index.cell_members.tolist()) == list(range(len(corpus)))
        assert index.cell_members.dtype == np.int64
        assert index.cell_offsets.dtype == np.int64

    def test_offsets_monotone_and_cover(self, index, corpus):
        offsets = index.cell_offsets
        assert offsets[0] == 0 and offsets[-1] == len(corpus)
        assert (np.diff(offsets) >= 0).all()

    def test_members_ascend_within_each_cell(self, index):
        for cell in range(index.n_cells):
            members = index.cell_members[
                index.cell_offsets[cell] : index.cell_offsets[cell + 1]
            ]
            assert (np.diff(members) > 0).all() if members.size > 1 else True

    def test_build_deterministic(self, corpus, make_rng):
        again = AnnIndex.build(corpus, n_cells=6, rng=make_rng(0))
        built = AnnIndex.build(corpus, n_cells=6, rng=make_rng(0))
        for field in ("centroids", "cell_offsets", "cell_members", "vectors"):
            assert np.array_equal(getattr(again, field), getattr(built, field))


class TestSearch:
    def test_rejects_bad_k(self, index, corpus):
        with pytest.raises(ValueError):
            index.search(corpus[0], k=0)

    def test_rejects_wrong_dim(self, index):
        with pytest.raises(ValueError):
            index.search(np.zeros(5), k=3)

    def test_empty_index(self):
        empty = AnnIndex.build(np.zeros((0, 12)))
        ids, distances = empty.search(np.zeros(12), k=5)
        assert ids.size == 0 and distances.size == 0

    def test_single_vector(self, corpus, make_rng):
        single = AnnIndex.build(corpus[:1], n_cells=4, rng=make_rng(1))
        ids, distances = single.search(corpus[0], k=5)
        assert ids.tolist() == [0]
        assert distances[0] == 0.0

    def test_k_larger_than_corpus(self, index, corpus):
        ids, _ = index.search(corpus[0], k=1000)
        assert len(ids) == len(corpus)

    def test_nprobe_clamped(self, index, corpus):
        wide = index.search(corpus[0], k=5, nprobe=10_000)
        all_cells = index.search(corpus[0], k=5, nprobe=index.n_cells)
        assert np.array_equal(wide[0], all_cells[0])
        assert np.array_equal(wide[1], all_cells[1])

    def test_search_deterministic(self, index, corpus):
        first = index.search(corpus[7], k=10, nprobe=2)
        second = index.search(corpus[7], k=10, nprobe=2)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_deadline_budget_raises(self, index, corpus):
        budget = QueryBudget(seconds=0.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            index.search(corpus[0], k=5, budget=budget)
        assert excinfo.value.stage == "ann_search"

    def test_postings_budget_charges_candidates(self, index, corpus):
        budget = QueryBudget(postings=1)
        with pytest.raises(DeadlineExceeded):
            index.search(corpus[0], k=5, nprobe=index.n_cells, budget=budget)


class TestDistancePool:
    def test_buffers_are_reused(self):
        pool = DistancePool()
        first = pool.acquire(100)
        pool.release(first)
        second = pool.acquire(80)
        assert second is first

    def test_capacity_rounds_up(self):
        pool = DistancePool()
        assert pool.acquire(10).shape[0] == 1024
        assert pool.acquire(3000).shape[0] == 4096


class TestShotVectorizer:
    def test_vector_shape_and_norm(self, make_rng):
        vectorizer = ShotVectorizer()
        frames = [
            make_rng(i).integers(0, 256, size=(24, 32, 3)).astype(np.uint8)
            for i in range(9)
        ]
        vector = vectorizer.vector_from_frames(frames)
        assert vector.shape == (vectorizer.dim,)
        assert np.sqrt((vector * vector).sum()) == pytest.approx(1.0)

    def test_schema_version_is_pinned(self):
        assert FEATURE_SCHEMA_VERSION == 1


class TestSnapshot:
    def make_meta(self, n):
        return [
            {
                "shot_id": str(i),
                "video_name": f"v{i % 3}",
                "start": 10 * i,
                "stop": 10 * i + 10,
                "category": "tennis",
            }
            for i in range(n)
        ]

    def test_round_trip_bit_exact(self, index, corpus):
        catalog = Catalog()
        export_ann_to_catalog(index, self.make_meta(len(corpus)), catalog)
        assert has_ann_tables(catalog)
        restored, meta = load_ann_from_catalog(catalog)
        for field in ("centroids", "cell_offsets", "cell_members", "vectors"):
            assert np.array_equal(getattr(restored, field), getattr(index, field))
        assert len(meta) == len(corpus)
        got = restored.search(corpus[5], k=10)
        want = index.search(corpus[5], k=10)
        assert np.array_equal(got[0], want[0]) and np.array_equal(got[1], want[1])

    def test_export_is_idempotent(self, index, corpus):
        catalog = Catalog()
        export_ann_to_catalog(index, self.make_meta(len(corpus)), catalog)
        export_ann_to_catalog(index, self.make_meta(len(corpus)), catalog)
        restored, _ = load_ann_from_catalog(catalog)
        assert restored.n_vectors == index.n_vectors

    def test_meta_length_mismatch_rejected(self, index):
        with pytest.raises(ValueError):
            export_ann_to_catalog(index, self.make_meta(3), Catalog())

    def _tamper(self, catalog, name, mutate):
        table = catalog.table(name)
        rows = [mutate(dict(row)) for row in table.scan()]
        schema = dict(table.schema)
        catalog.drop_table(name)
        rebuilt = catalog.create_table(name, schema)
        for row in rows:
            rebuilt.append(row)

    def test_corrupted_blob_is_a_typed_error(self, index, corpus):
        catalog = Catalog()
        export_ann_to_catalog(index, self.make_meta(len(corpus)), catalog)

        def flip(row):
            if row["name"] == "vectors":
                raw = bytearray(base64.b64decode(row["payload"]))
                raw[0] ^= 0xFF
                row["payload"] = base64.b64encode(bytes(raw)).decode("ascii")
            return row

        self._tamper(catalog, "ann_blobs", flip)
        with pytest.raises(AnnSnapshotError, match="checksum"):
            load_ann_from_catalog(catalog)

    def test_schema_version_mismatch_is_a_typed_error(self, index, corpus):
        catalog = Catalog()
        export_ann_to_catalog(index, self.make_meta(len(corpus)), catalog)

        def bump(row):
            if row["key"] == "schema_version":
                row["value"] = str(FEATURE_SCHEMA_VERSION + 1)
            return row

        self._tamper(catalog, "ann_meta", bump)
        with pytest.raises(AnnSnapshotError, match="schema version"):
            load_ann_from_catalog(catalog)

    def test_missing_blob_is_a_typed_error(self, index, corpus):
        catalog = Catalog()
        export_ann_to_catalog(index, self.make_meta(len(corpus)), catalog)
        table = catalog.table("ann_blobs")
        rows = [row for row in table.scan() if row["name"] != "centroids"]
        schema = dict(table.schema)
        catalog.drop_table("ann_blobs")
        rebuilt = catalog.create_table("ann_blobs", schema)
        for row in rows:
            rebuilt.append(row)
        with pytest.raises(AnnSnapshotError, match="missing blob"):
            load_ann_from_catalog(catalog)
