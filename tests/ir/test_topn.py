"""Fragmented top-N engine tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.collection import DocumentCollection
from repro.ir.inverted_index import InvertedIndex
from repro.ir.ranking import rank_full_scan
from repro.ir.topn import FragmentedIndex

VOCAB = [
    "net", "vollei", "ralli", "serv", "baselin", "match", "open",
    "champion", "court", "crowd", "press", "coach",
]  # already-stemmed forms so queries and postings share terms


@pytest.fixture(scope="module")
def index():
    rng = np.random.default_rng(0)
    coll = DocumentCollection()
    for i in range(150):
        words = rng.choice(VOCAB, size=int(rng.integers(20, 80)))
        coll.add(f"doc{i}", " ".join(words))
    return InvertedIndex(coll)


class TestFragmentation:
    def test_fragments_partition_postings(self, index):
        fragmented = FragmentedIndex(index, n_fragments=4)
        for term in index.vocabulary:
            fragments = fragmented.fragments(term)
            assert len(fragments) == 4
            total = sum(len(f) for f in fragments)
            assert total == len(index.postings(term))

    def test_fragments_ordered_by_tf(self, index):
        fragmented = FragmentedIndex(index, n_fragments=4)
        for term in index.vocabulary[:4]:
            fragments = fragmented.fragments(term)
            flat = [p.tf for fragment in fragments for p in fragment]
            assert flat == sorted(flat, reverse=True)

    def test_unknown_term_fragments_empty(self, index):
        fragmented = FragmentedIndex(index, n_fragments=3)
        assert all(f == [] for f in fragmented.fragments("ghost"))

    def test_n_fragments_validated(self, index):
        with pytest.raises(ValueError):
            FragmentedIndex(index, n_fragments=0)


class TestSearch:
    def test_exact_matches_full_scan(self, index):
        """Processing all fragments is exactly the unoptimised evaluation."""
        fragmented = FragmentedIndex(index, n_fragments=5)
        for terms in (["net"], ["net", "vollei"], ["ralli", "serv", "court"]):
            exact = fragmented.search(terms, 10)
            full = rank_full_scan(index, terms, 10)
            assert exact.doc_ids() == [h.doc_id for h in full]

    def test_early_termination_reduces_work(self, index):
        fragmented = FragmentedIndex(index, n_fragments=5)
        full = fragmented.search(["net", "vollei"], 10)
        partial = fragmented.search(["net", "vollei"], 10, max_fragments=1)
        assert partial.postings_processed < full.postings_processed
        assert partial.work_fraction < 0.5

    def test_quality_improves_with_fragments(self, index):
        """E6 shape: more fragments processed -> higher overlap with exact."""
        fragmented = FragmentedIndex(index, n_fragments=8)
        exact = set(fragmented.search(["net", "vollei", "ralli"], 10).doc_ids())

        def overlap(k):
            approx = fragmented.search(["net", "vollei", "ralli"], 10, max_fragments=k)
            return len(set(approx.doc_ids()) & exact) / 10

        overlaps = [overlap(k) for k in (1, 4, 8)]
        assert overlaps[-1] == 1.0
        assert overlaps[0] <= overlaps[-1]
        assert sorted(overlaps) == overlaps or overlaps[0] < 1.0

    def test_work_accounting(self, index):
        fragmented = FragmentedIndex(index, n_fragments=4)
        result = fragmented.search(["net"], 5, max_fragments=2)
        assert result.postings_total == len(index.postings("net"))
        assert 0 < result.work_fraction <= 1.0
        assert result.fragments_processed <= 2

    def test_bm25_scheme(self, index):
        fragmented = FragmentedIndex(index, n_fragments=4)
        result = fragmented.search(["net", "ralli"], 5, scheme="bm25")
        assert len(result.hits) == 5

    def test_validation(self, index):
        fragmented = FragmentedIndex(index, n_fragments=4)
        with pytest.raises(ValueError):
            fragmented.search(["net"], 0)
        with pytest.raises(ValueError):
            fragmented.search(["net"], 5, max_fragments=0)
        with pytest.raises(ValueError):
            fragmented.search(["net"], 5, scheme="magic")

    def test_empty_query(self, index):
        result = FragmentedIndex(index).search([], 5)
        assert result.hits == []
        assert result.work_fraction == 0.0

    @given(k=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_monotone_work(self, index, k):
        """Work is monotone in the number of fragments processed."""
        fragmented = FragmentedIndex(index, n_fragments=6)
        less = fragmented.search(["net", "vollei"], 10, max_fragments=k)
        more = fragmented.search(["net", "vollei"], 10, max_fragments=min(k + 1, 6))
        assert less.postings_processed <= more.postings_processed
