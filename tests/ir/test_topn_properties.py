"""Property-based tests for the fragmented top-N engine.

For random corpora, query mixes and both ranking schemes (tf-idf,
BM25), :class:`FragmentedIndex` must satisfy:

- ``max_fragments=None`` is result-identical to the full
  :class:`InvertedIndex` scan (same docs, same scores, same order);
- ``work_fraction`` is monotone non-decreasing in ``max_fragments``;
- hits come back sorted best-first for any fragment budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.collection import DocumentCollection
from repro.ir.inverted_index import InvertedIndex
from repro.ir.ranking import rank_full_scan
from repro.ir.topn import FragmentedIndex, full_scan_postings

VOCAB = [
    "net", "vollei", "ralli", "serv", "baselin", "match", "open",
    "champion", "court", "crowd", "press", "coach",
]  # already-stemmed forms so queries and postings share terms

corpora = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=40),
    min_size=1,
    max_size=25,
)
queries = st.lists(st.sampled_from(VOCAB + ["ghost"]), min_size=1, max_size=5)
schemes = st.sampled_from(["tfidf", "bm25"])


def build_index(docs: list[list[str]]) -> InvertedIndex:
    collection = DocumentCollection()
    for i, words in enumerate(docs):
        collection.add(f"doc{i}", " ".join(words))
    return InvertedIndex(collection)


class TestExactness:
    @settings(max_examples=40, deadline=None)
    @given(
        docs=corpora,
        terms=queries,
        scheme=schemes,
        n_fragments=st.integers(1, 6),
        n=st.integers(1, 10),
    )
    def test_all_fragments_equal_full_scan(self, docs, terms, scheme, n_fragments, n):
        index = build_index(docs)
        fragmented = FragmentedIndex(index, n_fragments=n_fragments)
        result = fragmented.search(terms, n, max_fragments=None, scheme=scheme)
        full = rank_full_scan(index, terms, n, scheme=scheme)
        # Identical down to the floats: per document, both paths add the
        # same term weights in the same (query-term) order.
        assert result.hits == full
        assert result.postings_processed == result.postings_total
        assert result.postings_total == full_scan_postings(index, terms)


class TestMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(
        docs=corpora,
        terms=queries,
        scheme=schemes,
        n_fragments=st.integers(1, 6),
    )
    def test_work_fraction_non_decreasing(self, docs, terms, scheme, n_fragments):
        index = build_index(docs)
        fragmented = FragmentedIndex(index, n_fragments=n_fragments)
        fractions = [
            fragmented.search(terms, 10, max_fragments=k, scheme=scheme).work_fraction
            for k in range(1, n_fragments + 1)
        ]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert all(0.0 <= f <= 1.0 for f in fractions)
        full = fragmented.search(terms, 10, max_fragments=None, scheme=scheme)
        if fractions:
            assert fractions[-1] == full.work_fraction


class TestOrdering:
    @settings(max_examples=40, deadline=None)
    @given(
        docs=corpora,
        terms=queries,
        scheme=schemes,
        n_fragments=st.integers(1, 6),
        max_fragments=st.integers(1, 6),
        n=st.integers(1, 10),
    )
    def test_hits_sorted_best_first(self, docs, terms, scheme, n_fragments, max_fragments, n):
        index = build_index(docs)
        fragmented = FragmentedIndex(index, n_fragments=n_fragments)
        result = fragmented.search(
            terms, n, max_fragments=min(max_fragments, n_fragments), scheme=scheme
        )
        keys = [(-hit.score, hit.doc_id) for hit in result.hits]
        assert keys == sorted(keys)
        assert len(result.hits) <= n
