"""Ranking function tests."""


import pytest

from repro.ir.collection import DocumentCollection
from repro.ir.inverted_index import InvertedIndex
from repro.ir.ranking import bm25_score, rank_full_scan, tf_idf_score


@pytest.fixture
def index():
    coll = DocumentCollection()
    coll.add("d0", "net volley net volley net")
    coll.add("d1", "net baseline rally")
    coll.add("d2", "baseline rally rally baseline")
    coll.add("d3", "crowd weather interview")
    return InvertedIndex(coll)


class TestTfIdf:
    def test_increases_with_tf(self):
        assert tf_idf_score(4, 2, 10) > tf_idf_score(1, 2, 10)

    def test_decreases_with_df(self):
        assert tf_idf_score(2, 1, 10) > tf_idf_score(2, 5, 10)

    def test_ubiquitous_term_scores_zero(self):
        assert tf_idf_score(3, 10, 10) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            tf_idf_score(0, 1, 10)


class TestBm25:
    def test_increases_with_tf_saturating(self):
        s1 = bm25_score(1, 2, 10, 10, 10.0)
        s2 = bm25_score(2, 2, 10, 10, 10.0)
        s8 = bm25_score(8, 2, 10, 10, 10.0)
        assert s1 < s2 < s8
        assert (s2 - s1) > (s8 - bm25_score(7, 2, 10, 10, 10.0))  # saturation

    def test_length_normalisation(self):
        short = bm25_score(2, 2, 10, 5, 10.0)
        long = bm25_score(2, 2, 10, 50, 10.0)
        assert short > long


def terms(index, text):
    """Queries go through the same normalisation as documents."""
    return index.collection.query_terms(text)


class TestFullScan:
    def test_most_relevant_first(self, index):
        hits = rank_full_scan(index, terms(index, "net volley"), 4)
        assert hits[0].doc_id == 0

    def test_respects_n(self, index):
        assert len(rank_full_scan(index, terms(index, "net"), 1)) == 1

    def test_no_match(self, index):
        assert rank_full_scan(index, terms(index, "ghost"), 5) == []

    def test_multi_term_accumulates(self, index):
        hits = rank_full_scan(index, terms(index, "baseline rally"), 4)
        assert hits[0].doc_id == 2

    def test_bm25_scheme(self, index):
        hits = rank_full_scan(index, terms(index, "net volley"), 4, scheme="bm25")
        assert hits[0].doc_id == 0

    def test_validation(self, index):
        with pytest.raises(ValueError):
            rank_full_scan(index, ["net"], 0)
        with pytest.raises(ValueError):
            rank_full_scan(index, ["net"], 5, scheme="pagerank")

    def test_deterministic_tie_break(self, index):
        hits = rank_full_scan(index, terms(index, "rally"), 4)
        scores = [h.score for h in hits]
        if len(hits) == 2 and scores[0] == scores[1]:
            assert hits[0].doc_id < hits[1].doc_id
