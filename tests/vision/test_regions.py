"""Connected-component tests."""

import numpy as np
import pytest

from repro.vision.regions import label_regions, largest_region, regions_in


def mask_with_blobs():
    mask = np.zeros((12, 12), dtype=bool)
    mask[1:4, 1:4] = True  # 9 px blob
    mask[7:12, 6:10] = True  # 20 px blob
    return mask


class TestLabelRegions:
    def test_counts_blobs(self):
        _labels, count = label_regions(mask_with_blobs())
        assert count == 2

    def test_empty_mask(self):
        _labels, count = label_regions(np.zeros((5, 5), dtype=bool))
        assert count == 0

    def test_diagonal_connectivity(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = mask[1, 1] = True
        assert label_regions(mask, connectivity=2)[1] == 1
        assert label_regions(mask, connectivity=1)[1] == 2

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            label_regions(np.zeros((2, 2, 2), dtype=bool))

    def test_rejects_bad_connectivity(self):
        with pytest.raises(ValueError):
            label_regions(np.zeros((2, 2), dtype=bool), connectivity=3)


class TestRegionsIn:
    def test_areas_and_bboxes(self):
        regions = sorted(regions_in(mask_with_blobs()), key=lambda r: r.area)
        assert [r.area for r in regions] == [9, 20]
        assert regions[0].bbox == (1, 1, 4, 4)
        assert regions[1].bbox == (7, 6, 12, 10)

    def test_min_area_filter(self):
        regions = regions_in(mask_with_blobs(), min_area=10)
        assert len(regions) == 1
        assert regions[0].area == 20

    def test_centroid(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[1:4, 1:4] = True
        region = regions_in(mask)[0]
        assert region.centroid == (2.0, 2.0)

    def test_width_height(self):
        region = sorted(regions_in(mask_with_blobs()), key=lambda r: r.area)[1]
        assert region.height == 5
        assert region.width == 4


class TestLargestRegion:
    def test_picks_largest(self):
        assert largest_region(mask_with_blobs()).area == 20

    def test_none_for_empty(self):
        assert largest_region(np.zeros((4, 4), dtype=bool)) is None
