"""PPM/PGM IO tests."""

import numpy as np
import pytest

from repro.vision.io import read_pgm, read_ppm, write_pgm, write_ppm


class TestPpm:
    def test_round_trip(self, tmp_path, random_frame):
        image = random_frame(0, 12, 17)
        path = tmp_path / "frame.ppm"
        write_ppm(image, path)
        assert np.array_equal(read_ppm(path), image)

    def test_header(self, tmp_path):
        image = np.zeros((4, 6, 3), dtype=np.uint8)
        path = tmp_path / "f.ppm"
        write_ppm(image, path)
        assert path.read_bytes().startswith(b"P6\n6 4\n255\n")

    def test_rejects_grey(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(np.zeros((4, 4), dtype=np.uint8), tmp_path / "x.ppm")

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P5\n1 1\n255\n\x00")
        with pytest.raises(ValueError):
            read_ppm(path)

    def test_truncated_raster(self, tmp_path):
        path = tmp_path / "short.ppm"
        path.write_bytes(b"P6\n4 4\n255\n\x00\x00")
        with pytest.raises(ValueError):
            read_ppm(path)

    def test_comment_in_header(self, tmp_path):
        path = tmp_path / "c.ppm"
        raster = bytes(3)
        path.write_bytes(b"P6\n# made by a 2002 tool\n1 1\n255\n" + raster)
        assert read_ppm(path).shape == (1, 1, 3)


class TestPgm:
    def test_round_trip(self, tmp_path, random_frame):
        image = random_frame(1, 9, 5, channels=0)
        path = tmp_path / "frame.pgm"
        write_pgm(image, path)
        assert np.array_equal(read_pgm(path), image)

    def test_rejects_rgb(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(np.zeros((4, 4, 3), dtype=np.uint8), tmp_path / "x.pgm")

    def test_rejects_wrong_maxval(self, tmp_path):
        path = tmp_path / "m.pgm"
        path.write_bytes(b"P5\n1 1\n65535\n\x00\x00")
        with pytest.raises(ValueError):
            read_pgm(path)
