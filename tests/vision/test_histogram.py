"""Histogram and distance tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.vision.histogram import (
    bhattacharyya_distance,
    chi_square_distance,
    color_histogram,
    grey_histogram,
    histogram_difference,
    histogram_intersection,
    hsv_histogram,
)

rgb_images = npst.arrays(
    dtype=np.uint8, shape=st.tuples(st.integers(1, 10), st.integers(1, 10), st.just(3))
)


def solid(color, h=6, w=6):
    frame = np.zeros((h, w, 3), dtype=np.uint8)
    frame[:] = color
    return frame


class TestColorHistogram:
    def test_normalised_sums_to_one(self):
        hist = color_histogram(solid((10, 200, 30)))
        assert hist.sum() == pytest.approx(1.0)

    def test_solid_frame_single_bin(self):
        hist = color_histogram(solid((10, 200, 30)), bins=4)
        assert np.count_nonzero(hist) == 1

    def test_counts_mode(self):
        hist = color_histogram(solid((0, 0, 0), h=3, w=5), normalize=False)
        assert hist.sum() == 15

    def test_length_is_bins_cubed(self):
        assert len(color_histogram(solid((0, 0, 0)), bins=5)) == 125

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            color_histogram(solid((0, 0, 0)), bins=1)
        with pytest.raises(ValueError):
            color_histogram(solid((0, 0, 0)), bins=300)

    @given(rgb_images, st.sampled_from([2, 4, 8]))
    @settings(max_examples=25, deadline=None)
    def test_always_a_distribution(self, image, bins):
        hist = color_histogram(image, bins=bins)
        assert hist.min() >= 0
        assert hist.sum() == pytest.approx(1.0)


class TestHsvHistogram:
    def test_normalised(self):
        hist = hsv_histogram(solid((10, 200, 30)))
        assert hist.sum() == pytest.approx(1.0)

    def test_solid_frame_single_bin(self):
        assert np.count_nonzero(hsv_histogram(solid((10, 200, 30)), bins=4)) == 1

    def test_less_sensitive_to_brightness_than_rgb(self):
        a = solid((60, 160, 90))
        b = np.clip(a.astype(np.int64) * 0.88, 0, 255).astype(np.uint8)
        rgb_d = histogram_difference(color_histogram(a), color_histogram(b))
        hsv_d = histogram_difference(hsv_histogram(a), hsv_histogram(b))
        assert hsv_d <= rgb_d

    @given(rgb_images)
    @settings(max_examples=20, deadline=None)
    def test_distribution_property(self, image):
        hist = hsv_histogram(image)
        assert hist.min() >= 0
        assert hist.sum() == pytest.approx(1.0)


class TestGreyHistogram:
    def test_uniform_ramp_spreads(self):
        ramp = np.tile(np.arange(256, dtype=np.uint8), (2, 1))
        hist = grey_histogram(ramp, bins=16)
        assert np.count_nonzero(hist) == 16

    def test_rejects_rgb(self):
        with pytest.raises(ValueError):
            grey_histogram(solid((0, 0, 0)))


class TestDistances:
    def test_identical_frames_zero_difference(self):
        h = color_histogram(solid((50, 60, 70)))
        assert histogram_difference(h, h) == pytest.approx(0.0)

    def test_disjoint_frames_distance_one(self):
        h1 = color_histogram(solid((0, 0, 0)))
        h2 = color_histogram(solid((255, 255, 255)))
        assert histogram_difference(h1, h2) == pytest.approx(1.0)

    def test_intersection_complements_difference(self):
        h1 = color_histogram(solid((0, 0, 0)))
        h2 = color_histogram(solid((255, 255, 255)))
        assert histogram_intersection(h1, h2) == pytest.approx(0.0)
        assert histogram_intersection(h1, h1) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            histogram_difference(np.ones(4), np.ones(5))

    def test_chi_square_zero_for_identical(self):
        h = color_histogram(solid((9, 9, 9)))
        assert chi_square_distance(h, h) == pytest.approx(0.0)

    def test_bhattacharyya_bounds(self):
        h1 = color_histogram(solid((0, 0, 0)))
        h2 = color_histogram(solid((255, 255, 255)))
        assert bhattacharyya_distance(h1, h1) == pytest.approx(0.0)
        assert bhattacharyya_distance(h1, h2) == pytest.approx(1.0)

    @given(rgb_images, rgb_images.map(lambda a: a))
    @settings(max_examples=25, deadline=None)
    def test_difference_symmetric_and_bounded(self, a, b):
        ha = color_histogram(a)
        hb = color_histogram(b)
        if ha.shape != hb.shape:
            return
        d_ab = histogram_difference(ha, hb)
        d_ba = histogram_difference(hb, ha)
        assert d_ab == pytest.approx(d_ba)
        assert 0.0 <= d_ab <= 1.0 + 1e-12

    @given(rgb_images)
    @settings(max_examples=25, deadline=None)
    def test_intersection_plus_difference_is_one(self, image):
        # For normalised histograms: intersection = 1 - L1/2.
        other = np.ascontiguousarray(image[::-1])
        ha = color_histogram(image)
        hb = color_histogram(other)
        total = histogram_intersection(ha, hb) + histogram_difference(ha, hb)
        assert total == pytest.approx(1.0)
