"""Morphology tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.vision.morphology import closing, dilate, erode, opening, square_element

masks = npst.arrays(dtype=bool, shape=st.tuples(st.integers(3, 16), st.integers(3, 16)))


class TestElements:
    def test_square_element(self):
        assert square_element(3).shape == (3, 3)
        assert square_element(3).all()

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            square_element(0)


class TestOperators:
    def test_opening_removes_speck(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        assert not opening(mask, size=3).any()

    def test_opening_keeps_big_blob(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[2:7, 2:7] = True
        assert opening(mask, size=3).sum() == 25

    def test_opening_removes_thin_line(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, :] = True  # 1-px court line
        assert not opening(mask, size=3).any()

    def test_closing_fills_hole(self):
        mask = np.ones((9, 9), dtype=bool)
        mask[4, 4] = False
        assert closing(mask, size=3).all()

    def test_erode_shrinks(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[2:7, 2:7] = True
        assert erode(mask).sum() < mask.sum()

    def test_dilate_grows(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        assert dilate(mask).sum() == 9

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            erode(np.zeros((2, 2, 2), dtype=bool))

    @given(masks)
    @settings(max_examples=25, deadline=None)
    def test_opening_is_anti_extensive(self, mask):
        # opening(A) is a subset of A
        assert not (opening(mask) & ~mask).any()

    @given(masks)
    @settings(max_examples=25, deadline=None)
    def test_closing_is_extensive(self, mask):
        # A is a subset of closing(A)
        assert not (mask & ~closing(mask)).any()

    @given(masks)
    @settings(max_examples=25, deadline=None)
    def test_opening_idempotent(self, mask):
        once = opening(mask)
        assert np.array_equal(opening(once), once)
