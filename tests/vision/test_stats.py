"""Frame statistics tests."""

import numpy as np
import pytest

from repro.vision.stats import frame_entropy, frame_mean, frame_statistics, frame_variance


def solid(value, h=8, w=8):
    return np.full((h, w), value, dtype=np.uint8)


class TestEntropy:
    def test_flat_frame_zero_entropy(self):
        assert frame_entropy(solid(100)) == pytest.approx(0.0)

    def test_uniform_ramp_max_entropy(self):
        ramp = np.tile(np.arange(256, dtype=np.uint8), (4, 1))
        assert frame_entropy(ramp, bins=64) == pytest.approx(6.0)

    def test_two_level_frame_one_bit(self):
        frame = np.zeros((4, 4), dtype=np.uint8)
        frame[:, :2] = 255
        assert frame_entropy(frame) == pytest.approx(1.0)

    def test_accepts_rgb(self):
        rgb = np.zeros((4, 4, 3), dtype=np.uint8)
        assert frame_entropy(rgb) == pytest.approx(0.0)

    def test_noise_raises_entropy(self, random_frame):
        noisy = random_frame(0, 32, 32, channels=0)
        assert frame_entropy(noisy) > frame_entropy(solid(7))


class TestMeanVariance:
    def test_mean_of_flat(self):
        assert frame_mean(solid(42)) == pytest.approx(42.0)

    def test_variance_of_flat_is_zero(self):
        assert frame_variance(solid(42)) == pytest.approx(0.0)

    def test_variance_of_two_levels(self):
        frame = np.zeros((2, 2), dtype=np.uint8)
        frame[0] = 10
        assert frame_variance(frame) == pytest.approx(25.0)


class TestFrameStatistics:
    def test_matches_individual_functions(self, random_frame):
        frame = random_frame(1, 16, 16)
        stats = frame_statistics(frame)
        assert stats["entropy"] == pytest.approx(frame_entropy(frame))
        assert stats["mean"] == pytest.approx(frame_mean(frame))
        assert stats["variance"] == pytest.approx(frame_variance(frame))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            frame_statistics(np.zeros((2, 2, 2, 2), dtype=np.uint8))
