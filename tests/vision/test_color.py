"""Colour conversion tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.vision.color import ensure_rgb, hsv_to_rgb, rgb_to_grey, rgb_to_hsv

rgb_images = npst.arrays(
    dtype=np.uint8, shape=st.tuples(st.integers(1, 12), st.integers(1, 12), st.just(3))
)


def solid(color, h=4, w=5):
    frame = np.zeros((h, w, 3), dtype=np.uint8)
    frame[:] = color
    return frame


class TestEnsureRgb:
    def test_accepts_rgb(self):
        frame = solid((1, 2, 3))
        assert ensure_rgb(frame) is not None

    def test_rejects_grey(self):
        with pytest.raises(ValueError):
            ensure_rgb(np.zeros((4, 4), dtype=np.uint8))

    def test_rejects_rgba(self):
        with pytest.raises(ValueError):
            ensure_rgb(np.zeros((4, 4, 4), dtype=np.uint8))


class TestRgbToGrey:
    def test_white_is_255(self):
        assert rgb_to_grey(solid((255, 255, 255))).max() == 255

    def test_black_is_0(self):
        assert rgb_to_grey(solid((0, 0, 0))).max() == 0

    def test_green_brighter_than_blue(self):
        green = rgb_to_grey(solid((0, 255, 0)))[0, 0]
        blue = rgb_to_grey(solid((0, 0, 255)))[0, 0]
        assert green > blue

    def test_luma_weights(self):
        # 0.299 R for pure red.
        red = rgb_to_grey(solid((255, 0, 0)))[0, 0]
        assert red == round(0.299 * 255)

    @given(rgb_images)
    @settings(max_examples=25, deadline=None)
    def test_output_shape_and_dtype(self, image):
        grey = rgb_to_grey(image)
        assert grey.shape == image.shape[:2]
        assert grey.dtype == np.uint8


class TestRgbHsvRoundTrip:
    def test_red_hue(self):
        hsv = rgb_to_hsv(solid((255, 0, 0)))
        assert hsv[0, 0, 0] == pytest.approx(0.0)
        assert hsv[0, 0, 1] == pytest.approx(1.0)
        assert hsv[0, 0, 2] == pytest.approx(1.0)

    def test_green_hue(self):
        hsv = rgb_to_hsv(solid((0, 255, 0)))
        assert hsv[0, 0, 0] == pytest.approx(120.0)

    def test_blue_hue(self):
        hsv = rgb_to_hsv(solid((0, 0, 255)))
        assert hsv[0, 0, 0] == pytest.approx(240.0)

    def test_grey_has_zero_saturation(self):
        hsv = rgb_to_hsv(solid((128, 128, 128)))
        assert hsv[0, 0, 1] == pytest.approx(0.0)

    def test_black_value_zero(self):
        hsv = rgb_to_hsv(solid((0, 0, 0)))
        assert hsv[0, 0, 2] == pytest.approx(0.0)

    @given(rgb_images)
    @settings(max_examples=25, deadline=None)
    def test_round_trip_within_one_level(self, image):
        back = hsv_to_rgb(rgb_to_hsv(image))
        assert np.abs(back.astype(int) - image.astype(int)).max() <= 1

    def test_hsv_to_rgb_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            hsv_to_rgb(np.zeros((3, 3), dtype=np.float64))

    def test_hue_wraps(self):
        a = hsv_to_rgb(np.full((1, 1, 3), [370.0, 1.0, 1.0]))
        b = hsv_to_rgb(np.full((1, 1, 3), [10.0, 1.0, 1.0]))
        assert np.array_equal(a, b)
