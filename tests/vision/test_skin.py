"""Skin model tests."""

import numpy as np
import pytest

from repro.vision.skin import DEFAULT_SKIN_MODEL, SkinColorModel, skin_ratio


def solid(color, h=6, w=6):
    frame = np.zeros((h, w, 3), dtype=np.uint8)
    frame[:] = color
    return frame


SKIN_TONES = [(224, 172, 120), (200, 140, 100), (240, 190, 150), (180, 120, 90)]
NON_SKIN = [
    (40, 130, 80),  # court green
    (128, 128, 128),  # grey (fails spread rule)
    (40, 200, 40),  # green (fails red dominance)
    (90, 95, 105),  # backdrop blue-grey
    (10, 10, 10),  # near black
]


class TestSkinMask:
    @pytest.mark.parametrize("tone", SKIN_TONES)
    def test_skin_tones_accepted(self, tone):
        assert DEFAULT_SKIN_MODEL.mask(solid(tone)).all()

    @pytest.mark.parametrize("color", NON_SKIN)
    def test_non_skin_rejected(self, color):
        assert not DEFAULT_SKIN_MODEL.mask(solid(color)).any()

    def test_ratio_of_half_skin_frame(self):
        frame = solid((40, 130, 80))
        frame[:, :3] = (224, 172, 120)
        assert skin_ratio(frame) == pytest.approx(0.5)

    def test_custom_model_threshold(self):
        strict = SkinColorModel(r_min=230)
        assert not strict.mask(solid((224, 172, 120))).any()

    def test_ratio_bounds(self, random_frame):
        frame = random_frame(0, 20, 20)
        assert 0.0 <= skin_ratio(frame) <= 1.0

    def test_mask_shape(self):
        mask = DEFAULT_SKIN_MODEL.mask(solid((224, 172, 120), h=3, w=7))
        assert mask.shape == (3, 7)
        assert mask.dtype == bool
