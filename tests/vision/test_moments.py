"""Shape feature tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vision.moments import central_moments, raw_moment, shape_features


def rectangle(r0, c0, h, w, shape=(32, 32)):
    mask = np.zeros(shape, dtype=bool)
    mask[r0 : r0 + h, c0 : c0 + w] = True
    return mask


class TestRawMoments:
    def test_m00_is_area(self):
        assert raw_moment(rectangle(2, 3, 4, 5), 0, 0) == 20.0

    def test_empty_mask(self):
        assert raw_moment(np.zeros((4, 4), dtype=bool), 0, 0) == 0.0


class TestShapeFeatures:
    def test_none_for_empty(self):
        assert shape_features(np.zeros((4, 4), dtype=bool)) is None

    def test_area_and_bbox(self):
        feats = shape_features(rectangle(2, 3, 4, 5))
        assert feats.area == 20
        assert feats.bbox == (2, 3, 6, 8)

    def test_centroid_of_rectangle(self):
        feats = shape_features(rectangle(2, 3, 4, 5))
        assert feats.centroid == (pytest.approx(3.5), pytest.approx(5.0))

    def test_aspect_ratio(self):
        feats = shape_features(rectangle(0, 0, 10, 5))
        assert feats.aspect_ratio == pytest.approx(2.0)

    def test_square_low_eccentricity(self):
        feats = shape_features(rectangle(0, 0, 8, 8))
        assert feats.eccentricity == pytest.approx(0.0, abs=1e-9)

    def test_elongated_high_eccentricity(self):
        feats = shape_features(rectangle(0, 0, 20, 2))
        assert feats.eccentricity > 0.9

    def test_vertical_orientation(self):
        # A tall upright region's major axis is vertical: |angle| = pi/2.
        feats = shape_features(rectangle(2, 10, 20, 3))
        assert abs(abs(feats.orientation) - np.pi / 2) < 0.05

    def test_horizontal_orientation(self):
        feats = shape_features(rectangle(10, 2, 3, 20))
        assert abs(feats.orientation) < 0.05

    def test_diagonal_orientation(self):
        mask = np.zeros((20, 20), dtype=bool)
        for i in range(15):
            mask[i, i : i + 3] = True
        feats = shape_features(mask)
        # Covariance-based orientation of a down-right diagonal (rows grow
        # with cols) is +-45 degrees.
        assert abs(abs(feats.orientation) - np.pi / 4) < 0.1

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            shape_features(np.zeros((2, 2, 2), dtype=bool))

    def test_vector_roundtrip(self):
        feats = shape_features(rectangle(1, 1, 4, 4))
        vec = feats.as_vector()
        assert vec[0] == feats.area
        assert len(vec) == 10

    @given(
        st.integers(0, 10),
        st.integers(0, 10),
        st.integers(2, 8),
        st.integers(2, 8),
        st.integers(0, 12),
        st.integers(0, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_translation_invariance(self, r0, c0, h, w, dr, dc):
        """Area, orientation and eccentricity are translation-invariant."""
        a = shape_features(rectangle(r0, c0, h, w, shape=(40, 40)))
        b = shape_features(rectangle(r0 + dr, c0 + dc, h, w, shape=(40, 40)))
        assert a.area == b.area
        assert a.eccentricity == pytest.approx(b.eccentricity, abs=1e-9)
        assert a.orientation == pytest.approx(b.orientation, abs=1e-9)
        assert b.centroid[0] - a.centroid[0] == pytest.approx(dr)
        assert b.centroid[1] - a.centroid[1] == pytest.approx(dc)


class TestCentralMoments:
    def test_zero_for_single_pixel(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        mu = central_moments(mask)
        assert mu["mu20"] == 0.0
        assert mu["mu02"] == 0.0
        assert mu["mu11"] == 0.0

    def test_symmetric_rectangle_has_zero_cross_moment(self):
        mu = central_moments(rectangle(0, 0, 6, 4))
        assert mu["mu11"] == pytest.approx(0.0)
