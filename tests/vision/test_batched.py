"""Batched vision kernels must equal their per-frame twins bit for bit.

Every batched entry point in :mod:`repro.vision` (and the batched
frame-distance path of the boundary detector) is an optimization, not a
reimplementation: for any clip, frame *i* of the batched result must be
``np.array_equal`` to the single-frame function applied to frame *i*.
The clips here mix random noise, flat frames, pure skin/court colours
and a frame count that does not divide the kernel block size.
"""

import numpy as np
import pytest

from repro.shots.boundary import frame_distances, frame_distances_reference
from repro.shots.classify import ShotFeatureExtractor
from repro.video.frames import VideoClip
from repro.vision.color import (
    FRAME_BLOCK,
    ensure_frames,
    rgb_to_grey,
    rgb_to_grey_frames,
    rgb_to_hsv,
    rgb_to_hsv_frames,
)
from repro.vision.dominant import (
    color_coverage,
    color_coverages,
    dominant_color,
    dominant_colors,
)
from repro.vision.histogram import (
    color_histogram,
    color_histograms,
    grey_histogram,
    grey_histograms,
    hsv_histogram,
    hsv_histograms,
)
from repro.vision.moments import shape_features, shape_features_batch
from repro.vision.skin import DEFAULT_SKIN_MODEL
from repro.vision.stats import frame_statistics, frame_statistics_batch


@pytest.fixture(scope="module")
def clip(make_rng) -> np.ndarray:
    """(N, H, W, 3) uint8 frames; N is odd so blocks end ragged."""
    rng = make_rng(42)
    n, h, w = 2 * FRAME_BLOCK + 1, 24, 32
    frames = rng.integers(0, 256, size=(n, h, w, 3), dtype=np.uint8)
    frames[1] = 0  # flat black: degenerate histograms, zero spread
    frames[2] = 255  # flat white: saturates the quantisers
    frames[3] = np.array([200, 120, 90], dtype=np.uint8)  # pure skin tone
    frames[4] = np.array([40, 130, 80], dtype=np.uint8)  # pure court tone
    return frames


COURT = np.array([40.0, 130.0, 80.0])


class TestConversions:
    def test_grey_frames_equal_per_frame(self, clip):
        batched = rgb_to_grey_frames(clip)
        for i, frame in enumerate(clip):
            assert np.array_equal(batched[i], rgb_to_grey(frame))

    def test_hsv_frames_equal_per_frame(self, clip):
        batched = rgb_to_hsv_frames(clip)
        for i, frame in enumerate(clip):
            assert np.array_equal(batched[i], rgb_to_hsv(frame))


class TestEnsureFrames:
    def test_accepts_video_clip(self, clip):
        video = VideoClip(frames=list(clip), fps=25.0, name="t")
        assert np.array_equal(ensure_frames(video), clip)

    def test_accepts_frame_list_and_single_frame(self, clip):
        assert np.array_equal(ensure_frames(list(clip)), clip)
        one = ensure_frames(clip[0])
        assert one.shape == (1, *clip[0].shape)

    def test_empty_sequence_gives_zero_frames(self):
        assert ensure_frames([]).shape[0] == 0

    def test_rejects_non_rgb_shapes(self):
        with pytest.raises(ValueError, match="RGB"):
            ensure_frames(np.zeros((4, 5, 6)))


class TestHistograms:
    @pytest.mark.parametrize("bins", [2, 8, 16])
    @pytest.mark.parametrize("normalize", [True, False])
    def test_color_histograms(self, clip, bins, normalize):
        batched = color_histograms(clip, bins=bins, normalize=normalize)
        for i, frame in enumerate(clip):
            assert np.array_equal(
                batched[i], color_histogram(frame, bins=bins, normalize=normalize)
            )

    def test_hsv_histograms(self, clip):
        batched = hsv_histograms(clip)
        for i, frame in enumerate(clip):
            assert np.array_equal(batched[i], hsv_histogram(frame))

    def test_grey_histograms(self, clip):
        greys = rgb_to_grey_frames(clip)
        batched = grey_histograms(greys)
        for i in range(len(clip)):
            assert np.array_equal(batched[i], grey_histogram(greys[i]))


class TestClassifierKernels:
    def test_skin_masks_and_ratios(self, clip):
        model = DEFAULT_SKIN_MODEL
        masks = model.masks(clip)
        ratios = model.ratios(clip)
        for i, frame in enumerate(clip):
            assert np.array_equal(masks[i], model.mask(frame))
            assert ratios[i] == model.ratio(frame)

    def test_dominant_colors(self, clip):
        batched = dominant_colors(clip)
        for i, frame in enumerate(clip):
            color, coverage = dominant_color(frame)
            assert np.array_equal(batched[i][0], color)
            assert batched[i][1] == coverage

    def test_color_coverages(self, clip):
        batched = color_coverages(clip, COURT)
        for i, frame in enumerate(clip):
            assert batched[i] == color_coverage(frame, COURT)

    def test_frame_statistics_batch(self, clip):
        batched = frame_statistics_batch(clip)
        for i, frame in enumerate(clip):
            assert batched[i] == frame_statistics(frame)

    def test_shape_features_batch(self, clip):
        masks = DEFAULT_SKIN_MODEL.masks(clip)
        masks[1] = False  # an all-empty mask must yield None, like the scalar path
        batched = shape_features_batch(masks)
        for i in range(len(clip)):
            assert batched[i] == shape_features(masks[i])

    def test_extractor_batched_equals_reference(self, clip):
        frames = list(clip)
        batched = ShotFeatureExtractor(samples=5)
        reference = ShotFeatureExtractor(samples=5, batched=False)
        assert batched.extract(frames) == reference.extract(frames)


class TestBoundaryDistances:
    @pytest.mark.parametrize("color_space", ["rgb", "hsv"])
    def test_frame_distances_match_reference(self, clip, color_space):
        video = VideoClip(frames=list(clip), fps=25.0, name="t")
        assert np.array_equal(
            frame_distances(video, color_space=color_space),
            frame_distances_reference(video, color_space=color_space),
        )
