"""Dominant colour tests."""

import numpy as np
import pytest

from repro.vision.dominant import color_coverage, color_distance, dominant_color


def solid(color, h=8, w=8):
    frame = np.zeros((h, w, 3), dtype=np.uint8)
    frame[:] = color
    return frame


class TestDominantColor:
    def test_solid_frame(self):
        color, coverage = dominant_color(solid((40, 130, 80)))
        assert np.allclose(color, (40, 130, 80))
        assert coverage == pytest.approx(1.0)

    def test_majority_wins(self):
        frame = solid((200, 10, 10))
        frame[:2] = (10, 10, 200)  # minority
        color, coverage = dominant_color(frame)
        assert np.allclose(color, (200, 10, 10))
        assert coverage == pytest.approx(0.75)

    def test_mean_of_winning_cell(self):
        # Two nearby shades in one quantisation cell: expect their mean.
        frame = solid((100, 100, 100))
        frame[:, ::2] = (102, 102, 102)
        color, coverage = dominant_color(frame, bins=8)
        assert coverage == pytest.approx(1.0)
        assert np.allclose(color, (101, 101, 101))


class TestColorDistance:
    def test_zero_for_same(self):
        assert color_distance(np.array([1, 2, 3]), np.array([1, 2, 3])) == 0.0

    def test_euclidean(self):
        assert color_distance(np.zeros(3), np.array([3, 4, 0])) == pytest.approx(5.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            color_distance(np.zeros(4), np.zeros(3))


class TestColorCoverage:
    def test_full_coverage(self):
        assert color_coverage(solid((40, 130, 80)), np.array([40, 130, 80])) == 1.0

    def test_partial_coverage(self):
        frame = solid((40, 130, 80))
        frame[:4] = (255, 255, 255)
        assert color_coverage(frame, np.array([40, 130, 80])) == pytest.approx(0.5)

    def test_tolerance_matters(self):
        frame = solid((40, 130, 80))
        near = np.array([60, 130, 80])  # distance 20
        assert color_coverage(frame, near, tolerance=25) == 1.0
        assert color_coverage(frame, near, tolerance=10) == 0.0
