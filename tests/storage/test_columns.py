"""Column type tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.columns import (
    BoolColumn,
    FloatColumn,
    IntColumn,
    StrColumn,
    column_for,
)


class TestIntColumn:
    def test_append_get(self):
        col = IntColumn([1, 2, 3])
        assert len(col) == 3
        assert col.get(1) == 2

    def test_growth_beyond_initial_capacity(self):
        col = IntColumn()
        for i in range(100):
            col.append(i)
        assert len(col) == 100
        assert col.get(99) == 99

    def test_lossy_float_rejected(self):
        col = IntColumn()
        with pytest.raises(TypeError):
            col.append(1.5)

    def test_whole_float_accepted(self):
        col = IntColumn()
        col.append(2.0)
        assert col.get(0) == 2

    def test_values_readonly_view(self):
        col = IntColumn([1, 2])
        values = col.values()
        with pytest.raises(ValueError):
            values[0] = 9

    def test_equals_mask(self):
        col = IntColumn([1, 2, 1])
        assert list(col.equals_mask(1)) == [True, False, True]

    def test_range_mask(self):
        col = IntColumn([1, 5, 3, 7])
        assert list(col.range_mask(2, 6)) == [False, True, True, False]
        assert list(col.range_mask(low=5)) == [False, True, False, True]

    def test_take(self):
        col = IntColumn([10, 20, 30])
        assert col.take(np.array([2, 0])) == [30, 10]

    def test_index_error(self):
        with pytest.raises(IndexError):
            IntColumn([1]).get(1)

    @given(st.lists(st.integers(-(2**40), 2**40)))
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, values):
        col = IntColumn(values)
        assert [col.get(i) for i in range(len(col))] == values


class TestFloatColumn:
    def test_casts(self):
        col = FloatColumn([1, 2.5])
        assert col.get(0) == 1.0
        assert col.get(1) == 2.5


class TestBoolColumn:
    def test_append_bool(self):
        col = BoolColumn([True, False])
        assert col.get(0) is True

    def test_rejects_int(self):
        with pytest.raises(TypeError):
            BoolColumn().append(1)


class TestStrColumn:
    def test_round_trip(self):
        col = StrColumn(["a", "b"])
        assert col.values() == ["a", "b"]

    def test_rejects_non_str(self):
        with pytest.raises(TypeError):
            StrColumn().append(5)

    def test_equals_mask(self):
        col = StrColumn(["x", "y", "x"])
        assert list(col.equals_mask("x")) == [True, False, True]

    def test_take(self):
        col = StrColumn(["a", "b", "c"])
        assert col.take(np.array([1])) == ["b"]


class TestColumnFor:
    @pytest.mark.parametrize("name,cls", [("int", IntColumn), ("float", FloatColumn), ("str", StrColumn), ("bool", BoolColumn)])
    def test_factory(self, name, cls):
        assert isinstance(column_for(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            column_for("decimal")
