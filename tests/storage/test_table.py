"""Table tests."""

import numpy as np
import pytest

from repro.storage.table import SchemaError, Table


@pytest.fixture
def shots():
    table = Table("shots", {"shot_id": "int", "category": "str", "entropy": "float"})
    for i in range(6):
        table.append(
            {
                "shot_id": i,
                "category": "tennis" if i % 2 == 0 else "closeup",
                "entropy": 0.5 * i,
            }
        )
    return table


class TestSchema:
    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", {})

    def test_unknown_column_access(self, shots):
        with pytest.raises(SchemaError):
            shots.column("nope")


class TestAppend:
    def test_row_ids_sequential(self, shots):
        assert shots.append({"shot_id": 6, "category": "other", "entropy": 0.0}) == 6

    def test_missing_column_rejected(self, shots):
        with pytest.raises(SchemaError):
            shots.append({"shot_id": 7})

    def test_extra_column_rejected(self, shots):
        with pytest.raises(SchemaError):
            shots.append({"shot_id": 7, "category": "x", "entropy": 0.0, "zap": 1})

    def test_failed_append_leaves_table_consistent(self, shots):
        before = len(shots)
        with pytest.raises(Exception):
            # entropy is appended after category; make category fail type check.
            shots.append({"shot_id": 7, "category": 123, "entropy": 0.0})
        assert len(shots) == before
        # All columns still equal length and previous rows intact.
        assert shots.row(before - 1)["shot_id"] == before - 1
        shots.append({"shot_id": 99, "category": "ok", "entropy": 1.0})
        assert shots.row(before)["shot_id"] == 99


class TestSelection:
    def test_select_equality(self, shots):
        rows = shots.select(category="tennis")
        assert [r["shot_id"] for r in rows] == [0, 2, 4]

    def test_conjunction(self, shots):
        rows = shots.select(category="tennis", shot_id=2)
        assert len(rows) == 1

    def test_select_ids(self, shots):
        assert list(shots.select_ids(category="closeup")) == [1, 3, 5]

    def test_where_external_mask(self, shots):
        mask = np.array([True] + [False] * 5)
        assert shots.where(mask)[0]["shot_id"] == 0

    def test_where_wrong_length(self, shots):
        with pytest.raises(ValueError):
            shots.where(np.array([True]))

    def test_scan_order(self, shots):
        assert [r["shot_id"] for r in shots.scan()] == list(range(6))

    def test_row_bounds(self, shots):
        with pytest.raises(IndexError):
            shots.row(100)
