"""Indexing-journal unit tests (replay, recovery, corruption)."""

import json

import pytest

from repro.storage.journal import IndexingJournal, JournalCorruptionError


@pytest.fixture
def journal(tmp_path):
    return IndexingJournal(tmp_path / "journal.jsonl")


class TestAppendReplay:
    def test_missing_journal_replays_empty(self, journal):
        assert journal.replay() == []
        assert journal.committed() == {}
        assert journal.interrupted() == []

    def test_begin_commit_round_trip(self, journal):
        journal.begin("a")
        journal.commit("a")
        journal.begin("b")
        journal.commit("b", degraded=True)
        assert journal.committed() == {"a": False, "b": True}
        assert journal.interrupted() == []

    def test_interrupted_videos(self, journal):
        journal.begin("a")
        journal.commit("a")
        journal.begin("b")
        assert journal.interrupted() == ["b"]

    def test_note_records_pass_through(self, journal):
        journal.note(kind="snapshot", generation=3)
        (record,) = journal.replay()
        assert record == {"generation": 3, "kind": "snapshot", "op": "note"}

    def test_clear_starts_fresh(self, journal):
        journal.begin("a")
        journal.clear()
        assert journal.replay() == []
        journal.clear()  # idempotent on a missing file


class TestRecovery:
    def test_recover_on_clean_journal_is_noop(self, journal):
        journal.begin("a")
        assert journal.recover() == 0
        assert journal.replay() == [{"op": "begin", "video": "a"}]

    def test_recover_missing_file(self, journal):
        assert journal.recover() == 0

    def test_torn_tail_tolerated_and_truncated(self, journal):
        journal.begin("a")
        with open(journal.path, "ab") as handle:
            handle.write(b'{"op": "comm')  # torn mid-append, no newline
        assert journal.replay() == [{"op": "begin", "video": "a"}]
        report = journal.verify()
        assert report.torn_tail and report.ok
        assert journal.recover() == len(b'{"op": "comm')
        assert not journal.verify().torn_tail

    def test_interior_corruption_raises(self, journal):
        journal.begin("a")
        with open(journal.path, "ab") as handle:
            handle.write(b"not json at all\n")
        journal.commit("a")
        with pytest.raises(JournalCorruptionError):
            journal.replay()
        report = journal.verify()
        assert report.corrupt_lines == [2]
        assert not report.ok

    def test_complete_but_non_record_line_is_corruption(self, journal):
        journal.begin("a")
        with open(journal.path, "ab") as handle:
            handle.write(json.dumps(["not", "an", "object"]).encode() + b"\n")
        report = journal.verify()
        assert report.corrupt_lines == [2]
