"""Crash-recovery matrix: kill the writer at every storage write point.

The acceptance property of the durability layer: for every named crash
point in the snapshot/journal write path, dying there and reloading
yields either the new snapshot or the previous good generation — never
a parse error or a partial catalogue.
"""

import pytest

from repro.storage import (
    Catalog,
    CrashPoint,
    IndexingJournal,
    SimulatedCrash,
    load_catalog,
    save_catalog,
)
from repro.storage.crashpoints import (
    JOURNAL_POINTS,
    SNAPSHOT_POINTS,
    armed_points,
    is_armed,
    trip,
)


def catalog_with(marker: int) -> Catalog:
    catalog = Catalog()
    table = catalog.create_table("t", {"marker": "int", "label": "str", "flag": "bool"})
    for i in range(3):
        table.append({"marker": marker, "label": f"row{i}", "flag": i % 2 == 0})
    return catalog


def marker_of(catalog: Catalog) -> int:
    return catalog.table("t").row(0)["marker"]


class TestSnapshotCrashMatrix:
    @pytest.mark.parametrize("point", SNAPSHOT_POINTS)
    def test_crash_yields_old_or_new_snapshot(self, point, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(catalog_with(1), path)
        with CrashPoint(point):
            with pytest.raises(SimulatedCrash):
                save_catalog(catalog_with(2), path)
        loaded = load_catalog(path)  # must not raise — the matrix property
        assert marker_of(loaded) in (1, 2)
        # Points before the replace keep the old generation; the only
        # point after it sees the new one.
        expected = 2 if point == "snapshot-post-replace" else 1
        assert marker_of(loaded) == expected

    @pytest.mark.parametrize("point", SNAPSHOT_POINTS)
    def test_crash_on_first_ever_save(self, point, tmp_path):
        """No previous generation: either the new snapshot or nothing."""
        path = tmp_path / "catalog.json"
        with CrashPoint(point):
            with pytest.raises(SimulatedCrash):
                save_catalog(catalog_with(1), path)
        if point == "snapshot-post-replace":
            assert marker_of(load_catalog(path)) == 1
        else:
            with pytest.raises(FileNotFoundError):
                load_catalog(path)

    @pytest.mark.parametrize("point", SNAPSHOT_POINTS)
    def test_save_after_crash_recovers(self, point, tmp_path):
        """The writer itself needs no fsck: the next save heals the state."""
        path = tmp_path / "catalog.json"
        save_catalog(catalog_with(1), path)
        with CrashPoint(point):
            with pytest.raises(SimulatedCrash):
                save_catalog(catalog_with(2), path)
        save_catalog(catalog_with(3), path)
        assert marker_of(load_catalog(path)) == 3

    def test_double_crash_still_keeps_a_generation(self, tmp_path):
        """Two consecutive crashed saves never lose the last good data."""
        path = tmp_path / "catalog.json"
        save_catalog(catalog_with(1), path)
        for attempt in (2, 3):
            with CrashPoint("snapshot-pre-replace"):
                with pytest.raises(SimulatedCrash):
                    save_catalog(catalog_with(attempt), path)
        assert marker_of(load_catalog(path)) == 1


class TestJournalCrashMatrix:
    @pytest.mark.parametrize("point", JOURNAL_POINTS)
    def test_crash_keeps_replayable_prefix(self, point, tmp_path):
        journal = IndexingJournal(tmp_path / "journal.jsonl")
        journal.begin("v1")
        journal.commit("v1")
        with CrashPoint(point):
            with pytest.raises(SimulatedCrash):
                journal.begin("v2")
        journal.recover()
        records = journal.replay()  # must not raise
        assert records[:2] == [
            {"op": "begin", "video": "v1"},
            {"op": "commit", "degraded": False, "video": "v1"},
        ]
        assert journal.committed() == {"v1": False}

    def test_mid_append_leaves_torn_tail(self, tmp_path):
        journal = IndexingJournal(tmp_path / "journal.jsonl")
        journal.begin("v1")
        with CrashPoint("journal-mid-append"):
            with pytest.raises(SimulatedCrash):
                journal.commit("v1")
        report = journal.verify()
        assert report.torn_tail
        assert report.ok  # torn tail is recoverable, not corruption
        dropped = journal.recover()
        assert dropped > 0
        journal.commit("v1")
        assert journal.committed() == {"v1": False}


class TestCrashPointHarness:
    def test_trips_are_scoped_to_the_context(self):
        assert armed_points() == []
        with CrashPoint("snapshot-pre-replace"):
            assert is_armed("snapshot-pre-replace")
        assert not is_armed("snapshot-pre-replace")
        trip("snapshot-pre-replace")  # disarmed: no-op

    def test_times_limits_trips(self):
        with CrashPoint("snapshot-pre-replace", times=1):
            with pytest.raises(SimulatedCrash):
                trip("snapshot-pre-replace")
            trip("snapshot-pre-replace")  # quiet after the single trip

    def test_after_skips_early_trips(self):
        with CrashPoint("snapshot-pre-replace", after=2):
            trip("snapshot-pre-replace")
            trip("snapshot-pre-replace")
            with pytest.raises(SimulatedCrash):
                trip("snapshot-pre-replace")

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            CrashPoint("no-such-point")

    def test_simulated_crash_is_not_an_exception(self):
        """`except Exception` recovery code must not survive a crash."""
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)
