"""Relational helper tests."""

import pytest

from repro.storage.query import group_count, hash_join, order_by
from repro.storage.table import Table


@pytest.fixture
def videos():
    t = Table("videos", {"video_id": "int", "name": "str"})
    t.append({"video_id": 1, "name": "final"})
    t.append({"video_id": 2, "name": "semi"})
    t.append({"video_id": 3, "name": "unwatched"})
    return t


@pytest.fixture
def shots():
    t = Table("shots", {"shot_id": "int", "video_id": "int", "name": "str"})
    t.append({"shot_id": 10, "video_id": 1, "name": "s10"})
    t.append({"shot_id": 11, "video_id": 1, "name": "s11"})
    t.append({"shot_id": 12, "video_id": 2, "name": "s12"})
    return t


class TestHashJoin:
    def test_inner_join_cardinality(self, videos, shots):
        rows = hash_join(videos, shots, "video_id", "video_id")
        assert len(rows) == 3  # video 3 has no shots

    def test_collision_prefixing(self, videos, shots):
        rows = hash_join(videos, shots, "video_id", "video_id")
        row = rows[0]
        # video_id and name collide; shot_id does not.
        assert "l_video_id" in row and "r_video_id" in row
        assert "l_name" in row and "r_name" in row
        assert "shot_id" in row

    def test_join_values_match(self, videos, shots):
        for row in hash_join(videos, shots, "video_id", "video_id"):
            assert row["l_video_id"] == row["r_video_id"]

    def test_swapped_sides_same_rows(self, videos, shots):
        a = hash_join(videos, shots, "video_id", "video_id")
        b = hash_join(shots, videos, "video_id", "video_id")
        def key(r):
            return (r["l_video_id"], r["shot_id"])

        assert sorted(key(r) for r in a) == sorted(key(r) for r in b)

    def test_empty_result(self, videos):
        empty = Table("empty", {"video_id": "int"})
        assert hash_join(videos, empty, "video_id", "video_id") == []


class TestGroupCount:
    def test_counts(self, shots):
        assert group_count(shots, "video_id") == {1: 2, 2: 1}


class TestOrderBy:
    def test_sort_and_limit(self):
        rows = [{"s": 3}, {"s": 1}, {"s": 2}]
        assert [r["s"] for r in order_by(rows, "s")] == [1, 2, 3]
        assert [r["s"] for r in order_by(rows, "s", descending=True, limit=2)] == [3, 2]
