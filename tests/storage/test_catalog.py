"""Catalogue tests."""

import pytest

from repro.storage.catalog import Catalog
from repro.storage.table import SchemaError


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.create_table("shots", {"shot_id": "int", "category": "str"})
    t.append({"shot_id": 1, "category": "tennis"})
    return cat


class TestTables:
    def test_create_and_lookup(self, catalog):
        assert "shots" in catalog
        assert len(catalog.table("shots")) == 1

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(SchemaError):
            catalog.create_table("shots", {"x": "int"})

    def test_missing_table(self, catalog):
        with pytest.raises(KeyError):
            catalog.table("ghost")

    def test_drop_table(self, catalog):
        catalog.create_hash_index("shots", "category")
        catalog.drop_table("shots")
        assert "shots" not in catalog
        with pytest.raises(KeyError):
            catalog.drop_table("shots")

    def test_table_names_sorted(self, catalog):
        catalog.create_table("a_table", {"x": "int"})
        assert catalog.table_names == ["a_table", "shots"]


class TestIndexes:
    def test_hash_index_cached(self, catalog):
        first = catalog.create_hash_index("shots", "category")
        second = catalog.create_hash_index("shots", "category")
        assert first is second

    def test_hash_index_auto_refresh(self, catalog):
        catalog.create_hash_index("shots", "category")
        catalog.table("shots").append({"shot_id": 2, "category": "tennis"})
        fresh = catalog.hash_index("shots", "category")
        assert list(fresh.lookup("tennis")) == [0, 1]

    def test_sorted_index_auto_refresh(self, catalog):
        catalog.create_sorted_index("shots", "shot_id")
        catalog.table("shots").append({"shot_id": 0, "category": "x"})
        index = catalog.sorted_index("shots", "shot_id")
        assert list(index.range(0, 0)) == [1]


class TestGenerationStamping:
    def test_starts_at_zero(self):
        assert Catalog().generation == 0

    def test_ddl_bumps(self):
        catalog = Catalog()
        catalog.create_table("shots", {"shot_id": "int"})
        assert catalog.generation == 1
        catalog.create_table("events", {"event_id": "int"})
        assert catalog.generation == 2
        catalog.drop_table("events")
        assert catalog.generation == 3

    def test_explicit_commit_stamp(self):
        catalog = Catalog()
        catalog.create_table("shots", {"shot_id": "int"})
        before = catalog.generation
        assert catalog.bump_generation() == before + 1
        assert catalog.generation == before + 1

    def test_index_building_does_not_bump(self, catalog):
        before = catalog.generation
        catalog.create_hash_index("shots", "category")
        catalog.hash_index("shots", "category")
        assert catalog.generation == before
