"""Stateful property test: the table behaves like a list of dicts.

Hypothesis drives random sequences of appends and queries against a
Table and a plain-Python reference model; any divergence is a bug in the
column store's buffer management or masking.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage.table import Table

categories = st.sampled_from(["tennis", "closeup", "audience", "other"])


class TableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = Table(
            "shots", {"shot_id": "int", "category": "str", "score": "float"}
        )
        self.reference: list[dict] = []

    @rule(shot_id=st.integers(-(2**40), 2**40), category=categories,
          score=st.floats(allow_nan=False, allow_infinity=False, width=32))
    def append(self, shot_id, category, score):
        row = {"shot_id": shot_id, "category": category, "score": float(score)}
        row_id = self.table.append(row)
        assert row_id == len(self.reference)
        self.reference.append(row)

    @rule(category=categories)
    def select_by_category(self, category):
        got = self.table.select(category=category)
        want = [r for r in self.reference if r["category"] == category]
        assert got == want

    @rule(data=st.data())
    def read_row(self, data):
        if not self.reference:
            return
        index = data.draw(st.integers(0, len(self.reference) - 1))
        assert self.table.row(index) == self.reference[index]

    @rule()
    def scan_matches(self):
        assert self.table.scan() == self.reference

    @invariant()
    def lengths_agree(self):
        assert len(self.table) == len(self.reference)

    @invariant()
    def mask_is_consistent(self):
        mask = self.table.mask(category="tennis")
        assert mask.sum() == sum(r["category"] == "tennis" for r in self.reference)


TestTableStateful = TableMachine.TestCase
TestTableStateful.settings = settings(max_examples=30, stateful_step_count=30, deadline=None)
