"""Catalogue persistence tests."""

import json
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.catalog import Catalog
from repro.storage.persist import (
    CatalogCorruptionError,
    load_catalog,
    save_catalog,
    snapshot_generations,
    verify_snapshot,
)


def roundtrip(catalog, tmp_path):
    path = tmp_path / "catalog.json"
    save_catalog(catalog, path)
    return load_catalog(path)


class TestRoundTrip:
    def test_all_types(self, tmp_path):
        catalog = Catalog()
        table = catalog.create_table(
            "t", {"i": "int", "f": "float", "s": "str", "b": "bool"}
        )
        table.append({"i": 1, "f": 2.5, "s": "x", "b": True})
        table.append({"i": -7, "f": 0.0, "s": "", "b": False})
        loaded = roundtrip(catalog, tmp_path)
        assert loaded.table("t").scan() == table.scan()

    def test_multiple_tables(self, tmp_path):
        catalog = Catalog()
        catalog.create_table("a", {"x": "int"}).append({"x": 1})
        catalog.create_table("b", {"y": "str"}).append({"y": "hi"})
        loaded = roundtrip(catalog, tmp_path)
        assert loaded.table_names == ["a", "b"]

    def test_empty_table(self, tmp_path):
        catalog = Catalog()
        catalog.create_table("empty", {"x": "int"})
        loaded = roundtrip(catalog, tmp_path)
        assert len(loaded.table("empty")) == 0

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "tables": {}}))
        with pytest.raises(ValueError):
            load_catalog(path)

    def test_ragged_columns_rejected(self, tmp_path):
        path = tmp_path / "ragged.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "tables": {
                        "t": {
                            "schema": {"a": "int", "b": "int"},
                            "columns": {"a": [1, 2], "b": [1]},
                        }
                    },
                }
            )
        )
        with pytest.raises(ValueError):
            load_catalog(path)

    def test_snapshot_is_version_2_with_checksum(self, tmp_path):
        catalog = Catalog()
        catalog.create_table("t", {"x": "int"}).append({"x": 1})
        path = tmp_path / "catalog.json"
        save_catalog(catalog, path)
        document = json.loads(path.read_text())
        assert document["version"] == 2
        payload = json.dumps(
            document["tables"], sort_keys=True, separators=(",", ":")
        ).encode()
        assert document["checksum"] == zlib.crc32(payload)

    def test_version_1_documents_still_load(self, tmp_path):
        """Snapshots from before the durability layer (no checksum)."""
        path = tmp_path / "old.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "tables": {
                        "t": {
                            "schema": {"x": "int", "b": "bool"},
                            "columns": {"x": [1, 2], "b": [True, 0]},
                        }
                    },
                }
            )
        )
        loaded = load_catalog(path)
        assert loaded.table("t").scan() == [
            {"x": 1, "b": True},
            {"x": 2, "b": False},
        ]

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(-(2**31), 2**31),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.text(max_size=20),
                st.booleans(),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_property_round_trip(self, rows, tmp_path_factory):
        catalog = Catalog()
        table = catalog.create_table(
            "t", {"i": "int", "f": "float", "s": "str", "b": "bool"}
        )
        for i, f, s, b in rows:
            table.append({"i": i, "f": f, "s": s, "b": b})
        path = tmp_path_factory.mktemp("rt") / "cat.json"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert loaded.table("t").scan() == table.scan()


def _make_catalog(marker: int) -> Catalog:
    catalog = Catalog()
    table = catalog.create_table("t", {"x": "int", "s": "str"})
    table.append({"x": marker, "s": f"gen{marker}"})
    return catalog


class TestRecovery:
    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_catalog(tmp_path / "nope.json")

    def test_truncated_current_falls_back_to_prev(self, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(_make_catalog(1), path)
        save_catalog(_make_catalog(2), path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn write
        loaded = load_catalog(path)
        assert loaded.table("t").row(0)["x"] == 1

    def test_checksum_mismatch_falls_back_to_prev(self, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(_make_catalog(1), path)
        save_catalog(_make_catalog(2), path)
        document = json.loads(path.read_text())
        document["tables"]["t"]["columns"]["x"] = [999]  # silent bit rot
        path.write_text(json.dumps(document))
        loaded = load_catalog(path)
        assert loaded.table("t").row(0)["x"] == 1

    def test_both_generations_corrupt_raises(self, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(_make_catalog(1), path)
        save_catalog(_make_catalog(2), path)
        _, prev = snapshot_generations(path)
        path.write_text("{torn")
        prev.write_text("{also torn")
        with pytest.raises(CatalogCorruptionError):
            load_catalog(path)

    def test_missing_current_with_good_prev_loads(self, tmp_path):
        """The crash window between rotate and replace."""
        path = tmp_path / "catalog.json"
        save_catalog(_make_catalog(1), path)
        _, prev = snapshot_generations(path)
        path.rename(prev)
        loaded = load_catalog(path)
        assert loaded.table("t").row(0)["x"] == 1


class TestVerifySnapshot:
    def test_ok_report(self, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(_make_catalog(1), path)
        report = verify_snapshot(path)
        assert report.ok
        assert report.version == 2
        assert report.n_tables == 1
        assert report.n_rows == 1
        assert report.error is None

    def test_missing_report(self, tmp_path):
        report = verify_snapshot(tmp_path / "nope.json")
        assert not report.ok
        assert report.error == "missing"

    def test_checksum_failure_reported(self, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(_make_catalog(1), path)
        document = json.loads(path.read_text())
        document["checksum"] ^= 1
        path.write_text(json.dumps(document))
        report = verify_snapshot(path)
        assert not report.ok
        assert "checksum mismatch" in report.error
        assert report.version == 2

    def test_ragged_columns_reported(self, tmp_path):
        path = tmp_path / "catalog.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "tables": {
                        "t": {
                            "schema": {"a": "int", "b": "int"},
                            "columns": {"a": [1, 2], "b": [1]},
                        }
                    },
                }
            )
        )
        report = verify_snapshot(path)
        assert not report.ok
        assert "ragged" in report.error
