"""Catalogue persistence tests."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.catalog import Catalog
from repro.storage.persist import load_catalog, save_catalog


def roundtrip(catalog, tmp_path):
    path = tmp_path / "catalog.json"
    save_catalog(catalog, path)
    return load_catalog(path)


class TestRoundTrip:
    def test_all_types(self, tmp_path):
        catalog = Catalog()
        table = catalog.create_table(
            "t", {"i": "int", "f": "float", "s": "str", "b": "bool"}
        )
        table.append({"i": 1, "f": 2.5, "s": "x", "b": True})
        table.append({"i": -7, "f": 0.0, "s": "", "b": False})
        loaded = roundtrip(catalog, tmp_path)
        assert loaded.table("t").scan() == table.scan()

    def test_multiple_tables(self, tmp_path):
        catalog = Catalog()
        catalog.create_table("a", {"x": "int"}).append({"x": 1})
        catalog.create_table("b", {"y": "str"}).append({"y": "hi"})
        loaded = roundtrip(catalog, tmp_path)
        assert loaded.table_names == ["a", "b"]

    def test_empty_table(self, tmp_path):
        catalog = Catalog()
        catalog.create_table("empty", {"x": "int"})
        loaded = roundtrip(catalog, tmp_path)
        assert len(loaded.table("empty")) == 0

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "tables": {}}))
        with pytest.raises(ValueError):
            load_catalog(path)

    def test_ragged_columns_rejected(self, tmp_path):
        path = tmp_path / "ragged.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "tables": {
                        "t": {
                            "schema": {"a": "int", "b": "int"},
                            "columns": {"a": [1, 2], "b": [1]},
                        }
                    },
                }
            )
        )
        with pytest.raises(ValueError):
            load_catalog(path)

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(-(2**31), 2**31),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.text(max_size=20),
                st.booleans(),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_property_round_trip(self, rows, tmp_path_factory):
        catalog = Catalog()
        table = catalog.create_table(
            "t", {"i": "int", "f": "float", "s": "str", "b": "bool"}
        )
        for i, f, s, b in rows:
            table.append({"i": i, "f": f, "s": s, "b": b})
        path = tmp_path_factory.mktemp("rt") / "cat.json"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert loaded.table("t").scan() == table.scan()
