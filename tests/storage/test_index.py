"""Secondary index tests."""

import pytest

from repro.storage.index import HashIndex, SortedIndex
from repro.storage.table import Table


@pytest.fixture
def table():
    t = Table("events", {"event_id": "int", "label": "str", "start": "int"})
    for i, label in enumerate(["rally", "net_play", "rally", "service"]):
        t.append({"event_id": i, "label": label, "start": i * 10})
    return t


class TestHashIndex:
    def test_lookup(self, table):
        index = HashIndex(table, "label")
        assert list(index.lookup("rally")) == [0, 2]
        assert list(index.lookup("net_play")) == [1]

    def test_missing_value(self, table):
        assert len(HashIndex(table, "label").lookup("ace")) == 0

    def test_staleness_and_refresh(self, table):
        index = HashIndex(table, "label")
        table.append({"event_id": 4, "label": "rally", "start": 40})
        assert index.stale
        index.refresh()
        assert not index.stale
        assert list(index.lookup("rally")) == [0, 2, 4]

    def test_distinct_values(self, table):
        index = HashIndex(table, "label")
        assert set(index.distinct_values()) == {"rally", "net_play", "service"}


class TestSortedIndex:
    def test_range(self, table):
        index = SortedIndex(table, "start")
        assert list(index.range(5, 25)) == [1, 2]

    def test_open_bounds(self, table):
        index = SortedIndex(table, "start")
        assert list(index.range(low=20)) == [2, 3]
        assert list(index.range(high=10)) == [0, 1]
        assert list(index.range()) == [0, 1, 2, 3]

    def test_refresh_after_append(self, table):
        index = SortedIndex(table, "start")
        table.append({"event_id": 4, "label": "x", "start": 15})
        assert index.stale
        index.refresh()
        assert list(index.range(12, 18)) == [4]
