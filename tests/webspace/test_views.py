"""Materialised view tests."""

import pytest

from repro.webspace.views import PathView
from repro.webspace.schema import SchemaViolation


class TestPathView:
    def test_rows_match_manual_navigation(self, dataset):
        view = PathView(dataset.instance, "Player", ["won"])
        manual = 0
        for player in dataset.instance.objects("Player"):
            manual += len(dataset.instance.follow("won", player))
        assert len(view.rows()) == manual
        assert view.leaf_class == "Match"

    def test_select_by_root(self, dataset):
        champion = next(p for p in dataset.players if p.titles > 0)
        view = PathView(dataset.instance, "Player", ["won"])
        rows = view.select(name=champion.name)
        assert rows
        assert all(r[0].get("name") == champion.name for r in rows)

    def test_leaves_for(self, dataset):
        champion = next(p for p in dataset.players if p.titles > 0)
        root = dataset.player_objects[champion.name]
        view = PathView(dataset.instance, "Player", ["won"])
        leaves = view.leaves_for(root)
        assert len(leaves) >= champion.titles

    def test_invalid_path(self, dataset):
        with pytest.raises(SchemaViolation):
            PathView(dataset.instance, "Player", ["recorded_in"])

    def test_staleness(self, dataset):
        view = PathView(dataset.instance, "Player", ["won"])
        assert not view.stale
