"""Webspace schema tests."""

import pytest

from repro.webspace.schema import AttributeDef, SchemaViolation, WebspaceSchema


@pytest.fixture
def schema():
    s = WebspaceSchema("site")
    s.add_class("Player", name="str", seed="int", titles="int")
    s.add_class("Match", title="str", year="int")
    s.add_association("played", "Player", "Match")
    return s


class TestClasses:
    def test_lookup(self, schema):
        assert schema.cls("Player").attribute_names == ["name", "seed", "titles"]

    def test_duplicate_class(self, schema):
        with pytest.raises(SchemaViolation):
            schema.add_class("Player", x="int")

    def test_unknown_class(self, schema):
        with pytest.raises(SchemaViolation):
            schema.cls("Umpire")

    def test_unknown_attribute(self, schema):
        with pytest.raises(SchemaViolation):
            schema.cls("Player").attribute("height")

    def test_bad_attribute_type(self):
        with pytest.raises(SchemaViolation):
            AttributeDef("x", "decimal")


class TestAttributeChecks:
    def test_type_checks(self):
        attr = AttributeDef("seed", "int")
        attr.check(5)
        with pytest.raises(SchemaViolation):
            attr.check("five")
        with pytest.raises(SchemaViolation):
            attr.check(True)  # bool is not int here

    def test_bool_check(self):
        attr = AttributeDef("flag", "bool")
        attr.check(True)
        with pytest.raises(SchemaViolation):
            attr.check(1)

    def test_float_accepts_int(self):
        AttributeDef("x", "float").check(3)


class TestAssociations:
    def test_lookup(self, schema):
        assoc = schema.association("played")
        assert assoc.source == "Player"
        assert assoc.target == "Match"

    def test_duplicate(self, schema):
        with pytest.raises(SchemaViolation):
            schema.add_association("played", "Player", "Match")

    def test_unknown_endpoint(self, schema):
        with pytest.raises(SchemaViolation):
            schema.add_association("coached", "Coach", "Player")

    def test_associations_from(self, schema):
        assert [a.name for a in schema.associations_from("Player")] == ["played"]
        assert schema.associations_from("Match") == []
