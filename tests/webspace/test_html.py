"""Lossy HTML rendering tests — the hidden-semantics phenomenon."""

import pytest

from repro.webspace.html import page_text, render_page


class TestRendering:
    def test_player_page_mentions_facts_as_prose(self, dataset):
        left_handers = [p for p in dataset.players if p.handedness == "left"]
        player = dataset.player_objects[left_handers[0].name]
        html = render_page(player)
        assert left_handers[0].name in html
        assert "left-handed" in html
        # The structured field names are LOST in the rendering.
        assert "handedness" not in html
        assert "titles" not in html

    def test_match_page(self, dataset):
        match = dataset.match_objects[dataset.matches[0].title]
        html = render_page(match)
        assert dataset.matches[0].title in html
        assert str(dataset.matches[0].year) in html

    def test_interview_page(self, dataset):
        interview = dataset.instance.objects("Interview")[0]
        html = render_page(interview)
        assert interview.get("text") in html

    def test_unknown_class_rejected(self, dataset):
        class Fake:
            class_name = "Umpire"

        with pytest.raises(ValueError):
            render_page(Fake())


class TestPageText:
    def test_strips_markup(self):
        assert page_text("<p>Hello <b>world</b></p>").split() == ["Hello", "world"]

    def test_no_angle_brackets_left(self, dataset):
        player = dataset.instance.objects("Player")[0]
        text = page_text(render_page(player))
        assert "<" not in text and ">" not in text
