"""Relational webspace compilation tests.

The key property: the relational evaluator returns *exactly* the
bindings the object-graph evaluator returns, for every query shape.
"""

import pytest

from repro.webspace.query import ConceptQuery
from repro.webspace.relational import RelationalConceptEvaluator, instance_to_catalog


@pytest.fixture(scope="module")
def evaluator(dataset):
    return RelationalConceptEvaluator(dataset.instance)


def binding_keys(bindings):
    return sorted(tuple(obj.oid for obj in b) for b in bindings)


QUERIES = [
    ConceptQuery("Player"),
    ConceptQuery("Player").where("gender", "=", "female"),
    ConceptQuery("Player").where("titles", ">", 0).where("handedness", "=", "left"),
    ConceptQuery("Player").where("name", "contains", "an"),
    ConceptQuery("Player").follow("won", "Match"),
    ConceptQuery("Player").where("titles", ">", 0).follow("won", "Match").where("round", "=", "final"),
    ConceptQuery("Player").follow("played", "Match").where("year", "=", 1999),
    ConceptQuery("Player").follow("interviewed_in", "Interview"),
]


class TestMaterialisation:
    def test_class_tables(self, dataset):
        catalog = instance_to_catalog(dataset.instance)
        assert len(catalog.table("ws_Player")) == 32
        assert len(catalog.table("ws_Match")) == 120
        assert len(catalog.table("ws_Interview")) == 120

    def test_link_tables(self, dataset):
        catalog = instance_to_catalog(dataset.instance)
        assert len(catalog.table("ws_link_played")) == 240  # 2 per match
        assert len(catalog.table("ws_link_won")) == 120

    def test_attributes_present(self, dataset):
        catalog = instance_to_catalog(dataset.instance)
        row = catalog.table("ws_Player").row(0)
        assert {"oid", "name", "gender", "handedness", "country", "seed", "titles"} <= set(row)


class TestEquivalence:
    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_same_bindings_as_graph(self, dataset, evaluator, query_index):
        query = QUERIES[query_index]
        graph_result = binding_keys(query.run(dataset.instance))
        relational_result = binding_keys(evaluator.run(query))
        assert relational_result == graph_result

    def test_distinct_roots_match(self, dataset, evaluator):
        query = ConceptQuery("Player").follow("won", "Match")
        graph_roots = sorted(p.oid for p in query.run_distinct_roots(dataset.instance))
        rel_roots = sorted(p.oid for p in evaluator.run_distinct_roots(query))
        assert rel_roots == graph_roots

    def test_validation_still_applies(self, evaluator):
        with pytest.raises(Exception):
            evaluator.run(ConceptQuery("Player").where("shoe_size", "=", 42))

    def test_returns_webspace_objects(self, dataset, evaluator):
        (first, *_rest), = evaluator.run(
            ConceptQuery("Player").where("seed", "=", 1).where("gender", "=", "female")
        )[:1]
        assert first.class_name == "Player"
        assert first.get("seed") == 1
