"""Conceptual query tests on the shared tournament dataset."""

import pytest

from repro.webspace.query import ConceptQuery, Condition
from repro.webspace.schema import SchemaViolation


class TestCondition:
    def test_operators(self):
        class FakeObj:
            def get(self, name):
                return {"titles": 2, "name": "Iva Demcourt"}[name]

        obj = FakeObj()
        assert Condition("titles", "=", 2).holds(obj)
        assert Condition("titles", ">", 1).holds(obj)
        assert Condition("titles", "<=", 2).holds(obj)
        assert Condition("titles", "!=", 3).holds(obj)
        assert Condition("name", "contains", "dem").holds(obj)
        assert not Condition("name", "contains", "xyz").holds(obj)

    def test_unknown_operator(self):
        with pytest.raises(SchemaViolation):
            Condition("titles", "~", 2)


class TestConceptQuery:
    def test_root_selection(self, dataset):
        females = ConceptQuery("Player").where("gender", "=", "female").run(dataset.instance)
        assert len(females) == 16
        assert all(b[0].get("gender") == "female" for b in females)

    def test_conjunction(self, dataset):
        champs = (
            ConceptQuery("Player")
            .where("gender", "=", "female")
            .where("titles", ">", 0)
            .run_distinct_roots(dataset.instance)
        )
        assert champs
        assert all(p.get("titles") > 0 for p in champs)

    def test_navigation(self, dataset):
        bindings = (
            ConceptQuery("Player")
            .where("titles", ">", 0)
            .follow("won", "Match")
            .where("round", "=", "final")
            .run(dataset.instance)
        )
        # Every past champion won at least one final.
        assert len(bindings) >= sum(p.titles for p in dataset.players if p.titles)
        for player, match in bindings:
            assert match.get("round") == "final"

    def test_where_applies_to_last_hop(self, dataset):
        query = (
            ConceptQuery("Player")
            .follow("won", "Match")
            .where("year", "=", 1999)
        )
        bindings = query.run(dataset.instance)
        assert all(m.get("year") == 1999 for _p, m in bindings)

    def test_distinct_roots_deduplicates(self, dataset):
        query = ConceptQuery("Player").follow("played", "Match")
        all_bindings = query.run(dataset.instance)
        distinct = query.run_distinct_roots(dataset.instance)
        assert len(distinct) <= len(all_bindings)
        oids = [p.oid for p in distinct]
        assert len(oids) == len(set(oids))

    def test_validation_unknown_attribute(self, dataset):
        with pytest.raises(SchemaViolation):
            ConceptQuery("Player").where("height", "=", 180).run(dataset.instance)

    def test_validation_wrong_association_source(self, dataset):
        with pytest.raises(SchemaViolation):
            (
                ConceptQuery("Match")
                .follow("played", "Match")
                .run(dataset.instance)
            )

    def test_validation_wrong_target_class(self, dataset):
        with pytest.raises(SchemaViolation):
            (
                ConceptQuery("Player")
                .follow("played", "Video")
                .run(dataset.instance)
            )

    def test_empty_result(self, dataset):
        result = ConceptQuery("Player").where("name", "=", "Nobody").run(dataset.instance)
        assert result == []
