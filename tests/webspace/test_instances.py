"""Webspace instance tests."""

import pytest

from repro.webspace.instances import WebspaceInstance
from repro.webspace.schema import SchemaViolation, WebspaceSchema


@pytest.fixture
def instance():
    schema = WebspaceSchema("site")
    schema.add_class("Player", name="str")
    schema.add_class("Match", title="str")
    schema.add_association("played", "Player", "Match")
    schema.add_association("best_match", "Player", "Match", to_many=False)
    return WebspaceInstance(schema)


class TestCreate:
    def test_creates_validated_object(self, instance):
        obj = instance.create("Player", name="A")
        assert obj.oid == 1
        assert obj.get("name") == "A"

    def test_missing_attribute(self, instance):
        with pytest.raises(SchemaViolation):
            instance.create("Player")

    def test_extra_attribute(self, instance):
        with pytest.raises(SchemaViolation):
            instance.create("Player", name="A", age=30)

    def test_wrong_type(self, instance):
        with pytest.raises(SchemaViolation):
            instance.create("Player", name=42)

    def test_unknown_class(self, instance):
        with pytest.raises(SchemaViolation):
            instance.create("Umpire", name="x")

    def test_get_missing_attr(self, instance):
        obj = instance.create("Player", name="A")
        with pytest.raises(KeyError):
            obj.get("age")


class TestLinks:
    def test_follow(self, instance):
        p = instance.create("Player", name="A")
        m = instance.create("Match", title="final")
        instance.link("played", p, m)
        assert [x.oid for x in instance.follow("played", p)] == [m.oid]

    def test_sources_of(self, instance):
        p = instance.create("Player", name="A")
        m = instance.create("Match", title="final")
        instance.link("played", p, m)
        assert [x.oid for x in instance.sources_of("played", m)] == [p.oid]

    def test_wrong_direction(self, instance):
        p = instance.create("Player", name="A")
        m = instance.create("Match", title="final")
        with pytest.raises(SchemaViolation):
            instance.link("played", m, p)

    def test_to_one_enforced(self, instance):
        p = instance.create("Player", name="A")
        m1 = instance.create("Match", title="x")
        m2 = instance.create("Match", title="y")
        instance.link("best_match", p, m1)
        with pytest.raises(SchemaViolation):
            instance.link("best_match", p, m2)

    def test_duplicate_link_ignored(self, instance):
        p = instance.create("Player", name="A")
        m = instance.create("Match", title="x")
        instance.link("played", p, m)
        instance.link("played", p, m)
        assert len(instance.follow("played", p)) == 1

    def test_counts(self, instance):
        instance.create("Player", name="A")
        instance.create("Player", name="B")
        instance.create("Match", title="x")
        assert instance.counts() == {"Match": 1, "Player": 2}

    def test_objects_by_class(self, instance):
        instance.create("Player", name="A")
        assert len(instance.objects("Player")) == 1
        assert instance.objects("Match") == []
