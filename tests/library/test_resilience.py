"""Serving-resilience tests: budgets, admission, breakers, the ladder.

Covers the cooperative-cancellation substrate (:mod:`repro.budget`),
the per-stage circuit breaker, the admission controller, and the
degradation ladder's ordering (stale before concept-only before
reject) plus the property that degraded results are a subset-consistent
prefix of the full ranking.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budget import DeadlineExceeded, OverloadedError, QueryBudget
from repro.dataset import build_australian_open
from repro.faults import QueryFaultPlan, StageFault
from repro.ir.collection import DocumentCollection
from repro.ir.inverted_index import InvertedIndex
from repro.ir.topn import FragmentedIndex
from repro.library import (
    AdmissionController,
    DigitalLibraryEngine,
    LibraryQuery,
    LibrarySearchService,
    ResilienceConfig,
    StageBreaker,
)

BUDGET_S = 0.05
SLOW_S = 0.2  # injected stage latency, comfortably past the budget


class FakeClock:
    """A manually-advanced monotonic clock for deterministic expiry."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def engine():
    dataset = build_australian_open(seed=7, video_shots=3)
    engine = DigitalLibraryEngine(dataset)
    engine.index_videos(limit=2)
    return engine


def resilient_service(engine, **overrides) -> LibrarySearchService:
    config = dict(
        max_concurrent=4,
        max_queue=8,
        queue_timeout=0.05,
        budget_seconds=BUDGET_S,
    )
    config.update(overrides)
    return LibrarySearchService(engine, resilience=ResilienceConfig(**config))


TEXT_QUERY = LibraryQuery(event="net_play", text="approach the net")


class TestQueryBudget:
    def test_unbounded_never_expires(self):
        budget = QueryBudget()
        budget.check("any")
        assert not budget.expired
        assert budget.remaining() is None

    def test_deadline_expiry_is_clock_driven(self):
        clock = FakeClock()
        budget = QueryBudget(seconds=1.0, clock=clock)
        budget.check("scene_scan")
        clock.advance(1.5)
        with pytest.raises(DeadlineExceeded) as info:
            budget.check("scene_scan")
        assert info.value.stage == "scene_scan"
        assert info.value.reason == "deadline"

    def test_tick_samples_clock_every_stride(self):
        clock = FakeClock()
        budget = QueryBudget(seconds=1.0, clock=clock, tick_stride=10)
        clock.advance(2.0)
        for _ in range(9):
            budget.tick("scene_scan")  # under the stride: no clock sample
        with pytest.raises(DeadlineExceeded):
            budget.tick("scene_scan")  # 10th call samples and raises

    def test_postings_charged_before_work(self):
        budget = QueryBudget(postings=100)
        budget.charge_postings(60)
        with pytest.raises(DeadlineExceeded) as info:
            budget.charge_postings(60)
        assert info.value.reason == "postings"
        assert budget.postings_used == 120  # charged even though rejected

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryBudget(seconds=-1)
        with pytest.raises(ValueError):
            QueryBudget(postings=-1)
        with pytest.raises(ValueError):
            QueryBudget(tick_stride=0)


class TestTopNBudget:
    def build(self) -> FragmentedIndex:
        collection = DocumentCollection()
        for i in range(8):
            collection.add(f"doc{i}", "net volley rally " * (i + 1))
        return FragmentedIndex(InvertedIndex(collection))

    def test_expired_budget_stops_scan(self):
        fragmented = self.build()
        clock = FakeClock()
        budget = QueryBudget(seconds=1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded) as info:
            fragmented.search(["net", "vollei"], n=3, budget=budget)
        assert info.value.stage == "text_topn"

    def test_live_budget_is_harmless(self):
        fragmented = self.build()
        with_budget = fragmented.search(["net"], n=3, budget=QueryBudget(seconds=30))
        without = fragmented.search(["net"], n=3)
        assert with_budget.hits == without.hits


class TestEngineBudget:
    def test_postings_budget_rejects_before_scanning(self, engine):
        budget = QueryBudget(postings=1)  # any text scan costs more
        with pytest.raises(DeadlineExceeded) as info:
            engine.search(TEXT_QUERY, budget=budget)
        assert info.value.reason == "postings"
        assert info.value.stage == "text_topn"

    def test_expiry_mid_pipeline_names_the_stage(self, engine):
        clock = FakeClock()
        budget = QueryBudget(seconds=1.0, clock=clock)
        engine.stage_hook = lambda stage: (
            clock.advance(5.0) if stage == "scene_scan" else None
        )
        try:
            with pytest.raises(DeadlineExceeded) as info:
                engine.search(TEXT_QUERY, budget=budget)
        finally:
            engine.stage_hook = None
        assert info.value.stage == "scene_scan"

    def test_partial_results_ride_the_exception(self, engine):
        full = engine.search(TEXT_QUERY)
        clock = FakeClock()
        budget = QueryBudget(seconds=1.0, clock=clock)
        engine.stage_hook = lambda stage: (
            clock.advance(5.0) if stage == "rank_merge" else None
        )
        try:
            with pytest.raises(DeadlineExceeded) as info:
                engine.search(TEXT_QUERY, budget=budget)
        finally:
            engine.stage_hook = None
        # By rank-merge every scene was accumulated: the partial state
        # is the complete ranked answer.
        assert info.value.partial == full

    def test_skip_stages_equals_stripped_query(self, engine):
        stripped = LibraryQuery(event=TEXT_QUERY.event)
        assert engine.search(
            TEXT_QUERY, skip_stages=frozenset({"text_topn"})
        ) == engine.search(stripped)


class TestAdmissionController:
    def test_admits_up_to_capacity(self):
        controller = AdmissionController(2, 4, 0.05)
        with controller.admit():
            with controller.admit():
                assert controller.snapshot()["active"] == 2
        assert controller.snapshot()["active"] == 0
        assert controller.admitted == 2

    def test_queue_full_rejects_immediately(self):
        controller = AdmissionController(1, 0, 10.0)
        with controller.admit():
            started = time.perf_counter()
            with pytest.raises(OverloadedError) as info:
                with controller.admit():
                    pass  # pragma: no cover
            assert info.value.reason == "queue_full"
            assert time.perf_counter() - started < 1.0  # no waiting
        assert controller.rejected == {"queue_full": 1}

    def test_queue_timeout_rejects_after_waiting(self):
        controller = AdmissionController(1, 4, 0.03)
        release = threading.Event()
        holding = threading.Event()

        def holder():
            with controller.admit():
                holding.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=holder)
        thread.start()
        assert holding.wait(timeout=5)
        with pytest.raises(OverloadedError) as info:
            with controller.admit():
                pass  # pragma: no cover
        assert info.value.reason == "queue_timeout"
        release.set()
        thread.join(timeout=5)
        assert controller.snapshot()["queued"] == 0  # no dead ticket left

    def test_fifo_order(self):
        controller = AdmissionController(1, 8, 5.0)
        admitted_order: list[str] = []
        release = threading.Event()
        holding = threading.Event()
        queued = threading.Event()

        def holder():
            with controller.admit():
                holding.set()
                release.wait(timeout=5)

        def waiter(name: str, ready: threading.Event | None) -> None:
            with controller.admit():
                admitted_order.append(name)
            if ready is not None:
                ready.set()

        hold = threading.Thread(target=holder)
        hold.start()
        assert holding.wait(timeout=5)
        first = threading.Thread(target=waiter, args=("first", None))
        first.start()
        while controller.snapshot()["queued"] < 1:
            time.sleep(0.001)
        second = threading.Thread(target=waiter, args=("second", queued))
        second.start()
        while controller.snapshot()["queued"] < 2:
            time.sleep(0.001)
        release.set()
        for thread in (hold, first, second):
            thread.join(timeout=5)
        assert admitted_order == ["first", "second"]


class TestStageBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = StageBreaker(failure_threshold=3, cooldown=1.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_success(0.01)  # success resets the streak
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = StageBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success(0.01)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = StageBreaker(failure_threshold=3, cooldown=1.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_abandoned_probe_is_replaced(self):
        clock = FakeClock()
        breaker = StageBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()  # probe that never resolves
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.allow()  # replacement probe

    def test_latency_threshold_trips_on_ewma(self):
        clock = FakeClock()
        breaker = StageBreaker(
            failure_threshold=100, latency_threshold=0.1, alpha=1.0, clock=clock
        )
        breaker.record_success(0.05)
        assert breaker.state == "closed"
        breaker.record_success(0.5)
        assert breaker.state == "open"


class TestDegradationLadder:
    def test_stale_before_concept_only(self, engine):
        """Rung 1: a previous-generation cache entry wins over re-evaluation."""
        service = resilient_service(engine)
        warm = service.search(TEXT_QUERY)
        generation = warm.generation
        with service.write() as e:
            e.indexer.generation += 1  # a commit, as the cache key sees it
        assert service.generation == generation + 1
        plan = QueryFaultPlan.latency(["text_topn"], SLOW_S)
        with plan.install(engine):
            served = service.search(TEXT_QUERY)
        assert served.stale and served.cache_hit and not served.degraded
        assert served.generation == generation
        assert served.results == warm.results
        assert service.stats().stale_served == 1

    def test_concept_only_when_no_stale_entry(self, engine):
        """Rung 2: no cache to fall back on -> labeled partial evaluation."""
        service = resilient_service(engine)
        plan = QueryFaultPlan.latency(["text_topn"], SLOW_S)
        with plan.install(engine):
            served = service.search(TEXT_QUERY, bypass_cache=True)
        assert served.degraded and not served.stale and not served.rejected
        assert served.skipped_stages == ("text_topn",)
        stripped = LibraryQuery(event=TEXT_QUERY.event)
        assert served.results == engine.search(stripped)
        assert service.stats().degraded_served == 1

    def test_reject_when_ladder_disabled(self, engine):
        """Rung 3: with both fallbacks off, the deadline is a rejection."""
        service = resilient_service(
            engine, stale_serving=False, degraded_serving=False
        )
        plan = QueryFaultPlan.latency(["text_topn"], SLOW_S)
        with plan.install(engine):
            served = service.search(TEXT_QUERY, bypass_cache=True)
        assert served.rejected and served.rejection == "deadline"
        assert served.results == []
        stats = service.stats()
        assert stats.shed == {"deadline": 1}
        assert stats.queries == 0  # rejections are not served queries

    def test_stage_error_walks_the_ladder_too(self, engine):
        service = resilient_service(engine)
        plan = QueryFaultPlan.failing(["text_topn"], error=StageFault, times=1)
        with plan.install(engine):
            served = service.search(TEXT_QUERY, bypass_cache=True)
        assert served.degraded
        assert "text_topn" in served.skipped_stages

    def test_breaker_trips_then_skips_proactively(self, engine):
        service = resilient_service(
            engine, breaker_failure_threshold=2, breaker_cooldown=60.0
        )
        plan = QueryFaultPlan.latency(["text_topn"], SLOW_S)
        with plan.install(engine):
            for _ in range(2):
                service.search(TEXT_QUERY, bypass_cache=True)
            assert service.stats().breaker_states["text_topn"] == "open"
            started = time.perf_counter()
            served = service.search(TEXT_QUERY, bypass_cache=True)
            elapsed = time.perf_counter() - started
        assert served.degraded and served.skipped_stages == ("text_topn",)
        # Proactive skip: no fault was paid, no budget burned.
        assert elapsed < SLOW_S
        assert service.stats().breaker_trips["text_topn"] == 1

    def test_breaker_probe_recloses_after_fault_clears(self, engine):
        service = resilient_service(
            engine, breaker_failure_threshold=1, breaker_cooldown=0.01
        )
        plan = QueryFaultPlan.latency(["text_topn"], SLOW_S)
        with plan.install(engine):
            service.search(TEXT_QUERY, bypass_cache=True)
        assert service.stats().breaker_states["text_topn"] == "open"
        time.sleep(0.02)  # past the cooldown; the fault is gone
        served = service.search(TEXT_QUERY, bypass_cache=True)
        assert not served.degraded and not served.rejected
        assert service.stats().breaker_states["text_topn"] == "closed"

    def test_admission_rejection_serves_cache_then_sheds(self, engine):
        service = resilient_service(engine, max_concurrent=1, max_queue=0)
        warm = service.search(TEXT_QUERY)
        release = threading.Event()
        inside = threading.Event()

        def hog(stage):
            if stage == "concept_filter":
                inside.set()
                release.wait(timeout=5)

        engine.stage_hook = hog
        blocker = threading.Thread(
            target=service.search,
            args=(LibraryQuery(event="rally"),),
            kwargs={"bypass_cache": True, "budget": QueryBudget(seconds=10)},
        )
        blocker.start()
        try:
            assert inside.wait(timeout=5)
            # Cached query: served unadmitted from the cache, labeled fresh.
            served = service.search(TEXT_QUERY)
            assert served.cache_hit and not served.stale
            assert served.results == warm.results
            # Uncachable query: shed with the admission reason.
            shed = service.search(LibraryQuery(text="nowhere"), bypass_cache=True)
            assert shed.rejected and shed.rejection == "queue_full"
        finally:
            release.set()
            blocker.join(timeout=5)
            engine.stage_hook = None


EVENTS = ["net_play", "rally", "service", "baseline_play"]


class TestDegradedPrefixProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        event=st.sampled_from(EVENTS),
        text=st.sampled_from(["approach the net", "champion wins", "second serve"]),
        k=st.integers(min_value=1, max_value=6),
    )
    def test_degraded_is_prefix_of_its_own_full_ranking(
        self, engine, event, text, k
    ):
        """Degraded evaluation == the stripped query's evaluation, and a
        smaller top-N is exactly a prefix of a larger one."""
        query = LibraryQuery(event=event, text=text, top_n=k)
        degraded = engine.search(query, skip_stages=frozenset({"text_topn"}))
        stripped = LibraryQuery(event=event, top_n=k)
        assert degraded == engine.search(stripped)

        wide = LibraryQuery(event=event, text=text, top_n=50)
        full = engine.search(wide, skip_stages=frozenset({"text_topn"}))
        assert degraded == full[:k]

        # Degraded results never invent scenes: subset of the full
        # (text-scored) evaluation's scene identities.
        full_keys = {r.scene_key() for r in engine.search(wide)}
        assert {r.scene_key() for r in degraded} <= full_keys
