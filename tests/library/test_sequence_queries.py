"""Event sequence query tests (first THEN then WITHIN n)."""

import pytest

from repro.dataset import build_australian_open
from repro.library import DigitalLibraryEngine, LibraryQuery, parse_query


@pytest.fixture(scope="module")
def engine():
    dataset = build_australian_open(seed=7, video_shots=6)
    engine = DigitalLibraryEngine(dataset)
    engine.index_videos(limit=3)
    engine.build_relational()
    return engine


class TestQueryValidation:
    def test_event_and_sequence_exclusive(self):
        with pytest.raises(ValueError):
            LibraryQuery(event="rally", sequence=("service", "net_play"))

    def test_within_validated(self):
        with pytest.raises(ValueError):
            LibraryQuery(sequence=("a", "b"), within=-1)

    def test_pair_shape(self):
        with pytest.raises(ValueError):
            LibraryQuery(sequence=("a", "b", "c"))


class TestParserSequence:
    def test_then_within(self):
        query = parse_query("SCENES WHERE event = service THEN net_play WITHIN 80")
        assert query.sequence == ("service", "net_play")
        assert query.within == 80
        assert query.event is None

    def test_then_default_within(self):
        query = parse_query("SCENES WHERE event = rally THEN service")
        assert query.within == 100

    def test_duplicate_rejected(self):
        from repro.library.parser import QuerySyntaxError

        with pytest.raises(QuerySyntaxError):
            parse_query("SCENES WHERE event = a THEN b AND event = c")


class TestSequenceSearch:
    def test_sequences_found_or_empty(self, engine):
        """Whatever sequences come back satisfy the temporal constraint."""
        query = LibraryQuery(sequence=("service", "rally"), within=200)
        results = engine.search(query)
        for scene in results:
            assert scene.event_label == "service->rally"
            assert scene.stop > scene.start

    def test_ordering_matters(self, engine):
        """(a THEN b) and (b THEN a) are different queries."""
        forward = engine.search(LibraryQuery(sequence=("service", "rally"), within=500))
        backward = engine.search(LibraryQuery(sequence=("rally", "service"), within=500))
        forward_keys = {(r.video_name, r.start, r.stop) for r in forward}
        backward_keys = {(r.video_name, r.start, r.stop) for r in backward}
        assert forward_keys.isdisjoint(backward_keys) or not (forward or backward)

    def test_within_bounds_results(self, engine):
        wide = engine.search(LibraryQuery(sequence=("service", "rally"), within=1000))
        narrow = engine.search(LibraryQuery(sequence=("service", "rally"), within=5))
        assert len(narrow) <= len(wide)

    def test_relational_parity(self, engine):
        for sequence in (("service", "rally"), ("rally", "net_play"), ("service", "net_play")):
            query = LibraryQuery(sequence=sequence, within=300)
            assert engine.search_relational(query) == engine.search(query)

    def test_gap_constraint_holds(self, engine):
        """Every returned pair's events actually exist with the right gap."""
        query = LibraryQuery(sequence=("service", "rally"), within=300)
        model = engine.indexer.model
        for scene in engine.search(query):
            video = next(v for v in model.videos if v.name == scene.video_name)
            firsts = model.events_of(video_id=video.video_id, label="service")
            thens = model.events_of(video_id=video.video_id, label="rally")
            assert any(
                f.start == scene.start
                and t.stop == scene.stop
                and 0 <= t.start - f.stop <= 300
                for f in firsts
                for t in thens
            )
