"""_ReadWriteLock tests: writer preference, timeouts, interrupted waits."""

import threading
import time

import pytest

from repro.budget import LockTimeout
from repro.library.service import _ReadWriteLock


def test_readers_share_writers_exclude():
    lock = _ReadWriteLock()
    entered = threading.Barrier(3, timeout=5)

    def reader():
        with lock.read():
            entered.wait()  # all three readers inside together

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5)
    assert not any(t.is_alive() for t in threads)


def test_writer_preference_blocks_new_readers():
    """A waiting writer bars later readers until it has run."""
    lock = _ReadWriteLock()
    order: list[str] = []
    reader_inside = threading.Event()
    release_reader = threading.Event()

    def first_reader():
        with lock.read():
            reader_inside.set()
            release_reader.wait(timeout=5)
        order.append("reader1-out")

    def writer():
        with lock.write():
            order.append("writer")

    def late_reader():
        with lock.read():
            order.append("reader2")

    r1 = threading.Thread(target=first_reader)
    r1.start()
    assert reader_inside.wait(timeout=5)
    w = threading.Thread(target=writer)
    w.start()
    while lock._writers_waiting == 0:  # writer is queued
        time.sleep(0.001)
    r2 = threading.Thread(target=late_reader)
    r2.start()
    time.sleep(0.05)
    assert "reader2" not in order  # barred by the waiting writer
    release_reader.set()
    for t in (r1, w, r2):
        t.join(timeout=5)
    assert order.index("writer") < order.index("reader2")


def test_read_timeout_raises_lock_timeout():
    lock = _ReadWriteLock()
    writer_in = threading.Event()
    release = threading.Event()

    def writer():
        with lock.write():
            writer_in.set()
            release.wait(timeout=5)

    t = threading.Thread(target=writer)
    t.start()
    assert writer_in.wait(timeout=5)
    with pytest.raises(LockTimeout):
        with lock.read(timeout=0.02):
            pass  # pragma: no cover
    release.set()
    t.join(timeout=5)


def test_write_timeout_raises_and_unblocks_readers():
    lock = _ReadWriteLock()
    reader_in = threading.Event()
    release = threading.Event()

    def reader():
        with lock.read():
            reader_in.set()
            release.wait(timeout=5)

    t = threading.Thread(target=reader)
    t.start()
    assert reader_in.wait(timeout=5)
    with pytest.raises(LockTimeout):
        with lock.write(timeout=0.02):
            pass  # pragma: no cover
    # The failed writer left no barrier: a new reader enters immediately.
    assert lock._writers_waiting == 0
    with lock.read(timeout=0.5):
        pass
    release.set()
    t.join(timeout=5)


def test_interrupted_writer_wait_does_not_leak_barrier():
    """Regression: an exception inside Condition.wait() used to leave
    ``_writers_waiting`` incremented forever, starving every future
    reader even though no writer existed any more."""
    lock = _ReadWriteLock()
    reader_in = threading.Event()
    release = threading.Event()

    def reader():
        with lock.read():
            reader_in.set()
            release.wait(timeout=5)

    t = threading.Thread(target=reader)
    t.start()
    assert reader_in.wait(timeout=5)

    original_wait = lock._cond.wait

    def interrupted_wait(timeout=None):
        raise KeyboardInterrupt("simulated signal during wait")

    lock._cond.wait = interrupted_wait
    try:
        with pytest.raises(KeyboardInterrupt):
            with lock.write():
                pass  # pragma: no cover
    finally:
        lock._cond.wait = original_wait

    assert lock._writers_waiting == 0
    release.set()
    t.join(timeout=5)
    # Future readers and writers proceed normally.
    with lock.read(timeout=0.5):
        pass
    with lock.write(timeout=0.5):
        pass


def test_no_lost_wakeups_under_churn():
    """Readers and writers hammer the lock; everyone finishes."""
    lock = _ReadWriteLock()
    counter = {"value": 0}

    def reader():
        for _ in range(50):
            with lock.read():
                _ = counter["value"]

    def writer():
        for _ in range(20):
            with lock.write():
                counter["value"] += 1

    threads = [threading.Thread(target=reader) for _ in range(4)]
    threads += [threading.Thread(target=writer) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads)
    assert counter["value"] == 40
    assert lock._writers_waiting == 0
    assert not lock._writer_active
    assert lock._readers == 0
