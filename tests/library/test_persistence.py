"""Meta-index persistence tests."""

import pytest

from repro.core.model import CobraModel
from repro.library.persistence import (
    catalog_to_model,
    catalog_to_runner_state,
    load_model,
    load_model_with_state,
    model_to_catalog,
    runner_state_to_catalog,
    save_model,
)
from repro.storage.catalog import Catalog


@pytest.fixture
def model():
    model = CobraModel()
    video = model.add_video("v1", fps=25.0, n_frames=300, match_id=4)
    shot = model.add_shot(video.video_id, 0, 150, "tennis", {"entropy": 3.1})
    other = model.add_shot(video.video_id, 150, 300, "audience")
    obj = model.add_object(
        shot.shot_id,
        "player",
        [(5.0, 6.0), None, (7.25, 8.5)],
        dominant_color=(10.0, 20.0, 30.0),
        mean_area=44.0,
    )
    model.add_event(shot.shot_id, "rally", 10, 100, confidence=0.8, object_id=obj.object_id)
    model.add_event(other.shot_id, "net_play", 200, 240)
    return model


class TestCatalogMapping:
    def test_tables_present(self, model):
        catalog = model_to_catalog(model)
        assert set(catalog.table_names) == {
            "videos",
            "shots",
            "shot_features",
            "objects",
            "trajectories",
            "events",
        }

    def test_trajectory_rows(self, model):
        catalog = model_to_catalog(model)
        assert len(catalog.table("trajectories")) == 3

    def test_round_trip_counts(self, model):
        loaded = catalog_to_model(model_to_catalog(model))
        assert loaded.counts() == model.counts()

    def test_round_trip_content(self, model):
        loaded = catalog_to_model(model_to_catalog(model))
        assert loaded.videos[0].match_id == 4
        obj = loaded.objects[0]
        assert obj.trajectory == ((5.0, 6.0), None, (7.25, 8.5))
        assert obj.dominant_color == (10.0, 20.0, 30.0)
        rally = next(e for e in loaded.events if e.label == "rally")
        assert rally.confidence == pytest.approx(0.8)
        assert rally.object_id == obj.object_id
        netp = next(e for e in loaded.events if e.label == "net_play")
        assert netp.object_id is None

    def test_shot_features_round_trip(self, model):
        loaded = catalog_to_model(model_to_catalog(model))
        tennis = next(s for s in loaded.shots if s.category == "tennis")
        assert tennis.features == {"entropy": 3.1}


class TestMatchIdNullability:
    """Regression: match_id=None must come back as None, not a sentinel."""

    @pytest.mark.parametrize("match_id", [None, 0, 4, -1])
    def test_match_id_round_trips_exactly(self, match_id, tmp_path):
        model = CobraModel()
        model.add_video("v", fps=25.0, n_frames=10, match_id=match_id)
        loaded = catalog_to_model(model_to_catalog(model))
        assert loaded.videos[0].match_id == match_id
        path = tmp_path / "m.json"
        save_model(model, path)
        assert load_model(path).videos[0].match_id == match_id

    def test_none_is_not_minus_one(self):
        model = CobraModel()
        model.add_video("v", fps=25.0, n_frames=10, match_id=None)
        loaded = catalog_to_model(model_to_catalog(model))
        assert loaded.videos[0].match_id is None

    def test_legacy_minus_one_sentinel_reads_as_none(self):
        """Files written before the has_match flag used -1 for None."""
        catalog = Catalog()
        videos = catalog.create_table(
            "videos",
            {
                "video_id": "int",
                "name": "str",
                "fps": "float",
                "n_frames": "int",
                "match_id": "int",
            },
        )
        videos.append(
            {"video_id": 1, "name": "old", "fps": 25.0, "n_frames": 9, "match_id": -1}
        )
        videos.append(
            {"video_id": 2, "name": "new", "fps": 25.0, "n_frames": 9, "match_id": 3}
        )
        for name, schema in (
            ("shots", {"shot_id": "int", "video_id": "int", "start": "int", "stop": "int", "category": "str"}),
            ("shot_features", {"shot_id": "int", "name": "str", "value": "float"}),
            ("objects", {"object_id": "int", "shot_id": "int", "label": "str", "r": "float", "g": "float", "b": "float", "mean_area": "float"}),
            ("trajectories", {"object_id": "int", "frame": "int", "found": "bool", "row": "float", "col": "float"}),
            ("events", {"event_id": "int", "shot_id": "int", "label": "str", "start": "int", "stop": "int", "confidence": "float", "object_id": "int"}),
        ):
            catalog.create_table(name, schema)
        loaded = catalog_to_model(catalog)
        by_name = {v.name: v for v in loaded.videos}
        assert by_name["old"].match_id is None
        assert by_name["new"].match_id == 3


class TestRunnerStatePersistence:
    STATE = {
        "consecutive_failures": {"tennis": 2, "shape": 1},
        "quarantined_version": {"tennis": 5},
    }

    def test_round_trip_via_catalog(self):
        catalog = Catalog()
        runner_state_to_catalog(self.STATE, catalog)
        assert catalog_to_runner_state(catalog) == {
            "consecutive_failures": {"tennis": 2, "shape": 1},
            "quarantined_version": {"tennis": 5},
        }

    def test_round_trip_via_file(self, model, tmp_path):
        path = tmp_path / "m.json"
        save_model(model, path, runner_state=self.STATE)
        loaded, state = load_model_with_state(path)
        assert loaded.counts() == model.counts()
        assert state["quarantined_version"] == {"tennis": 5}
        assert state["consecutive_failures"] == {"tennis": 2, "shape": 1}

    def test_absent_state_loads_as_none(self, model, tmp_path):
        path = tmp_path / "m.json"
        save_model(model, path)
        _loaded, state = load_model_with_state(path)
        assert state is None

    def test_plain_load_model_ignores_state(self, model, tmp_path):
        path = tmp_path / "m.json"
        save_model(model, path, runner_state=self.STATE)
        assert load_model(path).counts() == model.counts()


class TestFileRoundTrip:
    def test_save_load(self, model, tmp_path):
        path = tmp_path / "library.json"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.counts() == model.counts()

    def test_pipeline_output_round_trips(self, broadcast, tmp_path):
        from repro.grammar.tennis import build_tennis_fde

        clip, _truth = broadcast
        fde = build_tennis_fde()
        fde.index_video(clip.subclip(0, min(len(clip), 150), name="persist_rt"))
        path = tmp_path / "metaindex.json"
        save_model(fde.model, path)
        loaded = load_model(path)
        assert loaded.counts() == fde.model.counts()
        original_events = sorted((e.label, e.start, e.stop) for e in fde.model.events)
        loaded_events = sorted((e.label, e.start, e.stop) for e in loaded.events)
        assert loaded_events == original_events
