"""Meta-index persistence tests."""

import pytest

from repro.core.model import CobraModel
from repro.library.persistence import (
    catalog_to_model,
    load_model,
    model_to_catalog,
    save_model,
)


@pytest.fixture
def model():
    model = CobraModel()
    video = model.add_video("v1", fps=25.0, n_frames=300, match_id=4)
    shot = model.add_shot(video.video_id, 0, 150, "tennis", {"entropy": 3.1})
    other = model.add_shot(video.video_id, 150, 300, "audience")
    obj = model.add_object(
        shot.shot_id,
        "player",
        [(5.0, 6.0), None, (7.25, 8.5)],
        dominant_color=(10.0, 20.0, 30.0),
        mean_area=44.0,
    )
    model.add_event(shot.shot_id, "rally", 10, 100, confidence=0.8, object_id=obj.object_id)
    model.add_event(other.shot_id, "net_play", 200, 240)
    return model


class TestCatalogMapping:
    def test_tables_present(self, model):
        catalog = model_to_catalog(model)
        assert set(catalog.table_names) == {
            "videos",
            "shots",
            "shot_features",
            "objects",
            "trajectories",
            "events",
        }

    def test_trajectory_rows(self, model):
        catalog = model_to_catalog(model)
        assert len(catalog.table("trajectories")) == 3

    def test_round_trip_counts(self, model):
        loaded = catalog_to_model(model_to_catalog(model))
        assert loaded.counts() == model.counts()

    def test_round_trip_content(self, model):
        loaded = catalog_to_model(model_to_catalog(model))
        assert loaded.videos[0].match_id == 4
        obj = loaded.objects[0]
        assert obj.trajectory == ((5.0, 6.0), None, (7.25, 8.5))
        assert obj.dominant_color == (10.0, 20.0, 30.0)
        rally = next(e for e in loaded.events if e.label == "rally")
        assert rally.confidence == pytest.approx(0.8)
        assert rally.object_id == obj.object_id
        netp = next(e for e in loaded.events if e.label == "net_play")
        assert netp.object_id is None

    def test_shot_features_round_trip(self, model):
        loaded = catalog_to_model(model_to_catalog(model))
        tennis = next(s for s in loaded.shots if s.category == "tennis")
        assert tennis.features == {"entropy": 3.1}


class TestFileRoundTrip:
    def test_save_load(self, model, tmp_path):
        path = tmp_path / "library.json"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.counts() == model.counts()

    def test_pipeline_output_round_trips(self, broadcast, tmp_path):
        from repro.grammar.tennis import build_tennis_fde

        clip, _truth = broadcast
        fde = build_tennis_fde()
        fde.index_video(clip.subclip(0, min(len(clip), 150), name="persist_rt"))
        path = tmp_path / "metaindex.json"
        save_model(fde.model, path)
        loaded = load_model(path)
        assert loaded.counts() == fde.model.counts()
        original_events = sorted((e.label, e.start, e.stop) for e in fde.model.events)
        loaded_events = sorted((e.label, e.start, e.stop) for e in loaded.events)
        assert loaded_events == original_events
