"""Relational search path tests: bit-identical to the object-graph path."""

import pytest

from repro.dataset import build_australian_open
from repro.library import DigitalLibraryEngine, LibraryQuery


@pytest.fixture(scope="module")
def engine():
    dataset = build_australian_open(seed=7, video_shots=6)
    engine = DigitalLibraryEngine(dataset)
    engine.index_videos(limit=3)
    engine.build_relational()
    return engine


QUERIES = [
    LibraryQuery(),
    LibraryQuery(event="net_play"),
    LibraryQuery(event="rally"),
    LibraryQuery(player={"gender": "female"}),
    LibraryQuery(player={"gender": "female"}, event="service"),
    LibraryQuery(player={"handedness": "left", "past_winner": True}, event="net_play"),
    LibraryQuery(event="net_play", text="approach the net"),
    LibraryQuery(event="rally", top_n=2),
]


class TestEquivalence:
    @pytest.mark.parametrize("index", range(len(QUERIES)))
    def test_matches_object_path(self, engine, index):
        query = QUERIES[index]
        assert engine.search_relational(query) == engine.search(query)


class TestLifecycle:
    def test_requires_build(self):
        dataset = build_australian_open(seed=8, video_shots=6)
        fresh = DigitalLibraryEngine(dataset)
        with pytest.raises(RuntimeError):
            fresh.search_relational(LibraryQuery())

    def test_snapshot_semantics(self, engine):
        """The relational path reads the snapshot, not the live model."""
        results_before = engine.search_relational(LibraryQuery())
        # Index one more video: object path sees it, snapshot does not.
        plan = engine.dataset.video_plans[3]
        engine.indexer.index_plan(plan)
        assert len(engine.search(LibraryQuery())) == len(results_before) + 1
        assert len(engine.search_relational(LibraryQuery())) == len(results_before)
        # After a refresh the paths agree again.
        engine.build_relational()
        assert engine.search_relational(LibraryQuery()) == engine.search(LibraryQuery())
