"""End-to-end tests of replicated shard serving (PR 7).

Each shard is a replica group of byte-identical workers; these tests
exercise the replication contracts against live processes:

- healthy replicated serving stays byte-identical to the unsharded
  service, and health rows carry per-replica sub-rows;
- a killed replica costs **zero coverage** — reads fail over to the
  sibling within the request budget — and the rebuilt replica rejoins
  rotation only after its generation aligns with the group's;
- writes fan out to every live replica behind a group commit barrier,
  and ``index_videos`` reports typed per-shard outcomes instead of
  raising away partial progress;
- the hedged re-issue path: the reservoir-empty trigger (the
  ``percentile_or`` fallback), losing-reply discard, and hedging
  racing failover under a replica kill;
- ``close()`` is idempotent and race-free against the background
  prober's restarts.

Spawns are expensive (every worker indexes its slice from scratch), so
the suite keeps the catalog tiny and shares services where it can.
"""

from __future__ import annotations

import time

import pytest

from repro.dataset.build import build_australian_open
from repro.faults import ShardFaultPlan
from repro.library.engine import DigitalLibraryEngine
from repro.library.query import LibraryQuery
from repro.library.service import LibrarySearchService
from repro.library.sharding import (
    BatchIndexResult,
    ShardedSearchService,
    ShardingConfig,
    format_sharded_stats,
    shard_of,
)

N_VIDEOS = 4

MIX = [
    LibraryQuery(top_n=100),
    LibraryQuery(event="rally"),
    LibraryQuery(event="net_play", text="approach the net"),
    LibraryQuery(player={"gender": "female"}, event="service"),
]


@pytest.fixture(scope="module")
def dataset():
    return build_australian_open(seed=0)


@pytest.fixture(scope="module")
def names(dataset):
    return [plan.name for plan in dataset.video_plans[:N_VIDEOS]]


@pytest.fixture(scope="module")
def reference(dataset, names):
    """Unsharded results for the query mix — the byte-identity baseline."""
    engine = DigitalLibraryEngine(dataset)
    service = LibrarySearchService(engine)
    for name in names:
        service.index_plan(engine.indexer.plan_named(name))
    return {id(query): service.search(query).results for query in MIX}


def _wait_all_in_rotation(service, timeout=120.0):
    """Poll until every replica is alive and back in rotation."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        rows = service.stats().shards
        if all(rep.alive and rep.in_rotation for row in rows for rep in row.replicas):
            return True
        time.sleep(0.1)
    return False


@pytest.fixture(scope="module")
def replicated(names):
    config = ShardingConfig(n_shards=2, replication=2, budget_seconds=30.0)
    with ShardedSearchService(names, seed=0, config=config) as service:
        yield service


class TestReplicatedHealthyServing:
    def test_results_byte_identical_to_unsharded(self, replicated, reference):
        for query in MIX:
            served = replicated.search(query, bypass_cache=True)
            assert served.coverage.complete, served.coverage
            assert served.results == reference[id(query)]
            assert not served.stale and not served.rejected

    def test_stats_carry_replica_rows(self, replicated):
        stats = replicated.stats()
        assert len(stats.shards) == 2
        for row in stats.shards:
            assert row.alive and row.breaker_state == "closed"
            assert len(row.replicas) == 2
            for rep in row.replicas:
                assert rep.alive and rep.in_rotation
                assert rep.breaker_state == "closed"
                # byte-identical siblings: every replica holds the slice
                assert rep.generation == row.generation == N_VIDEOS // 2
        rendered = format_sharded_stats(stats)
        assert "[0.0]" in rendered and "[1.1]" in rendered
        assert "failovers" in rendered

    def test_generation_vector_is_group_level(self, replicated):
        served = replicated.search(MIX[0])
        assert served.generations == replicated.generations
        assert len(served.generations) == 2  # one entry per group, not per worker


class TestWriteFanout:
    def test_batch_commits_on_every_replica(self, dataset, names):
        extra = [plan.name for plan in dataset.video_plans[N_VIDEOS : N_VIDEOS + 2]]
        config = ShardingConfig(n_shards=2, replication=2, budget_seconds=30.0)
        with ShardedSearchService(names, seed=0, config=config) as service:
            before = service.generations
            result = service.index_videos(extra)
            assert isinstance(result, BatchIndexResult)
            assert result.ok and result.failed_shards == ()
            assert set(result.assignments) == set(extra)
            for name in extra:
                assert result.assignments[name] == shard_of(name, 2)
            for sid, outcome in result.outcomes.items():
                assert outcome.committed
                assert outcome.replicas_committed == (0, 1)
                assert outcome.replicas_failed == ()
                assert outcome.generation is not None
            after = service.generations
            assert sum(after) == sum(before) + len(extra)
            # the commit barrier leaves every sibling generation-aligned
            for row in service.stats().shards:
                for rep in row.replicas:
                    assert rep.generation == row.generation

    def test_index_video_routes_to_the_home_shard(self, dataset, names):
        extra = dataset.video_plans[N_VIDEOS].name
        config = ShardingConfig(n_shards=2, replication=2, budget_seconds=30.0)
        with ShardedSearchService(names, seed=0, config=config) as service:
            before = service.generations
            shard_id = service.index_video(extra)
            assert shard_id == shard_of(extra, 2)
            after = service.generations
            assert after[shard_id] == before[shard_id] + 1

    def test_down_group_yields_typed_outcome_not_an_exception(self, dataset, names):
        """replication=1, no restarts: a dead group reports ``"down"``."""
        plan = ShardFaultPlan.dead(shard=0, after=0)
        config = ShardingConfig(
            n_shards=2,
            replication=1,
            budget_seconds=5.0,
            restart_dead=False,
            quarantine_cooldown=60.0,
        )
        extra = [plan_.name for plan_ in dataset.video_plans[N_VIDEOS : N_VIDEOS + 4]]
        with ShardedSearchService(
            names, seed=0, fault_plan=plan, config=config
        ) as service:
            service.search(MIX[0], bypass_cache=True)  # delivers the kill
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and service.stats().shards[0].alive:
                time.sleep(0.05)
            assert not service.stats().shards[0].alive
            result = service.index_videos(extra)
            assert not result.ok
            by_shard = {shard_of(name, 2) for name in extra}
            assert 0 in by_shard and 1 in by_shard  # both groups targeted
            assert result.outcomes[0].status == "down"
            assert not result.outcomes[0].committed
            assert result.outcomes[1].committed  # partial progress stands
            assert result.failed_shards == (0,)


class TestReadFailover:
    def test_replica_kill_costs_no_coverage_then_rejoins(self, names, reference):
        plan = ShardFaultPlan.dead(shard=0, replica=0, after=0)
        config = ShardingConfig(
            n_shards=2,
            replication=2,
            budget_seconds=30.0,
            quarantine_cooldown=0.2,
            probe_interval=0.05,
        )
        with ShardedSearchService(
            names, seed=0, fault_plan=plan, config=config
        ) as service:
            # Drive queries until the addressed replica has died; every
            # answer must stay complete (sibling failover) throughout.
            deadline = time.monotonic() + 30.0
            dead_seen = False
            while time.monotonic() < deadline and not dead_seen:
                for query in MIX:
                    served = service.search(query, bypass_cache=True)
                    assert served.coverage.complete, served.coverage
                    assert not served.rejected
                    assert served.results == reference[id(query)]
                row = service.stats().shards[0]
                dead_seen = any(
                    not rep.alive or rep.restarts > 0 for rep in row.replicas
                )
            assert dead_seen, "kill fault never delivered"
            assert service.stats().failovers >= 1

            # Rebuilt replica re-enters rotation only generation-aligned.
            assert _wait_all_in_rotation(service)
            row = service.stats().shards[0]
            assert row.replicas[0].restarts == 1
            assert row.replicas[0].generation == row.generation
            # and keeps serving byte-identical answers afterwards
            served = service.search(MIX[1], bypass_cache=True)
            assert served.coverage.complete
            assert served.results == reference[id(MIX[1])]
            assert service.stats().rejected == 0


class TestHedgedReissue:
    def test_cold_reservoir_uses_the_floor_trigger(self, names, reference):
        """First query, empty latency reservoir: the hedge trigger falls
        back to ``hedge_min_seconds`` (``percentile_or``'s default path)
        rather than never firing."""
        plan = ShardFaultPlan.straggler(shard=0, seconds=3.0, times=1)
        config = ShardingConfig(
            n_shards=2, budget_seconds=10.0, hedge_min_seconds=0.05
        )
        with ShardedSearchService(
            names, seed=0, fault_plan=plan, config=config
        ) as service:
            assert len(service.groups[0].replicas[0].reservoir) == 0  # cold
            served = service.search(MIX[1], bypass_cache=True)
            assert served.coverage.complete
            assert served.hedged >= 1
            assert served.seconds < 3.0  # the duplicate overtook the straggler
            assert served.results == reference[id(MIX[1])]

    def test_losing_reply_is_discarded_not_leaked(self, names):
        plan = ShardFaultPlan.straggler(shard=0, seconds=1.0, times=1)
        config = ShardingConfig(
            n_shards=2, budget_seconds=10.0, hedge_min_seconds=0.05
        )
        with ShardedSearchService(
            names, seed=0, fault_plan=plan, config=config
        ) as service:
            served = service.search(MIX[1], bypass_cache=True)
            assert served.hedged >= 1
            # the fan-out unregistered its req-ids on completion; the
            # loser's late reply finds nothing and is dropped
            assert service._pending == {}
            time.sleep(1.2)  # let the straggler's reply actually arrive
            assert service._pending == {}
            again = service.search(MIX[1], bypass_cache=True)
            assert again.coverage.complete  # table uncorrupted

    def test_hedge_races_failover_under_replica_kill(self, names, reference):
        """One replica is killed on its first delivery, the sibling
        straggles once: whichever of hedge or failover reaches the
        healthy path first, the answer stays complete and fast."""
        plan = ShardFaultPlan.dead(shard=0, replica=0, after=0).extend(
            ShardFaultPlan.straggler(shard=0, seconds=1.0, times=1, replica=1)
        )
        config = ShardingConfig(
            n_shards=2,
            replication=2,
            budget_seconds=30.0,
            hedge_min_seconds=0.05,
            quarantine_cooldown=0.2,
            probe_interval=0.05,
        )
        with ShardedSearchService(
            names, seed=0, fault_plan=plan, config=config
        ) as service:
            served = service.search(MIX[1], bypass_cache=True)
            assert served.coverage.complete, served.coverage
            assert served.results == reference[id(MIX[1])]
            assert served.hedged + served.failovers >= 1
            assert served.seconds < 30.0
            # the killed replica rebuilds and rejoins either way
            assert _wait_all_in_rotation(service)
            assert service.stats().shards[0].replicas[0].restarts == 1


class TestClose:
    def test_close_is_idempotent(self, names):
        config = ShardingConfig(n_shards=2, budget_seconds=10.0)
        service = ShardedSearchService(names, seed=0, config=config)
        try:
            assert service.search(MIX[0]).coverage.complete
        finally:
            service.close()
        service.close()  # second close is a no-op, not an error
        assert all(not rep.alive for row in service.stats().shards for rep in row.replicas)

    def test_close_races_the_prober_restart_cleanly(self, names):
        """Closing while a kill is being recovered must not leak a
        respawned worker: after ``close()`` returns, the prober is dead
        and the restart counter stays put."""
        plan = ShardFaultPlan.dead(shard=0, replica=0, after=0)
        config = ShardingConfig(
            n_shards=2,
            replication=2,
            budget_seconds=10.0,
            quarantine_cooldown=0.1,
            probe_interval=0.02,
        )
        service = ShardedSearchService(names, seed=0, fault_plan=plan, config=config)
        try:
            service.search(MIX[0], bypass_cache=True)  # delivers the kill
        finally:
            service.close()  # races _restart; must win or wait, never leak
        assert not service._prober.is_alive()
        restarts = service.stats().restarts
        time.sleep(0.5)
        assert service.stats().restarts == restarts  # no respawn after close
        assert all(not rep.alive for row in service.stats().shards for rep in row.replicas)
        service.close()
