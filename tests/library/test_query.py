"""Library query structure tests."""

import pytest

from repro.library.query import LibraryQuery
from repro.library.results import SceneResult, fuse_scores


class TestLibraryQuery:
    def test_parts_flags(self):
        query = LibraryQuery(player={"gender": "female"}, event="net_play", text="volley")
        assert query.has_concept_part
        assert query.has_content_part
        assert query.has_text_part

    def test_empty_query(self):
        query = LibraryQuery()
        assert not query.has_concept_part
        assert not query.has_content_part
        assert not query.has_text_part

    def test_unknown_player_key_rejected(self):
        with pytest.raises(ValueError):
            LibraryQuery(player={"shoe_size": 42})

    def test_top_n_validated(self):
        with pytest.raises(ValueError):
            LibraryQuery(top_n=0)


class TestSceneResult:
    def test_length(self):
        scene = SceneResult("v", 10, 40, "net_play", "m")
        assert scene.length == 30


class TestFuseScores:
    def test_content_only(self):
        assert fuse_scores(0.8, None) == 0.8

    def test_text_breaks_ties(self):
        low = fuse_scores(1.0, 0.1)
        high = fuse_scores(1.0, 5.0)
        assert high > low

    def test_content_dominates(self):
        strong_content = fuse_scores(1.0, 0.0)
        weak_content = fuse_scores(0.2, 100.0)
        assert strong_content > weak_content
