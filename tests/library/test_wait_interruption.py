"""Interrupted-wait regression tests (the ``_writers_waiting`` bug class).

PR 5 shipped a fix for a writer counter leaked when an exception was
delivered *inside* ``Condition.wait_for``: the aborted writer left its
reader barrier up and every subsequent query timed out.  These tests
pin the invariant for every blocking wait in the serving paths — a wait
interrupted by an exception must restore all bookkeeping it installed
(writer claims, queue tickets, pending fan-out entries), and every wait
must carry a timeout so nothing can block forever.
"""

from __future__ import annotations

import threading

import pytest

from repro.budget import OverloadedError
from repro.library.service import AdmissionController
from repro.library.service import _ReadWriteLock  # noqa: PLC2701 — under test
from repro.library.sharding import _Gather


class Interrupted(BaseException):
    """Delivered mid-wait; BaseException so nothing downstream eats it."""


class _InterruptingCondition:
    """A Condition whose waits raise after arming — the interruption probe."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self.armed = False

    def __enter__(self):
        return self._cond.__enter__()

    def __exit__(self, *exc_info):
        return self._cond.__exit__(*exc_info)

    def wait(self, timeout=None):
        if self.armed:
            raise Interrupted
        return self._cond.wait(timeout)

    def wait_for(self, predicate, timeout=None):
        if self.armed and not predicate():
            raise Interrupted
        return self._cond.wait_for(predicate, timeout)

    def notify_all(self):
        self._cond.notify_all()


class TestReadWriteLock:
    def test_interrupted_writer_restores_the_reader_barrier(self):
        lock = _ReadWriteLock()
        probe = _InterruptingCondition()
        lock._cond = probe
        with lock.read():  # a reader in flight forces the writer to wait
            probe.armed = True
            with pytest.raises(Interrupted):
                with lock.write(timeout=5.0):
                    pass  # pragma: no cover — never acquired
            probe.armed = False
        assert lock._writers_waiting == 0
        assert not lock._writer_active
        # and the lock still works both ways
        with lock.write(timeout=1.0):
            pass
        with lock.read(timeout=1.0):
            pass

    def test_interrupted_reader_leaves_no_count(self):
        lock = _ReadWriteLock()
        probe = _InterruptingCondition()
        lock._cond = probe
        with lock.write():
            probe.armed = True
            with pytest.raises(Interrupted):
                with lock.read(timeout=5.0):
                    pass  # pragma: no cover
            probe.armed = False
        assert lock._readers == 0
        with lock.read(timeout=1.0):
            pass


class TestAdmissionController:
    def test_interrupted_queued_request_removes_its_ticket(self):
        controller = AdmissionController(
            max_concurrent=1, max_queue=4, queue_timeout=5.0
        )
        probe = _InterruptingCondition()
        controller._cond = probe
        with controller.admit():  # occupy the only slot
            probe.armed = True
            with pytest.raises(Interrupted):
                with controller.admit():
                    pass  # pragma: no cover
            probe.armed = False
            assert len(controller._queue) == 0  # no dead ticket at the head
        # the slot freed; a fresh request sails through
        with controller.admit():
            assert controller._active == 1
        assert controller._active == 0

    def test_queue_timeout_still_sheds_normally(self):
        controller = AdmissionController(
            max_concurrent=1, max_queue=4, queue_timeout=0.01
        )
        with controller.admit():
            with pytest.raises(OverloadedError):
                with controller.admit():
                    pass  # pragma: no cover
        assert len(controller._queue) == 0


class TestGatherCleanup:
    def test_interrupted_gather_leaks_no_pending_entries(self):
        """The sharded fan-out's analogue: pending req-ids must not leak.

        An exception delivered while the coordinator waits on the
        gather condition unwinds through ``_scatter_gather``'s finally,
        which unregisters every req-id — a late shard reply then finds
        nothing and is dropped, instead of corrupting a finished
        fan-out.  Simulated here at the same seam (the pending table)
        without spawning processes.
        """
        pending: dict[int, tuple] = {}
        gather = _Gather([0, 1])
        probe = _InterruptingCondition()
        gather.cond = probe
        req_ids = [7, 8]
        for req_id, shard in zip(req_ids, [0, 1]):
            pending[req_id] = (gather, shard)
        probe.armed = True
        try:
            with pytest.raises(Interrupted):
                with gather.cond:
                    while not gather.done():
                        gather.cond.wait(timeout=0.5)
        finally:
            for req_id in req_ids:
                pending.pop(req_id, None)
        assert pending == {}
        # a late delivery after cleanup is a no-op for the table
        gather.deliver(0, {"status": "ok"})
        assert pending == {}

    def test_gather_first_response_wins(self):
        gather = _Gather([0])
        gather.deliver(0, {"status": "ok", "marker": "first"})
        gather.deliver(0, {"status": "ok", "marker": "duplicate"})
        assert gather.responses[0]["marker"] == "first"
        assert gather.done()

    def test_gather_ignores_unexpected_shards(self):
        gather = _Gather([1])
        gather.deliver(0, {"status": "ok"})
        assert not gather.done()
        gather.deliver(1, {"status": "ok"})
        assert gather.done()
        assert 0 not in gather.responses

    def test_gather_failures_do_not_settle_a_query_key(self):
        """A failed replica leaves the shard open for sibling failover:
        only an ok response or an explicit ``exhaust`` settles the key."""
        gather = _Gather([0])
        gather.fail(0, "dead")
        assert not gather.done()
        assert gather.failures[0][0]["status"] == "dead"
        gather.exhaust(0)
        assert gather.done()
        assert 0 not in gather.responses

    def test_gather_settles_on_failure_for_write_barriers(self):
        """Write barriers key by (shard, replica): one reply per worker,
        so a failure is final and must release the barrier."""
        gather = _Gather([(0, 0), (0, 1)], settle_on_failure=True)
        gather.deliver((0, 0), {"status": "ok"})
        gather.deliver((0, 1), {"status": "error", "message": "boom"})
        assert gather.done()
        assert (0, 1) not in gather.responses
        assert gather.failures[(0, 1)][0]["message"] == "boom"

    def test_gather_failure_after_ok_is_discarded(self):
        gather = _Gather([0])
        gather.deliver(0, {"status": "ok", "marker": "winner"})
        gather.fail(0, "dead")
        assert gather.responses[0]["marker"] == "winner"
        assert 0 not in gather.failures
