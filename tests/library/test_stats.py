"""Library statistics tests."""

import pytest

from repro.core.model import CobraModel
from repro.library.stats import (
    LatencyReservoir,
    collect_stats,
    format_stats,
    merged_summary,
)


@pytest.fixture
def model():
    model = CobraModel()
    video = model.add_video("v", fps=25.0, n_frames=1500)
    tennis = model.add_shot(video.video_id, 0, 800, "tennis")
    model.add_shot(video.video_id, 800, 1500, "closeup")
    obj = model.add_object(tennis.shot_id, "player", [(1.0, 1.0), None, (2.0, 2.0), (3.0, 3.0)])
    model.add_event(tennis.shot_id, "rally", 0, 400, confidence=0.8, object_id=obj.object_id)
    model.add_event(tennis.shot_id, "net_play", 500, 700, confidence=1.0)
    return model


class TestCollect:
    def test_counts(self, model):
        stats = collect_stats(model)
        assert stats.n_videos == 1
        assert stats.total_frames == 1500
        assert stats.shots_by_category == {"closeup": 1, "tennis": 1}
        assert stats.events_by_label == {"net_play": 1, "rally": 1}

    def test_means(self, model):
        stats = collect_stats(model)
        assert stats.mean_event_confidence == pytest.approx(0.9)
        assert stats.mean_track_coverage == pytest.approx(0.75)

    def test_event_density(self, model):
        stats = collect_stats(model)
        # 1500 frames @ 25 fps = 1 minute, 2 events.
        assert stats.events_per_minute == pytest.approx(2.0)

    def test_empty_model(self):
        stats = collect_stats(CobraModel())
        assert stats.n_videos == 0
        assert stats.mean_event_confidence is None
        assert stats.mean_track_coverage is None
        assert stats.events_per_minute is None

    def test_on_real_pipeline_output(self, broadcast):
        from repro.grammar.tennis import build_tennis_fde

        clip, _truth = broadcast
        fde = build_tennis_fde()
        fde.index_video(clip.subclip(0, 200, name="stats_rt"))
        stats = collect_stats(fde.model)
        assert stats.n_videos == 1
        assert sum(stats.shots_by_category.values()) == len(fde.model.shots)


class TestFormat:
    def test_renders_all_sections(self, model):
        text = format_stats(collect_stats(model))
        assert "videos: 1 (1500 frames)" in text
        assert "tennis" in text
        assert "net_play" in text
        assert "mean event confidence: 0.90" in text
        assert "event density: 2.0/min" in text


class TestLatencyReservoir:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LatencyReservoir(0)

    def test_empty_reservoir(self):
        reservoir = LatencyReservoir()
        assert len(reservoir) == 0
        assert reservoir.percentile(99) is None
        assert reservoir.summary() == {}

    def test_nearest_rank_percentiles(self):
        reservoir = LatencyReservoir()
        for ms in range(1, 101):  # 1..100 ms
            reservoir.add(ms / 1000)
        assert reservoir.percentile(50) == pytest.approx(0.050)
        assert reservoir.percentile(95) == pytest.approx(0.095)
        assert reservoir.percentile(99) == pytest.approx(0.099)
        assert reservoir.summary() == {
            "p50": pytest.approx(0.050),
            "p95": pytest.approx(0.095),
            "p99": pytest.approx(0.099),
        }

    def test_single_sample_is_every_percentile(self):
        reservoir = LatencyReservoir()
        reservoir.add(0.007)
        assert reservoir.percentile(50) == pytest.approx(0.007)
        assert reservoir.percentile(99) == pytest.approx(0.007)

    def test_window_is_bounded_and_slides(self):
        reservoir = LatencyReservoir(capacity=10)
        for _ in range(10):
            reservoir.add(1.0)  # slow era
        for _ in range(10):
            reservoir.add(0.001)  # fast era pushes the slow one out
        assert len(reservoir) == 10
        assert reservoir.recorded == 20
        assert reservoir.percentile(99) == pytest.approx(0.001)

    def test_invalid_percentile_rejected(self):
        reservoir = LatencyReservoir()
        reservoir.add(0.001)
        with pytest.raises(ValueError):
            reservoir.percentile(0)
        with pytest.raises(ValueError):
            reservoir.percentile(101)

    def test_clear(self):
        reservoir = LatencyReservoir()
        reservoir.add(0.5)
        reservoir.clear()
        assert len(reservoir) == 0
        assert reservoir.recorded == 0
        assert reservoir.summary() == {}

    def test_percentile_or_falls_back_below_min_samples(self):
        reservoir = LatencyReservoir()
        assert reservoir.percentile_or(95, 0.25) == pytest.approx(0.25)
        for _ in range(7):
            reservoir.add(0.001)
        # 7 samples < min_samples=8: still the default, not a noisy p95
        assert reservoir.percentile_or(95, 0.25, min_samples=8) == pytest.approx(0.25)
        reservoir.add(0.001)
        assert reservoir.percentile_or(95, 0.25, min_samples=8) == pytest.approx(0.001)
        with pytest.raises(ValueError):
            reservoir.percentile_or(95, 0.25, min_samples=0)


class TestMergedSummary:
    def test_empty_union(self):
        assert merged_summary([]) == {}
        assert merged_summary([LatencyReservoir(), LatencyReservoir()]) == {}

    def test_union_percentiles_across_replicas(self):
        fast, slow = LatencyReservoir(), LatencyReservoir()
        for ms in range(1, 51):
            fast.add(ms / 1000)  # 1..50 ms
        for ms in range(51, 101):
            slow.add(ms / 1000)  # 51..100 ms
        merged = merged_summary([fast, slow])
        # identical to one reservoir holding 1..100 ms
        assert merged == {
            "p50": pytest.approx(0.050),
            "p95": pytest.approx(0.095),
            "p99": pytest.approx(0.099),
        }

    def test_one_sided_union_matches_single_summary(self):
        only = LatencyReservoir()
        only.add(0.007)
        assert merged_summary([only, LatencyReservoir()]) == only.summary()


class TestCliStats:
    def test_stats_command(self, tmp_path, capsys, model):
        from repro.cli import main
        from repro.library.persistence import save_model

        path = tmp_path / "meta.json"
        save_model(model, path)
        assert main(["stats", "--metaindex", str(path)]) == 0
        out = capsys.readouterr().out
        assert "videos: 1" in out
