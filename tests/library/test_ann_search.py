"""Query-by-example serving: degraded queries, fusion, snapshots, CLI.

The dissertation protocol: index a small corpus, then query with
degraded versions of an indexed clip (noise, brightness shift,
truncation) and assert the source video is still retrieved.  On top of
that, the late-fusion determinism contract — text-only, ANN-only and
fused rankings byte-identical across runs and worker counts, with
weights (1.0, 0.0) reproducing the text ranking exactly — and the
snapshot round trip through ``repro fsck``.
"""

import base64
import dataclasses

import numpy as np
import pytest

from repro.budget import DeadlineExceeded, QueryBudget
from repro.cli import main
from repro.dataset import build_australian_open
from repro.grammar.runtime import RunPolicy
from repro.grammar.tennis import build_tennis_fde
from repro.ir.ann import AnnSnapshotError
from repro.library import DigitalLibraryEngine, LibraryQuery
from repro.library.persistence import load_model_with_ann, save_model
from repro.library.service import QueryTrace
from repro.storage.persist import load_catalog, save_catalog

N_VIDEOS = 2
TEXT_QUERY = LibraryQuery(text="net volley approach dream", top_n=10)


def build_engine(workers: int = 1) -> DigitalLibraryEngine:
    dataset = build_australian_open(seed=7, video_shots=4)
    policy = dataclasses.replace(RunPolicy(), max_workers=workers)
    engine = DigitalLibraryEngine(dataset, fde=build_tennis_fde(policy=policy))
    engine.indexer.index_all(limit=N_VIDEOS, workers=workers)
    engine.build_ann_index(n_cells=4, seed=0)
    return engine


@pytest.fixture(scope="module")
def engine():
    return build_engine(workers=1)


@pytest.fixture(scope="module")
def engine_workers2():
    return build_engine(workers=2)


@pytest.fixture(scope="module")
def query_source(engine):
    """(ann meta row, frames) of one indexed shot used as the example."""
    row = next(
        (r for r in engine.ann_meta if r["category"] == "tennis"), engine.ann_meta[0]
    )
    clip, _truth = engine.indexer.indexed[row["video_name"]].plan.materialise()
    frames = [clip[i] for i in range(row["start"], row["stop"])]
    return row, frames


class TestDegradedQueries:
    def top_video(self, engine, frames):
        results = engine.search_like(frames, weights=(0.0, 1.0), k=5, top_n=5)
        assert results
        return results[0].video_name

    def test_clean_query_recalls_its_own_shot(self, engine, query_source):
        row, frames = query_source
        vector = engine.ann_vectorizer.vector_from_frames(frames)
        ids, distances = engine.ann_index.search(vector, k=1)
        assert engine.ann_meta[int(ids[0])] == row
        assert distances[0] == 0.0
        assert self.top_video(engine, frames) == row["video_name"]

    def test_noisy_query_recalls_source_video(self, engine, query_source, make_rng):
        from repro.video.noise import add_gaussian_noise

        row, frames = query_source
        rng = make_rng(99)
        noisy = [add_gaussian_noise(f, 6.0, rng) for f in frames]
        assert self.top_video(engine, noisy) == row["video_name"]

    def test_brightness_shift_recalls_source_video(self, engine, query_source):
        row, frames = query_source
        shifted = [
            np.clip(f.astype(np.float64) + 20.0, 0, 255).astype(f.dtype) for f in frames
        ]
        assert self.top_video(engine, shifted) == row["video_name"]

    def test_truncated_query_recalls_source_video(self, engine, query_source):
        row, frames = query_source
        truncated = frames[: max(1, len(frames) // 2)]
        assert self.top_video(engine, truncated) == row["video_name"]


class TestFusionDeterminism:
    def test_repeated_runs_are_byte_identical(self, engine, query_source):
        _row, frames = query_source
        first = engine.search_like(frames, query=TEXT_QUERY, weights=(0.6, 0.4))
        second = engine.search_like(frames, query=TEXT_QUERY, weights=(0.6, 0.4))
        assert first == second  # dataclass equality: exact floats, same order

    def test_ann_only_runs_are_byte_identical(self, engine, query_source):
        _row, frames = query_source
        first = engine.search_like(frames, weights=(0.0, 1.0))
        second = engine.search_like(frames, weights=(0.0, 1.0))
        assert first == second

    def test_all_text_weights_reproduce_text_ranking_exactly(self, engine, query_source):
        _row, frames = query_source
        fused = engine.search_like(frames, query=TEXT_QUERY, weights=(1.0, 0.0))
        text = engine.search(TEXT_QUERY)
        assert fused == text

    def test_rankings_identical_across_worker_counts(
        self, engine, engine_workers2, query_source
    ):
        _row, frames = query_source
        for field in ("centroids", "cell_offsets", "cell_members", "vectors"):
            assert np.array_equal(
                getattr(engine.ann_index, field), getattr(engine_workers2.ann_index, field)
            )
        for weights in ((1.0, 0.0), (0.0, 1.0), (0.6, 0.4)):
            query = TEXT_QUERY if weights[0] > 0.0 else None
            a = engine.search_like(frames, query=query, weights=weights)
            b = engine_workers2.search_like(frames, query=query, weights=weights)
            assert a == b

    def test_rejects_degenerate_weights(self, engine, query_source):
        _row, frames = query_source
        with pytest.raises(ValueError):
            engine.search_like(frames, weights=(0.0, 0.0))
        with pytest.raises(ValueError):
            engine.search_like(frames, weights=(-1.0, 2.0))


class TestBudgetAndTrace:
    def test_ann_stages_are_traced(self, engine, query_source):
        _row, frames = query_source
        trace = QueryTrace()
        engine.search_like(frames, query=TEXT_QUERY, weights=(0.5, 0.5), trace=trace)
        for stage in ("ann_query", "ann_search", "rank_fuse"):
            assert stage in trace.stage_seconds

    def test_postings_budget_bounds_ann_work(self, engine, query_source):
        _row, frames = query_source
        budget = QueryBudget(postings=1)
        with pytest.raises(DeadlineExceeded) as excinfo:
            engine.search_like(frames, weights=(0.0, 1.0), budget=budget)
        assert excinfo.value.stage == "ann_search"
        assert isinstance(excinfo.value.partial, list)

    def test_expired_deadline_raises_with_partial(self, engine, query_source):
        _row, frames = query_source
        with pytest.raises(DeadlineExceeded):
            engine.search_like(frames, weights=(0.0, 1.0), budget=QueryBudget(seconds=0.0))


class TestSnapshotRoundTrip:
    @pytest.fixture(scope="class")
    def snapshot(self, engine, tmp_path_factory):
        path = tmp_path_factory.mktemp("ann_snapshot") / "meta.json"
        save_model(
            engine.indexer.model, path, ann=(engine.ann_index, engine.ann_meta)
        )
        return path

    def test_round_trip_preserves_search_results(self, engine, snapshot, query_source):
        _row, frames = query_source
        model, ann = load_model_with_ann(snapshot)
        assert ann is not None
        index, meta = ann
        restored = DigitalLibraryEngine(engine.dataset)
        restored.indexer.restore(model)
        restored.adopt_ann(index, meta)
        want = engine.search_like(frames, weights=(0.0, 1.0))
        got = restored.search_like(frames, weights=(0.0, 1.0))
        assert got == want

    def test_fsck_validates_ann_tables(self, snapshot, capsys):
        assert main(["fsck", "--metaindex", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "ann: OK" in out
        assert "fsck: clean" in out

    def test_corrupted_blob_is_typed_not_wrong(self, snapshot, tmp_path, capsys):
        catalog = load_catalog(snapshot)
        table = catalog.table("ann_blobs")
        rows = []
        for row in table.scan():
            if row["name"] == "vectors":
                raw = bytearray(base64.b64decode(row["payload"]))
                raw[0] ^= 0xFF
                row["payload"] = base64.b64encode(bytes(raw)).decode("ascii")
            rows.append(row)
        schema = dict(table.schema)
        catalog.drop_table("ann_blobs")
        rebuilt = catalog.create_table("ann_blobs", schema)
        for row in rows:
            rebuilt.append(row)
        corrupted = tmp_path / "corrupt.json"
        save_catalog(catalog, corrupted)

        with pytest.raises(AnnSnapshotError):
            load_model_with_ann(corrupted)
        assert main(["fsck", "--metaindex", str(corrupted)]) == 1
        out = capsys.readouterr().out
        assert "ann: CORRUPT" in out


class TestCliRoundTrip:
    @pytest.fixture(scope="class")
    def metaindex(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("ann_cli") / "meta.json"
        assert main(["index", "--seed", "7", "--videos", "1", "--out", str(path)]) == 0
        assert main(["ann-build", "--seed", "7", "--metaindex", str(path)]) == 0
        return path

    def test_fsck_reports_ann(self, metaindex, capsys):
        assert main(["fsck", "--metaindex", str(metaindex)]) == 0
        assert "ann: OK" in capsys.readouterr().out

    def test_search_like_degraded_clip(self, metaindex, capsys):
        model, ann = load_model_with_ann(metaindex)
        video_name = ann[1][0]["video_name"]
        code = main(
            [
                "search",
                "--seed", "7",
                "--metaindex", str(metaindex),
                "--like", f"{video_name}:0:30",
                "--noise", "4.0",
                "--truncate", "0.8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert video_name in out

    def test_search_fused_with_text_query(self, metaindex, capsys):
        model, ann = load_model_with_ann(metaindex)
        video_name = ann[1][0]["video_name"]
        code = main(
            [
                "search",
                "--seed", "7",
                "--metaindex", str(metaindex),
                "--like", video_name,
                "--query", "SCENES",
                "--w-text", "0.5",
                "--w-ann", "0.5",
            ]
        )
        assert code == 0
        assert video_name in capsys.readouterr().out
