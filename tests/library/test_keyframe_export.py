"""Scene keyframe export tests."""

import numpy as np
import pytest

from repro.dataset import build_australian_open
from repro.library import DigitalLibraryEngine, LibraryQuery
from repro.vision.io import read_ppm


@pytest.fixture(scope="module")
def engine():
    dataset = build_australian_open(seed=7, video_shots=6)
    engine = DigitalLibraryEngine(dataset)
    engine.index_videos(limit=1)
    return engine


class TestKeyframeExport:
    def test_writes_one_image_per_scene(self, engine, tmp_path):
        scenes = engine.search(LibraryQuery(event="rally"))
        paths = engine.export_scene_keyframes(scenes, tmp_path)
        assert len(paths) == len(scenes)
        for path in paths:
            assert path.exists()

    def test_images_decode_to_frames(self, engine, tmp_path):
        scenes = engine.search(LibraryQuery())
        paths = engine.export_scene_keyframes(scenes, tmp_path)
        image = read_ppm(paths[0])
        assert image.shape == (96, 128, 3)
        assert image.dtype == np.uint8

    def test_keyframe_is_court_colored_for_rally(self, engine, tmp_path):
        """A rally scene's keyframe is a court shot, not a transition."""
        from repro.vision.dominant import color_coverage

        scenes = engine.search(LibraryQuery(event="rally"))
        if not scenes:
            pytest.skip("no rally scenes in this index")
        paths = engine.export_scene_keyframes(scenes[:1], tmp_path)
        image = read_ppm(paths[0])
        assert color_coverage(image, np.array([40, 130, 80]), tolerance=60) > 0.25

    def test_unknown_video_rejected(self, engine, tmp_path):
        from repro.library.results import SceneResult

        fake = SceneResult("ghost_video", 0, 10, None, "nope")
        with pytest.raises(KeyError):
            engine.export_scene_keyframes([fake], tmp_path)
