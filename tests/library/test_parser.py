"""Query language parser tests."""

import pytest

from repro.library.parser import QuerySyntaxError, parse_query


class TestParsing:
    def test_bare_scenes(self):
        query = parse_query("SCENES")
        assert not query.has_concept_part
        assert not query.has_content_part
        assert query.top_n == 20

    def test_motivating_query(self):
        query = parse_query(
            "SCENES WHERE player.handedness = left AND player.gender = female "
            "AND player.past_winner AND event = net_play"
        )
        assert query.player == {
            "handedness": "left",
            "gender": "female",
            "past_winner": True,
        }
        assert query.event == "net_play"

    def test_quoted_values(self):
        query = parse_query('SCENES WHERE player.name = "Iva Demcourt"')
        assert query.player["name"] == "Iva Demcourt"

    def test_text_clause(self):
        query = parse_query('SCENES WHERE text CONTAINS "approach the net"')
        assert query.text == "approach the net"

    def test_limit(self):
        assert parse_query("SCENES LIMIT 5").top_n == 5

    def test_keywords_case_insensitive(self):
        query = parse_query("scenes where event = rally limit 3")
        assert query.event == "rally"
        assert query.top_n == 3

    def test_full_query(self):
        query = parse_query(
            'SCENES WHERE player.gender = male AND event = rally '
            'AND text CONTAINS "baseline" LIMIT 7'
        )
        assert query.player == {"gender": "male"}
        assert query.event == "rally"
        assert query.text == "baseline"
        assert query.top_n == 7


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",  # no SCENES
            "PAGES WHERE event = rally",
            "SCENES WHERE",  # dangling WHERE
            "SCENES WHERE player.shoe_size = 42",
            "SCENES WHERE event rally",  # missing =
            "SCENES WHERE text = foo",  # text needs CONTAINS
            "SCENES LIMIT many",
            "SCENES WHERE event = rally garbage",
            "SCENES WHERE event = rally AND event = service",  # duplicate
            'SCENES WHERE text CONTAINS "a" AND text CONTAINS "b"',
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(QuerySyntaxError):
            parse_query(text)

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SCENES WHERE event = rally;")


class TestEngineIntegration:
    def test_parsed_query_runs(self, dataset):
        """A parsed query behaves identically to the built query."""
        from repro.library import DigitalLibraryEngine, LibraryQuery

        engine = DigitalLibraryEngine(dataset)
        parsed = parse_query("SCENES WHERE player.gender = female AND player.past_winner")
        built = LibraryQuery(player={"gender": "female", "past_winner": True})
        assert engine.search(parsed) == engine.search(built)
