"""CLI tests (in-process invocation of repro.cli.main)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.faults import CrashPoint, SimulatedCrash


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestFigure1:
    def test_prints_dot(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph tennis_fde")
        assert '"segment" -> "tennis"' in out


class TestIndexQueryRoundTrip:
    @pytest.fixture(scope="class")
    def metaindex(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "meta.json"
        assert main(["index", "--seed", "7", "--videos", "1", "--out", str(path)]) == 0
        return path

    def test_index_writes_valid_json(self, metaindex):
        document = json.loads(metaindex.read_text())
        assert "videos" in document["tables"]

    def test_query_finds_scenes(self, metaindex, capsys):
        code = main(
            ["query", "--seed", "7", "--metaindex", str(metaindex), "SCENES"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "whole video" in out

    def test_query_event_filter(self, metaindex, capsys):
        code = main(
            [
                "query",
                "--seed",
                "7",
                "--metaindex",
                str(metaindex),
                "SCENES WHERE event = rally",
            ]
        )
        out = capsys.readouterr().out
        if code == 0:
            assert "rally" in out
        else:
            assert "no scenes" in out

    def test_query_no_match_exit_code(self, metaindex, capsys):
        code = main(
            [
                "query",
                "--seed",
                "7",
                "--metaindex",
                str(metaindex),
                'SCENES WHERE player.name = "Nobody Atall"',
            ]
        )
        assert code == 1

    def test_build_site(self, tmp_path, capsys):
        out = tmp_path / "site"
        assert main(["build-site", "--seed", "7", "--out", str(out)]) == 0
        assert (out / "players").is_dir()

    def test_export_mpeg7(self, metaindex, tmp_path, capsys):
        out_path = tmp_path / "meta.xml"
        assert (
            main(["export-mpeg7", "--metaindex", str(metaindex), "--out", str(out_path)])
            == 0
        )
        text = out_path.read_text()
        assert text.startswith("<Mpeg7")

    def test_fsck_clean_after_index(self, metaindex, capsys):
        assert main(["fsck", "--metaindex", str(metaindex)]) == 0
        out = capsys.readouterr().out
        assert "fsck: clean" in out
        assert "checksum ok" in out


class TestCrashResumeFsck:
    """Crash a CLI index run mid-snapshot, fsck it, resume it."""

    @pytest.fixture(scope="class")
    def crashed(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("crash") / "meta.json"
        with CrashPoint("snapshot-pre-replace", after=1):
            with pytest.raises(SimulatedCrash):
                main(["index", "--seed", "7", "--videos", "2", "--out", str(path)])
        return path

    def test_fsck_reports_the_damage(self, crashed, capsys):
        assert main(["fsck", "--metaindex", str(crashed)]) == 1
        out = capsys.readouterr().out
        assert "problem(s) found" in out
        assert "began but never committed" in out
        # the previous generation is intact and fsck says so
        assert "falls back" in out

    def test_resume_completes_and_fsck_is_clean(self, crashed, capsys):
        assert main(
            ["index", "--seed", "7", "--videos", "2", "--out", str(crashed), "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "resume: restored 1 committed video(s)" in out
        assert "indexing 1 video(s)" in out
        document = json.loads(crashed.read_text())
        assert len(document["tables"]["videos"]["columns"]["name"]) == 2
        assert main(["fsck", "--metaindex", str(crashed)]) == 0
        assert "fsck: clean" in capsys.readouterr().out

    def test_corrupt_snapshot_without_backup_fails_fsck(self, tmp_path, capsys):
        path = tmp_path / "meta.json"
        path.write_text('{"version": 2, "tables"')  # torn, no .prev
        assert main(["fsck", "--metaindex", str(path)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out
        assert "no previous generation to fall back to" in out


class TestQueryStats:
    @pytest.fixture(scope="class")
    def metaindex(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serving") / "meta.json"
        assert main(["index", "--seed", "7", "--videos", "1", "--out", str(path)]) == 0
        return path

    def test_reports_cache_and_stage_counters(self, metaindex, capsys):
        code = main(
            [
                "query-stats",
                "--seed",
                "7",
                "--metaindex",
                str(metaindex),
                "--repeat",
                "3",
                "SCENES",
                "SCENES WHERE event = rally",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "queries served      6" in out
        assert "cache hits          4" in out
        assert "last served from cache" in out
        assert "scene_scan" in out

    def test_single_shot_is_all_misses(self, metaindex, capsys):
        code = main(
            [
                "query-stats",
                "--seed",
                "7",
                "--metaindex",
                str(metaindex),
                "--repeat",
                "1",
                "SCENES",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache hits          0" in out
        assert "last served from engine" in out


class TestServeBench:
    def test_prints_latency_and_throughput(self, capsys):
        code = main(
            [
                "serve-bench",
                "--seed",
                "7",
                "--videos",
                "1",
                "--threads",
                "2",
                "--requests",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cold latency" in out
        assert "speedup" in out
        assert "queries/s" in out
        assert "index generation    1" in out
