"""CLI tests (in-process invocation of repro.cli.main)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestFigure1:
    def test_prints_dot(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph tennis_fde")
        assert '"segment" -> "tennis"' in out


class TestIndexQueryRoundTrip:
    @pytest.fixture(scope="class")
    def metaindex(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "meta.json"
        assert main(["index", "--seed", "7", "--videos", "1", "--out", str(path)]) == 0
        return path

    def test_index_writes_valid_json(self, metaindex):
        document = json.loads(metaindex.read_text())
        assert "videos" in document["tables"]

    def test_query_finds_scenes(self, metaindex, capsys):
        code = main(
            ["query", "--seed", "7", "--metaindex", str(metaindex), "SCENES"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "whole video" in out

    def test_query_event_filter(self, metaindex, capsys):
        code = main(
            [
                "query",
                "--seed",
                "7",
                "--metaindex",
                str(metaindex),
                "SCENES WHERE event = rally",
            ]
        )
        out = capsys.readouterr().out
        if code == 0:
            assert "rally" in out
        else:
            assert "no scenes" in out

    def test_query_no_match_exit_code(self, metaindex, capsys):
        code = main(
            [
                "query",
                "--seed",
                "7",
                "--metaindex",
                str(metaindex),
                'SCENES WHERE player.name = "Nobody Atall"',
            ]
        )
        assert code == 1

    def test_build_site(self, tmp_path, capsys):
        out = tmp_path / "site"
        assert main(["build-site", "--seed", "7", "--out", str(out)]) == 0
        assert (out / "players").is_dir()

    def test_export_mpeg7(self, metaindex, tmp_path, capsys):
        out_path = tmp_path / "meta.xml"
        assert (
            main(["export-mpeg7", "--metaindex", str(metaindex), "--out", str(out_path)])
            == 0
        )
        text = out_path.read_text()
        assert text.startswith("<Mpeg7")
