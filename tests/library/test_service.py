"""Query-serving layer tests: cache keys, generations, stats, isolation."""

import pytest

from repro.dataset import build_australian_open
from repro.library import (
    DigitalLibraryEngine,
    LibraryQuery,
    LibrarySearchService,
    canonical_query_key,
)
from repro.library.service import _LRUCache, format_query_stats


@pytest.fixture()
def engine():
    dataset = build_australian_open(seed=7, video_shots=3)
    engine = DigitalLibraryEngine(dataset)
    engine.index_videos(limit=2)
    return engine


@pytest.fixture()
def service(engine):
    return LibrarySearchService(engine, cache_size=16)


class TestCanonicalKey:
    def test_player_order_insensitive(self):
        a = LibraryQuery(player={"gender": "female", "handedness": "left"})
        b = LibraryQuery(player={"handedness": "left", "gender": "female"})
        assert canonical_query_key(a) == canonical_query_key(b)

    def test_within_ignored_without_sequence(self):
        a = LibraryQuery(event="rally", within=50)
        b = LibraryQuery(event="rally", within=500)
        assert canonical_query_key(a) == canonical_query_key(b)

    def test_within_kept_for_sequences(self):
        a = LibraryQuery(sequence=("service", "rally"), within=50)
        b = LibraryQuery(sequence=("service", "rally"), within=500)
        assert canonical_query_key(a) != canonical_query_key(b)

    def test_distinct_queries_distinct_keys(self):
        queries = [
            LibraryQuery(),
            LibraryQuery(event="rally"),
            LibraryQuery(event="net_play"),
            LibraryQuery(text="approach the net"),
            LibraryQuery(top_n=5),
            LibraryQuery(player={"gender": "female"}),
        ]
        keys = {canonical_query_key(q) for q in queries}
        assert len(keys) == len(queries)


class TestCaching:
    def test_repeat_query_hits_and_is_identical(self, service):
        query = LibraryQuery(event="rally", text="approach the net")
        cold = service.search(query)
        warm = service.search(query)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.results == cold.results
        assert warm.generation == cold.generation

    def test_commit_invalidates_by_generation(self, service):
        query = LibraryQuery(top_n=50)
        before = service.search(query)
        service.index_plan(service.engine.dataset.video_plans[2])
        after = service.search(query)
        assert not after.cache_hit
        assert after.generation == before.generation + 1
        assert len(after.results) == len(before.results) + 1
        # The new generation is itself cacheable.
        assert service.search(query).cache_hit

    def test_cached_results_are_private_copies(self, service):
        query = LibraryQuery()
        first = service.search(query)
        first.results.clear()
        again = service.search(query)
        assert again.cache_hit
        assert again.results == service.engine.search(query)

    def test_bypass_cache_never_reads_or_writes(self, service):
        query = LibraryQuery(event="rally")
        service.search(query)
        served = service.search(query, bypass_cache=True)
        assert not served.cache_hit
        assert served.results == service.engine.search(query)
        assert service.stats().cache_entries == 1

    def test_lru_eviction_counts(self, engine):
        service = LibrarySearchService(engine, cache_size=2)
        for event in ("rally", "net_play", "service"):
            service.search(LibraryQuery(event=event))
        stats = service.stats()
        assert stats.cache_entries == 2
        assert stats.cache_evictions == 1
        # The oldest entry was evicted; the newest two still hit.
        assert service.search(LibraryQuery(event="service")).cache_hit
        assert not service.search(LibraryQuery(event="rally")).cache_hit

    def test_clear_cache(self, service):
        query = LibraryQuery()
        service.search(query)
        service.clear_cache()
        assert not service.search(query).cache_hit


class TestGenerations:
    def test_text_refresh_bumps_only_when_dirty(self, service):
        engine = service.engine
        generation = service.generation
        service.refresh_text_index()
        assert service.generation == generation
        engine.dataset.pages.add("late_page", "a champion approaches the net")
        service.refresh_text_index()
        assert service.generation == generation + 1

    def test_served_generation_matches_engine(self, service):
        served = service.search(LibraryQuery())
        assert served.generation == service.engine.generation

    def test_write_context_serializes_and_yields_engine(self, service):
        with service.write() as engine:
            assert engine is service.engine


class TestStats:
    def test_counters_add_up(self, service):
        queries = [LibraryQuery(), LibraryQuery(event="rally"), LibraryQuery()]
        for query in queries:
            service.search(query)
        stats = service.stats()
        assert stats.queries == 3
        assert stats.cache_hits == 1
        assert stats.cache_misses == 2
        assert stats.cache_hits + stats.cache_misses == stats.queries
        assert stats.hit_rate == pytest.approx(1 / 3)
        assert stats.total_seconds == pytest.approx(
            stats.hit_seconds + stats.miss_seconds
        )

    def test_stage_timers_and_postings(self, service):
        service.search(LibraryQuery(event="rally", text="approach the net"))
        stats = service.stats()
        for stage in ("concept_filter", "text_topn", "scene_scan", "rank_merge"):
            assert stage in stats.stage_seconds
        assert stats.postings_processed > 0

    def test_reset_stats_keeps_cache(self, service):
        query = LibraryQuery()
        service.search(query)
        service.reset_stats()
        stats = service.stats()
        assert stats.queries == 0
        assert stats.cache_entries == 1
        assert service.search(query).cache_hit

    def test_format_report(self, service):
        service.search(LibraryQuery(text="net"))
        report = format_query_stats(service.stats())
        assert "cache hits" in report
        assert "index generation" in report
        assert "text_topn" in report


class TestServedQueryDefaults:
    def test_fresh_result_carries_no_resilience_flags(self, service):
        served = service.search(LibraryQuery(event="rally"))
        assert served.stale is False
        assert served.degraded is False
        assert served.skipped_stages == ()
        assert served.rejection is None
        assert not served.rejected
        assert served.status == "miss"

    def test_status_strings(self, service):
        query = LibraryQuery(event="rally")
        assert service.search(query).status == "miss"
        assert service.search(query).status == "hit"


class TestCacheStageAccounting:
    def test_hit_records_cache_stage(self, service):
        query = LibraryQuery(event="rally", text="approach the net")
        service.search(query)
        service.reset_stats()
        served = service.search(query)
        assert served.cache_hit
        stats = service.stats()
        assert "cache" in stats.stage_seconds
        # The synthetic cache stage is the hit's whole cost, so the
        # per-stage ledger still sums to the total serving time.
        assert stats.stage_seconds["cache"] == pytest.approx(stats.hit_seconds)
        assert sum(stats.stage_seconds.values()) == pytest.approx(
            stats.total_seconds
        )

    def test_misses_never_record_cache_stage(self, service):
        service.search(LibraryQuery(event="rally"))
        assert "cache" not in service.stats().stage_seconds


class TestLatencyPercentiles:
    def test_hit_and_miss_percentiles_split(self, service):
        query = LibraryQuery(event="rally")
        service.search(query)  # miss
        for _ in range(3):
            service.search(query)  # hits
        stats = service.stats()
        for summary in (stats.hit_latency, stats.miss_latency):
            assert set(summary) == {"p50", "p95", "p99"}
            assert 0 <= summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_empty_reservoirs_report_empty(self, service):
        stats = service.stats()
        assert stats.hit_latency == {}
        assert stats.miss_latency == {}

    def test_report_includes_latency_lines(self, service):
        query = LibraryQuery(event="rally")
        service.search(query)
        service.search(query)
        report = format_query_stats(service.stats())
        assert "hit latency" in report
        assert "miss latency" in report
        assert "p99" in report

    def test_reset_clears_reservoirs(self, service):
        service.search(LibraryQuery(event="rally"))
        service.reset_stats()
        stats = service.stats()
        assert stats.hit_latency == {}
        assert stats.miss_latency == {}


class TestLRUCacheUnit:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            _LRUCache(0)

    def test_get_refreshes_recency(self):
        cache = _LRUCache(2)
        cache.put((0, "a"), ())
        cache.put((0, "b"), ())
        cache.get((0, "a"))  # a is now the most recent
        cache.put((0, "c"), ())
        assert cache.get((0, "b")) is None
        assert cache.get((0, "a")) is not None
        assert cache.evictions == 1
