"""Differential tests over the whole query path.

Randomized (seeded, reproducible) libraries and query mixes drive three
equivalences:

- ``search`` vs ``search_relational`` return identical scene lists;
- cached serving is byte-identical to uncached evaluation;
- both stay true across an interleaved index commit — post-commit
  queries reflect the new generation, never a stale cache entry.
"""

import random

import pytest

from repro.dataset import build_australian_open
from repro.library import DigitalLibraryEngine, LibraryQuery, LibrarySearchService

EVENTS = ("rally", "net_play", "service", "baseline_play")
PHRASES = (
    "approach the net",
    "champion wins in straight sets",
    "baseline rally pressure",
    "left handed volley",
    "the crowd and the press conference",
)


def random_query(rng: random.Random) -> LibraryQuery:
    """One random combined query drawn from the library's vocabulary."""
    player: dict[str, object] = {}
    if rng.random() < 0.5:
        for key, pool in (
            ("gender", ("male", "female")),
            ("handedness", ("left", "right")),
            ("past_winner", (True, False)),
        ):
            if rng.random() < 0.4:
                player[key] = rng.choice(pool)
    kind = rng.choice(("any", "event", "sequence"))
    event = rng.choice(EVENTS) if kind == "event" else None
    sequence = None
    within = 100
    if kind == "sequence":
        sequence = (rng.choice(EVENTS), rng.choice(EVENTS))
        within = rng.choice((0, 40, 150, 1000))
    text = rng.choice(PHRASES) if rng.random() < 0.5 else None
    top_n = rng.choice((1, 2, 5, 20, 100))
    return LibraryQuery(
        player=player,
        event=event,
        sequence=sequence,
        within=within,
        text=text,
        top_n=top_n,
    )


def query_mix(seed: int, n: int) -> list[LibraryQuery]:
    rng = random.Random(seed)
    return [random_query(rng) for _ in range(n)]


@pytest.fixture(scope="module", params=[7, 19])
def engine(request):
    """Two randomized libraries (different seeds, shapes and videos)."""
    dataset = build_australian_open(seed=request.param, video_shots=4)
    engine = DigitalLibraryEngine(dataset)
    engine.index_videos(limit=2)
    engine.build_relational()
    return engine


class TestObjectVsRelational:
    @pytest.mark.parametrize("mix_seed", range(4))
    def test_identical_scene_sets(self, engine, mix_seed):
        for query in query_mix(mix_seed, 12):
            assert engine.search_relational(query) == engine.search(query), query


class TestCachedVsUncached:
    @pytest.mark.parametrize("mix_seed", range(4))
    def test_byte_identical_results(self, engine, mix_seed):
        service = LibrarySearchService(engine, cache_size=256)
        queries = query_mix(mix_seed, 12)
        for query in queries:
            service.search(query)  # populate
        for query in queries:
            served = service.search(query)
            assert served.cache_hit
            assert served.results == engine.search(query), query

    def test_identical_across_interleaved_commit(self):
        """A commit between passes must refresh every affected answer."""
        dataset = build_australian_open(seed=11, video_shots=4)
        engine = DigitalLibraryEngine(dataset)
        engine.index_videos(limit=2)
        service = LibrarySearchService(engine, cache_size=256)
        queries = query_mix(99, 15)

        before = [service.search(query) for query in queries]
        generation = service.generation
        service.index_plan(dataset.video_plans[2])
        assert service.generation == generation + 1

        for query, old in zip(queries, before):
            served = service.search(query)
            # Post-commit queries carry the new generation and agree
            # byte-for-byte with a fresh uncached evaluation.
            assert served.generation == generation + 1
            assert not served.cache_hit
            assert served.results == engine.search(query), query
            assert old.generation == generation
        # And the refreshed answers are themselves cache-served now.
        assert all(service.search(query).cache_hit for query in queries)


class TestReproducibility:
    def test_query_mix_is_deterministic(self):
        assert query_mix(3, 10) == query_mix(3, 10)
        assert query_mix(3, 10) != query_mix(4, 10)
