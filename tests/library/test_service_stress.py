"""Concurrency stress: readers hammer the cache while a writer commits.

The serving invariants under test:

- **No stale results** — every served generation is >= the generation
  observed at request start, and never runs ahead of what the writer
  has committed.
- **No torn reads** — a whole-library query at generation *g* returns
  exactly the videos committed by the first *g* commits, never a
  half-registered video; event scenes only ever come from committed
  videos.
- **Coherent accounting** — hits + misses equals requests served.
"""

import threading

from repro.dataset import build_australian_open
from repro.library import DigitalLibraryEngine, LibraryQuery, LibrarySearchService

N_READERS = 4
EXTRA_ROUNDS = 25  # reader iterations after the writer finished


def test_readers_never_see_stale_or_torn_state():
    dataset = build_australian_open(seed=13, video_shots=3)
    engine = DigitalLibraryEngine(dataset)
    service = LibrarySearchService(engine, cache_size=64)

    plans = dataset.video_plans[:4]
    service.index_plan(plans[0])
    # One commit per plan and no text refreshes, so generation g means
    # exactly plans[:g] are committed — checkable without extra locking.
    expected = {g: {plan.name for plan in plans[:g]} for g in range(1, len(plans) + 1)}

    whole_library = LibraryQuery(top_n=100)
    event_queries = [
        LibraryQuery(event="rally", top_n=100),
        LibraryQuery(event="net_play", text="approach the net", top_n=100),
        LibraryQuery(sequence=("service", "rally"), within=1000, top_n=100),
    ]

    writer_done = threading.Event()
    errors: list[str] = []
    errors_lock = threading.Lock()

    def complain(message: str) -> None:
        with errors_lock:
            errors.append(message)

    def reader(reader_id: int) -> None:
        last_generation = 0
        rounds_after_done = 0
        step = 0
        while rounds_after_done < EXTRA_ROUNDS:
            if writer_done.is_set():
                rounds_after_done += 1
            step += 1
            started_at = service.generation
            served = service.search(whole_library)
            if served.generation < started_at:
                complain(
                    f"reader {reader_id}: stale result "
                    f"(generation {served.generation} < {started_at})"
                )
            if served.generation < last_generation:
                complain(f"reader {reader_id}: generation went backwards")
            last_generation = served.generation
            names = {scene.video_name for scene in served.results}
            if names != expected.get(served.generation):
                complain(
                    f"reader {reader_id}: torn read at generation "
                    f"{served.generation}: {sorted(names)}"
                )
            if len(served.results) != len(expected.get(served.generation, ())):
                complain(f"reader {reader_id}: duplicate/missing whole-video scenes")
            scenes = service.search(event_queries[step % len(event_queries)])
            scene_names = {scene.video_name for scene in scenes.results}
            if not scene_names <= expected.get(scenes.generation, set()):
                complain(
                    f"reader {reader_id}: event scenes from uncommitted "
                    f"video(s) {sorted(scene_names)}"
                )

    def writer() -> None:
        try:
            for plan in plans[1:]:
                service.index_plan(plan)
        finally:
            writer_done.set()

    threads = [
        threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
        for i in range(N_READERS)
    ]
    threads.append(threading.Thread(target=writer, name="writer"))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), f"{thread.name} deadlocked"

    assert errors == [], errors[:10]
    assert service.generation == len(plans)

    final = service.search(whole_library)
    assert {scene.video_name for scene in final.results} == expected[len(plans)]
    assert final.results == engine.search(whole_library)

    stats = service.stats()
    assert stats.cache_hits + stats.cache_misses == stats.queries
    assert stats.queries >= 2 * N_READERS * EXTRA_ROUNDS
    assert stats.cache_hits > 0  # the cache actually served traffic
