"""Property tests for the shard merge discipline (no processes).

The load-bearing claim of scatter-gather serving: when every shard
answers, the k-way merge of per-shard top-N rankings is *byte-identical*
to ranking the unsharded library; when shards are missing, the merge is
exactly the correctly-ranked subset the surviving shards cover —
never a reordering, never an invention.
"""

from __future__ import annotations

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.library.results import (
    Coverage,
    SceneResult,
    merge_scene_results,
    scene_order,
)
from repro.library.sharding import assign_shards, shard_of

VIDEO_NAMES = [f"video_{i:03d}" for i in range(12)]


def scene(video: str, start: int, score: float) -> SceneResult:
    return SceneResult(
        video_name=video,
        start=start,
        stop=start + 100,
        event_label="rally",
        match_title="m",
        score=score,
    )


scenes_strategy = st.lists(
    st.builds(
        scene,
        video=st.sampled_from(VIDEO_NAMES),
        start=st.integers(min_value=0, max_value=10_000),
        score=st.floats(
            min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
        ),
    ),
    max_size=80,
)


def global_ranking(scenes: list[SceneResult], top_n: int) -> list[SceneResult]:
    return sorted(scenes, key=scene_order)[:top_n]


def shard_rankings(
    scenes: list[SceneResult], n_shards: int, top_n: int
) -> list[list[SceneResult]]:
    """What each shard worker returns: its slice, ranked and truncated."""
    parts: list[list[SceneResult]] = [[] for _ in range(n_shards)]
    for item in scenes:
        parts[shard_of(item.video_name, n_shards)].append(item)
    return [sorted(part, key=scene_order)[:top_n] for part in parts]


@settings(max_examples=40, deadline=None)
@given(scenes=scenes_strategy, top_n=st.integers(min_value=1, max_value=30))
@pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
def test_merge_identical_to_unsharded(n_shards, scenes, top_n):
    """All shards responding => merged == unsharded ranking, exactly."""
    parts = shard_rankings(scenes, n_shards, top_n)
    assert merge_scene_results(parts, top_n) == global_ranking(scenes, top_n)


@settings(max_examples=40, deadline=None)
@given(
    scenes=scenes_strategy,
    top_n=st.integers(min_value=1, max_value=30),
    lost=st.sets(st.integers(min_value=0, max_value=3), max_size=3),
)
def test_merge_under_shard_loss_is_labeled_subset(scenes, top_n, lost):
    """Missing shards => exactly the surviving slices' ranking."""
    n_shards = 4
    parts = shard_rankings(scenes, n_shards, top_n)
    surviving = [sid for sid in range(n_shards) if sid not in lost]
    merged = merge_scene_results([parts[sid] for sid in surviving], top_n)

    survivors_scenes = [
        item for item in scenes if shard_of(item.video_name, n_shards) in surviving
    ]
    assert merged == global_ranking(survivors_scenes, top_n)
    # and what the service attaches: an honest coverage label
    coverage = Coverage(
        responded=tuple(surviving), missing=tuple(sorted(lost))
    )
    assert coverage.total == n_shards
    assert coverage.complete == (not lost)
    assert coverage.label == f"{len(surviving)}/{n_shards}"


@settings(max_examples=40, deadline=None)
@given(scenes=scenes_strategy, top_n=st.integers(min_value=1, max_value=30))
def test_single_shard_merge_is_identity(scenes, top_n):
    parts = shard_rankings(scenes, 1, top_n)
    assert merge_scene_results(parts, top_n) == global_ranking(scenes, top_n)


def test_merge_rejects_bad_top_n():
    with pytest.raises(ValueError):
        merge_scene_results([], 0)


# ---------------------------------------------------------------------- #
# Assignment properties
# ---------------------------------------------------------------------- #


@given(
    names=st.lists(
        st.text(alphabet="abcdefgh_0123456789", min_size=1, max_size=20),
        unique=True,
        max_size=40,
    ),
    n_shards=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_assign_shards_balanced_partition(names, n_shards):
    slices = assign_shards(names, n_shards)
    assert len(slices) == n_shards
    flat = [name for part in slices for name in part]
    assert sorted(flat) == sorted(names)  # a partition: nothing lost, nothing doubled
    sizes = [len(part) for part in slices]
    assert max(sizes) - min(sizes) <= 1  # balanced to within one video


def test_assign_shards_deterministic_in_name_set():
    names = [f"v{i}" for i in range(10)]
    shuffled = list(reversed(names))
    assert assign_shards(names, 4) == assign_shards(shuffled, 4)


def test_assign_shards_rejects_duplicates():
    with pytest.raises(ValueError):
        assign_shards(["a", "a"], 2)


def test_shard_of_is_crc32_stable():
    # Salted str.hash() would differ across processes; crc32 cannot.
    assert shard_of("video_007", 4) == zlib.crc32(b"video_007") % 4
    with pytest.raises(ValueError):
        shard_of("x", 0)


def test_coverage_fraction_and_full():
    full = Coverage.full(4)
    assert full.complete and full.fraction == 1.0 and full.label == "4/4"
    partial = Coverage(responded=(0, 2), missing=(1, 3))
    assert partial.fraction == 0.5 and not partial.complete
    assert Coverage(responded=(), missing=()).fraction == 0.0
