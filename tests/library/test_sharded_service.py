"""End-to-end tests of the sharded scatter-gather service.

Real worker processes, real pipes: the coordinator's production paths
(scatter, gather, hedging, quarantine, restart, ladder) are exercised
against live shards, with chaos delivered by picklable
:class:`~repro.faults.ShardFaultPlan`s inside the workers.

Kept deliberately small (4 videos, 2 shards) — each service spawn
indexes its catalog slice from scratch.
"""

from __future__ import annotations

import time

import pytest

from repro.dataset.build import build_australian_open
from repro.faults import ShardFaultPlan, ShardFaultSpec, ShardFaultState
from repro.library.engine import DigitalLibraryEngine
from repro.library.query import LibraryQuery
from repro.library.service import LibrarySearchService
from repro.library.sharding import (
    ShardedSearchService,
    ShardingConfig,
    format_sharded_stats,
)

N_VIDEOS = 4

MIX = [
    LibraryQuery(top_n=100),
    LibraryQuery(event="rally"),
    LibraryQuery(event="net_play", text="approach the net"),
    LibraryQuery(player={"gender": "female"}, event="service"),
    LibraryQuery(sequence=("service", "rally"), within=500),
    LibraryQuery(text="champion wins in straight sets"),
]


@pytest.fixture(scope="module")
def dataset():
    return build_australian_open(seed=0)


@pytest.fixture(scope="module")
def names(dataset):
    return [plan.name for plan in dataset.video_plans[:N_VIDEOS]]


@pytest.fixture(scope="module")
def reference(dataset, names):
    """Unsharded results for the query mix — the byte-identity baseline."""
    engine = DigitalLibraryEngine(dataset)
    service = LibrarySearchService(engine)
    for name in names:
        service.index_plan(engine.indexer.plan_named(name))
    return {id(query): service.search(query).results for query in MIX}


@pytest.fixture(scope="module")
def sharded(names):
    config = ShardingConfig(n_shards=2, budget_seconds=30.0)
    with ShardedSearchService(names, seed=0, config=config) as service:
        yield service


class TestHealthyServing:
    def test_results_byte_identical_to_unsharded(self, sharded, reference):
        for query in MIX:
            served = sharded.search(query, bypass_cache=True)
            assert served.coverage.complete, served.coverage
            assert served.results == reference[id(query)]
            assert not served.stale and not served.rejected

    def test_cache_hit_on_stable_generation_vector(self, sharded):
        first = sharded.search(MIX[1])
        again = sharded.search(MIX[1])
        assert again.cache_hit and not first.cache_hit or first.cache_hit
        assert again.results == first.results
        assert again.generations == first.generations

    def test_every_answer_carries_coverage(self, sharded):
        served = sharded.search(MIX[0])
        assert served.coverage.total == 2
        assert served.coverage.label == "2/2"
        assert len(served.generations) == 2

    def test_stats_shape(self, sharded):
        stats = sharded.stats()
        assert stats.queries > 0
        assert len(stats.shards) == 2
        assert stats.generations == sharded.generations
        for row in stats.shards:
            assert row.alive and row.breaker_state == "closed"
            assert row.videos == N_VIDEOS // 2
        rendered = format_sharded_stats(stats)
        assert "generation vector" in rendered and "[0]" in rendered

    def test_index_video_moves_the_vector(self, dataset, names):
        extra = dataset.video_plans[N_VIDEOS].name
        config = ShardingConfig(n_shards=2, budget_seconds=30.0)
        with ShardedSearchService(names, seed=0, config=config) as service:
            before = service.generations
            shard_id = service.index_video(extra)
            after = service.generations
            assert sum(after) == sum(before) + 1
            assert after[shard_id] == before[shard_id] + 1
            served = service.search(MIX[0])
            assert served.generations == after


class TestShardLoss:
    def test_kill_yields_labeled_partial_within_deadline_then_recovers(self, names):
        plan = ShardFaultPlan.dead(shard=1, after=1)
        config = ShardingConfig(
            n_shards=2,
            budget_seconds=5.0,
            quarantine_cooldown=0.2,
            probe_interval=0.05,
        )
        with ShardedSearchService(
            names, seed=0, fault_plan=plan, config=config
        ) as service:
            warm = service.search(MIX[1], bypass_cache=True)  # clean delivery
            assert warm.coverage.complete

            killed = service.search(MIX[1], bypass_cache=True)  # delivers the kill
            assert killed.coverage.label == "1/2"
            assert killed.coverage.missing == (1,)
            assert not killed.rejected  # partial is an answer, not an error
            assert killed.seconds < 5.0  # within the request deadline

            # While down, coverage stays honestly partial or stale-served;
            # the prober respawns the worker (deterministic slice rebuild).
            deadline = time.monotonic() + 120.0
            recovered = killed
            while time.monotonic() < deadline and not recovered.coverage.complete:
                time.sleep(0.1)
                recovered = service.search(MIX[1], bypass_cache=True)
            assert recovered.coverage.complete
            assert recovered.results == warm.results  # rebuilt replica, same slice
            stats = service.stats()
            assert stats.shards[1].restarts == 1
            assert stats.rejected == 0

    def test_all_shards_failing_serves_stale_then_rejects(self, dataset, names):
        specs = tuple(
            spec
            for shard in range(2)
            for spec in ShardFaultPlan.failing(shard, times=None, after=1).specs
        )
        plan = ShardFaultPlan(specs=specs)
        extra = dataset.video_plans[N_VIDEOS].name
        config = ShardingConfig(
            n_shards=2,
            budget_seconds=5.0,
            min_coverage=2,
            quarantine_cooldown=60.0,  # no recovery during the test
        )
        with ShardedSearchService(
            names, seed=0, fault_plan=plan, config=config
        ) as service:
            warm = service.search(MIX[1])  # fills cache and the stale store
            service.index_video(extra)  # vector moves; cache misses now
            stale = service.search(MIX[1])
            assert stale.stale
            assert stale.results == warm.results
            assert stale.generations == warm.generations  # the older vector
            # bypass_cache disables the stale rung -> typed rejection
            rejected = service.search(MIX[1], bypass_cache=True)
            assert rejected.rejection == "no_coverage"
            assert rejected.results == []
            assert rejected.coverage.responded == ()


class TestHedging:
    def test_straggler_is_hedged_and_first_response_wins(self, names, reference):
        # The delay fires once per delivery; the hedged duplicate runs
        # clean on the worker's second pool thread and overtakes it.
        plan = ShardFaultPlan.straggler(shard=0, seconds=3.0, times=1)
        config = ShardingConfig(
            n_shards=2, budget_seconds=10.0, hedge_min_seconds=0.05
        )
        with ShardedSearchService(
            names, seed=0, fault_plan=plan, config=config
        ) as service:
            served = service.search(MIX[1], bypass_cache=True)
            assert served.coverage.complete
            assert served.hedged >= 1
            assert served.seconds < 3.0  # did not wait out the straggler
            assert served.results == reference[id(MIX[1])]
            assert service.stats().hedges >= 1


class TestShardFaultSpecs:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ShardFaultSpec(shard=0, mode="explode")
        with pytest.raises(ValueError):
            ShardFaultSpec(shard=-1)
        with pytest.raises(ValueError):
            ShardFaultSpec(shard=0, times=0)
        with pytest.raises(ValueError):
            ShardFaultSpec(shard=0, mode="stale_generation", generation_lag=0)
        with pytest.raises(ValueError):
            ShardFaultSpec(shard=0, after=-1)

    def test_state_counts_after_and_times(self):
        spec = ShardFaultSpec(shard=0, mode="delay", delay_seconds=0.1, after=2, times=2)
        state = ShardFaultState(0, (spec,))
        fired = [state.next_fault() is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]
        assert state.delivered == 2

    def test_state_ignores_other_shards(self):
        spec = ShardFaultSpec(shard=3, mode="error")
        state = ShardFaultState(0, (spec,))
        assert state.next_fault() is None
        wildcard = ShardFaultSpec(shard=None, mode="error", times=1)
        state = ShardFaultState(0, (wildcard,))
        assert state.next_fault() is wildcard
        assert state.next_fault() is None

    def test_plan_for_shard_filters(self):
        plan = ShardFaultPlan.dead(1).extend(ShardFaultPlan.stale(2, lag=3))
        assert [spec.mode for spec in plan.for_shard(1)] == ["kill"]
        assert [spec.mode for spec in plan.for_shard(2)] == ["stale_generation"]
        assert plan.for_shard(0) == ()

    def test_replica_validation_and_matching(self):
        with pytest.raises(ValueError):
            ShardFaultSpec(shard=0, replica=-1)
        spec = ShardFaultSpec(shard=0, mode="kill", replica=1)
        assert spec.matches(0)  # shard-only check: could fire in the group
        assert spec.matches(0, replica=1)
        assert not spec.matches(0, replica=0)
        assert not spec.matches(1, replica=1)
        wildcard = ShardFaultSpec(shard=0, mode="kill")
        assert wildcard.matches(0, replica=0) and wildcard.matches(0, replica=7)

    def test_plan_for_worker_filters_by_replica(self):
        plan = ShardFaultPlan.dead(0, replica=1).extend(
            ShardFaultPlan.straggler(0, seconds=0.1)  # whole group
        )
        assert [spec.mode for spec in plan.for_worker(0, 1)] == ["kill", "delay"]
        assert [spec.mode for spec in plan.for_worker(0, 0)] == ["delay"]
        assert plan.for_worker(1, 1) == ()

    def test_state_narrows_to_its_replica(self):
        addressed = ShardFaultSpec(shard=0, mode="error", times=1, replica=1)
        state = ShardFaultState(0, (addressed,), replica=0)
        assert state.next_fault() is None
        state = ShardFaultState(0, (addressed,), replica=1)
        assert state.next_fault() is addressed
        # pre-replication construction (no replica) keeps the shard view
        state = ShardFaultState(0, (ShardFaultSpec(shard=0, mode="error", times=1),))
        assert state.next_fault() is not None
