"""Digital library engine integration tests.

This module builds one engine with three indexed videos (the expensive
fixture) and exercises concept, content, text and combined queries
against it — the paper's demo scenario end to end.
"""

import pytest

from repro.dataset import build_australian_open
from repro.library import DigitalLibraryEngine, LibraryQuery
from repro.storage.query import hash_join


@pytest.fixture(scope="module")
def engine():
    dataset = build_australian_open(seed=7, video_shots=6)
    engine = DigitalLibraryEngine(dataset)
    engine.index_videos(limit=3)
    return engine


class TestConceptPart:
    def test_concept_players(self, engine):
        players = engine.concept_players({"gender": "female", "past_winner": True})
        assert players
        assert all(p.get("gender") == "female" and p.get("titles") > 0 for p in players)

    def test_past_winner_false(self, engine):
        losers = engine.concept_players({"past_winner": False})
        assert all(p.get("titles") == 0 for p in losers)

    def test_videos_of_players(self, engine):
        players = engine.concept_players({})
        videos = engine.videos_of_players(players)
        assert len(videos) == 3  # the indexed ones
        for names in videos.values():
            assert len(names) == 2  # both participants


class TestContentQueries:
    def test_event_only_query(self, engine):
        results = engine.search(LibraryQuery(event="net_play"))
        assert results
        for scene in results:
            assert scene.event_label == "net_play"
            assert scene.stop > scene.start

    def test_any_scene_query(self, engine):
        results = engine.search(LibraryQuery())
        assert len(results) == 3  # whole videos
        assert all(r.event_label is None for r in results)

    def test_results_sorted_by_score(self, engine):
        results = engine.search(LibraryQuery(event="rally"))
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_top_n_respected(self, engine):
        results = engine.search(LibraryQuery(event="service", top_n=2))
        assert len(results) <= 2


class TestCombinedQueries:
    def test_motivating_query_shape(self, engine):
        """Concept + content: scenes of matching players approaching the net."""
        query = LibraryQuery(
            player={"gender": "female"},
            event="net_play",
        )
        results = engine.search(query)
        # Whatever comes back must satisfy both parts.
        for scene in results:
            assert scene.event_label == "net_play"
            assert scene.players
            for name in scene.players:
                player = engine.dataset.player_objects[name]
                assert player.get("gender") == "female"

    def test_impossible_concept_returns_empty(self, engine):
        results = engine.search(
            LibraryQuery(player={"name": "Nobody Real"}, event="net_play")
        )
        assert results == []

    def test_text_part_changes_scores(self, engine):
        plain = engine.search(LibraryQuery(event="net_play"))
        with_text = engine.search(LibraryQuery(event="net_play", text="net volley"))
        if plain and with_text:
            assert {r.video_name for r in plain} >= {r.video_name for r in with_text}


class TestTextBaseline:
    def test_keyword_search_returns_hits(self, engine):
        hits = engine.keyword_search("Australian Open champion")
        assert hits

    def test_keyword_search_finds_pages_about_player(self, engine):
        champion = next(p for p in engine.dataset.players if p.titles > 0)
        hits = engine.keyword_search(champion.name, n=5)
        # Every top hit actually mentions the champion (profile page or
        # interviews about their matches — interviews often rank first
        # because they repeat the name).
        for hit in hits:
            text = engine.dataset.pages.document(hit.doc_id).text
            assert any(part in text for part in champion.name.split())


class TestCatalogExport:
    def test_export_tables(self, engine):
        catalog = engine.indexer.export_to_catalog()
        assert set(catalog.table_names) == {"videos", "shots", "objects", "events"}
        assert len(catalog.table("videos")) == 3
        assert len(catalog.table("shots")) > 0

    def test_relational_queries_work(self, engine):
        catalog = engine.indexer.export_to_catalog()
        net_ids = catalog.hash_index("events", "label").lookup("net_play")
        model_count = len(
            [e for e in engine.indexer.model.events if e.label == "net_play"]
        )
        assert len(net_ids) == model_count

    def test_join_shots_to_videos(self, engine):
        catalog = engine.indexer.export_to_catalog()
        rows = hash_join(
            catalog.table("videos"), catalog.table("shots"), "video_id", "video_id"
        )
        assert len(rows) == len(catalog.table("shots"))


class TestRefreshTextIndex:
    """Regression: refresh used to rebuild the fragmented index even
    when no pages had been added since the last build."""

    @pytest.fixture()
    def fresh_engine(self):
        return DigitalLibraryEngine(build_australian_open(seed=7, video_shots=3))

    def test_noop_when_collection_unchanged(self, fresh_engine):
        fragmented = fresh_engine.fragmented_index
        generation = fresh_engine.generation
        fresh_engine.refresh_text_index()
        assert fresh_engine.fragmented_index is fragmented  # not rebuilt
        assert fresh_engine.generation == generation

    def test_rebuilds_for_new_pages(self, fresh_engine):
        fragmented = fresh_engine.fragmented_index
        generation = fresh_engine.generation
        fresh_engine.dataset.pages.add(
            "late_page", "a surprise champion approaches the net"
        )
        fresh_engine.refresh_text_index()
        assert fresh_engine.fragmented_index is not fragmented
        assert fresh_engine.generation == generation + 1
        assert fresh_engine.fragmented_index.n_fragments == fragmented.n_fragments
        hits = fresh_engine.keyword_search("surprise champion", n=5)
        names = {fresh_engine.dataset.pages.document(h.doc_id).name for h in hits}
        assert "late_page" in names
