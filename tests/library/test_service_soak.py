"""A short in-process chaos soak: readers + writer + injected latency.

The CI matrix runs the full 10-second soak through ``repro serve-bench
--soak``; this is the same harness compressed to ~2 seconds so the
tier-1 suite exercises the serving invariants under concurrency on
every run: bounded generation lag, labeled staleness, labeled
degradation, empty rejections, and no stuck threads.
"""

import threading
import time

from repro.dataset import build_australian_open
from repro.faults import QueryFaultPlan
from repro.library import (
    DigitalLibraryEngine,
    LibraryQuery,
    LibrarySearchService,
    ResilienceConfig,
)

SOAK_SECONDS = 2.0
BUDGET_S = 0.05
FAULT_S = 0.03
N_READERS = 4

MIX = [
    LibraryQuery(event="rally"),
    LibraryQuery(event="net_play", text="approach the net"),
    LibraryQuery(sequence=("service", "rally"), within=500),
    LibraryQuery(text="champion wins in straight sets"),
]


def test_soak_invariants_hold_under_faults_and_writes():
    dataset = build_australian_open(seed=11, video_shots=2)
    engine = DigitalLibraryEngine(dataset)
    service = LibrarySearchService(
        engine,
        resilience=ResilienceConfig(
            max_concurrent=2,
            max_queue=4,
            queue_timeout=0.02,
            budget_seconds=BUDGET_S,
            breaker_cooldown=0.25,
        ),
    )
    for plan in dataset.video_plans[:1]:
        service.index_plan(plan)

    deadline = time.monotonic() + SOAK_SECONDS
    violations: list[str] = []
    served_count = [0] * N_READERS

    def reader(reader_id: int) -> None:
        step = 0
        while time.monotonic() < deadline:
            query = MIX[(reader_id + step) % len(MIX)]
            step += 1
            pre_gen = service.generation
            # Alternate cached and forced-evaluation traffic so both the
            # cache path and the ladder run under contention.
            served = service.search(query, bypass_cache=step % 3 == 0)
            served_count[reader_id] += 1
            if served.generation < pre_gen - 1:
                violations.append(
                    f"generation lag: {served.generation} < {pre_gen} - 1"
                )
            if not served.rejected and not served.stale and served.generation < pre_gen:
                violations.append("unlabeled stale result")
            if served.degraded and not served.skipped_stages:
                violations.append("degraded without skipped stages")
            if served.rejected and served.results:
                violations.append("rejected result with scenes")

    def writer() -> None:
        for plan in dataset.video_plans[1:]:
            if time.monotonic() >= deadline:
                return
            service.index_plan(plan)
            time.sleep(0.05)
        while time.monotonic() < deadline:
            service.refresh_text_index()
            time.sleep(0.05)

    fault_plan = QueryFaultPlan.latency(
        ["text_topn"], FAULT_S, jitter=FAULT_S / 2, seed=11
    )
    threads = [
        threading.Thread(target=reader, args=(i,), daemon=True)
        for i in range(N_READERS)
    ]
    threads.append(threading.Thread(target=writer, daemon=True))
    with fault_plan.install(engine):
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=SOAK_SECONDS + 10)

    stuck = [t.name for t in threads if t.is_alive()]
    assert not stuck, f"threads still alive after the soak: {stuck}"
    assert not violations, violations[:10]
    assert sum(served_count) > 0
    stats = service.stats()
    assert stats.queries == stats.cache_hits + stats.cache_misses
    # The writer actually moved the generation during the soak.
    assert service.generation > 1
