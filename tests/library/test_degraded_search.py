"""Degraded indexing at the library level.

The collection-scale property the fault-tolerance runtime exists for:
when one video's indexing is degraded by a failing detector, the batch
still completes, the degraded video keeps its upstream layers, and
search keeps serving full results from the healthy videos.
"""

import pytest

from repro.dataset import build_australian_open
from repro.faults import FaultPlan, FaultSpec
from repro.grammar.runtime import (
    DetectorStatus,
    IsolationPolicy,
    PermanentDetectorError,
    RunPolicy,
)
from repro.grammar.tennis import build_tennis_fde
from repro.library import DigitalLibraryEngine, LibraryQuery, load_model, save_model

EVENT_LABELS = ("net_play", "rally", "service", "baseline_play")


@pytest.fixture(scope="module")
def setup():
    """Two indexed videos; the first one's tennis detector always fails."""
    dataset = build_australian_open(seed=7, video_shots=6)
    fde = build_tennis_fde(policy=RunPolicy(isolation=IsolationPolicy.SKIP_SUBTREE))
    engine = DigitalLibraryEngine(dataset, fde=fde)
    degraded_name = dataset.video_plans[0].name
    healthy_name = dataset.video_plans[1].name
    plan = FaultPlan(
        [
            FaultSpec(
                detector="tennis",
                video=degraded_name,
                times=None,
                error=PermanentDetectorError,
            )
        ]
    )
    plan.install(fde.registry)
    indexed = engine.index_videos(limit=2)
    assert indexed == 2
    return engine, degraded_name, healthy_name


class TestDegradedBatch:
    def test_batch_completes_and_flags_degraded_video(self, setup):
        engine, degraded_name, healthy_name = setup
        assert engine.degraded_videos() == [degraded_name]
        names = {video.name for video in engine.indexer.model.videos}
        assert names == {degraded_name, healthy_name}

    def test_health_reports_surfaced_through_library_path(self, setup):
        engine, degraded_name, healthy_name = setup
        reports = {report.video_name: report for report in engine.indexing_health()}
        assert set(reports) == {degraded_name, healthy_name}
        degraded = reports[degraded_name]
        assert degraded.degraded
        assert degraded.failed == ["tennis"]
        assert sorted(degraded.skipped) == ["rules", "shape"]
        assert degraded.outcomes["segment"].status is DetectorStatus.OK
        healthy = reports[healthy_name]
        assert not healthy.degraded
        assert healthy.completeness == 1.0
        record = engine.indexer.indexed[degraded_name]
        assert record.health is degraded

    def test_upstream_layers_kept_for_degraded_video(self, setup):
        engine, degraded_name, _ = setup
        model = engine.indexer.model
        video = next(v for v in model.videos if v.name == degraded_name)
        assert video.degraded
        assert model.shots_of(video.video_id)  # feature layer committed
        assert not model.events_of(video_id=video.video_id)  # subtree lost

    def test_search_serves_healthy_videos_fully(self, setup):
        engine, degraded_name, healthy_name = setup
        results = [
            scene
            for label in EVENT_LABELS
            for scene in engine.search(LibraryQuery(event=label))
        ]
        assert results  # the healthy video still answers content queries
        assert {scene.video_name for scene in results} == {healthy_name}

    def test_degraded_video_still_in_library(self, setup):
        engine, degraded_name, healthy_name = setup
        results = engine.search(LibraryQuery())
        assert {scene.video_name for scene in results} == {
            degraded_name,
            healthy_name,
        }


class TestDegradedPersistence:
    def test_degraded_flag_survives_save_load(self, setup, tmp_path):
        engine, degraded_name, healthy_name = setup
        path = tmp_path / "meta.json"
        save_model(engine.indexer.model, path)
        restored = load_model(path)
        flags = {video.name: video.degraded for video in restored.videos}
        assert flags[degraded_name] is True
        assert flags[healthy_name] is False
        assert [v.name for v in restored.degraded_videos] == [degraded_name]
