"""End-to-end durability: checkpointed indexing, resume, persistent quarantine.

The acceptance properties of the durability layer at library level:

- a batch killed mid-checkpoint resumes from the journal, re-indexing
  only uncommitted videos, and the final snapshot is identical to an
  uninterrupted run (same tables, same checksum);
- a detector quarantined by consecutive failures stays quarantined in a
  fresh engine that restores the snapshot, until a version bump clears
  it.
"""

import json

import pytest

from repro.dataset import build_australian_open
from repro.faults import CrashPoint, FaultPlan, FaultSpec, SimulatedCrash
from repro.grammar.runtime import (
    DetectorStatus,
    IsolationPolicy,
    PermanentDetectorError,
    RunPolicy,
)
from repro.grammar.tennis import build_tennis_fde
from repro.library.indexing import LibraryIndexer, default_journal_path
from repro.storage.journal import IndexingJournal

N_VIDEOS = 3


def make_indexer(policy: RunPolicy | None = None) -> LibraryIndexer:
    dataset = build_australian_open(seed=7, video_shots=4)
    return LibraryIndexer(dataset, fde=build_tennis_fde(policy=policy))


def plan_names(indexer: LibraryIndexer) -> list[str]:
    return [plan.name for plan in indexer.dataset.video_plans[:N_VIDEOS]]


def snapshot_document(path) -> dict:
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """An uninterrupted checkpointed run of the first N videos."""
    path = tmp_path_factory.mktemp("reference") / "meta.json"
    indexer = make_indexer()
    records = indexer.index_checkpointed(path, limit=N_VIDEOS)
    assert len(records) == N_VIDEOS
    return snapshot_document(path)


class TestResumeAfterCrash:
    @pytest.fixture(scope="class")
    def resumed(self, tmp_path_factory):
        """Kill the batch during the second video's snapshot, then resume."""
        path = tmp_path_factory.mktemp("resumed") / "meta.json"
        crashed = make_indexer()
        with CrashPoint("snapshot-pre-replace", after=1):
            with pytest.raises(SimulatedCrash):
                crashed.index_checkpointed(path, limit=N_VIDEOS)

        journal = IndexingJournal(default_journal_path(path))
        committed_before = set(journal.committed())
        interrupted_before = journal.interrupted()

        fresh = make_indexer()
        restored = fresh.restore_snapshot(path)
        records = fresh.index_checkpointed(path, limit=N_VIDEOS, resume=True)
        return {
            "names": plan_names(fresh),
            "committed_before": committed_before,
            "interrupted_before": interrupted_before,
            "restored": restored,
            "reindexed": [record.plan.name for record in records],
            "document": snapshot_document(path),
            "journal": journal,
        }

    def test_journal_pinpoints_the_interrupted_video(self, resumed):
        names = resumed["names"]
        assert resumed["committed_before"] == {names[0]}
        assert resumed["interrupted_before"] == [names[1]]

    def test_resume_reindexes_only_uncommitted_videos(self, resumed):
        names = resumed["names"]
        assert resumed["restored"] == 1  # the crash left generation 1 on disk
        assert resumed["reindexed"] == names[1:]

    def test_resumed_snapshot_identical_to_uninterrupted_run(self, resumed, reference):
        document = resumed["document"]
        assert document["tables"] == reference["tables"]
        assert document["checksum"] == reference["checksum"]

    def test_journal_fully_committed_after_resume(self, resumed):
        journal = resumed["journal"]
        assert set(journal.committed()) == set(resumed["names"])
        assert journal.interrupted() == []

    def test_crash_between_snapshot_and_commit_record(self, tmp_path, reference):
        """The commit window: snapshot durable, commit record lost.

        Appends run begin/commit per video, so ``after=3`` kills the
        second video's *commit* — its data is already in the snapshot
        but the journal never promised it.  Resume must skip it (it is
        in the restored model) and only re-index the third video.
        """
        path = tmp_path / "meta.json"
        crashed = make_indexer()
        with CrashPoint("journal-pre-append", after=3):
            with pytest.raises(SimulatedCrash):
                crashed.index_checkpointed(path, limit=N_VIDEOS)

        fresh = make_indexer()
        restored = fresh.restore_snapshot(path)
        assert restored == 2  # both videos made it into the snapshot
        records = fresh.index_checkpointed(path, limit=N_VIDEOS, resume=True)
        assert [record.plan.name for record in records] == [plan_names(fresh)[2]]
        document = snapshot_document(path)
        assert document["tables"] == reference["tables"]
        assert document["checksum"] == reference["checksum"]


QUARANTINE_POLICY = RunPolicy(
    isolation=IsolationPolicy.QUARANTINE, quarantine_after=2
)


class TestQuarantinePersistence:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        """Quarantine the shape detector, checkpoint, hand back the path."""
        path = tmp_path_factory.mktemp("quarantine") / "meta.json"
        indexer = make_indexer(policy=QUARANTINE_POLICY)
        plan = FaultPlan(
            [FaultSpec(detector="shape", times=None, error=PermanentDetectorError)]
        )
        plan.install(indexer.fde.registry)
        indexer.index_checkpointed(path, limit=2)
        assert indexer.fde.runner.is_quarantined("shape")
        return path

    def test_runner_state_is_in_the_snapshot(self, saved):
        document = snapshot_document(saved)
        table = document["tables"]["runner_state"]
        assert "shape" in table["columns"]["detector"]

    def test_quarantine_survives_restart(self, saved):
        fresh = make_indexer(policy=QUARANTINE_POLICY)
        assert not fresh.fde.runner.is_quarantined("shape")
        fresh.restore_snapshot(saved)
        assert fresh.fde.runner.is_quarantined("shape")
        assert fresh.fde.runner.consecutive_failures("shape") == 2

    def test_restored_quarantine_keeps_detector_disabled(self, saved, tmp_path):
        """No fault plan here — only the restored state disables shape."""
        fresh = make_indexer(policy=QUARANTINE_POLICY)
        fresh.restore_snapshot(saved)
        out = tmp_path / "meta.json"
        (record,) = fresh.index_checkpointed(out, limit=3, resume=True)
        assert record.health is not None
        assert record.health.outcomes["shape"].status is DetectorStatus.QUARANTINED

    def test_version_bump_clears_restored_quarantine(self, saved):
        fresh = make_indexer(policy=QUARANTINE_POLICY)
        fresh.restore_snapshot(saved)
        fresh.fde.registry.bump_version("shape")
        assert not fresh.fde.runner.is_quarantined("shape")
        assert fresh.fde.runner.export_state()["quarantined_version"] == {}
