"""Parallel indexing must be invisible in the results.

The acceptance property of the wave scheduler and the staged committer:
for any worker count, the final snapshot (tables *and* checksum), the
journal, and every health report are identical to a sequential run —
including under fault injection, where failure accounting and quarantine
transitions happen on worker threads.
"""

import dataclasses
import json

import pytest

from repro.dataset import build_australian_open
from repro.faults import CrashPoint, FaultPlan, FaultSpec, SimulatedCrash
from repro.grammar.runtime import (
    IsolationPolicy,
    PermanentDetectorError,
    RunPolicy,
)
from repro.grammar.tennis import build_tennis_fde
from repro.library.indexing import LibraryIndexer

N_VIDEOS = 4
WORKER_MATRIX = [1, 2, 8]


def make_indexer(workers: int, policy: RunPolicy | None = None) -> LibraryIndexer:
    dataset = build_australian_open(seed=7, video_shots=4)
    if policy is None:
        policy = RunPolicy()
    fde = build_tennis_fde(policy=dataclasses.replace(policy, max_workers=workers))
    return LibraryIndexer(dataset, fde=fde)


def snapshot_document(path) -> dict:
    return json.loads(path.read_text())


def outcome_projection(outcome) -> tuple:
    """Everything deterministic about a DetectorOutcome (no wall clock)."""
    return (
        outcome.name,
        outcome.status,
        outcome.attempts,
        outcome.retries,
        type(outcome.error).__name__ if outcome.error is not None else None,
        outcome.error_kind,
        outcome.skipped_because,
    )


def health_projection(indexer: LibraryIndexer) -> list:
    """Per-video health reports minus the inherently non-deterministic
    ``elapsed`` fields, preserving outcome order."""
    out = []
    for report in indexer.health_reports():
        out.append(
            (
                report.video_name,
                report.degraded,
                [outcome_projection(o) for o in report.outcomes.values()],
            )
        )
    return out


def checkpointed_run(tmp_path, workers, policy=None, fault_plan=None):
    path = tmp_path / f"w{workers}" / "meta.json"
    path.parent.mkdir()
    indexer = make_indexer(workers, policy=policy)
    if fault_plan is not None:
        fault_plan().install(indexer.fde.registry)
    records = indexer.index_checkpointed(path, limit=N_VIDEOS, workers=workers)
    journal = path.with_name(path.name + ".journal").read_bytes()
    return {
        "records": [record.plan.name for record in records],
        "document": snapshot_document(path),
        "journal": journal,
        "health": health_projection(indexer),
        "runner_state": indexer.fde.runner.export_state(),
    }


class TestWorkerMatrix:
    """Snapshot, journal and health identical for workers in {1, 2, 8}."""

    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("matrix")
        return {w: checkpointed_run(tmp_path, w) for w in WORKER_MATRIX}

    def test_snapshot_tables_identical(self, runs):
        for workers in WORKER_MATRIX[1:]:
            assert runs[workers]["document"]["tables"] == runs[1]["document"]["tables"]

    def test_snapshot_checksum_identical(self, runs):
        for workers in WORKER_MATRIX[1:]:
            assert runs[workers]["document"]["checksum"] == runs[1]["document"]["checksum"]

    def test_journal_bytes_identical(self, runs):
        for workers in WORKER_MATRIX[1:]:
            assert runs[workers]["journal"] == runs[1]["journal"]

    def test_health_reports_identical(self, runs):
        for workers in WORKER_MATRIX[1:]:
            assert runs[workers]["health"] == runs[1]["health"]

    def test_all_videos_indexed(self, runs):
        for workers in WORKER_MATRIX:
            assert len(runs[workers]["records"]) == N_VIDEOS


SKIP_POLICY = RunPolicy(isolation=IsolationPolicy.SKIP_SUBTREE)
QUARANTINE_POLICY = RunPolicy(
    isolation=IsolationPolicy.QUARANTINE, quarantine_after=2
)


def failing_tennis_plan() -> FaultPlan:
    """Permanent failure in the middle of the DAG, every video: the
    whole ``tennis`` subtree (player, shape, rules) must be skipped
    identically at any worker count."""
    return FaultPlan(
        [FaultSpec(detector="tennis", times=None, error=PermanentDetectorError)]
    )


class TestFaultInjectionMatrix:
    """Degraded commits and quarantine transitions stay deterministic."""

    @pytest.fixture(scope="class")
    def skip_runs(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("skip")
        return {
            w: checkpointed_run(
                tmp_path, w, policy=SKIP_POLICY, fault_plan=failing_tennis_plan
            )
            for w in WORKER_MATRIX
        }

    @pytest.fixture(scope="class")
    def quarantine_runs(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("quarantine")
        return {
            w: checkpointed_run(
                tmp_path, w, policy=QUARANTINE_POLICY, fault_plan=failing_tennis_plan
            )
            for w in WORKER_MATRIX
        }

    def test_skip_subtree_snapshots_identical(self, skip_runs):
        for workers in WORKER_MATRIX[1:]:
            assert (
                skip_runs[workers]["document"]["checksum"]
                == skip_runs[1]["document"]["checksum"]
            )
            assert (
                skip_runs[workers]["document"]["tables"]
                == skip_runs[1]["document"]["tables"]
            )

    def test_skip_subtree_health_identical_and_degraded(self, skip_runs):
        for workers in WORKER_MATRIX[1:]:
            assert skip_runs[workers]["health"] == skip_runs[1]["health"]
        assert all(degraded for _, degraded, _outcomes in skip_runs[1]["health"])

    def test_quarantine_trips_identically(self, quarantine_runs):
        reference = quarantine_runs[1]["runner_state"]
        assert reference["quarantined_version"].keys() == {"tennis"}
        for workers in WORKER_MATRIX[1:]:
            assert quarantine_runs[workers]["runner_state"] == reference

    def test_quarantine_snapshots_identical(self, quarantine_runs):
        for workers in WORKER_MATRIX[1:]:
            assert (
                quarantine_runs[workers]["document"]["checksum"]
                == quarantine_runs[1]["document"]["checksum"]
            )


class TestCrashRecoveryParallel:
    """The PR 2 killed-writer property holds at --workers 4."""

    def test_resume_after_crash_with_workers(self, tmp_path):
        reference_path = tmp_path / "reference.json"
        make_indexer(1).index_checkpointed(reference_path, limit=3)
        reference = snapshot_document(reference_path)

        path = tmp_path / "meta.json"
        crashed = make_indexer(4)
        with CrashPoint("snapshot-pre-replace", after=1):
            with pytest.raises(SimulatedCrash):
                crashed.index_checkpointed(path, limit=3, workers=4)

        fresh = make_indexer(4)
        restored = fresh.restore_snapshot(path)
        assert restored == 1
        records = fresh.index_checkpointed(path, limit=3, resume=True, workers=4)
        assert len(records) == 2
        document = snapshot_document(path)
        assert document["tables"] == reference["tables"]
        assert document["checksum"] == reference["checksum"]
