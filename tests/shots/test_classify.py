"""Shot classification tests."""

import numpy as np
import pytest

from repro.shots.classify import (
    NaiveBayesShotClassifier,
    RuleBasedShotClassifier,
    ShotFeatureExtractor,
    ShotFeatures,
)
from repro.video.shots import (
    AudienceSpec,
    CloseUpSpec,
    CourtShotSpec,
    OtherSpec,
    ShotCategory,
)

H, W, SIGMA = 96, 128, 6.0


def render(spec, rng):
    return spec.render(H, W, rng, SIGMA).frames


def features_of(spec, rng, extractor=None):
    return (extractor or ShotFeatureExtractor()).extract(render(spec, rng))


@pytest.fixture
def rng():
    return np.random.default_rng(17)


def make_features(**overrides):
    base = dict(
        court_coverage=0.0,
        skin_ratio=0.0,
        entropy=2.0,
        mean=100.0,
        variance=500.0,
        dominant=(0.0, 0.0, 0.0),
        dominant_coverage=0.5,
    )
    base.update(overrides)
    return ShotFeatures(**base)


class TestExtractor:
    def test_sample_indices_spread(self):
        extractor = ShotFeatureExtractor(samples=3)
        indices = extractor.sample_indices(60)
        assert indices == [10, 30, 50]

    def test_sample_indices_short_shot(self):
        extractor = ShotFeatureExtractor(samples=3)
        assert extractor.sample_indices(2) == [0, 1]

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            ShotFeatureExtractor(samples=0)

    def test_court_shot_features(self, rng):
        feats = features_of(CourtShotSpec(n_frames=15), rng)
        assert feats.court_coverage > 0.35
        assert feats.skin_ratio < 0.05

    def test_closeup_features(self, rng):
        feats = features_of(CloseUpSpec(n_frames=10), rng)
        assert feats.skin_ratio > 0.15
        assert feats.court_coverage < 0.05

    def test_extract_from_clip_range_checked(self, broadcast):
        clip, _ = broadcast
        extractor = ShotFeatureExtractor()
        with pytest.raises(ValueError):
            extractor.extract_from_clip(clip, 10, 5)


class TestRuleBasedClassifier:
    def test_priority_order(self):
        classifier = RuleBasedShotClassifier()
        assert classifier.classify(make_features(court_coverage=0.5)) == ShotCategory.TENNIS
        assert classifier.classify(make_features(skin_ratio=0.3)) == ShotCategory.CLOSEUP
        assert classifier.classify(make_features(entropy=5.0)) == ShotCategory.AUDIENCE
        assert classifier.classify(make_features()) == ShotCategory.OTHER

    def test_court_beats_skin(self):
        classifier = RuleBasedShotClassifier()
        feats = make_features(court_coverage=0.5, skin_ratio=0.5)
        assert classifier.classify(feats) == ShotCategory.TENNIS

    def test_disabled_rule_falls_through(self):
        classifier = RuleBasedShotClassifier(court_coverage_min=None)
        feats = make_features(court_coverage=0.9, entropy=5.0)
        assert classifier.classify(feats) == ShotCategory.AUDIENCE

    @pytest.mark.parametrize(
        "spec,expected",
        [
            (CourtShotSpec(n_frames=15), ShotCategory.TENNIS),
            (CloseUpSpec(n_frames=10), ShotCategory.CLOSEUP),
            (AudienceSpec(n_frames=10), ShotCategory.AUDIENCE),
            (OtherSpec(n_frames=10), ShotCategory.OTHER),
        ],
    )
    def test_classifies_rendered_shots(self, spec, expected, rng):
        feats = features_of(spec, rng)
        assert RuleBasedShotClassifier().classify(feats) == expected


class TestNaiveBayes:
    def _training_set(self, rng, per_class=6):
        """Labelled shots across the camera gain range (as a broadcast has)."""
        feats, labels = [], []
        for make_spec, label in (
            (lambda g: CourtShotSpec(n_frames=12, gain=g), ShotCategory.TENNIS),
            (lambda g: CloseUpSpec(n_frames=10, gain=g), ShotCategory.CLOSEUP),
            (lambda g: AudienceSpec(n_frames=10, gain=g), ShotCategory.AUDIENCE),
            (lambda g: OtherSpec(n_frames=10, gain=g), ShotCategory.OTHER),
        ):
            for k in range(per_class):
                gain = 0.85 + 0.3 * k / max(per_class - 1, 1)
                feats.append(features_of(make_spec(gain), rng))
                labels.append(label)
        return feats, labels

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NaiveBayesShotClassifier().classify(make_features())

    def test_fit_and_classify(self, rng):
        feats, labels = self._training_set(rng)
        clf = NaiveBayesShotClassifier().fit(feats, labels)
        correct = sum(
            clf.classify(f) == label for f, label in zip(feats, labels)
        )
        assert correct / len(feats) >= 0.9

    def test_generalises_to_new_shots(self, rng):
        feats, labels = self._training_set(rng)
        clf = NaiveBayesShotClassifier().fit(feats, labels)
        fresh = features_of(CourtShotSpec(n_frames=12, gain=0.9), rng)
        assert clf.classify(fresh) == ShotCategory.TENNIS

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            NaiveBayesShotClassifier().fit([make_features()], [])

    def test_empty_training(self):
        with pytest.raises(ValueError):
            NaiveBayesShotClassifier().fit([], [])

    def test_posteriors_align_with_classes(self, rng):
        feats, labels = self._training_set(rng, per_class=3)
        clf = NaiveBayesShotClassifier().fit(feats, labels)
        posts = clf.log_posteriors(feats[0])
        assert len(posts) == len(clf.classes_)
