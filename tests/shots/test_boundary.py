"""Shot boundary detection tests."""

import numpy as np
import pytest

from repro.shots.boundary import (
    AdaptiveCutDetector,
    Boundary,
    ThresholdCutDetector,
    TwinComparisonDetector,
    frame_distances,
)
from repro.video.transitions import dissolve_frames


def solid(value, n=1):
    return [np.full((24, 32, 3), value, dtype=np.uint8) for _ in range(n)]


def two_shot_sequence():
    """10 dark frames, hard cut, 10 bright frames."""
    return solid(20, 10) + solid(220, 10)


class TestBoundaryRecord:
    def test_cut_span(self):
        assert Boundary(frame=5).span == (5, 6)

    def test_gradual_span(self):
        assert Boundary(frame=5, kind="gradual", length=4).span == (5, 9)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Boundary(frame=5, kind="wipe")

    def test_rejects_frame_zero(self):
        with pytest.raises(ValueError):
            Boundary(frame=0)


class TestFrameDistances:
    def test_first_entry_zero(self):
        d = frame_distances(two_shot_sequence())
        assert d[0] == 0.0

    def test_spike_at_cut(self):
        d = frame_distances(two_shot_sequence())
        assert d[10] > 0.9
        assert d[5] < 0.05

    def test_length(self):
        assert len(frame_distances(two_shot_sequence())) == 20

    def test_static_sequence_all_zero(self):
        d = frame_distances(solid(50, 5))
        assert np.allclose(d, 0.0)


class TestThresholdCutDetector:
    def test_finds_single_cut(self):
        cuts = ThresholdCutDetector(0.35).detect(two_shot_sequence())
        assert [b.frame for b in cuts] == [10]
        assert cuts[0].kind == "cut"

    def test_no_cuts_in_static_clip(self):
        assert ThresholdCutDetector().detect(solid(50, 8)) == []

    def test_consecutive_spikes_collapse(self):
        frames = solid(20, 5) + solid(120, 1) + solid(220, 5)
        cuts = ThresholdCutDetector(0.35).detect(frames)
        assert len(cuts) == 1
        assert cuts[0].frame == 5

    def test_score_records_peak(self):
        cuts = ThresholdCutDetector(0.35).detect(two_shot_sequence())
        assert cuts[0].score > 0.9

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ThresholdCutDetector(0.0)
        with pytest.raises(ValueError):
            ThresholdCutDetector(1.5)


class TestAdaptiveCutDetector:
    def test_finds_cut(self):
        cuts = AdaptiveCutDetector().detect(two_shot_sequence())
        assert [b.frame for b in cuts] == [10]

    def test_short_clip_returns_nothing(self):
        assert AdaptiveCutDetector().detect(solid(10, 2)) == []

    def test_floor_protects_static_clip(self):
        # Pure noise-free static clip: median/MAD are 0; floor prevents firing.
        assert AdaptiveCutDetector().detect(solid(77, 30)) == []

    def test_k_validation(self):
        with pytest.raises(ValueError):
            AdaptiveCutDetector(k=0)


class TestTwinComparison:
    def test_detects_cut_as_cut(self):
        boundaries = TwinComparisonDetector().detect(two_shot_sequence())
        assert len(boundaries) == 1
        assert boundaries[0].kind == "cut"
        assert boundaries[0].frame == 10

    def test_detects_dissolve_as_gradual(self):
        a = solid(20, 8)
        b = solid(220, 8)
        middle = dissolve_frames(a[-1], b[0], 10)
        boundaries = TwinComparisonDetector().detect(a + middle + b)
        gradual = [x for x in boundaries if x.kind == "gradual"]
        assert len(gradual) == 1
        start, stop = gradual[0].span
        assert 6 <= start <= 10
        assert 16 <= stop <= 20

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            TwinComparisonDetector(high=0.1, low=0.5)

    def test_merge_gap_validation(self):
        with pytest.raises(ValueError):
            TwinComparisonDetector(merge_gap=-1)

    def test_static_clip_empty(self):
        assert TwinComparisonDetector().detect(solid(33, 12)) == []
