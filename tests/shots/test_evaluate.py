"""Boundary/classification scoring tests."""

import numpy as np
import pytest

from repro.shots.boundary import Boundary, ThresholdCutDetector, TwinComparisonDetector
from repro.shots.evaluate import (
    MatchResult,
    boundary_scores,
    category_accuracy,
    confusion_matrix,
    transition_scores,
)
from repro.shots.segmenter import SegmentDetector
from repro.video.ground_truth import GroundTruth, TransitionTruth


def cuts(*frames):
    return [Boundary(frame=f) for f in frames]


class TestMatchResult:
    def test_precision_recall_f1(self):
        result = MatchResult(true_positives=8, false_positives=2, false_negatives=2)
        assert result.precision == pytest.approx(0.8)
        assert result.recall == pytest.approx(0.8)
        assert result.f1 == pytest.approx(0.8)

    def test_empty_sets(self):
        # No detections and no truths: vacuous success.
        result = MatchResult(0, 0, 0)
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f1 == 1.0


class TestBoundaryScores:
    def test_perfect_match(self):
        result = boundary_scores(cuts(10, 20), [10, 20])
        assert result.true_positives == 2
        assert result.false_positives == 0
        assert result.false_negatives == 0

    def test_tolerance_window(self):
        result = boundary_scores(cuts(12), [10], tolerance=2)
        assert result.true_positives == 1
        result = boundary_scores(cuts(13), [10], tolerance=2)
        assert result.true_positives == 0

    def test_each_truth_matched_once(self):
        result = boundary_scores(cuts(10, 11), [10], tolerance=2)
        assert result.true_positives == 1
        assert result.false_positives == 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            boundary_scores([], [], tolerance=-1)

    def test_misses_counted(self):
        result = boundary_scores(cuts(10), [10, 50, 90])
        assert result.false_negatives == 2


class TestTransitionScores:
    def make_truth(self):
        truth = GroundTruth()
        truth.transitions.append(TransitionTruth(frame=30, kind="cut"))
        truth.transitions.append(TransitionTruth(frame=60, kind="fade", length=10))
        return truth

    def test_detection_inside_gradual_span_counts(self):
        result = transition_scores(cuts(65), self.make_truth())
        assert result.true_positives == 1
        assert result.false_negatives == 1  # the cut at 30 is missed

    def test_one_match_per_transition(self):
        result = transition_scores(cuts(62, 65, 68), self.make_truth())
        assert result.true_positives == 1
        assert result.false_positives == 2


class TestConfusion:
    def test_perfect_pipeline_confusion_is_diagonal(self, broadcast):
        clip, truth = broadcast
        detector = SegmentDetector(boundary_detector=TwinComparisonDetector())
        matrix = confusion_matrix(
            detector.detect(clip), truth, ("tennis", "closeup", "audience", "other")
        )
        off_diagonal = matrix.sum() - np.trace(matrix)
        assert off_diagonal / max(matrix.sum(), 1) < 0.05
        assert category_accuracy(matrix) > 0.95

    def test_unknown_category_rejected(self, broadcast):
        _clip, truth = broadcast
        from repro.shots.segmenter import DetectedShot
        from repro.shots.classify import ShotFeatures

        feats = ShotFeatures(0, 0, 0, 0, 0, (0, 0, 0), 0)
        fake = [DetectedShot(0, 5, "weird", feats)]
        with pytest.raises(ValueError):
            confusion_matrix(fake, truth, ("tennis",))

    def test_accuracy_of_empty_matrix(self):
        assert category_accuracy(np.zeros((2, 2), dtype=np.int64)) == 1.0


class TestEndToEndScores:
    """The E2 shapes on the shared fixture broadcast."""

    def test_threshold_detector_full_cut_recall(self, broadcast):
        clip, truth = broadcast
        result = boundary_scores(
            ThresholdCutDetector(0.35).detect(clip), truth.cut_frames
        )
        assert result.recall >= 0.9

    def test_twin_beats_threshold_on_precision(self, broadcast):
        clip, truth = broadcast
        threshold = boundary_scores(
            ThresholdCutDetector(0.35).detect(clip), truth.cut_frames
        )
        twin_cuts = [
            b for b in TwinComparisonDetector().detect(clip) if b.kind == "cut"
        ]
        twin = boundary_scores(twin_cuts, truth.cut_frames)
        assert twin.precision >= threshold.precision

    def test_twin_finds_gradual_transitions(self, broadcast):
        clip, truth = broadcast
        gradual = [
            b for b in TwinComparisonDetector().detect(clip) if b.kind == "gradual"
        ]
        spans = [s for s, _ in truth.gradual_spans]
        if spans:
            result = boundary_scores(gradual, spans, tolerance=4)
            assert result.recall >= 0.5
