"""Court-colour calibration tests."""

import numpy as np
import pytest

from repro.shots.boundary import TwinComparisonDetector
from repro.shots.calibrate import (
    CalibrationError,
    calibrated_extractor,
    estimate_court_color,
)
from repro.shots.evaluate import category_accuracy, confusion_matrix
from repro.shots.segmenter import SegmentDetector
from repro.video.court import CourtStyle
from repro.video.frames import VideoClip
from repro.video.generator import BroadcastConfig, BroadcastGenerator
from repro.video.shots import CourtShotSpec, ShotCategory

CLAY = CourtStyle(surface=(165, 85, 50), surround=(60, 90, 40))


def clay_broadcast(seed=5):
    """A broadcast from a clay tournament (non-default court colour)."""
    generator = BroadcastGenerator(BroadcastConfig(gradual_fraction=0.0), seed=seed)
    specs = generator.sample_specs(10)
    specs = [
        CourtShotSpec(n_frames=s.n_frames, script=s.script, style=CLAY, gain=s.gain)
        if isinstance(s, CourtShotSpec)
        else s
        for s in specs
    ]
    return generator.assemble(specs, name="clay")


class TestEstimate:
    def test_default_tournament(self, broadcast):
        clip, _truth = broadcast
        color = estimate_court_color(clip)
        assert np.linalg.norm(color - np.array([40, 130, 80])) < 30

    def test_clay_tournament(self):
        clip, _truth = clay_broadcast()
        color = estimate_court_color(clip)
        assert np.linalg.norm(color - np.array(CLAY.surface)) < 30

    def test_no_court_raises(self):
        rng = np.random.default_rng(0)
        frames = [
            rng.integers(0, 255, size=(32, 32, 3)).astype(np.uint8) for _ in range(8)
        ]
        with pytest.raises(CalibrationError):
            estimate_court_color(VideoClip(frames), min_coverage=0.5)

    def test_validation(self, broadcast):
        clip, _ = broadcast
        with pytest.raises(ValueError):
            estimate_court_color(clip, n_samples=0)


class TestCalibratedClassification:
    def test_clay_shots_classified_with_calibration(self):
        clip, truth = clay_broadcast(seed=6)
        extractor = calibrated_extractor(clip)
        detector = SegmentDetector(
            boundary_detector=TwinComparisonDetector(), extractor=extractor
        )
        matrix = confusion_matrix(detector.detect(clip), truth, ShotCategory.ALL)
        assert category_accuracy(matrix) > 0.85

    def test_default_extractor_fails_on_clay(self):
        """Without calibration the court rule misses clay courts entirely."""
        clip, truth = clay_broadcast(seed=6)
        detector = SegmentDetector(boundary_detector=TwinComparisonDetector())
        detected = detector.detect(clip)
        tennis_found = sum(1 for s in detected if s.category == ShotCategory.TENNIS)
        assert tennis_found == 0
