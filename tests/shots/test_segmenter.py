"""Segment detector (facade) tests."""

import pytest

from repro.shots.boundary import TwinComparisonDetector
from repro.shots.segmenter import SegmentDetector


@pytest.fixture(scope="module")
def detected(broadcast):
    clip, _truth = broadcast
    detector = SegmentDetector(boundary_detector=TwinComparisonDetector())
    return detector.detect(clip)


class TestShotRanges:
    def test_ranges_ordered_and_disjoint(self, broadcast):
        clip, _ = broadcast
        detector = SegmentDetector(boundary_detector=TwinComparisonDetector())
        ranges = detector.shot_ranges(clip)
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert s1 < e1 <= s2 < e2

    def test_min_shot_length_respected(self, broadcast):
        clip, _ = broadcast
        detector = SegmentDetector(
            boundary_detector=TwinComparisonDetector(), min_shot_length=8
        )
        assert all(b - a >= 8 for a, b in detector.shot_ranges(clip))

    def test_min_shot_length_validation(self):
        with pytest.raises(ValueError):
            SegmentDetector(min_shot_length=0)


class TestDetect:
    def test_shot_count_close_to_truth(self, detected, broadcast):
        _clip, truth = broadcast
        assert abs(len(detected) - len(truth.shots)) <= 2

    def test_categories_match_truth(self, detected, broadcast):
        """Each detected shot's category agrees with the frame-majority truth."""
        _clip, truth = broadcast
        for shot in detected:
            truths = [
                truth.category_at(f)
                for f in range(shot.start, shot.stop)
                if truth.category_at(f) is not None
            ]
            if not truths:
                continue
            majority = max(set(truths), key=truths.count)
            assert shot.category == majority

    def test_features_attached(self, detected):
        for shot in detected:
            assert 0.0 <= shot.features.skin_ratio <= 1.0
            assert shot.features.entropy >= 0.0

    def test_lengths_positive(self, detected):
        assert all(s.length > 0 for s in detected)
