"""Keyframe selection tests."""

import numpy as np
import pytest

from repro.shots.keyframes import keyframe_index, keyframes_for_shots
from repro.video.frames import VideoClip


def clip_with_outlier():
    """Eight near-identical dark frames with one bright outlier."""
    frames = [np.full((16, 16, 3), 40, dtype=np.uint8) for _ in range(8)]
    frames[3] = np.full((16, 16, 3), 230, dtype=np.uint8)
    return VideoClip(frames)


class TestKeyframeIndex:
    def test_avoids_outlier(self):
        clip = clip_with_outlier()
        index = keyframe_index(clip, 0, len(clip))
        assert index != 3

    def test_absolute_index(self):
        clip = clip_with_outlier()
        index = keyframe_index(clip, 4, 8)
        assert 4 <= index < 8

    def test_single_frame_shot(self):
        clip = clip_with_outlier()
        assert keyframe_index(clip, 2, 3) == 2

    def test_range_validation(self):
        clip = clip_with_outlier()
        with pytest.raises(ValueError):
            keyframe_index(clip, 5, 5)
        with pytest.raises(ValueError):
            keyframe_index(clip, 0, 99)
        with pytest.raises(ValueError):
            keyframe_index(clip, 0, 3, sample_step=0)

    def test_keyframe_represents_shot(self, broadcast):
        """On a real shot the keyframe is never a transition-adjacent frame."""
        clip, truth = broadcast
        shot = truth.shots[0]
        index = keyframe_index(clip, shot.start, shot.stop)
        assert shot.start <= index < shot.stop


class TestKeyframesForShots:
    def test_one_per_shot(self, broadcast):
        clip, truth = broadcast
        ranges = [(s.start, s.stop) for s in truth.shots[:4]]
        keyframes = keyframes_for_shots(clip, ranges)
        assert len(keyframes) == 4
        for index, (start, stop) in zip(keyframes, ranges):
            assert start <= index < stop
