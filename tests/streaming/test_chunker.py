"""FrameChunk / iter_chunks tests."""

import numpy as np
import pytest

from repro.streaming import FrameChunk, iter_chunks


def _frames(n, start=0):
    return tuple(np.full((4, 4, 3), start + i, dtype=np.uint8) for i in range(n))


class TestFrameChunk:
    def test_stop_and_len(self):
        chunk = FrameChunk(stream="s", seq=0, start=10, frames=_frames(5))
        assert len(chunk) == 5
        assert chunk.stop == 15

    def test_tail_from_inside(self):
        chunk = FrameChunk(stream="s", seq=0, start=10, frames=_frames(5))
        tail = chunk.tail_from(12)
        assert tail.start == 12
        assert len(tail) == 3
        assert tail.stream == "s"

    def test_tail_from_before_start_is_whole_chunk(self):
        chunk = FrameChunk(stream="s", seq=0, start=10, frames=_frames(5))
        assert chunk.tail_from(3) is chunk

    def test_tail_from_past_end_is_empty(self):
        chunk = FrameChunk(stream="s", seq=0, start=10, frames=_frames(5))
        assert len(chunk.tail_from(99)) == 0


class TestIterChunks:
    def test_covers_every_frame_once(self):
        clip = list(_frames(50))
        chunks = list(iter_chunks(clip, 24, stream="s"))
        assert [c.start for c in chunks] == [0, 24, 48]
        assert [len(c) for c in chunks] == [24, 24, 2]
        assert sum(len(c) for c in chunks) == 50

    def test_final_flag_only_on_last(self):
        clip = list(_frames(50))
        finals = [c.final for c in iter_chunks(clip, 24)]
        assert finals == [False, False, True]

    def test_exact_multiple_still_marks_final(self):
        clip = list(_frames(48))
        chunks = list(iter_chunks(clip, 24))
        assert len(chunks) == 2
        assert chunks[-1].final

    def test_resume_start(self):
        clip = list(_frames(50))
        chunks = list(iter_chunks(clip, 24, start=24))
        assert [c.start for c in chunks] == [24, 48]
        assert chunks[-1].final

    def test_resume_past_end_emits_empty_final_marker(self):
        clip = list(_frames(50))
        chunks = list(iter_chunks(clip, 24, start=50))
        assert len(chunks) == 1
        assert chunks[0].final
        assert len(chunks[0]) == 0
        assert chunks[0].start == 50

    def test_rejects_zero_chunk_frames(self):
        with pytest.raises(ValueError):
            next(iter_chunks(list(_frames(5)), 0))

    def test_clock_stamps_arrival(self):
        clip = list(_frames(10))
        ticks = iter([1.0, 2.0])
        chunks = list(iter_chunks(clip, 5, clock=lambda: next(ticks)))
        assert [c.arrived_at for c in chunks] == [1.0, 2.0]

    def test_unstamped_without_clock(self):
        assert all(
            c.arrived_at is None for c in iter_chunks(list(_frames(10)), 5)
        )
