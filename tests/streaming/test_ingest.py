"""StreamIngestor: backpressure, shed labeling, quarantine, health."""

import threading
import time

import pytest

from repro.dataset import build_australian_open
from repro.grammar.runtime import RunPolicy
from repro.grammar.tennis import build_tennis_fde
from repro.library.indexing import LibraryIndexer
from repro.streaming import FrameChunk, StreamConfig, StreamIngestor, iter_chunks


@pytest.fixture(scope="module")
def plan_and_clip():
    dataset = build_australian_open(seed=7, video_shots=4)
    plan = dataset.video_plans[0]
    clip, _truth = plan.materialise()
    return plan, clip


def make_ingestor(config=None, **kwargs):
    dataset = build_australian_open(seed=7, video_shots=4)
    indexer = LibraryIndexer(dataset, fde=build_tennis_fde())
    return StreamIngestor(indexer, config=config or StreamConfig(), **kwargs)


def wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.005)


class TestLifecycle:
    def test_full_feed_ends_done(self, plan_and_clip):
        plan, clip = plan_and_clip
        ingestor = make_ingestor()
        ingestor.open_stream(plan)
        for chunk in iter_chunks(clip, 24, stream=plan.name):
            while ingestor.backlog(plan.name) >= ingestor.config.queue_chunks - 1:
                time.sleep(0.005)
            assert ingestor.offer(chunk)
        assert ingestor.drain()
        row = ingestor.health()[plan.name]
        assert row.state == "done"
        assert row.watermark == len(clip)
        assert row.lag_sheds == 0
        assert not row.degraded_freshness
        assert row.shots > 0

    def test_double_open_rejected(self, plan_and_clip):
        plan, _clip = plan_and_clip
        ingestor = make_ingestor()
        ingestor.open_stream(plan)
        with pytest.raises(ValueError):
            ingestor.open_stream(plan)
        ingestor.drain()

    def test_unknown_stream_rejected(self, plan_and_clip):
        plan, clip = plan_and_clip
        ingestor = make_ingestor()
        chunk = next(iter_chunks(clip, 24, stream="ghost"))
        with pytest.raises(KeyError):
            ingestor.offer(chunk)
        with pytest.raises(KeyError):
            ingestor.backlog("ghost")

    def test_backlog_counts_queued_chunks(self, plan_and_clip):
        plan, clip = plan_and_clip
        lock = threading.Lock()
        ingestor = make_ingestor(commit_lock=lambda: lock)
        ingestor.open_stream(plan)
        chunks = list(iter_chunks(clip, 24, stream=plan.name))
        with lock:  # consumer blocks inside the first chunk's commit
            assert ingestor.offer(chunks[0])
            wait_for(
                lambda: ingestor.backlog(plan.name) == 0,
                message="consumer to pick up the first chunk",
            )
            assert ingestor.offer(chunks[1])
            assert ingestor.offer(chunks[2])
            assert ingestor.backlog(plan.name) == 2
        ingestor.drain()


class TestBackpressure:
    def test_overflow_sheds_oldest_with_label(self, plan_and_clip):
        plan, clip = plan_and_clip
        lock = threading.Lock()
        config = StreamConfig(queue_chunks=2)
        ingestor = make_ingestor(config=config, commit_lock=lambda: lock)
        ingestor.open_stream(plan)
        chunks = list(iter_chunks(clip, 24, stream=plan.name))
        with lock:
            ingestor.offer(chunks[0])
            wait_for(
                lambda: ingestor.backlog(plan.name) == 0,
                message="consumer to pick up the first chunk",
            )
            for chunk in chunks[1:5]:  # queue depth 2: two of these shed
                assert ingestor.offer(chunk)
            assert ingestor.backlog(plan.name) == 2
        assert ingestor.drain()
        row = ingestor.health()[plan.name]
        assert row.lag_sheds == 2
        assert row.shed_frames == 48
        assert row.degraded_freshness  # sheds are labeled, never silent
        assert row.state == "done"  # gap bridged via record_gap, tail done

    def test_stall_quarantines_stream(self, plan_and_clip):
        plan, clip = plan_and_clip
        lock = threading.Lock()
        config = StreamConfig(stall_deadline=0.02)
        ingestor = make_ingestor(config=config, commit_lock=lambda: lock)
        ingestor.open_stream(plan)
        chunks = list(iter_chunks(clip, 24, stream=plan.name))
        with lock:
            ingestor.offer(chunks[0])
            wait_for(
                lambda: ingestor.backlog(plan.name) == 0,
                message="consumer to pick up the first chunk",
            )
            ingestor.offer(chunks[1])  # primes the progress watchdog
            time.sleep(0.1)
            ingestor.offer(chunks[2])  # watchdog sees no progress -> trip
        row = ingestor.health()[plan.name]
        assert row.state == "quarantined"
        assert "stalled" in row.last_error
        assert not ingestor.offer(chunks[3])  # quarantined stream refuses


class TestQuarantineOnError:
    def test_poison_chunk_exhausts_retries(self, plan_and_clip):
        plan, _clip = plan_and_clip
        config = StreamConfig(policy=RunPolicy(max_retries=1))
        ingestor = make_ingestor(config=config, sleep=lambda _s: None)
        ingestor.open_stream(plan)
        poison = FrameChunk(stream=plan.name, seq=0, start=0, frames=("bogus",))
        assert ingestor.offer(poison)
        wait_for(
            lambda: ingestor.health()[plan.name].state == "quarantined",
            message="poison chunk to quarantine the stream",
        )
        row = ingestor.health()[plan.name]
        assert row.retries >= 1
        assert "failed after" in row.last_error
        assert not ingestor.offer(poison)
        assert ingestor.drain()


class TestExactlyOnceThroughQueue:
    def test_duplicate_chunks_are_deduped(self, plan_and_clip):
        plan, clip = plan_and_clip
        ingestor = make_ingestor()
        ingestor.open_stream(plan)
        for chunk in iter_chunks(clip, 24, stream=plan.name):
            while ingestor.backlog(plan.name) >= ingestor.config.queue_chunks - 1:
                time.sleep(0.005)
            assert ingestor.offer(chunk)
            if chunk.seq == 1 and not chunk.final:
                assert ingestor.offer(chunk)  # redelivery
        assert ingestor.drain()
        row = ingestor.health()[plan.name]
        assert row.state == "done"
        assert row.duplicates_dropped == 24
        assert row.watermark == len(clip)


class TestReporting:
    def test_stats_payload_shape(self, plan_and_clip):
        plan, clip = plan_and_clip
        ingestor = make_ingestor()
        ingestor.open_stream(plan)
        for chunk in iter_chunks(clip, 48, stream=plan.name, clock=time.monotonic):
            while ingestor.backlog(plan.name) >= ingestor.config.queue_chunks - 1:
                time.sleep(0.005)
            ingestor.offer(chunk)
        ingestor.drain()
        payload = ingestor.stats_payload()[plan.name]
        assert payload["state"] == "done"
        assert payload["frames"] == len(clip)
        assert payload["freshness_p95_ms"] is not None
        assert payload["freshness_slo_ms"] == ingestor.config.freshness_slo * 1000.0
        for key in ("chunks", "shots", "lag_sheds", "shed_frames",
                    "duplicates_dropped", "degraded_freshness"):
            assert key in payload
