"""CLI streaming ingest: repro stream, fsck chunk checks, resume."""

import threading

import pytest

from repro.cli import main
from repro.storage.crashpoints import CrashPoint, SimulatedCrash


@pytest.fixture(scope="module")
def batch_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli_batch") / "meta.json"
    assert main(["index", "--seed", "7", "--videos", "1", "--out", str(path)]) == 0
    return path.read_bytes()


@pytest.fixture
def quiet_crashes():
    """Consumer threads die by design in the kill test; mute the traceback."""
    original = threading.excepthook

    def hook(args):
        if not issubclass(args.exc_type, SimulatedCrash):
            original(args)

    threading.excepthook = hook
    yield
    threading.excepthook = original


class TestStreamCommand:
    def test_stream_matches_batch_index(self, tmp_path, batch_bytes, capsys):
        out = tmp_path / "meta.json"
        journal = tmp_path / "meta.journal"
        code = main(
            ["stream", "--seed", "7", "--videos", "1", "--out", str(out),
             "--journal", str(journal), "--chunk-frames", "24"]
        )
        assert code == 0
        assert out.read_bytes() == batch_bytes
        text = capsys.readouterr().out
        assert "done" in text

    def test_fsck_clean_after_stream(self, tmp_path, capsys):
        out = tmp_path / "meta.json"
        journal = tmp_path / "meta.journal"
        assert main(
            ["stream", "--seed", "7", "--videos", "1", "--out", str(out),
             "--journal", str(journal), "--chunk-frames", "24"]
        ) == 0
        capsys.readouterr()
        code = main(["fsck", "--metaindex", str(out), "--journal", str(journal)])
        text = capsys.readouterr().out
        assert code == 0
        assert "fsck: clean" in text
        assert "chunk" in text  # the deep chunk check reported the stream

    def test_kill_fsck_resume_roundtrip(
        self, tmp_path, batch_bytes, capsys, quiet_crashes
    ):
        out = tmp_path / "meta.json"
        journal = tmp_path / "meta.journal"
        argv = ["stream", "--seed", "7", "--videos", "1", "--out", str(out),
                "--journal", str(journal), "--chunk-frames", "24"]
        with CrashPoint("chunk-pre-commit", after=2):
            assert main(argv) == 1  # consumer died mid-commit -> quarantined
        capsys.readouterr()

        # fsck: the in-flight chunk is an orphan — recoverable, not fatal.
        code = main(["fsck", "--metaindex", str(out), "--journal", str(journal)])
        text = capsys.readouterr().out
        assert code == 0
        assert "orphaned chunk_begin" in text
        assert "recoverable" in text

        assert main(argv + ["--resume"]) == 0
        assert out.read_bytes() == batch_bytes

        # After a resume the journal's generations restart; fsck treats
        # the epoch boundary as legal, not as a stuck generation.
        capsys.readouterr()
        assert main(["fsck", "--metaindex", str(out), "--journal", str(journal)]) == 0
        text = capsys.readouterr().out
        assert "fsck: clean" in text
        assert "resume" in text
