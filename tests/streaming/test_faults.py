"""Stream chaos specs: StreamFaultPlan delivery mangling."""

import numpy as np
import pytest

from repro.faults import StreamFaultPlan, StreamFaultSpec
from repro.storage.crashpoints import SimulatedCrash, trip
from repro.streaming import FrameChunk


def make_chunk(start=0, n=10, stream="s", final=False):
    frames = tuple(np.full((4, 4, 3), start + i, dtype=np.uint8) for i in range(n))
    return FrameChunk(stream=stream, seq=0, start=start, frames=frames, final=final)


class TestSpecValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            StreamFaultSpec(mode="meteor")

    def test_unknown_kill_point_rejected(self):
        with pytest.raises(ValueError):
            StreamFaultSpec(mode="kill", point="not-a-point")


class TestMangleModes:
    def test_clean_passthrough(self):
        state = StreamFaultPlan().state()
        chunk = make_chunk()
        assert state.mangle(chunk) == [chunk]
        assert state.injected == 0

    def test_delay_sleeps_then_delivers(self):
        slept = []
        state = StreamFaultPlan.late(0.25).state(sleep=slept.append)
        chunk = make_chunk()
        assert state.mangle(chunk) == [chunk]
        assert slept == [0.25]
        assert state.injected == 1

    def test_duplicate_delivers_twice(self):
        state = StreamFaultPlan.duplicated().state()
        chunk = make_chunk()
        assert state.mangle(chunk) == [chunk, chunk]

    def test_torn_fragments_are_contiguous(self):
        state = StreamFaultPlan.torn().state()
        chunk = make_chunk(start=24, n=10, final=True)
        head, tail = state.mangle(chunk)
        assert head.start == 24 and tail.start == 29
        assert len(head) + len(tail) == 10
        assert not head.final  # only the tail carries the final flag
        assert tail.final

    def test_torn_single_frame_passes_through(self):
        state = StreamFaultPlan.torn().state()
        chunk = make_chunk(n=1)
        assert state.mangle(chunk) == [chunk]

    def test_kill_arms_crash_point_for_one_trip(self):
        state = StreamFaultPlan.killed(point="chunk-pre-commit").state()
        chunk = make_chunk()
        assert state.mangle(chunk) == [chunk]
        with pytest.raises(SimulatedCrash):
            trip("chunk-pre-commit")
        trip("chunk-pre-commit")  # one trip only; now inert

    def test_disarm_clears_pending_kill(self):
        state = StreamFaultPlan.killed(point="chunk-pre-commit").state()
        state.mangle(make_chunk())
        state.disarm()
        trip("chunk-pre-commit")  # must not raise


class TestTargeting:
    def test_after_skips_early_chunks(self):
        state = StreamFaultPlan.duplicated(after=1, times=None).state()
        first, second = make_chunk(start=0), make_chunk(start=10)
        assert state.mangle(first) == [first]
        assert state.mangle(second) == [second, second]

    def test_times_bounds_injections(self):
        state = StreamFaultPlan.duplicated(times=1).state()
        first, second = make_chunk(start=0), make_chunk(start=10)
        assert state.mangle(first) == [first, first]
        assert state.mangle(second) == [second]

    def test_stream_filter(self):
        state = StreamFaultPlan.duplicated(stream="a").state()
        other = make_chunk(stream="b")
        mine = make_chunk(stream="a")
        assert state.mangle(other) == [other]
        assert state.mangle(mine) == [mine, mine]

    def test_extend_stacks_plans(self):
        slept = []
        plan = StreamFaultPlan.late(0.1, stream="a").extend(
            StreamFaultPlan.duplicated(stream="b")
        )
        state = plan.state(sleep=slept.append)
        a, b = make_chunk(stream="a"), make_chunk(stream="b")
        assert state.mangle(a) == [a]
        assert state.mangle(b) == [b, b]
        assert slept == [0.1]
        assert state.injected == 2
