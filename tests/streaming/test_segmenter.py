"""Streaming segmenter: chunking invariance against the batch detector."""

import pytest

from repro.dataset import build_australian_open
from repro.shots.boundary import AdaptiveCutDetector, TwinComparisonDetector
from repro.shots.segmenter import SegmentDetector
from repro.streaming import StreamingSegmenter


@pytest.fixture(scope="module")
def clip():
    dataset = build_australian_open(seed=7, video_shots=4)
    clip, _truth = dataset.video_plans[0].materialise()
    return clip


@pytest.fixture(scope="module")
def batch_shots(clip):
    detector = SegmentDetector(boundary_detector=TwinComparisonDetector())
    return detector.detect(clip)


def _stream(clip, chunk_frames):
    seg = StreamingSegmenter()
    shots = []
    for start in range(0, len(clip), chunk_frames):
        frames = [clip[i] for i in range(start, min(start + chunk_frames, len(clip)))]
        shots.extend(seg.push(frames))
    shots.extend(seg.finalize())
    return seg, shots


def _spans(shot_pairs):
    return [(shot.start, shot.stop, shot.category) for shot, _frames in shot_pairs]


class TestChunkingInvariance:
    @pytest.mark.parametrize("chunk_frames", [1, 7, 24, 10_000])
    def test_matches_batch_for_any_chunking(self, clip, batch_shots, chunk_frames):
        _seg, shots = _stream(clip, chunk_frames)
        expected = [(s.start, s.stop, s.category) for s in batch_shots]
        assert _spans(shots) == expected

    def test_emitted_frames_match_spans(self, clip):
        _seg, shots = _stream(clip, 24)
        for shot, frames in shots:
            assert len(frames) == shot.stop - shot.start

    def test_watermark_monotone_and_final(self, clip):
        seg = StreamingSegmenter()
        last = 0
        for start in range(0, len(clip), 24):
            seg.push([clip[i] for i in range(start, min(start + 24, len(clip)))])
            assert seg.watermark >= last
            assert seg.watermark <= seg.frames_seen
            last = seg.watermark
        seg.finalize()
        assert seg.watermark == len(clip)


class TestGuards:
    def test_rejects_adaptive_detector(self):
        batch = SegmentDetector(boundary_detector=AdaptiveCutDetector())
        with pytest.raises(TypeError):
            StreamingSegmenter(batch)

    def test_gap_target_before_ingested_frames(self, clip):
        seg = StreamingSegmenter()
        seg.push([clip[i] for i in range(24)])
        with pytest.raises(ValueError):
            seg.gap(10)


class TestGapRestart:
    def test_gap_finalises_tail_and_restarts(self, clip):
        seg = StreamingSegmenter()
        seg.push([clip[i] for i in range(48)])
        seg.gap(96)
        assert seg.watermark == 96
        assert seg.frames_seen == 96
        # Frames from the restart point are accepted again.
        seg.push([clip[i] for i in range(96, len(clip))])
        tail = seg.finalize()
        assert seg.watermark == len(clip)
        for shot, _frames in tail:
            assert shot.start >= 96
