"""ANN staleness: streaming commits mark the ANN index stale."""

import pytest

from repro.dataset import build_australian_open
from repro.grammar.tennis import build_tennis_fde
from repro.library import DigitalLibraryEngine
from repro.streaming import StreamSession, iter_chunks


@pytest.fixture(scope="module")
def engine():
    dataset = build_australian_open(seed=7, video_shots=4)
    engine = DigitalLibraryEngine(dataset, fde=build_tennis_fde())
    engine.index_videos(limit=1)
    engine.build_ann_index()
    return engine


@pytest.fixture(scope="module")
def example_clip(engine):
    clip, _truth = engine.dataset.video_plans[0].materialise()
    return clip[:40]


class TestStaleness:
    def test_fresh_after_build(self, engine, example_clip):
        assert not engine.ann_stale
        results = engine.search_like(example_clip, k=5)
        assert results
        assert not any(r.ann_stale for r in results)

    def test_streamed_commits_mark_stale(self, engine, example_clip):
        plan = engine.dataset.video_plans[1]
        clip, _truth = plan.materialise()
        session = StreamSession(engine.indexer, plan)
        built_at = engine.ann_index.generation
        for chunk in iter_chunks(clip, 24, stream=plan.name):
            session.push_chunk(chunk)
        assert engine.generation > built_at
        assert engine.ann_stale
        # search_like still answers, but every result carries the label
        # instead of silently serving the pre-stream vector set.
        results = engine.search_like(example_clip, k=5)
        assert results
        assert all(r.ann_stale for r in results)

    def test_rebuild_clears_staleness(self, engine, example_clip):
        engine.build_ann_index()
        assert not engine.ann_stale
        results = engine.search_like(example_clip, k=5)
        assert results
        assert not any(r.ann_stale for r in results)
