"""StreamSession: chunk commit protocol, dedupe, crash resume."""

import pytest

from repro.dataset import build_australian_open
from repro.grammar.tennis import build_tennis_fde
from repro.library.indexing import LibraryIndexer
from repro.library.persistence import load_stream_state
from repro.storage.crashpoints import CrashPoint, SimulatedCrash
from repro.storage.journal import IndexingJournal
from repro.streaming import StreamGapError, StreamSession, iter_chunks

CHUNK = 24


def make_indexer():
    dataset = build_australian_open(seed=7, video_shots=4)
    return LibraryIndexer(dataset, fde=build_tennis_fde())


@pytest.fixture(scope="module")
def plan_and_clip():
    dataset = build_australian_open(seed=7, video_shots=4)
    plan = dataset.video_plans[0]
    clip, _truth = plan.materialise()
    return plan, clip


@pytest.fixture(scope="module")
def batch_bytes(tmp_path_factory, plan_and_clip):
    path = tmp_path_factory.mktemp("batch") / "meta.json"
    make_indexer().index_checkpointed(path, limit=1)
    return path.read_bytes()


def feed(session, clip, start=0):
    commits = []
    for chunk in iter_chunks(clip, CHUNK, stream=session.name, start=start):
        commit = session.push_chunk(chunk)
        if commit is not None:
            commits.append(commit)
    return commits


class TestCommitProtocol:
    def test_streamed_snapshot_matches_batch(self, tmp_path, plan_and_clip, batch_bytes):
        plan, clip = plan_and_clip
        path = tmp_path / "meta.json"
        session = StreamSession(
            make_indexer(), plan, path=path, journal=IndexingJournal(tmp_path / "j")
        )
        commits = feed(session, clip)
        assert session.finalized
        assert commits[-1].final
        assert path.read_bytes() == batch_bytes

    def test_generation_bumps_per_commit(self, tmp_path, plan_and_clip):
        plan, clip = plan_and_clip
        indexer = make_indexer()
        session = StreamSession(indexer, plan, path=tmp_path / "meta.json")
        commits = feed(session, clip)
        assert [c.generation for c in commits] == list(
            range(1, len(commits) + 1)
        )
        assert indexer.generation == len(commits)

    def test_stream_state_tracked_then_popped_on_final(self, tmp_path, plan_and_clip):
        plan, clip = plan_and_clip
        path = tmp_path / "meta.json"
        session = StreamSession(make_indexer(), plan, path=path)
        chunks = list(iter_chunks(clip, CHUNK, stream=plan.name))
        session.push_chunk(chunks[0])
        state = load_stream_state(path)[plan.name]
        assert state["watermark"] == session.watermark
        assert state["seq"] == 1
        for chunk in chunks[1:]:
            session.push_chunk(chunk)
        assert plan.name not in load_stream_state(path)

    def test_push_after_finalize_rejected(self, tmp_path, plan_and_clip):
        plan, clip = plan_and_clip
        session = StreamSession(make_indexer(), plan, path=tmp_path / "meta.json")
        chunks = list(iter_chunks(clip, CHUNK, stream=plan.name))
        feed(session, clip)
        with pytest.raises(RuntimeError):
            session.push_chunk(chunks[0])

    def test_journal_requires_path(self, tmp_path, plan_and_clip):
        plan, _clip = plan_and_clip
        with pytest.raises(ValueError):
            StreamSession(
                make_indexer(), plan, journal=IndexingJournal(tmp_path / "j")
            )

    def test_wrong_stream_rejected(self, plan_and_clip):
        plan, clip = plan_and_clip
        session = StreamSession(make_indexer(), plan)
        chunk = next(iter_chunks(clip, CHUNK, stream="other"))
        with pytest.raises(ValueError):
            session.push_chunk(chunk)


class TestExactlyOnce:
    def test_full_duplicate_is_dropped(self, plan_and_clip):
        plan, clip = plan_and_clip
        session = StreamSession(make_indexer(), plan)
        chunk = next(iter_chunks(clip, CHUNK, stream=plan.name))
        assert session.push_chunk(chunk) is not None
        assert session.push_chunk(chunk) is None
        assert session.duplicates_dropped == len(chunk)

    def test_overlapping_redelivery_keeps_only_new_frames(self, plan_and_clip):
        plan, clip = plan_and_clip
        session = StreamSession(make_indexer(), plan)
        chunks = list(iter_chunks(clip, CHUNK, stream=plan.name))
        session.push_chunk(chunks[0])
        # Re-deliver frames [12, 36): the first 12 are already ingested.
        overlap = chunks[0].tail_from(12)
        merged = type(overlap)(
            stream=plan.name,
            seq=1,
            start=12,
            frames=overlap.frames + chunks[1].frames[:12],
            fps=overlap.fps,
        )
        commit = session.push_chunk(merged)
        assert commit.accepted_frames == 12
        assert commit.deduped_frames == 12
        assert session.next_frame == 36

    def test_gap_raises(self, plan_and_clip):
        plan, clip = plan_and_clip
        session = StreamSession(make_indexer(), plan)
        chunks = list(iter_chunks(clip, CHUNK, stream=plan.name))
        session.push_chunk(chunks[0])
        with pytest.raises(StreamGapError):
            session.push_chunk(chunks[2])
        assert not session.degraded

    def test_record_gap_marks_degraded_and_restarts(self, plan_and_clip):
        plan, clip = plan_and_clip
        session = StreamSession(make_indexer(), plan)
        chunks = list(iter_chunks(clip, CHUNK, stream=plan.name))
        session.push_chunk(chunks[0])
        session.record_gap(chunks[2].start)
        assert session.degraded
        assert session.next_frame == chunks[2].start
        assert session.push_chunk(chunks[2]) is not None


class TestCrashResume:
    @pytest.mark.parametrize(
        "point", ["chunk-post-begin", "chunk-pre-snapshot", "chunk-pre-commit",
                  "chunk-pre-generation", "chunk-post-generation"]
    )
    def test_kill_then_resume_is_byte_identical(
        self, tmp_path, plan_and_clip, batch_bytes, point
    ):
        plan, clip = plan_and_clip
        path = tmp_path / "meta.json"
        journal_path = tmp_path / "meta.journal"
        session = StreamSession(
            make_indexer(), plan, path=path, journal=IndexingJournal(journal_path)
        )
        with CrashPoint(point, after=1):
            with pytest.raises(SimulatedCrash):
                feed(session, clip)
        # Recovery: a fresh "process" restores the snapshot and resumes
        # from the committed watermark.
        fresh = make_indexer()
        fresh.restore_snapshot(path)
        resumed = StreamSession.resume(
            fresh, plan, path, journal=IndexingJournal(journal_path)
        )
        feed(resumed, clip, start=resumed.next_frame)
        assert resumed.finalized
        assert path.read_bytes() == batch_bytes

    def test_resume_without_state_row_rejected(self, tmp_path, plan_and_clip, batch_bytes):
        plan, _clip = plan_and_clip
        path = tmp_path / "meta.json"
        path.write_bytes(batch_bytes)  # finalized snapshot: no stream_state
        indexer = make_indexer()
        indexer.restore_snapshot(path)
        with pytest.raises(ValueError):
            StreamSession.resume(indexer, plan, path)


class TestFreshness:
    def test_arrival_stamps_feed_the_reservoir(self, plan_and_clip):
        plan, clip = plan_and_clip
        ticks = [0.0]

        def clock():
            ticks[0] += 0.010
            return ticks[0]

        session = StreamSession(make_indexer(), plan, clock=clock)
        commits = feed_with_clock(session, clip, clock)
        samples = [c.freshness_seconds for c in commits]
        assert all(s is not None and s >= 0.0 for s in samples)
        assert session.freshness.percentile(95) is not None


def feed_with_clock(session, clip, clock):
    commits = []
    for chunk in iter_chunks(clip, CHUNK, stream=session.name, clock=clock):
        commit = session.push_chunk(chunk)
        if commit is not None:
            commits.append(commit)
    return commits
