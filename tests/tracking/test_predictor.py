"""Position predictor tests."""

import numpy as np
import pytest

from repro.tracking.predictor import (
    ConstantVelocityPredictor,
    KalmanPredictor,
    StaticPredictor,
)


class TestStatic:
    def test_none_before_update(self):
        assert StaticPredictor().predict() is None

    def test_predicts_last(self):
        p = StaticPredictor()
        p.update((3.0, 4.0))
        p.update((5.0, 6.0))
        assert p.predict() == (5.0, 6.0)


class TestConstantVelocity:
    def test_none_before_update(self):
        assert ConstantVelocityPredictor().predict() is None

    def test_first_update_zero_velocity(self):
        p = ConstantVelocityPredictor()
        p.update((3.0, 4.0))
        assert p.predict() == (3.0, 4.0)

    def test_extrapolates(self):
        p = ConstantVelocityPredictor()
        p.update((0.0, 0.0))
        p.update((1.0, 2.0))
        assert p.predict() == (2.0, 4.0)


class TestKalman:
    def test_none_before_update(self):
        assert KalmanPredictor().predict() is None

    def test_first_update_predicts_position(self):
        p = KalmanPredictor()
        p.update((10.0, 20.0))
        pred = p.predict()
        assert pred == pytest.approx((10.0, 20.0))

    def test_converges_to_linear_motion(self):
        p = KalmanPredictor()
        for t in range(30):
            p.update((float(t), 2.0 * t))
        pred = p.predict()
        assert pred[0] == pytest.approx(30.0, abs=0.5)
        assert pred[1] == pytest.approx(60.0, abs=1.0)

    def test_velocity_estimate(self):
        p = KalmanPredictor()
        for t in range(30):
            p.update((float(t), 0.0))
        v = p.velocity
        assert v[0] == pytest.approx(1.0, abs=0.1)
        assert v[1] == pytest.approx(0.0, abs=0.1)

    def test_smooths_noise_better_than_cv(self):
        """Kalman's one-step error under noise beats raw extrapolation."""
        rng = np.random.default_rng(0)
        truth = [(float(t), 30.0 + 10.0 * np.sin(t / 8.0)) for t in range(60)]
        noisy = [(r + rng.normal(0, 1.2), c + rng.normal(0, 1.2)) for r, c in truth]

        def one_step_errors(predictor):
            errors = []
            for t, observation in enumerate(noisy):
                prediction = predictor.predict()
                if prediction is not None and t < len(truth):
                    errors.append(np.hypot(prediction[0] - truth[t][0], prediction[1] - truth[t][1]))
                predictor.update(observation)
            return float(np.mean(errors))

        kalman = one_step_errors(KalmanPredictor())
        cv = one_step_errors(ConstantVelocityPredictor())
        assert kalman < cv

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            KalmanPredictor(process_noise=0)
        with pytest.raises(ValueError):
            KalmanPredictor(measurement_noise=-1)
