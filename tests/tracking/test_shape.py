"""Player observation tests."""

import numpy as np
import pytest

from repro.tracking.shape import observe_player
from repro.vision.regions import regions_in


def frame_with_blob():
    frame = np.zeros((20, 20, 3), dtype=np.uint8)
    mask = np.zeros((20, 20), dtype=bool)
    mask[5:15, 8:12] = True
    frame[mask] = (200, 40, 40)
    return frame, mask


class TestObservePlayer:
    def test_position_is_centroid(self):
        frame, mask = frame_with_blob()
        region = regions_in(mask)[0]
        observation = observe_player(frame, mask, region)
        assert observation.position == (pytest.approx(9.5), pytest.approx(9.5))

    def test_dominant_color(self):
        frame, mask = frame_with_blob()
        region = regions_in(mask)[0]
        observation = observe_player(frame, mask, region)
        assert observation.dominant_color == (200.0, 40.0, 40.0)

    def test_shape_features_attached(self):
        frame, mask = frame_with_blob()
        region = regions_in(mask)[0]
        observation = observe_player(frame, mask, region)
        assert observation.shape.area == 40
        assert observation.shape.aspect_ratio == pytest.approx(10 / 4)

    def test_region_outside_mask_rejected(self):
        frame, mask = frame_with_blob()
        from repro.vision.regions import Region

        empty_region = Region(label=1, area=4, bbox=(0, 0, 2, 2), centroid=(1, 1))
        with pytest.raises(ValueError):
            observe_player(frame, mask, empty_region)
