"""Player tracker tests."""

import numpy as np
import pytest

from repro.tracking.predictor import StaticPredictor
from repro.tracking.tracker import PlayerTracker, Track, TrackPoint


class TestTrackContainer:
    def test_found_fraction(self):
        track = Track(points=[TrackPoint(0, False), TrackPoint(1, True, None)])
        assert track.found_fraction == 0.5

    def test_empty_track(self):
        assert Track().found_fraction == 0.0

    def test_mean_error_length_mismatch(self):
        track = Track(points=[TrackPoint(0, False)])
        with pytest.raises(ValueError):
            track.mean_error([(0.0, 0.0), (1.0, 1.0)])

    def test_mean_error_all_lost_is_inf(self):
        track = Track(points=[TrackPoint(0, False)])
        assert track.mean_error([(0.0, 0.0)]) == float("inf")


class TestTracker:
    @pytest.mark.parametrize("script", ["rally", "net_approach", "service", "baseline_play"])
    def test_tracks_all_scripts(self, tennis_clips, script):
        clip, truth = tennis_clips[script]
        track = PlayerTracker().track(list(clip))
        assert track.found_fraction > 0.95
        assert track.mean_error(list(truth.shots[0].trajectory)) < 6.0

    def test_observations_carry_shape(self, tennis_clips):
        clip, _ = tennis_clips["rally"]
        track = PlayerTracker().track(list(clip))
        observation = next(p.observation for p in track.points if p.found)
        assert observation.shape.area > 10
        assert observation.shape.aspect_ratio > 0.5

    def test_dominant_color_is_shirt(self, tennis_clips):
        clip, _ = tennis_clips["rally"]
        track = PlayerTracker().track(list(clip))
        observation = next(p.observation for p in track.points if p.found)
        # The blob mixes shirt and head pixels; red must dominate.
        assert observation.dominant_color[0] > observation.dominant_color[2]

    def test_static_predictor_also_works(self, tennis_clips):
        clip, truth = tennis_clips["rally"]
        track = PlayerTracker(predictor_factory=StaticPredictor).track(list(clip))
        assert track.found_fraction > 0.9

    def test_small_window_loses_fast_target_more(self, tennis_clips):
        """E4 shape: a tiny search window degrades tracking."""
        clip, truth = tennis_clips["rally"]
        wide = PlayerTracker(search_half_size=14).track(list(clip))
        narrow = PlayerTracker(search_half_size=3, predictor_factory=StaticPredictor).track(
            list(clip)
        )
        wide_err = wide.mean_error(list(truth.shots[0].trajectory))
        narrow_err = narrow.mean_error(list(truth.shots[0].trajectory))
        assert wide_err <= narrow_err + 1.0

    def test_no_court_all_misses(self):
        rng = np.random.default_rng(0)
        frames = [
            rng.integers(0, 255, size=(96, 128, 3)).astype(np.uint8) for _ in range(5)
        ]
        track = PlayerTracker().track(frames)
        assert len(track) == 5
        # A noise frame has no stable court nor player.
        assert track.found_fraction <= 0.4

    def test_empty_shot_rejected(self):
        with pytest.raises(ValueError):
            PlayerTracker().track([])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PlayerTracker(search_half_size=1)
        with pytest.raises(ValueError):
            PlayerTracker(half="sideways")


class TestFarTracking:
    def test_tracks_far_player(self, tennis_clips):
        clip, truth = tennis_clips["rally"]
        track = PlayerTracker(half="far", min_area=8).track(list(clip))
        assert track.found_fraction > 0.9
        assert track.mean_error(list(truth.shots[0].far_trajectory)) < 6.0

    def test_near_and_far_are_different_targets(self, tennis_clips):
        clip, truth = tennis_clips["rally"]
        near = PlayerTracker().track(list(clip))
        far = PlayerTracker(half="far", min_area=8).track(list(clip))
        near_rows = [p[0] for p in near.positions if p]
        far_rows = [p[0] for p in far.positions if p]
        # The far player sits higher in the frame throughout.
        assert np.mean(far_rows) < np.mean(near_rows) - 10
