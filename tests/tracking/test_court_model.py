"""Court colour model tests."""

import numpy as np
import pytest

from repro.tracking.court_model import CourtColorModel
from repro.video.court import AUSTRALIAN_OPEN_STYLE


class TestEstimate:
    def test_finds_surface_color(self, court_frame):
        model = CourtColorModel.estimate(court_frame)
        surface = np.array(AUSTRALIAN_OPEN_STYLE.surface, dtype=float)
        assert np.linalg.norm(model.mean - surface) < 15

    def test_std_floor(self):
        flat = np.full((32, 32, 3), 100, dtype=np.uint8)
        model = CourtColorModel.estimate(flat)
        assert (model.std >= CourtColorModel._STD_FLOOR).all()

    def test_robust_to_gain(self, tennis_clips):
        # The whole point: court estimation adapts to camera gain.
        clip, _ = tennis_clips["rally"]
        dark = np.clip(clip[0].astype(float) * 0.85, 0, 255).astype(np.uint8)
        model = CourtColorModel.estimate(dark)
        surface = 0.85 * np.array(AUSTRALIAN_OPEN_STYLE.surface, dtype=float)
        assert np.linalg.norm(model.mean - surface) < 15


class TestMasks:
    def test_surface_is_court(self, court_frame):
        model = CourtColorModel.estimate(court_frame)
        court = model.is_court(court_frame)
        # Most of the frame's court area flags as court.
        assert court.mean() > 0.4

    def test_lines_are_not_court(self, court_frame):
        model = CourtColorModel.estimate(court_frame)
        mask = model.is_court(court_frame)
        # White pixels (lines) must not be court-coloured.
        white = (court_frame > 200).all(axis=-1)
        if white.any():
            assert (mask & white).sum() / white.sum() < 0.1

    def test_distance_positive(self, court_frame):
        model = CourtColorModel.estimate(court_frame)
        assert (model.distance(court_frame) >= 0).all()

    def test_k_validation(self, court_frame):
        model = CourtColorModel.estimate(court_frame)
        with pytest.raises(ValueError):
            model.is_court(court_frame, k=0)
