"""Player segmentation tests."""

import numpy as np
import pytest

from repro.tracking.court_model import CourtColorModel
from repro.tracking.segmentation import (
    SearchWindow,
    clean_mask,
    court_bounds,
    initial_player_region,
    not_court_mask,
    restrict_to_bounds,
)
from repro.vision.regions import Region


@pytest.fixture(scope="module")
def model_and_frame(tennis_clips):
    clip, truth = tennis_clips["rally"]
    frame = clip[0]
    return CourtColorModel.estimate(frame), frame, truth


class TestMasks:
    def test_not_court_complements_court(self, model_and_frame):
        model, frame, _ = model_and_frame
        assert ((~model.is_court(frame)) == not_court_mask(frame, model)).all()

    def test_clean_mask_removes_lines(self, model_and_frame):
        model, frame, _ = model_and_frame
        raw = not_court_mask(frame, model)
        cleaned = clean_mask(raw)
        assert cleaned.sum() < raw.sum()

    def test_restrict_to_bounds(self):
        mask = np.ones((10, 10), dtype=bool)
        out = restrict_to_bounds(mask, (2, 3, 5, 7))
        assert out.sum() == 3 * 4
        assert out[2:5, 3:7].all()


class TestCourtBounds:
    def test_covers_court_area(self, model_and_frame):
        model, frame, _ = model_and_frame
        bounds = court_bounds(frame, model)
        assert bounds is not None
        r0, c0, r1, c1 = bounds
        h, w = frame.shape[:2]
        # Default geometry: court spans ~12..95% rows, 15..85% cols.
        assert r0 < 0.25 * h and r1 > 0.85 * h
        assert c0 < 0.25 * w and c1 > 0.75 * w

    def test_none_without_court(self):
        rng = np.random.default_rng(0)
        noise = rng.integers(0, 255, size=(64, 64, 3)).astype(np.uint8)
        model = CourtColorModel.estimate(noise)
        # A noise frame has no big uniform region; bounds may be tiny or None.
        bounds = court_bounds(noise, model)
        if bounds is not None:
            r0, c0, r1, c1 = bounds
            assert (r1 - r0) * (c1 - c0) < 64 * 64


class TestInitialPlayerRegion:
    def test_finds_near_player(self, model_and_frame):
        model, frame, truth = model_and_frame
        bounds = court_bounds(frame, model)
        r0, c0, r1, c1 = bounds
        near = ((r0 + r1) // 2, c0, r1, c1)
        region = initial_player_region(frame, model, near)
        assert region is not None
        true_pos = truth.shots[0].trajectory[0]
        dist = np.hypot(region.centroid[0] - true_pos[0], region.centroid[1] - true_pos[1])
        assert dist < 8

    def test_bounds_validated(self, model_and_frame):
        model, frame, _ = model_and_frame
        with pytest.raises(ValueError):
            initial_player_region(frame, model, (50, 0, 10, 10))


class TestSearchWindow:
    def test_clipping(self):
        window = SearchWindow((0.0, 0.0), 5, (20, 30))
        assert window.row_min == 0 and window.col_min == 0
        assert not window.empty

    def test_crop_shape(self):
        window = SearchWindow((10.0, 10.0), 3, (20, 30))
        cropped = window.crop(np.zeros((20, 30)))
        assert cropped.shape == (7, 7)

    def test_to_frame_translation(self):
        window = SearchWindow((10.0, 10.0), 3, (20, 30))
        region = Region(label=1, area=4, bbox=(0, 0, 2, 2), centroid=(0.5, 0.5))
        moved = window.to_frame(region)
        assert moved.bbox == (7, 7, 9, 9)
        assert moved.centroid == (7.5, 7.5)

    def test_half_size_validated(self):
        with pytest.raises(ValueError):
            SearchWindow((5.0, 5.0), 0, (10, 10))
