"""Repository-wide quality gates.

Not about behaviour — about the library staying adoptable: every public
module documented, the public API importable, and end-to-end results
deterministic in their seeds.
"""

import importlib
import pkgutil

import pytest

import repro


def _walk_modules():
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield module_info.name


ALL_MODULES = sorted(_walk_modules())


class TestDocumentation:
    @pytest.mark.parametrize("name", ALL_MODULES)
    def test_module_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"

    @pytest.mark.parametrize("name", ALL_MODULES)
    def test_public_callables_documented(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            return
        for symbol in exported:
            obj = getattr(module, symbol)
            if callable(obj) or isinstance(obj, type):
                assert getattr(obj, "__doc__", None), f"{name}.{symbol} undocumented"

    def test_module_count_sanity(self):
        # The package is large; a collapsed import path would show here.
        assert len(ALL_MODULES) > 50


class TestDeterminism:
    def test_end_to_end_meta_index_deterministic(self):
        """Same seed, same pixels, same meta-index — twice."""
        from repro.grammar.tennis import build_tennis_fde
        from repro.video.generator import BroadcastGenerator

        def run():
            clip, _ = BroadcastGenerator(seed=31).generate(5, name="det")
            fde = build_tennis_fde()
            fde.index_video(clip)
            return sorted(
                (e.label, e.start, e.stop, round(e.confidence, 9))
                for e in fde.model.events
            ), sorted((s.category, s.start, s.stop) for s in fde.model.shots)

        assert run() == run()

    def test_dataset_pages_deterministic(self):
        from repro.dataset import build_australian_open

        a = build_australian_open(seed=13, n_per_gender=4, years=[2001])
        b = build_australian_open(seed=13, n_per_gender=4, years=[2001])
        assert [d.text for d in a.pages] == [d.text for d in b.pages]
