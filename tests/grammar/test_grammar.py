"""Feature grammar language tests."""

import pytest

from repro.grammar.grammar import (
    DetectorDecl,
    FeatureGrammarError,
    parse_feature_grammar,
)
from repro.grammar.tennis import TENNIS_FEATURE_GRAMMAR

SIMPLE = """
FEATURE GRAMMAR demo ;
DETECTOR segment BLACK : video -> shot ;
DETECTOR tennis BLACK : shot WHEN category = tennis -> player ;
DETECTOR rules WHITE : player -> event ;
"""


class TestParsing:
    def test_parses_simple(self):
        grammar = parse_feature_grammar(SIMPLE)
        assert grammar.name == "demo"
        assert grammar.detector_names == ["segment", "tennis", "rules"]

    def test_guard_parsed(self):
        grammar = parse_feature_grammar(SIMPLE)
        assert grammar.detector("tennis").guard == ("category", "tennis")
        assert grammar.detector("segment").guard is None

    def test_kinds(self):
        grammar = parse_feature_grammar(SIMPLE)
        assert grammar.detector("rules").kind == "white"
        assert grammar.detector("segment").kind == "black"

    def test_default_kind_black(self):
        grammar = parse_feature_grammar(
            "FEATURE GRAMMAR g ; DETECTOR a : video -> x ;"
        )
        assert grammar.detector("a").kind == "black"

    def test_multi_token_io(self):
        grammar = parse_feature_grammar(
            "FEATURE GRAMMAR g ; DETECTOR a : video -> x, y ; DETECTOR b : x, y -> z ;"
        )
        assert grammar.detector("b").inputs == ("x", "y")

    def test_comments_stripped(self):
        grammar = parse_feature_grammar(
            "# top\nFEATURE GRAMMAR g ;\n# middle\nDETECTOR a : video -> x ;\n"
        )
        assert grammar.detector_names == ["a"]

    def test_tennis_grammar_parses(self):
        grammar = parse_feature_grammar(TENNIS_FEATURE_GRAMMAR)
        assert grammar.detector_names == ["segment", "tennis", "shape", "rules"]
        assert grammar.detector("rules").inputs == ("player", "shape")


class TestValidation:
    @pytest.mark.parametrize(
        "text",
        [
            "DETECTOR a : video -> x ;",  # missing header
            "FEATURE GRAMMAR g ;",  # no detectors
            "FEATURE GRAMMAR g ; DETECTOR a : video -> x ; garbage",
            "FEATURE GRAMMAR g ; DETECTOR a : video -> x ; DETECTOR b : video -> x ;",
            "FEATURE GRAMMAR g ; DETECTOR a : ghost -> x ;",  # unproduced input
            "FEATURE GRAMMAR g ; DETECTOR a : video -> video ;",  # produces axiom
            "FEATURE GRAMMAR g ; DETECTOR a : video, y -> x ; DETECTOR b : x -> y ;",  # cycle
            "FEATURE GRAMMAR g ; DETECTOR a : video -> x ; DETECTOR a : x -> y ;",  # dup name
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(FeatureGrammarError):
            parse_feature_grammar(text)

    def test_decl_invariants(self):
        with pytest.raises(FeatureGrammarError):
            DetectorDecl("a", "grey", ("video",), ("x",))
        with pytest.raises(FeatureGrammarError):
            DetectorDecl("a", "black", (), ("x",))
        with pytest.raises(FeatureGrammarError):
            DetectorDecl("a", "black", ("x",), ())
        with pytest.raises(FeatureGrammarError):
            DetectorDecl("a", "black", ("x",), ("x",))


class TestAxiom:
    AUDIO = """
    FEATURE GRAMMAR interview ;
    AXIOM audio ;
    DETECTOR words : audio -> segment ;
    DETECTOR spot : segment -> word ;
    """

    def test_default_axiom_is_video(self):
        grammar = parse_feature_grammar(SIMPLE)
        assert grammar.axiom == "video"

    def test_axiom_declaration(self):
        grammar = parse_feature_grammar(self.AUDIO)
        assert grammar.axiom == "audio"
        assert "audio" in grammar.tokens

    def test_axiom_cannot_be_produced(self):
        text = """
        FEATURE GRAMMAR g ;
        AXIOM audio ;
        DETECTOR a : audio -> audio2 ;
        DETECTOR b : audio2 -> audio ;
        """
        with pytest.raises(FeatureGrammarError):
            parse_feature_grammar(text)

    def test_video_token_needs_producer_under_other_axiom(self):
        text = """
        FEATURE GRAMMAR g ;
        AXIOM audio ;
        DETECTOR a : video -> x ;
        """
        with pytest.raises(FeatureGrammarError):
            parse_feature_grammar(text)


class TestDependencies:
    def test_producer_of(self):
        grammar = parse_feature_grammar(SIMPLE)
        assert grammar.producer_of("shot").name == "segment"
        assert grammar.producer_of("video") is None

    def test_dependencies_of(self):
        grammar = parse_feature_grammar(SIMPLE)
        assert grammar.dependencies_of("rules") == ["tennis"]
        assert grammar.dependencies_of("segment") == []

    def test_tokens(self):
        grammar = parse_feature_grammar(SIMPLE)
        assert grammar.tokens == {"video", "shot", "player", "event"}
