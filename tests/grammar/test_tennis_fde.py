"""The tennis FDE end to end (Figure 1 + real detectors)."""

import pytest

from repro.grammar.dot import figure_one, to_dot
from repro.grammar.tennis import build_tennis_fde
from repro.video.generator import BroadcastConfig, BroadcastGenerator


@pytest.fixture(scope="module")
def indexed():
    """A tennis FDE with one broadcast indexed."""
    fde = build_tennis_fde()
    generator = BroadcastGenerator(BroadcastConfig(), seed=31)
    clip, truth = generator.generate(8, name="fde_test_video")
    context = fde.index_video(clip)
    return fde, clip, truth, context


class TestFigureOne:
    def test_nodes_and_edges(self, indexed):
        fde, *_ = indexed
        graph = fde.dependency_graph()
        assert set(graph.nodes) == {"video", "segment", "tennis", "shape", "rules"}
        assert ("video", "segment") in graph.edges
        assert ("segment", "tennis") in graph.edges
        assert ("tennis", "shape") in graph.edges
        assert ("tennis", "rules") in graph.edges
        assert ("shape", "rules") in graph.edges

    def test_execution_order(self, indexed):
        fde, *_ = indexed
        order = fde.execution_order()
        assert order.index("segment") < order.index("tennis")
        assert order.index("tennis") < order.index("shape")
        assert order.index("shape") < order.index("rules")

    def test_guard_on_tennis_detector(self, indexed):
        fde, *_ = indexed
        assert fde.grammar.detector("tennis").guard == ("category", "tennis")

    def test_white_black_split(self, indexed):
        fde, *_ = indexed
        assert fde.grammar.detector("rules").kind == "white"
        assert fde.grammar.detector("segment").kind == "black"

    def test_dot_export(self, indexed):
        fde, *_ = indexed
        dot = to_dot(fde.dependency_graph(), title="tennis_fde")
        assert dot.startswith("digraph tennis_fde")
        assert '"segment" -> "tennis"' in dot
        assert "category=tennis" in dot

    def test_figure_one_helper(self):
        dot = figure_one()
        assert '"video" -> "segment"' in dot


class TestPipelineOutput:
    def test_all_layers_populated(self, indexed):
        fde, _clip, truth, _context = indexed
        counts = fde.model.counts()
        assert counts["raw"] == 1
        assert counts["feature"] >= len(truth.shots) - 2
        n_tennis = sum(1 for s in truth.shots if s.category == "tennis")
        assert counts["object"] >= max(1, n_tennis - 1)
        assert counts["event"] >= 1

    def test_objects_only_in_tennis_shots(self, indexed):
        fde, *_ = indexed
        for obj in fde.model.objects:
            assert fde.model.shot(obj.shot_id).category == "tennis"

    def test_events_land_inside_their_shot(self, indexed):
        fde, *_ = indexed
        for event in fde.model.events:
            shot = fde.model.shot(event.shot_id)
            assert shot.start <= event.start < event.stop <= shot.stop

    def test_detected_events_match_truth_labels(self, indexed):
        """Most truth events are recovered with the right label."""
        fde, _clip, truth, _context = indexed
        recovered = 0
        for true_event in truth.events:
            for event in fde.model.events:
                overlap = min(event.stop, true_event.stop) - max(
                    event.start, true_event.start
                )
                if event.label == true_event.label and overlap > 0.4 * (
                    true_event.stop - true_event.start
                ):
                    recovered += 1
                    break
        assert recovered >= len(truth.events) * 0.5

    def test_invocation_counts(self, indexed):
        _fde, _clip, _truth, context = indexed
        assert context.invocations == {
            "segment": 1,
            "tennis": 1,
            "shape": 1,
            "rules": 1,
        }

    def test_shape_token_summaries(self, indexed):
        _fde, _clip, _truth, context = indexed
        for summary in context.tokens["shape"]:
            assert summary["mean_area"] > 0
            assert 0 <= summary["mean_eccentricity"] <= 1


class TestTennisRevalidation:
    def test_rules_bump_keeps_model_consistent(self, indexed):
        fde, _clip, truth, _context = indexed
        before = fde.model.counts()
        fde.registry.bump_version("rules")
        report = fde.revalidate("fde_test_video")
        assert set(report.executed) == {"rules"}
        after = fde.model.counts()
        assert after["feature"] == before["feature"]
        assert after["object"] == before["object"]
        assert after["event"] == before["event"]  # same rules -> same events
