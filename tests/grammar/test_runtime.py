"""Fault-tolerance runtime tests: retries, timeouts, isolation policies.

Every test is deterministic: the runner gets a fake clock whose
``sleep`` advances fake time, so no test ever sleeps for real.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.grammar.detectors import DetectorRegistry, IndexingContext
from repro.grammar.fde import FeatureDetectorEngine
from repro.grammar.grammar import parse_feature_grammar
from repro.grammar.runtime import (
    DeadlineExceededError,
    DetectorError,
    DetectorRunner,
    DetectorStatus,
    DetectorTimeoutError,
    IsolationPolicy,
    MissingTokenError,
    PermanentDetectorError,
    RunPolicy,
    TransientDetectorError,
    classify_error,
)
from repro.grammar.tennis import build_tennis_fde
from repro.video.frames import VideoClip
from repro.video.generator import BroadcastGenerator

DIAMOND = """
FEATURE GRAMMAR diamond ;
DETECTOR a : video -> x ;
DETECTOR b : x -> y ;
DETECTOR c : x -> z ;
DETECTOR d : y, z -> w ;
"""


class FakeClock:
    """Deterministic monotonic clock; sleeping advances it."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tiny_clip(name="clip"):
    frames = [np.zeros((8, 8, 3), dtype=np.uint8) for _ in range(3)]
    return VideoClip(frames, name=name)


def ok_impl(outputs, inputs=()):
    def run(context: IndexingContext) -> None:
        for token in inputs:
            context.require(token)
        for token in outputs:
            context.tokens[token] = token

    return run


def diamond_engine(policy=None, clock=None, impls=None):
    """Diamond FDE with optional per-detector implementation overrides."""
    grammar = parse_feature_grammar(DIAMOND)
    registry = DetectorRegistry()
    defaults = {
        "a": ok_impl(["x"]),
        "b": ok_impl(["y"], ["x"]),
        "c": ok_impl(["z"], ["x"]),
        "d": ok_impl(["w"], ["y", "z"]),
    }
    defaults.update(impls or {})
    for name, fn in defaults.items():
        registry.register(name, fn)
    clock = clock or FakeClock()
    runner = DetectorRunner(registry, policy, clock=clock, sleep=clock.sleep)
    return FeatureDetectorEngine(grammar, registry, runner=runner), clock


def failing(error_factory, times=None):
    """An implementation that raises; *times* failures then succeeds."""
    state = {"count": 0}

    def run(context: IndexingContext) -> None:
        state["count"] += 1
        if times is None or state["count"] <= times:
            raise error_factory()
        context.tokens["y"] = "y"

    return run


class TestClassification:
    def test_taxonomy_classes(self):
        assert classify_error(TransientDetectorError("x")) == "transient"
        assert classify_error(PermanentDetectorError("x")) == "permanent"
        assert classify_error(DetectorTimeoutError("x")) == "timeout"

    def test_builtin_mapping(self):
        assert classify_error(TimeoutError()) == "timeout"
        assert classify_error(ConnectionError()) == "transient"
        assert classify_error(RuntimeError("boom")) == "permanent"
        assert classify_error(ValueError("bad")) == "permanent"

    def test_missing_token_is_permanent_and_keyerror(self):
        error = MissingTokenError("gone", detector="b")
        assert isinstance(error, KeyError)
        assert isinstance(error, DetectorError)
        assert classify_error(error) == "permanent"

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RunPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RunPolicy(quarantine_after=0)
        with pytest.raises(ValueError):
            RunPolicy(isolation="explode")


class TestRetryBackoff:
    def test_transient_failures_retried_with_exponential_backoff(self):
        policy = RunPolicy(max_retries=3, backoff_base=0.5, backoff_factor=2.0)
        engine, clock = diamond_engine(
            policy, impls={"b": failing(lambda: TransientDetectorError("flaky"), times=2)}
        )
        context = engine.index_video(tiny_clip("v"))
        assert context.tokens["w"] == "w"
        # Two failures -> two backoff sleeps, exactly exponential.
        assert clock.sleeps == [0.5, 1.0]
        outcome = engine.health_of("v").outcomes["b"]
        assert outcome.status is DetectorStatus.OK
        assert outcome.attempts == 3
        assert outcome.retries == 2
        assert not engine.health_of("v").degraded

    def test_retries_exhausted_raises_original_error(self):
        policy = RunPolicy(max_retries=2, backoff_base=1.0)
        engine, clock = diamond_engine(
            policy, impls={"b": failing(lambda: TransientDetectorError("always"))}
        )
        with pytest.raises(TransientDetectorError, match="always"):
            engine.index_video(tiny_clip("v"))
        assert clock.sleeps == [1.0, 2.0]
        assert engine.last_health.outcomes["b"].attempts == 3
        # fail_fast: full rollback.
        assert engine.model.counts()["raw"] == 0

    def test_permanent_error_never_retried(self):
        policy = RunPolicy(max_retries=5)
        engine, clock = diamond_engine(
            policy, impls={"b": failing(lambda: PermanentDetectorError("broken"))}
        )
        with pytest.raises(PermanentDetectorError):
            engine.index_video(tiny_clip("v"))
        assert engine.last_health.outcomes["b"].attempts == 1
        assert clock.sleeps == []

    def test_unclassified_error_treated_as_permanent(self):
        policy = RunPolicy(max_retries=5)
        engine, clock = diamond_engine(
            policy, impls={"b": failing(lambda: RuntimeError("exploded"))}
        )
        with pytest.raises(RuntimeError, match="exploded"):
            engine.index_video(tiny_clip("v"))
        assert engine.last_health.outcomes["b"].attempts == 1

    def test_per_detector_retry_override(self):
        policy = RunPolicy(max_retries=0, per_detector_retries={"b": 4}, backoff_base=0.1)
        engine, _clock = diamond_engine(
            policy, impls={"b": failing(lambda: TransientDetectorError("flaky"), times=3)}
        )
        engine.index_video(tiny_clip("v"))
        assert engine.health_of("v").outcomes["b"].attempts == 4

    def test_backoff_capped(self):
        policy = RunPolicy(backoff_base=10.0, backoff_factor=10.0, max_backoff=25.0)
        assert policy.backoff(0) == 10.0
        assert policy.backoff(1) == 25.0
        assert policy.backoff(5) == 25.0


class TestTimeouts:
    def test_slow_attempt_classified_as_timeout_and_retried(self):
        clock = FakeClock()

        calls = {"n": 0}

        def slow_then_fast(context):
            calls["n"] += 1
            if calls["n"] == 1:
                clock.advance(5.0)  # first attempt takes 5s
            context.tokens["y"] = "y"

        policy = RunPolicy(max_retries=1, timeout=1.0, backoff_base=0.1)
        engine, clock = diamond_engine(policy, clock=clock, impls={"b": slow_then_fast})
        engine.index_video(tiny_clip("v"))
        outcome = engine.health_of("v").outcomes["b"]
        assert outcome.status is DetectorStatus.OK
        assert outcome.attempts == 2
        assert clock.sleeps == [0.1]

    def test_timeout_exhausts_retries(self):
        clock = FakeClock()

        def always_slow(context):
            clock.advance(5.0)
            context.tokens["y"] = "y"

        policy = RunPolicy(max_retries=1, timeout=1.0, backoff_base=0.1)
        engine, clock = diamond_engine(policy, clock=clock, impls={"b": always_slow})
        with pytest.raises(DetectorTimeoutError, match="budget"):
            engine.index_video(tiny_clip("v"))
        assert engine.last_health.outcomes["b"].error_kind == "timeout"
        assert engine.last_health.outcomes["b"].attempts == 2

    def test_per_detector_timeout_override(self):
        clock = FakeClock()

        def slow(context):
            clock.advance(5.0)
            context.tokens["y"] = "y"

        policy = RunPolicy(timeout=1.0, per_detector_timeout={"b": 60.0})
        engine, _ = diamond_engine(policy, clock=clock, impls={"b": slow})
        engine.index_video(tiny_clip("v"))  # does not raise
        assert engine.health_of("v").outcomes["b"].status is DetectorStatus.OK


class TestDeadline:
    def _slow_engine(self, policy, seconds=6.0):
        clock = FakeClock()

        def slow(outputs, inputs=()):
            def run(context):
                for token in inputs:
                    context.require(token)
                clock.advance(seconds)
                for token in outputs:
                    context.tokens[token] = token

            return run

        engine, clock = diamond_engine(
            policy,
            clock=clock,
            impls={
                "a": slow(["x"]),
                "b": slow(["y"], ["x"]),
                "c": slow(["z"], ["x"]),
                "d": slow(["w"], ["y", "z"]),
            },
        )
        return engine

    def test_deadline_skips_remaining_detectors_degraded(self):
        policy = RunPolicy(
            deadline=10.0, isolation=IsolationPolicy.SKIP_SUBTREE
        )
        engine = self._slow_engine(policy)  # each detector takes 6s
        engine.index_video(tiny_clip("v"))
        health = engine.health_of("v")
        # a finishes at 6s, b at 12s (started in budget); c and d never start.
        assert health.outcomes["a"].status is DetectorStatus.OK
        assert health.outcomes["b"].status is DetectorStatus.OK
        assert health.outcomes["c"].status is DetectorStatus.SKIPPED
        assert health.outcomes["c"].skipped_because == "deadline"
        assert health.outcomes["d"].skipped_because == "deadline"
        assert health.degraded
        assert engine.model.video(1).degraded

    def test_deadline_under_fail_fast_rolls_back(self):
        policy = RunPolicy(deadline=10.0)
        engine = self._slow_engine(policy)
        with pytest.raises(DeadlineExceededError):
            engine.index_video(tiny_clip("v"))
        assert engine.model.counts()["raw"] == 0

    def test_deadline_bounds_retry_loop(self):
        clock = FakeClock()

        def flaky(context):
            clock.advance(3.0)
            raise TransientDetectorError("flaky")

        policy = RunPolicy(max_retries=100, backoff_base=4.0, deadline=10.0)
        engine, clock = diamond_engine(policy, clock=clock, impls={"a": flaky})
        with pytest.raises(TransientDetectorError):
            engine.index_video(tiny_clip("v"))
        # attempt(3s) + backoff(4s) + attempt(3s) = 10s: budget spent, no
        # third attempt, no second sleep.
        assert engine.last_health.outcomes["a"].attempts == 2
        assert clock.sleeps == [4.0]


class TestSkipSubtree:
    def test_mid_graph_failure_commits_degraded_video(self):
        policy = RunPolicy(isolation=IsolationPolicy.SKIP_SUBTREE)
        engine, _ = diamond_engine(
            policy, impls={"b": failing(lambda: PermanentDetectorError("broken"))}
        )
        context = engine.index_video(tiny_clip("v"))
        health = engine.health_of("v")
        assert health.outcomes["a"].status is DetectorStatus.OK
        assert health.outcomes["b"].status is DetectorStatus.FAILED
        assert health.outcomes["c"].status is DetectorStatus.OK
        assert health.outcomes["d"].status is DetectorStatus.SKIPPED
        assert health.outcomes["d"].skipped_because == "b"
        assert health.degraded
        assert health.completeness == pytest.approx(0.5)
        # Upstream results are kept; the video is committed, flagged.
        assert context.tokens["x"] == "x"
        assert context.tokens["z"] == "z"
        assert "w" not in context.tokens
        assert engine.indexed_videos == ["v"]
        video = engine.model.videos[0]
        assert video.degraded
        assert [v.name for v in engine.model.degraded_videos] == ["v"]
        assert context.health is health

    def test_root_failure_skips_everything_downstream(self):
        policy = RunPolicy(isolation=IsolationPolicy.SKIP_SUBTREE)
        engine, _ = diamond_engine(
            policy, impls={"a": failing(lambda: PermanentDetectorError("broken"))}
        )
        engine.index_video(tiny_clip("v"))
        health = engine.health_of("v")
        assert health.failed == ["a"]
        assert sorted(health.skipped) == ["b", "c", "d"]
        assert all(
            health.outcomes[name].skipped_because == "a" for name in ("b", "c", "d")
        )

    def test_missing_token_attributed_to_requesting_detector(self):
        policy = RunPolicy(isolation=IsolationPolicy.SKIP_SUBTREE)

        def wants_ghost(context):
            context.require("ghost")

        engine, _ = diamond_engine(policy, impls={"b": wants_ghost})
        engine.index_video(tiny_clip("v"))
        outcome = engine.health_of("v").outcomes["b"]
        assert outcome.status is DetectorStatus.FAILED
        assert isinstance(outcome.error, MissingTokenError)
        assert outcome.error.detector == "b"
        assert "detector 'b'" in str(outcome.error)
        assert "'ghost'" in str(outcome.error)

    def test_fail_fast_requires_no_behaviour_change(self):
        # The default policy reproduces the historical rollback exactly.
        engine, _ = diamond_engine(
            impls={"b": failing(lambda: RuntimeError("exploded"))}
        )
        with pytest.raises(RuntimeError, match="exploded"):
            engine.index_video(tiny_clip("v"))
        assert engine.model.counts() == {"raw": 0, "feature": 0, "object": 0, "event": 0}
        assert engine.indexed_videos == []


class TestQuarantine:
    def _engine(self, quarantine_after=2):
        policy = RunPolicy(
            isolation=IsolationPolicy.QUARANTINE, quarantine_after=quarantine_after
        )
        return diamond_engine(
            policy, impls={"b": failing(lambda: PermanentDetectorError("broken"))}
        )

    def test_detector_quarantined_after_consecutive_failures(self):
        engine, _ = self._engine(quarantine_after=2)
        engine.index_video(tiny_clip("v1"))
        assert engine.health_of("v1").outcomes["b"].status is DetectorStatus.FAILED
        engine.index_video(tiny_clip("v2"))
        assert engine.runner.quarantined_detectors == ["b"]
        # Third video: b is not even invoked.
        context = engine.index_video(tiny_clip("v3"))
        outcome = engine.health_of("v3").outcomes["b"]
        assert outcome.status is DetectorStatus.QUARANTINED
        assert outcome.attempts == 0
        assert "b" not in context.invocations
        # Descendants skip, upstream commits.
        assert engine.health_of("v3").outcomes["d"].status is DetectorStatus.SKIPPED
        assert engine.health_of("v3").outcomes["a"].status is DetectorStatus.OK
        assert all(video.degraded for video in engine.model.videos)

    def test_version_bump_lifts_quarantine(self):
        engine, _ = self._engine(quarantine_after=2)
        engine.index_video(tiny_clip("v1"))
        engine.index_video(tiny_clip("v2"))
        assert engine.runner.quarantined_detectors == ["b"]
        engine.registry.register("b", ok_impl(["y"], ["x"]))  # fixed (bumps version)
        assert engine.runner.quarantined_detectors == []
        engine.index_video(tiny_clip("v3"))
        assert engine.health_of("v3").outcomes["b"].status is DetectorStatus.OK
        assert not engine.model.video(3).degraded

    def test_success_resets_consecutive_counter(self):
        policy = RunPolicy(isolation=IsolationPolicy.QUARANTINE, quarantine_after=2)
        engine, _ = diamond_engine(
            policy,
            # Fails on the first attempt of each video? No: fails once
            # total, then succeeds forever.
            impls={"b": failing(lambda: PermanentDetectorError("once"), times=1)},
        )
        engine.index_video(tiny_clip("v1"))  # b fails -> count 1
        engine.index_video(tiny_clip("v2"))  # b succeeds -> count reset
        assert engine.runner.consecutive_failures("b") == 0
        assert engine.runner.quarantined_detectors == []


class TestRevalidationConsistency:
    def test_fail_fast_revalidate_leaves_state_untouched(self):
        engine, _ = diamond_engine()
        engine.index_video(tiny_clip("v"))
        old_context = engine.context_of("v")
        old_versions = dict(engine._states["v"].versions)
        old_outputs = {k: dict(v) for k, v in engine._states["v"].outputs.items()}

        engine.registry.register("b", failing(lambda: RuntimeError("mid-loop crash")))
        with pytest.raises(RuntimeError, match="mid-loop crash"):
            engine.revalidate("v")
        # Staged commit: outputs, versions and context are exactly the
        # pre-revalidation state — no partial update, nothing stale.
        state = engine._states["v"]
        assert state.context is old_context
        assert state.versions == old_versions
        assert state.outputs == old_outputs

    def test_revalidate_succeeds_after_fix(self):
        engine, _ = diamond_engine()
        engine.index_video(tiny_clip("v"))
        engine.registry.register("b", failing(lambda: RuntimeError("crash")))
        with pytest.raises(RuntimeError):
            engine.revalidate("v")
        engine.registry.register("b", ok_impl(["y"], ["x"]))
        report = engine.revalidate("v")
        assert set(report.executed) == {"b", "d"}
        assert set(report.reused) == {"a", "c"}
        assert engine.context_of("v").tokens["w"] == "w"

    def test_degraded_video_repaired_by_revalidation(self):
        policy = RunPolicy(isolation=IsolationPolicy.SKIP_SUBTREE)
        engine, _ = diamond_engine(
            policy, impls={"b": failing(lambda: PermanentDetectorError("broken"))}
        )
        engine.index_video(tiny_clip("v"))
        assert engine.model.video(1).degraded
        # Failed/skipped detectors have no cached version: always stale.
        assert engine.stale_detectors("v") == {"b", "d"}

        engine.registry.register("b", ok_impl(["y"], ["x"]))
        report = engine.revalidate("v")
        assert set(report.executed) == {"b", "d"}
        assert set(report.reused) == {"a", "c"}
        assert report.health is not None and not report.health.degraded
        assert not engine.model.video(1).degraded
        assert engine.context_of("v").tokens["w"] == "w"

    def test_revalidate_under_skip_keeps_subtree_stale_on_failure(self):
        policy = RunPolicy(isolation=IsolationPolicy.SKIP_SUBTREE)
        engine, _ = diamond_engine(policy)
        engine.index_video(tiny_clip("v"))
        engine.registry.register("b", failing(lambda: PermanentDetectorError("broken")))
        report = engine.revalidate("v")
        assert report.health.failed == ["b"]
        assert report.health.skipped == ["d"]
        assert engine.model.video(1).degraded
        # b and d stay stale, so fixing b makes the next pass retry both.
        assert engine.stale_detectors("v") == {"b", "d"}
        engine.registry.register("b", ok_impl(["y"], ["x"]))
        second = engine.revalidate("v")
        assert set(second.executed) == {"b", "d"}
        assert not engine.model.video(1).degraded


class TestTennisGrammarIsolation:
    """The acceptance scenario on the real tennis DAG, via FaultPlan."""

    @pytest.fixture(scope="class")
    def clip(self):
        generator = BroadcastGenerator(seed=3131)
        return generator.generate(4, name="tennis_faulty")[0]

    def _plan(self):
        return FaultPlan(
            [FaultSpec(detector="tennis", times=None, error=PermanentDetectorError)]
        )

    def test_skip_subtree_keeps_upstream_metadata(self, clip):
        fde = build_tennis_fde(
            policy=RunPolicy(isolation=IsolationPolicy.SKIP_SUBTREE)
        )
        self._plan().install(fde.registry)
        context = fde.index_video(clip)
        health = fde.health_of(clip.name)
        # The failed detector and its exact DAG descendants.
        assert health.failed == ["tennis"]
        assert sorted(health.skipped) == ["rules", "shape"]
        assert health.outcomes["segment"].status is DetectorStatus.OK
        assert all(
            health.outcomes[name].skipped_because == "tennis"
            for name in ("shape", "rules")
        )
        assert set(health.skipped) == fde.descendants_of({"tennis"}) - {"tennis"}
        # Upstream meta-data committed: shots present, subtree layers empty.
        counts = fde.model.counts()
        assert counts["raw"] == 1
        assert counts["feature"] > 0
        assert counts["object"] == 0
        assert counts["event"] == 0
        assert fde.model.videos[0].degraded
        assert context.tokens["shot"]

    def test_fail_fast_reproduces_full_rollback(self, clip):
        fde = build_tennis_fde(policy=RunPolicy(isolation=IsolationPolicy.FAIL_FAST))
        self._plan().install(fde.registry)
        with pytest.raises(PermanentDetectorError):
            fde.index_video(clip)
        assert fde.model.counts() == {"raw": 0, "feature": 0, "object": 0, "event": 0}
        assert fde.indexed_videos == []
