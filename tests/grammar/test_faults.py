"""Fault-injection harness tests (deterministic: fake clock only)."""

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.grammar.runtime import (
    DetectorStatus,
    IsolationPolicy,
    PermanentDetectorError,
    RunPolicy,
    TransientDetectorError,
)

from tests.grammar.test_runtime import FakeClock, diamond_engine, tiny_clip


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(detector="a", times=0)
        with pytest.raises(ValueError):
            FaultSpec(detector="a", error="explode")

    def test_matching(self):
        spec = FaultSpec(detector="a", video="v1")
        assert spec.matches("a", "v1")
        assert not spec.matches("a", "v2")
        assert not spec.matches("b", "v1")
        assert FaultSpec(detector="a").matches("a", "anything")

    def test_make_error_taxonomy_carries_detector(self):
        error = FaultSpec(detector="a", error=TransientDetectorError).make_error("v")
        assert isinstance(error, TransientDetectorError)
        assert error.detector == "a"
        assert "'a'" in str(error) and "'v'" in str(error)

    def test_make_error_plain_exception_class(self):
        error = FaultSpec(detector="a", error=RuntimeError).make_error("v")
        assert isinstance(error, RuntimeError)


class TestInjection:
    def test_video_targeted_fault_only_fires_there(self):
        policy = RunPolicy(isolation=IsolationPolicy.SKIP_SUBTREE)
        engine, _ = diamond_engine(policy)
        plan = FaultPlan(
            [FaultSpec(detector="b", video="v1", times=None, error=PermanentDetectorError)]
        )
        injector = plan.install(engine.registry)
        engine.index_video(tiny_clip("v1"))
        engine.index_video(tiny_clip("v2"))
        assert engine.health_of("v1").outcomes["b"].status is DetectorStatus.FAILED
        assert engine.health_of("v2").outcomes["b"].status is DetectorStatus.OK
        assert injector.injected == 1
        assert [(e.detector, e.video) for e in injector.log] == [("b", "v1")]

    def test_bounded_fault_recovered_by_retries(self):
        policy = RunPolicy(max_retries=3, backoff_base=0.1)
        engine, clock = diamond_engine(policy)
        plan = FaultPlan([FaultSpec(detector="b", times=2, error=TransientDetectorError)])
        injector = plan.install(engine.registry)
        engine.index_video(tiny_clip("v"))
        outcome = engine.health_of("v").outcomes["b"]
        assert outcome.status is DetectorStatus.OK
        assert outcome.attempts == 3
        assert injector.injected == 2
        assert clock.sleeps == [0.1, 0.2]

    def test_hang_trips_cooperative_timeout(self):
        clock = FakeClock()
        policy = RunPolicy(max_retries=1, timeout=1.0, backoff_base=0.5)
        engine, clock = diamond_engine(policy, clock=clock)
        plan = FaultPlan(
            [FaultSpec(detector="b", times=1, error="hang", hang_seconds=5.0)]
        )
        injector = plan.install(engine.registry, sleep=clock.sleep)
        engine.index_video(tiny_clip("v"))
        outcome = engine.health_of("v").outcomes["b"]
        # First attempt hung for 5 fake seconds -> timeout -> retried clean.
        assert outcome.status is DetectorStatus.OK
        assert outcome.attempts == 2
        assert injector.log[0].mode == "hang"

    def test_install_does_not_bump_versions(self):
        engine, _ = diamond_engine()
        before = {name: engine.registry.version(name) for name in "abcd"}
        plan = FaultPlan([FaultSpec(detector="b", error=PermanentDetectorError)])
        injector = plan.install(engine.registry)
        after = {name: engine.registry.version(name) for name in "abcd"}
        assert before == after
        injector.uninstall()
        assert {name: engine.registry.version(name) for name in "abcd"} == before

    def test_uninstall_restores_behaviour(self):
        policy = RunPolicy(isolation=IsolationPolicy.SKIP_SUBTREE)
        engine, _ = diamond_engine(policy)
        plan = FaultPlan([FaultSpec(detector="b", times=None, error=PermanentDetectorError)])
        with plan.install(engine.registry):
            engine.index_video(tiny_clip("v1"))
            assert engine.health_of("v1").degraded
        engine.index_video(tiny_clip("v2"))
        assert not engine.health_of("v2").degraded

    def test_double_install_rejected(self):
        engine, _ = diamond_engine()
        plan = FaultPlan([FaultSpec(detector="b")])
        injector = plan.install(engine.registry)
        with pytest.raises(RuntimeError):
            injector.install()

    def test_unknown_detector_rejected(self):
        engine, _ = diamond_engine()
        with pytest.raises(KeyError):
            FaultPlan([FaultSpec(detector="ghost")]).install(engine.registry)


class TestRandomPlans:
    def test_deterministic_in_seed(self):
        kwargs = dict(detectors=["a", "b"], videos=["v1", "v2", "v3"], rate=0.5)
        one = FaultPlan.random(seed=99, **kwargs)
        two = FaultPlan.random(seed=99, **kwargs)
        assert [
            (s.detector, s.video) for s in one.specs
        ] == [(s.detector, s.video) for s in two.specs]
        other = FaultPlan.random(seed=100, **kwargs)
        assert [(s.detector, s.video) for s in one.specs] != [
            (s.detector, s.video) for s in other.specs
        ]

    def test_rate_bounds(self):
        none = FaultPlan.random(["a"], ["v"], rate=0.0, seed=1)
        assert none.specs == []
        everything = FaultPlan.random(["a", "b"], ["v1", "v2"], rate=1.0, seed=1)
        assert len(everything.specs) == 4
        with pytest.raises(ValueError):
            FaultPlan.random(["a"], ["v"], rate=1.5)

    def test_nested_fault_sets_as_rate_grows(self):
        # Same seed => the low-rate plan is a subset of the high-rate one
        # (the property the E12 monotonicity assertion relies on).
        low = FaultPlan.random(["a", "b", "c"], ["v1", "v2"], rate=0.3, seed=5)
        high = FaultPlan.random(["a", "b", "c"], ["v1", "v2"], rate=0.8, seed=5)
        low_pairs = {(s.detector, s.video) for s in low.specs}
        high_pairs = {(s.detector, s.video) for s in high.specs}
        assert low_pairs <= high_pairs
