"""Feature Detector Engine tests: scheduling, caching, revalidation."""

import networkx as nx
import pytest

from repro.grammar.detectors import DetectorRegistry, IndexingContext
from repro.grammar.fde import FeatureDetectorEngine
from repro.grammar.grammar import FeatureGrammarError, parse_feature_grammar
from repro.video.frames import VideoClip

import numpy as np

DIAMOND = """
FEATURE GRAMMAR diamond ;
DETECTOR a : video -> x ;
DETECTOR b : x -> y ;
DETECTOR c : x -> z ;
DETECTOR d : y, z -> w ;
"""


def tiny_clip(name="clip"):
    frames = [np.zeros((8, 8, 3), dtype=np.uint8) for _ in range(3)]
    return VideoClip(frames, name=name)


@pytest.fixture
def fde():
    """A diamond-shaped FDE whose detectors just record values."""
    grammar = parse_feature_grammar(DIAMOND)
    registry = DetectorRegistry()

    def make(name, outputs, inputs=()):
        def run(context: IndexingContext) -> None:
            for token in inputs:
                context.require(token)
            for token in outputs:
                context.tokens[token] = f"{name}:{context.invocations.get(name, 0)}"

        return run

    registry.register("a", make("a", ["x"]))
    registry.register("b", make("b", ["y"], ["x"]))
    registry.register("c", make("c", ["z"], ["x"]))
    registry.register("d", make("d", ["w"], ["y", "z"]))
    return FeatureDetectorEngine(grammar, registry)


class TestGraph:
    def test_dependency_graph_structure(self, fde):
        graph = fde.dependency_graph()
        assert set(graph.nodes) == {"video", "a", "b", "c", "d"}
        assert set(graph.edges) == {
            ("video", "a"),
            ("a", "b"),
            ("a", "c"),
            ("b", "d"),
            ("c", "d"),
        }
        assert nx.is_directed_acyclic_graph(graph)

    def test_edge_tokens(self, fde):
        graph = fde.dependency_graph()
        assert graph.edges["a", "b"]["token"] == "x"
        assert graph.edges["b", "d"]["token"] == "y"

    def test_execution_order_topological(self, fde):
        order = fde.execution_order()
        assert order[0] == "a"
        assert order[-1] == "d"
        assert set(order) == {"a", "b", "c", "d"}

    def test_descendants(self, fde):
        assert fde.descendants_of({"a"}) == {"a", "b", "c", "d"}
        assert fde.descendants_of({"b"}) == {"b", "d"}
        assert fde.descendants_of({"d"}) == {"d"}
        with pytest.raises(FeatureGrammarError):
            fde.descendants_of({"ghost"})


class TestIndexing:
    def test_runs_every_detector_once(self, fde):
        context = fde.index_video(tiny_clip())
        assert context.invocations == {"a": 1, "b": 1, "c": 1, "d": 1}

    def test_tokens_available(self, fde):
        context = fde.index_video(tiny_clip())
        assert context.tokens["w"] == "d:0"

    def test_registers_raw_layer(self, fde):
        fde.index_video(tiny_clip("v1"))
        assert [v.name for v in fde.model.videos] == ["v1"]

    def test_double_index_rejected(self, fde):
        fde.index_video(tiny_clip("v1"))
        with pytest.raises(ValueError):
            fde.index_video(tiny_clip("v1"))

    def test_unregistered_detector_rejected(self):
        grammar = parse_feature_grammar(DIAMOND)
        engine = FeatureDetectorEngine(grammar, DetectorRegistry())
        with pytest.raises(FeatureGrammarError):
            engine.index_video(tiny_clip())

    def test_missing_dependency_fails_loudly(self):
        grammar = parse_feature_grammar(
            "FEATURE GRAMMAR g ; DETECTOR a : video -> x ;"
        )
        registry = DetectorRegistry()

        def bad(context):
            context.require("nonexistent")

        registry.register("a", bad)
        engine = FeatureDetectorEngine(grammar, registry)
        with pytest.raises(KeyError):
            engine.index_video(tiny_clip())


class TestRevalidation:
    def test_no_change_reuses_everything(self, fde):
        fde.index_video(tiny_clip("v"))
        report = fde.revalidate("v")
        assert report.total_executed == 0
        assert report.total_reused == 4

    def test_leaf_change_reruns_only_leaf(self, fde):
        fde.index_video(tiny_clip("v"))
        fde.registry.bump_version("d")
        report = fde.revalidate("v")
        assert set(report.executed) == {"d"}
        assert set(report.reused) == {"a", "b", "c"}

    def test_mid_change_reruns_descendants(self, fde):
        fde.index_video(tiny_clip("v"))
        fde.registry.bump_version("b")
        report = fde.revalidate("v")
        assert set(report.executed) == {"b", "d"}
        assert set(report.reused) == {"a", "c"}

    def test_root_change_reruns_all(self, fde):
        fde.index_video(tiny_clip("v"))
        fde.registry.bump_version("a")
        report = fde.revalidate("v")
        assert set(report.executed) == {"a", "b", "c", "d"}
        assert report.total_reused == 0

    def test_reused_outputs_feed_downstream(self, fde):
        fde.index_video(tiny_clip("v"))
        fde.registry.bump_version("d")
        fde.revalidate("v")
        # d re-ran and saw b's cached y token.
        context = fde.context_of("v")
        assert context.tokens["y"] == "b:0"
        assert context.tokens["w"].startswith("d:")

    def test_revalidate_unknown_video(self, fde):
        with pytest.raises(KeyError):
            fde.revalidate("ghost")

    def test_revalidate_all_merges(self, fde):
        fde.index_video(tiny_clip("v1"))
        fde.index_video(tiny_clip("v2"))
        fde.registry.bump_version("c")
        report = fde.revalidate_all()
        assert report.executed == {"c": 2, "d": 2}
        assert report.reused == {"a": 2, "b": 2}

    def test_second_revalidation_is_clean(self, fde):
        fde.index_video(tiny_clip("v"))
        fde.registry.bump_version("b")
        fde.revalidate("v")
        report = fde.revalidate("v")
        assert report.total_executed == 0


class TestRegistry:
    def test_reregistration_bumps_version(self):
        registry = DetectorRegistry()
        registry.register("a", lambda ctx: None)
        v1 = registry.version("a")
        registry.register("a", lambda ctx: None)
        assert registry.version("a") == v1 + 1

    def test_bump_unknown(self):
        with pytest.raises(KeyError):
            DetectorRegistry().bump_version("a")

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            DetectorRegistry().register("a", lambda ctx: None, kind="grey")


class TestFailureInjection:
    """A crashing detector must not corrupt the meta-index."""

    def _engine_with_failing(self, fail_in):
        grammar = parse_feature_grammar(DIAMOND)
        registry = DetectorRegistry()

        def ok(outputs, inputs=()):
            def run(context):
                for token in inputs:
                    context.require(token)
                for token in outputs:
                    context.tokens[token] = token

            return run

        def boom(context):
            raise RuntimeError("detector exploded")

        registry.register("a", boom if fail_in == "a" else ok(["x"]))
        registry.register("b", boom if fail_in == "b" else ok(["y"], ["x"]))
        registry.register("c", boom if fail_in == "c" else ok(["z"], ["x"]))
        registry.register("d", boom if fail_in == "d" else ok(["w"], ["y", "z"]))
        return FeatureDetectorEngine(grammar, registry)

    @pytest.mark.parametrize("fail_in", ["a", "b", "d"])
    def test_rollback_on_crash(self, fail_in):
        engine = self._engine_with_failing(fail_in)
        with pytest.raises(RuntimeError, match="exploded"):
            engine.index_video(tiny_clip("crash"))
        # The raw layer holds no trace of the failed video...
        assert engine.model.counts() == {"raw": 0, "feature": 0, "object": 0, "event": 0}
        assert engine.indexed_videos == []

    def test_retry_after_crash_succeeds(self):
        engine = self._engine_with_failing("d")
        with pytest.raises(RuntimeError):
            engine.index_video(tiny_clip("retry"))
        # Fix the detector and retry the same video name.
        def fixed(context):
            context.require("y")
            context.require("z")
            context.tokens["w"] = "w"

        engine.registry.register("d", fixed)
        context = engine.index_video(tiny_clip("retry"))
        assert context.tokens["w"] == "w"
        assert engine.indexed_videos == ["retry"]

    def test_other_videos_untouched_by_crash(self):
        engine = self._engine_with_failing("d")

        def fixed(context):
            context.tokens["w"] = "w"

        engine.registry.register("d", fixed)
        engine.index_video(tiny_clip("good"))

        def boom(context):
            raise RuntimeError("exploded later")

        engine.registry.register("a", boom)
        with pytest.raises(RuntimeError):
            engine.index_video(tiny_clip("bad"))
        assert engine.indexed_videos == ["good"]
        assert engine.model.counts()["raw"] == 1
