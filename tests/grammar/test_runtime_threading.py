"""Thread-safety of the detector runtime and the wave scheduler.

The runner's quarantine accounting is shared by every worker thread the
engine spawns; these tests hammer it from many threads (with injected
latency so interleavings actually happen) and check no update is lost,
then exercise the wave scheduler itself: overlap without reordering.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.grammar.detectors import DetectorRegistry, IndexingContext
from repro.grammar.fde import FeatureDetectorEngine
from repro.grammar.grammar import parse_feature_grammar
from repro.grammar.runtime import DetectorRunner, IsolationPolicy, RunPolicy
from repro.grammar.schedule import WaveTurnstile, wave_partition
from repro.video.frames import VideoClip

WIDE = """
FEATURE GRAMMAR wide ;
DETECTOR a : video -> x ;
DETECTOR b : x -> y1 ;
DETECTOR c : x -> y2 ;
DETECTOR d : x -> y3 ;
DETECTOR e : y1, y2, y3 -> w ;
"""


def tiny_clip(name="clip"):
    frames = [np.zeros((8, 8, 3), dtype=np.uint8) for _ in range(3)]
    return VideoClip(frames, name=name)


class TestRunnerThreadSafety:
    def test_no_lost_failure_counts(self):
        """N threads x M failing records must count exactly N*M."""
        registry = DetectorRegistry()
        registry.register("det", lambda context: None)
        runner = DetectorRunner(
            registry,
            RunPolicy(isolation=IsolationPolicy.QUARANTINE, quarantine_after=10**9),
        )
        threads, per_thread = 16, 200
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                runner.record_video_result("det", failed=True)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            for future in [pool.submit(hammer) for _ in range(threads)]:
                future.result()
        assert runner.consecutive_failures("det") == threads * per_thread

    def test_quarantine_transitions_under_contention(self):
        """Interleaved failures and quarantine reads stay consistent.

        Each of 8 detectors takes failures from several threads at
        once, with a sleep injected between records to force
        interleavings; every detector must end up quarantined with its
        counter at least at the threshold.
        """
        registry = DetectorRegistry()
        names = [f"det{i}" for i in range(8)]
        for name in names:
            registry.register(name, lambda context: None)
        runner = DetectorRunner(
            registry,
            RunPolicy(isolation=IsolationPolicy.QUARANTINE, quarantine_after=16),
        )
        barrier = threading.Barrier(8)

        def hammer(name):
            barrier.wait()
            for _ in range(8):
                runner.record_video_result(name, failed=True)
                time.sleep(0.001)
                runner.is_quarantined(name)

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(hammer, name) for name in names for _ in range(4)
            ]
            for future in futures:
                future.result()
        for name in names:
            assert runner.is_quarantined(name)
            assert runner.consecutive_failures(name) == 32

    def test_export_state_consistent_under_writes(self):
        """export_state taken mid-hammering is a consistent snapshot."""
        registry = DetectorRegistry()
        registry.register("det", lambda context: None)
        runner = DetectorRunner(
            registry,
            RunPolicy(isolation=IsolationPolicy.QUARANTINE, quarantine_after=10**9),
        )
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                runner.record_video_result("det", failed=True)

        snapshots = []
        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snapshots.append(runner.export_state())
        finally:
            stop.set()
            thread.join()
        counts = [s["consecutive_failures"].get("det", 0) for s in snapshots]
        assert counts == sorted(counts)  # monotone: no torn/lost reads


def build_wide_fde(workers: int, delays: dict[str, float] | None = None):
    """A one-wide-wave FDE whose middle detectors sleep, then commit."""
    grammar = parse_feature_grammar(WIDE)
    registry = DetectorRegistry()
    commits: list[str] = []
    delays = delays or {}

    def make(name, outputs, inputs=()):
        def run(context: IndexingContext) -> None:
            for token in inputs:
                context.require(token)
            time.sleep(delays.get(name, 0.0))
            # First model access passes the wave turnstile; commits must
            # therefore land in canonical order even though the sleeps
            # above finish in any order.
            context.model.add_shot(
                context.video_id, start=0, stop=1, category=name
            )
            commits.append(name)
            for token in outputs:
                context.tokens[token] = name

        return run

    registry.register("a", make("a", ["x"]))
    registry.register("b", make("b", ["y1"], ["x"]))
    registry.register("c", make("c", ["y2"], ["x"]))
    registry.register("d", make("d", ["y3"], ["x"]))
    registry.register("e", make("e", ["w"], ["y1", "y2", "y3"]))
    fde = FeatureDetectorEngine(
        grammar, registry, policy=RunPolicy(max_workers=workers)
    )
    return fde, commits


class TestWaveScheduler:
    def test_wave_partition_shape(self):
        fde, _ = build_wide_fde(1)
        assert fde.waves() == [["a"], ["b", "c", "d"], ["e"]]
        assert fde.execution_order() == ["a", "b", "c", "d", "e"]

    def test_parallel_commits_in_canonical_order(self):
        """Reverse-sorted sleeps cannot reorder the model commits."""
        fde, commits = build_wide_fde(
            4, delays={"b": 0.08, "c": 0.04, "d": 0.0}
        )
        fde.index_video(tiny_clip())
        assert commits == ["a", "b", "c", "d", "e"]
        assert [shot.category for shot in fde.model.shots] == ["a", "b", "c", "d", "e"]

    def test_parallel_overlaps_independent_detectors(self):
        """The wide wave's sleeps overlap: the pass beats their sum."""
        delay = 0.15
        fde, _ = build_wide_fde(4, delays={"b": delay, "c": delay, "d": delay})
        started = time.perf_counter()
        fde.index_video(tiny_clip())
        elapsed = time.perf_counter() - started
        assert elapsed < 3 * delay  # sequential would sleep 3x

    def test_parallel_matches_sequential_model(self):
        sequential, _ = build_wide_fde(1)
        parallel, _ = build_wide_fde(8, delays={"b": 0.03, "d": 0.06})
        sequential.index_video(tiny_clip())
        parallel.index_video(tiny_clip())
        seq = [(s.shot_id, s.category) for s in sequential.model.shots]
        par = [(s.shot_id, s.category) for s in parallel.model.shots]
        assert seq == par


class TestWaveTurnstile:
    def test_wait_turn_enforces_rank_order(self):
        gate = WaveTurnstile(["p", "q", "r"])
        order: list[str] = []

        def member(name, delay):
            time.sleep(delay)
            gate.wait_turn(name)
            order.append(name)
            gate.finish(name)

        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [
                pool.submit(member, "p", 0.05),
                pool.submit(member, "q", 0.0),
                pool.submit(member, "r", 0.02),
            ]
            for future in futures:
                future.result()
        assert order == ["p", "q", "r"]

    def test_wave_partition_diamond(self):
        import networkx as nx

        graph = nx.DiGraph(
            [("video", "a"), ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        assert wave_partition(graph, "video") == [["a"], ["b", "c"], ["d"]]

    def test_partition_rejects_nothing_but_orders_everything(self):
        import networkx as nx

        graph = nx.DiGraph([("video", "a"), ("video", "z"), ("a", "m"), ("z", "m")])
        waves = wave_partition(graph, "video")
        assert waves == [["a", "z"], ["m"]]


class TestRunPolicyValidation:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            RunPolicy(max_workers=0)

    def test_default_is_sequential(self):
        assert RunPolicy().max_workers == 1
