"""Shared fixtures.

Video generation is the expensive part of the suite, so clips and the
tournament dataset are built once per session and shared read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import build_australian_open
from repro.video import BroadcastConfig, BroadcastGenerator


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def broadcast():
    """A 12-shot broadcast with ~30% gradual transitions, plus its truth."""
    generator = BroadcastGenerator(BroadcastConfig(gradual_fraction=0.3), seed=42)
    return generator.generate(12, name="fixture_broadcast")


@pytest.fixture(scope="session")
def tennis_clips():
    """One tennis clip per motion script: kind -> (clip, truth)."""
    generator = BroadcastGenerator(seed=7)
    return {
        kind: generator.tennis_clip(script=kind, n_frames=60, name=f"tennis_{kind}")
        for kind in ("rally", "net_approach", "service", "baseline_play")
    }


@pytest.fixture(scope="session")
def court_frame(tennis_clips):
    """A single clean court frame."""
    clip, _truth = tennis_clips["rally"]
    return clip[0]


@pytest.fixture(scope="session")
def dataset():
    """The full tournament dataset (no videos indexed)."""
    return build_australian_open(seed=7, video_shots=8)
