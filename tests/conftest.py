"""Shared fixtures.

Video generation is the expensive part of the suite, so clips and the
tournament dataset are built once per session and shared read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import build_australian_open
from repro.video import BroadcastConfig, BroadcastGenerator


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def make_rng():
    """Factory for explicit per-test generators: ``make_rng(seed)``.

    The one seam through which tests construct random state — no test
    (and no library code) touches module-level RandomState.
    """
    return np.random.default_rng


@pytest.fixture(scope="session")
def random_frame(make_rng):
    """Factory for deterministic random test images.

    ``random_frame(seed, height, width)`` is an RGB uint8 frame;
    ``channels=0`` gives a greyscale one.  Centralising the
    construction keeps ad-hoc ``default_rng`` calls out of the suites.
    """

    def make(seed: int = 0, height: int = 16, width: int = 16, channels: int = 3):
        shape = (height, width) if channels == 0 else (height, width, channels)
        return make_rng(seed).integers(0, 256, size=shape).astype(np.uint8)

    return make


@pytest.fixture(scope="session")
def broadcast():
    """A 12-shot broadcast with ~30% gradual transitions, plus its truth."""
    generator = BroadcastGenerator(BroadcastConfig(gradual_fraction=0.3), seed=42)
    return generator.generate(12, name="fixture_broadcast")


@pytest.fixture(scope="session")
def tennis_clips():
    """One tennis clip per motion script: kind -> (clip, truth)."""
    generator = BroadcastGenerator(seed=7)
    return {
        kind: generator.tennis_clip(script=kind, n_frames=60, name=f"tennis_{kind}")
        for kind in ("rally", "net_approach", "service", "baseline_play")
    }


@pytest.fixture(scope="session")
def court_frame(tennis_clips):
    """A single clean court frame."""
    clip, _truth = tennis_clips["rally"]
    return clip[0]


@pytest.fixture(scope="session")
def dataset():
    """The full tournament dataset (no videos indexed)."""
    return build_australian_open(seed=7, video_shots=8)
