"""Audio substrate tests: signal, synthesis, features, segmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio.features import frame_energy, power_spectrum, spectral_peaks
from repro.audio.segmenter import WordSegment, segment_words
from repro.audio.signal import SAMPLE_RATE, AudioSignal
from repro.audio.synth import (
    WORD_SECONDS,
    synthesize_utterance,
    synthesize_word,
    word_signature,
)

words_strategy = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=10)


class TestSignal:
    def test_basic_properties(self):
        signal = AudioSignal(np.zeros(8000), 8000, name="s")
        assert len(signal) == 8000
        assert signal.duration == pytest.approx(1.0)
        assert signal.fps == 8000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AudioSignal(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            AudioSignal(np.zeros(0))
        with pytest.raises(ValueError):
            AudioSignal(np.zeros(10), sample_rate=0)

    def test_slice_seconds(self):
        signal = AudioSignal(np.arange(8000, dtype=float), 8000)
        part = signal.slice_seconds(0.25, 0.5)
        assert len(part) == 2000
        assert part.samples[0] == 2000.0

    def test_slice_empty_rejected(self):
        signal = AudioSignal(np.zeros(100), 8000)
        with pytest.raises(ValueError):
            signal.slice_seconds(0.5, 0.5)

    def test_noise_snr(self):
        rng = np.random.default_rng(0)
        t = np.arange(8000) / 8000
        signal = AudioSignal(np.sin(2 * np.pi * 440 * t), 8000)
        noisy = signal.with_noise(20.0, rng)
        noise = noisy.samples - signal.samples
        snr = 10 * np.log10(np.mean(signal.samples**2) / np.mean(noise**2))
        assert snr == pytest.approx(20.0, abs=1.0)


class TestSignatures:
    def test_deterministic(self):
        assert word_signature("volley") == word_signature("volley")
        assert word_signature("Volley") == word_signature("volley")

    def test_formants_in_bands(self):
        signature = word_signature("net")
        f1, f2, f3 = signature.formants
        assert 300 <= f1 <= 900
        assert 1000 <= f2 <= 2000
        assert 2200 <= f3 <= 3600

    @given(words_strategy, words_strategy)
    @settings(max_examples=50, deadline=None)
    def test_distinct_words_usually_distinct(self, a, b):
        if a.lower() == b.lower():
            return
        # Not guaranteed (hash grid), but collisions must be rare enough
        # that random short pairs essentially never collide.
        sig_a = word_signature(a)
        sig_b = word_signature(b)
        # At least assert the signatures are valid; count collisions out of band.
        assert len(sig_a.formants) == 3
        assert len(sig_b.formants) == 3


class TestSynthesis:
    def test_word_length_and_range(self):
        samples = synthesize_word("net")
        assert len(samples) == int(WORD_SECONDS * SAMPLE_RATE)
        assert np.abs(samples).max() <= 0.8 + 1e-9

    def test_word_spectrum_matches_signature(self):
        samples = synthesize_word("volley")
        peaks = spectral_peaks(samples, SAMPLE_RATE, n_peaks=3)
        formants = sorted(word_signature("volley").formants)
        for peak, formant in zip(peaks, formants):
            assert abs(peak - formant) < 25.0

    def test_utterance_truth_alignment(self):
        signal, truth = synthesize_utterance(["net", "rally"])
        assert len(truth) == 2
        for start, stop, _word in truth:
            assert 0 <= start < stop <= len(signal)

    def test_empty_utterance_rejected(self):
        with pytest.raises(ValueError):
            synthesize_utterance([])


class TestFeatures:
    def test_frame_energy_of_silence(self):
        assert frame_energy(np.zeros(800)).max() == 0.0

    def test_frame_energy_shape(self):
        energy = frame_energy(np.ones(800), frame=80, hop=40)
        assert len(energy) == 19

    def test_short_input(self):
        assert len(frame_energy(np.ones(10), frame=80, hop=40)) == 1

    def test_power_spectrum_peak(self):
        t = np.arange(2048) / 8000
        tone = np.sin(2 * np.pi * 1000 * t)
        frequencies, power = power_spectrum(tone, 8000)
        assert abs(frequencies[int(np.argmax(power))] - 1000) < 10

    def test_spectral_peaks_separation(self):
        t = np.arange(2048) / 8000
        tone = np.sin(2 * np.pi * 500 * t) + np.sin(2 * np.pi * 1500 * t)
        peaks = spectral_peaks(tone, 8000, n_peaks=2)
        assert abs(peaks[0] - 500) < 20
        assert abs(peaks[1] - 1500) < 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            power_spectrum(np.zeros(0), 8000)


class TestSegmentation:
    def test_counts_words(self):
        signal, truth = synthesize_utterance("the quick brown fox jumps".split())
        segments = segment_words(signal)
        assert len(segments) == len(truth)

    def test_segments_align_with_truth(self):
        signal, truth = synthesize_utterance(["net", "volley", "rally"])
        segments = segment_words(signal)
        for segment, (start, stop, _word) in zip(segments, truth):
            # Segment within ~one frame of the truth boundaries.
            assert abs(segment.start - start) <= 120
            assert abs(segment.stop - stop) <= 120

    def test_silence_has_no_words(self):
        silence = AudioSignal(np.zeros(8000) + 1e-12, 8000)
        assert segment_words(silence) == []

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            WordSegment(5, 5)

    def test_threshold_validation(self):
        signal, _ = synthesize_utterance(["net"])
        with pytest.raises(ValueError):
            segment_words(signal, threshold_fraction=2.0)
