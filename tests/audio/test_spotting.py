"""Keyword spotting and interview FDE tests."""

import numpy as np
import pytest

from repro.audio.spotting import KeywordSpotter
from repro.audio.synth import synthesize_utterance
from repro.grammar.interview import TENNIS_KEYWORDS, build_interview_fde

SENTENCE = "i tried to come to the net early and the volley felt natural".split()


@pytest.fixture(scope="module")
def utterance():
    return synthesize_utterance(SENTENCE, name="spot_test")


@pytest.fixture(scope="module")
def spotter():
    return KeywordSpotter(vocabulary=sorted(set(SENTENCE)) + ["rally", "serve"])


class TestSpotter:
    def test_vocabulary_required(self):
        with pytest.raises(ValueError):
            KeywordSpotter([])

    def test_perfect_transcription_clean(self, utterance, spotter):
        signal, truth = utterance
        transcription = spotter.transcribe(signal)
        assert [w for _seg, w in transcription] == [w for _s, _e, w in truth]

    def test_spot_keyword_positions(self, utterance, spotter):
        signal, truth = utterance
        hits = spotter.spot(signal, "net")
        true_spans = [(s, e) for s, e, w in truth if w == "net"]
        assert len(hits) == len(true_spans)
        for hit, (start, stop) in zip(hits, true_spans):
            assert abs(hit.start - start) <= 120

    def test_unknown_keyword_rejected(self, utterance, spotter):
        signal, _ = utterance
        with pytest.raises(KeyError):
            spotter.spot(signal, "zeppelin")

    def test_out_of_vocabulary_segments_are_none(self, utterance):
        signal, truth = utterance
        # A spotter that only knows two words rejects the rest.
        narrow = KeywordSpotter(vocabulary=["net", "volley"])
        transcription = narrow.transcribe(signal)
        labels = [w for _seg, w in transcription]
        assert "net" in labels and "volley" in labels
        assert labels.count(None) == len(truth) - 2

    def test_degrades_with_noise(self, utterance, spotter):
        signal, truth = utterance
        rng = np.random.default_rng(1)

        def accuracy(snr):
            noisy = signal.with_noise(snr, rng)
            transcription = spotter.transcribe(noisy)
            got = [w for _seg, w in transcription]
            want = [w for _s, _e, w in truth]
            if len(got) != len(want):
                return 0.0
            return sum(g == w for g, w in zip(got, want)) / len(want)

        assert accuracy(40.0) == 1.0
        assert accuracy(-5.0) < 1.0


class TestInterviewFde:
    def test_audio_axiom_pipeline(self, utterance):
        signal, _truth = utterance
        fde = build_interview_fde(vocabulary=sorted(set(SENTENCE)))
        assert fde.grammar.axiom == "audio"
        assert fde.execution_order() == ["words", "spot", "mentions"]
        context = fde.index_video(signal)
        assert context.invocations == {"words": 1, "spot": 1, "mentions": 1}

    def test_mentions_registered_as_events(self, utterance):
        signal, truth = utterance
        fde = build_interview_fde(vocabulary=sorted(set(SENTENCE)))
        fde.index_video(signal)
        labels = sorted(e.label for e in fde.model.events)
        assert labels == ["mention:net", "mention:volley"]
        # Sample positions align with truth.
        net_event = next(e for e in fde.model.events if e.label == "mention:net")
        net_truth = next((s, e) for s, e, w in truth if w == "net")
        assert abs(net_event.start - net_truth[0]) <= 120

    def test_incremental_revalidation_on_audio(self, utterance):
        signal, _ = utterance
        fde = build_interview_fde(vocabulary=sorted(set(SENTENCE)))
        fde.index_video(signal)
        fde.registry.bump_version("mentions")
        report = fde.revalidate(signal.name)
        assert set(report.executed) == {"mentions"}
        assert set(report.reused) == {"words", "spot"}

    def test_raw_layer_records_audio(self, utterance):
        signal, _ = utterance
        fde = build_interview_fde(vocabulary=sorted(set(SENTENCE)))
        fde.index_video(signal)
        video = fde.model.videos[0]
        assert video.fps == signal.sample_rate
        assert video.n_frames == len(signal)

    def test_keyword_list_is_lowercase(self):
        assert all(k == k.lower() for k in TENNIS_KEYWORDS)
