"""Rule-based event detector tests on hand-built trajectories."""

import numpy as np
import pytest

from repro.events.quantize import CourtZones
from repro.events.rules import DetectedEvent, RuleEventDetector


@pytest.fixture
def zones():
    return CourtZones(net_row=50.0, baseline_row=90.0, left_col=20.0, right_col=108.0)


@pytest.fixture
def detector(zones):
    return RuleEventDetector(zones)


def baseline_still(n, col=100.0):
    """Still at the baseline corner (right side band)."""
    return [(88.0, col)] * n


def net_stand(n):
    return [(52.0, 64.0)] * n


def lateral_rally(n, amplitude=25.0, period=24.0):
    return [
        (85.0, 64.0 + amplitude * np.sin(2 * np.pi * t / period)) for t in range(n)
    ]


class TestDetectedEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            DetectedEvent(5, 5, "rally")
        with pytest.raises(ValueError):
            DetectedEvent(0, 5, "rally", confidence=0.0)

    def test_length(self):
        assert DetectedEvent(2, 10, "rally").length == 8


class TestNetPlay:
    def test_detected_when_long_enough(self, detector):
        events = detector.detect(net_stand(12))
        assert any(e.label == "net_play" for e in events)

    def test_not_detected_when_short(self, detector):
        events = detector.detect(net_stand(5) + baseline_still(20))
        assert not any(e.label == "net_play" for e in events)

    def test_interval_covers_stay(self, detector):
        trajectory = baseline_still(10) + net_stand(20)
        events = [e for e in detector.detect(trajectory) if e.label == "net_play"]
        assert len(events) == 1
        assert events[0].start >= 9
        assert events[0].stop == 30


class TestService:
    def test_still_corner_stance(self, detector):
        events = detector.detect(baseline_still(12))
        assert any(e.label == "service" for e in events)

    def test_center_stance_is_not_service(self, detector):
        events = detector.detect(baseline_still(12, col=64.0))
        assert not any(e.label == "service" for e in events)


class TestRally:
    def test_sustained_lateral_movement(self, detector):
        events = detector.detect(lateral_rally(40))
        assert any(e.label == "rally" for e in events)

    def test_slow_drift_is_not_rally(self, detector):
        trajectory = [(85.0, 40.0 + 0.2 * t) for t in range(40)]
        events = detector.detect(trajectory)
        assert not any(e.label == "rally" for e in events)

    def test_one_way_run_is_not_rally(self, detector):
        # Fast movement but no direction change.
        trajectory = [(85.0, 25.0 + 2.0 * t) for t in range(40)]
        events = detector.detect(trajectory)
        assert not any(e.label == "rally" for e in events)


class TestBaselinePlay:
    def test_fallback_when_nothing_else_fires(self, detector):
        # Slow center-court baseline drift: not service (center), not rally.
        trajectory = [(85.0, 60.0 + 0.3 * np.sin(t / 9)) for t in range(30)]
        events = detector.detect(trajectory)
        assert any(e.label == "baseline_play" for e in events)

    def test_not_duplicated_over_rally(self, detector):
        events = detector.detect(lateral_rally(40))
        rally_frames = set()
        for event in events:
            if event.label == "rally":
                rally_frames.update(range(event.start, event.stop))
        for event in events:
            if event.label == "baseline_play":
                overlap = rally_frames & set(range(event.start, event.stop))
                assert not overlap


class TestRobustness:
    def test_empty_trajectory(self, detector):
        assert detector.detect([]) == []

    def test_tracking_gaps_break_events(self, detector):
        trajectory = net_stand(6) + [None] * 3 + net_stand(6)
        events = [e for e in detector.detect(trajectory) if e.label == "net_play"]
        assert events == []

    def test_all_none(self, detector):
        assert detector.detect([None] * 20) == []

    def test_duration_validation(self, zones):
        with pytest.raises(ValueError):
            RuleEventDetector(zones, min_net_frames=0)

    def test_events_sorted(self, detector):
        trajectory = baseline_still(12) + net_stand(12)
        events = detector.detect(trajectory)
        starts = [e.start for e in events]
        assert starts == sorted(starts)
