"""Discrete HMM tests, including the Baum-Welch monotonicity property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.hmm import DiscreteHMM


def make_hmm(n_states=3, n_symbols=4, seed=0):
    return DiscreteHMM(n_states, n_symbols, rng=np.random.default_rng(seed))


sequences = st.lists(st.integers(0, 3), min_size=1, max_size=30).map(np.array)


class TestConstruction:
    def test_distributions_are_stochastic(self):
        hmm = make_hmm()
        assert hmm.start.sum() == pytest.approx(1.0)
        assert np.allclose(hmm.transition.sum(axis=1), 1.0)
        assert np.allclose(hmm.emission.sum(axis=1), 1.0)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            DiscreteHMM(0, 4)
        with pytest.raises(ValueError):
            DiscreteHMM(3, 0)


class TestLikelihood:
    def test_log_likelihood_nonpositive(self):
        hmm = make_hmm()
        assert hmm.log_likelihood(np.array([0, 1, 2, 3])) <= 0.0

    @given(sequences)
    @settings(max_examples=30, deadline=None)
    def test_log_likelihood_finite_and_nonpositive(self, seq):
        hmm = make_hmm()
        ll = hmm.log_likelihood(seq)
        assert np.isfinite(ll)
        assert ll <= 1e-9

    def test_rejects_out_of_range_symbols(self):
        hmm = make_hmm(n_symbols=4)
        with pytest.raises(ValueError):
            hmm.log_likelihood(np.array([0, 4]))
        with pytest.raises(ValueError):
            hmm.log_likelihood(np.array([-1]))

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            make_hmm().log_likelihood(np.array([], dtype=int))

    def test_single_symbol_likelihood(self):
        hmm = make_hmm()
        expected = np.log((hmm.start * hmm.emission[:, 2]).sum())
        assert hmm.log_likelihood(np.array([2])) == pytest.approx(expected)


class TestViterbi:
    def test_path_length(self):
        hmm = make_hmm()
        path = hmm.viterbi(np.array([0, 1, 2, 3, 0]))
        assert len(path) == 5
        assert path.min() >= 0 and path.max() < hmm.n_states

    def test_deterministic_chain_decoded(self):
        # Two states, state i emits symbol i almost surely.
        hmm = DiscreteHMM(2, 2, rng=np.random.default_rng(0))
        hmm.start = np.array([0.5, 0.5])
        hmm.transition = np.array([[0.9, 0.1], [0.1, 0.9]])
        hmm.emission = np.array([[0.99, 0.01], [0.01, 0.99]])
        path = hmm.viterbi(np.array([0, 0, 1, 1, 1, 0]))
        assert list(path) == [0, 0, 1, 1, 1, 0]


class TestBaumWelch:
    def test_likelihood_never_decreases(self):
        rng = np.random.default_rng(3)
        train = [rng.integers(0, 4, size=20) for _ in range(5)]
        hmm = make_hmm(seed=1)
        history = hmm.fit(train, n_iterations=15)
        diffs = np.diff(history)
        assert (diffs >= -1e-6).all()

    def test_improves_over_initial(self):
        # Structured data: alternating blocks of symbols.
        train = [np.array([0] * 10 + [3] * 10) for _ in range(4)]
        hmm = make_hmm(seed=2)
        before = sum(hmm.log_likelihood(s) for s in train)
        hmm.fit(train, n_iterations=20)
        after = sum(hmm.log_likelihood(s) for s in train)
        assert after > before

    def test_distributions_stay_stochastic(self):
        rng = np.random.default_rng(5)
        train = [rng.integers(0, 4, size=15) for _ in range(3)]
        hmm = make_hmm(seed=3)
        hmm.fit(train, n_iterations=10)
        assert hmm.start.sum() == pytest.approx(1.0)
        assert np.allclose(hmm.transition.sum(axis=1), 1.0)
        assert np.allclose(hmm.emission.sum(axis=1), 1.0)

    def test_discriminates_two_processes(self):
        """Models trained on different dynamics separate fresh samples."""
        rng = np.random.default_rng(6)
        low = [rng.integers(0, 2, size=25) for _ in range(8)]  # symbols 0-1
        high = [2 + rng.integers(0, 2, size=25) for _ in range(8)]  # symbols 2-3
        model_low = make_hmm(seed=4)
        model_low.fit(low)
        model_high = make_hmm(seed=5)
        model_high.fit(high)
        fresh_low = rng.integers(0, 2, size=25)
        fresh_high = 2 + rng.integers(0, 2, size=25)
        assert model_low.log_likelihood(fresh_low) > model_high.log_likelihood(fresh_low)
        assert model_high.log_likelihood(fresh_high) > model_low.log_likelihood(fresh_high)

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            make_hmm().fit([])

    def test_unseen_symbols_still_scoreable(self):
        """The probability floor keeps unseen symbols finite."""
        train = [np.array([0, 0, 0, 0, 0])] * 3
        hmm = make_hmm(seed=7)
        hmm.fit(train, n_iterations=10)
        assert np.isfinite(hmm.log_likelihood(np.array([3, 3, 3])))
