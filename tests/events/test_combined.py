"""Combined (rules + HMM) recogniser tests."""

import numpy as np
import pytest

from repro.events.quantize import CourtZones, TrajectoryQuantizer
from repro.events.recognizer import (
    CombinedRecognizer,
    RuleBasedRecognizer,
    train_hmm_recognizer,
)
from repro.events.rules import RuleEventDetector
from repro.tracking.court_model import CourtColorModel
from repro.tracking.segmentation import court_bounds
from repro.tracking.tracker import PlayerTracker
from repro.video.generator import BroadcastGenerator

SCRIPT_TO_LABEL = {
    "rally": "rally",
    "net_approach": "net_play",
    "service": "service",
    "baseline_play": "baseline_play",
}


@pytest.fixture(scope="module")
def setup():
    generator = BroadcastGenerator(seed=77)
    tracker = PlayerTracker()
    zones = None
    train = {label: [] for label in SCRIPT_TO_LABEL.values()}
    test = []
    for i in range(28):
        script = list(SCRIPT_TO_LABEL)[i % 4]
        clip, _truth = generator.tennis_clip(script=script, n_frames=50)
        trajectory = tracker.track(list(clip)).positions
        if zones is None:
            model = CourtColorModel.estimate(clip[0])
            zones = CourtZones.from_court_bounds(court_bounds(clip[0], model))
        if i < 20:
            train[SCRIPT_TO_LABEL[script]].append([p for p in trajectory if p])
        else:
            test.append((SCRIPT_TO_LABEL[script], trajectory))
    rules = RuleBasedRecognizer(RuleEventDetector(zones))
    hmm = train_hmm_recognizer(TrajectoryQuantizer(zones), train, n_states=3)
    return rules, hmm, test


def perturb(trajectory, sigma, rng):
    return [
        None if p is None else (p[0] + rng.normal(0, sigma), p[1] + rng.normal(0, sigma))
        for p in trajectory
    ]


class TestCombinedRecognizer:
    def test_matches_components_on_clean_data(self, setup):
        rules, hmm, test = setup
        combined = CombinedRecognizer(rules, hmm)
        accuracy = np.mean([combined.classify(t) == label for label, t in test])
        assert accuracy >= 0.75

    def test_at_least_as_robust_as_rules_under_noise(self, setup):
        rules, hmm, test = setup
        combined = CombinedRecognizer(rules, hmm)
        rng = np.random.default_rng(5)
        noisy = [(label, perturb(t, 4.0, rng)) for label, t in test]
        rule_acc = np.mean([rules.classify(t) == label for label, t in noisy])
        combined_acc = np.mean([combined.classify(t) == label for label, t in noisy])
        assert combined_acc >= rule_acc - 1e-9

    def test_agreement_passthrough(self, setup):
        rules, hmm, test = setup
        combined = CombinedRecognizer(rules, hmm)
        for label, trajectory in test:
            rule_label = rules.classify(trajectory)
            hmm_label = hmm.classify(trajectory)
            if rule_label == hmm_label and rule_label is not None:
                assert combined.classify(trajectory) == rule_label

    def test_empty_trajectory(self, setup):
        rules, hmm, _test = setup
        combined = CombinedRecognizer(rules, hmm)
        assert combined.classify([]) is None

    def test_margin_validation(self, setup):
        rules, hmm, _test = setup
        with pytest.raises(ValueError):
            CombinedRecognizer(rules, hmm, margin=-1.0)

    def test_rules_none_falls_back_to_hmm(self, setup):
        rules, hmm, test = setup
        combined = CombinedRecognizer(rules, hmm)
        # A trajectory too short for any rule still gets an HMM label.
        _label, trajectory = test[0]
        short = [p for p in trajectory if p][:4]
        assert rules.classify(short) is None
        assert combined.classify(short) == hmm.classify(short)
