"""Shot-level event recogniser tests (rules vs HMM) on real pipeline output."""

import numpy as np
import pytest

from repro.events.quantize import CourtZones, TrajectoryQuantizer
from repro.events.recognizer import (
    EVENT_LABELS,
    HmmRecognizer,
    RuleBasedRecognizer,
    train_hmm_recognizer,
)
from repro.events.rules import RuleEventDetector
from repro.tracking.court_model import CourtColorModel
from repro.tracking.segmentation import court_bounds
from repro.tracking.tracker import PlayerTracker
from repro.video.generator import BroadcastGenerator

SCRIPT_TO_LABEL = {
    "rally": "rally",
    "net_approach": "net_play",
    "service": "service",
    "baseline_play": "baseline_play",
}


@pytest.fixture(scope="module")
def corpus():
    """Tracked trajectories per label: 4 train + 2 test per script."""
    generator = BroadcastGenerator(seed=23)
    tracker = PlayerTracker()
    zones = None
    train = {label: [] for label in SCRIPT_TO_LABEL.values()}
    test = []
    for i in range(24):
        script = list(SCRIPT_TO_LABEL)[i % 4]
        clip, _truth = generator.tennis_clip(script=script, n_frames=50)
        trajectory = tracker.track(list(clip)).positions
        if zones is None:
            model = CourtColorModel.estimate(clip[0])
            zones = CourtZones.from_court_bounds(court_bounds(clip[0], model))
        if i < 16:
            train[SCRIPT_TO_LABEL[script]].append([p for p in trajectory if p])
        else:
            test.append((SCRIPT_TO_LABEL[script], trajectory))
    return zones, train, test


class TestRuleBasedRecognizer:
    def test_classifies_test_set(self, corpus):
        zones, _train, test = corpus
        recognizer = RuleBasedRecognizer(RuleEventDetector(zones))
        correct = sum(recognizer.classify(t) == label for label, t in test)
        assert correct / len(test) >= 0.75

    def test_none_for_empty(self, corpus):
        zones, _, _ = corpus
        recognizer = RuleBasedRecognizer(RuleEventDetector(zones))
        assert recognizer.classify([]) is None

    def test_net_play_precedence(self, corpus):
        zones, _, test = corpus
        recognizer = RuleBasedRecognizer(RuleEventDetector(zones))
        for label, trajectory in test:
            if label == "net_play":
                assert recognizer.classify(trajectory) == "net_play"


class TestHmmRecognizer:
    def test_classifies_test_set(self, corpus):
        zones, train, test = corpus
        recognizer = train_hmm_recognizer(TrajectoryQuantizer(zones), train, n_states=3)
        correct = sum(recognizer.classify(t) == label for label, t in test)
        assert correct / len(test) >= 0.75

    def test_likelihoods_per_label(self, corpus):
        zones, train, test = corpus
        recognizer = train_hmm_recognizer(TrajectoryQuantizer(zones), train)
        scores = recognizer.log_likelihoods(test[0][1])
        assert set(scores) == set(EVENT_LABELS)
        assert all(np.isfinite(v) or v == float("-inf") for v in scores.values())

    def test_empty_trajectory_none(self, corpus):
        zones, train, _ = corpus
        recognizer = train_hmm_recognizer(TrajectoryQuantizer(zones), train)
        assert recognizer.classify([]) is None

    def test_training_validation(self, corpus):
        zones, _, _ = corpus
        quantizer = TrajectoryQuantizer(zones)
        with pytest.raises(ValueError):
            train_hmm_recognizer(quantizer, {})
        with pytest.raises(ValueError):
            train_hmm_recognizer(quantizer, {"rally": []})

    def test_recognizer_needs_models(self, corpus):
        zones, _, _ = corpus
        with pytest.raises(ValueError):
            HmmRecognizer(TrajectoryQuantizer(zones), {})
