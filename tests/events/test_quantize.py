"""Court zoning and trajectory quantisation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.quantize import (
    MOTION_NAMES,
    N_SYMBOLS,
    ZONE_NAMES,
    CourtZones,
    TrajectoryQuantizer,
)


@pytest.fixture
def zones():
    return CourtZones(net_row=50.0, baseline_row=90.0, left_col=20.0, right_col=108.0)


class TestCourtZones:
    def test_zone_boundaries(self, zones):
        assert zones.zone(50.0) == 0  # at the net
        assert zones.zone(zones.net_zone_limit) == 0
        assert zones.zone(zones.net_zone_limit + 1) == 1
        assert zones.zone(zones.baseline_zone_limit) == 2
        assert zones.zone(95.0) == 2

    def test_side_boundaries(self, zones):
        assert zones.side(20.0) == 0
        assert zones.side(64.0) == 1
        assert zones.side(108.0) == 2

    def test_depth_and_width(self, zones):
        assert zones.depth == 40.0
        assert zones.width == 88.0

    def test_from_court_bounds(self):
        zones = CourtZones.from_court_bounds((10, 20, 90, 110))
        assert zones.net_row == 50.0
        assert zones.baseline_row == 90.0
        assert zones.left_col == 20.0
        assert zones.right_col == 110.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"net_row": 90.0, "baseline_row": 50.0, "left_col": 0, "right_col": 10},
            {"net_row": 10.0, "baseline_row": 50.0, "left_col": 10, "right_col": 5},
            {"net_row": 10.0, "baseline_row": 50.0, "left_col": 0, "right_col": 10, "net_fraction": 0.7, "baseline_fraction": 0.5},
            {"net_row": 10.0, "baseline_row": 50.0, "left_col": 0, "right_col": 10, "side_fraction": 0.6},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CourtZones(**kwargs)

    @given(st.floats(0, 200, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_zone_always_valid(self, row):
        zones = CourtZones(net_row=50.0, baseline_row=90.0, left_col=0.0, right_col=100.0)
        assert zones.zone(row) in (0, 1, 2)


class TestQuantizer:
    def test_alphabet_size(self):
        assert N_SYMBOLS == len(ZONE_NAMES) * len(MOTION_NAMES)

    def test_motion_classes(self, zones):
        quantizer = TrajectoryQuantizer(zones, slow_speed=0.6, fast_speed=1.8)
        assert quantizer.motion_class(0.0) == 0
        assert quantizer.motion_class(1.0) == 1
        assert quantizer.motion_class(-5.0) == 2

    def test_symbols_of_still_baseline(self, zones):
        quantizer = TrajectoryQuantizer(zones)
        symbols = quantizer.symbols([(88.0, 60.0)] * 5)
        assert list(symbols) == [2 * 3 + 0] * 5

    def test_symbols_of_fast_net_motion(self, zones):
        quantizer = TrajectoryQuantizer(zones)
        trajectory = [(52.0, 10.0 + 5.0 * t) for t in range(4)]
        symbols = quantizer.symbols(trajectory)
        # First frame has zero prepended speed -> still; rest are fast.
        assert symbols[0] == 0
        assert all(s == 2 for s in symbols[1:])

    def test_empty_trajectory(self, zones):
        assert len(TrajectoryQuantizer(zones).symbols([])) == 0

    def test_speed_threshold_validation(self, zones):
        with pytest.raises(ValueError):
            TrajectoryQuantizer(zones, slow_speed=2.0, fast_speed=1.0)

    def test_symbols_in_range(self, zones):
        rng = np.random.default_rng(0)
        trajectory = [
            (float(rng.uniform(40, 100)), float(rng.uniform(0, 128))) for _ in range(50)
        ]
        symbols = TrajectoryQuantizer(zones).symbols(trajectory)
        assert symbols.min() >= 0
        assert symbols.max() < N_SYMBOLS
