"""Tournament dataset tests."""

import numpy as np
import pytest

from repro.dataset import (
    build_australian_open,
    generate_players,
    interview_text,
    plan_match_video,
    simulate_tournaments,
)


class TestPlayers:
    def test_counts_and_uniqueness(self, rng):
        players = generate_players(rng, n_per_gender=16)
        assert len(players) == 32
        names = [p.name for p in players]
        assert len(set(names)) == 32

    def test_genders_balanced(self, rng):
        players = generate_players(rng, n_per_gender=8)
        assert sum(p.gender == "female" for p in players) == 8
        assert sum(p.gender == "male" for p in players) == 8

    def test_seeds_per_gender(self, rng):
        players = generate_players(rng, n_per_gender=4)
        female_seeds = sorted(p.seed for p in players if p.gender == "female")
        assert female_seeds == [1, 2, 3, 4]

    def test_handedness_fraction(self):
        rng = np.random.default_rng(0)
        players = generate_players(rng, n_per_gender=200, left_handed_fraction=0.15)
        fraction = sum(p.handedness == "left" for p in players) / len(players)
        assert 0.08 < fraction < 0.25

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_players(rng, n_per_gender=1)
        with pytest.raises(ValueError):
            generate_players(rng, left_handed_fraction=2.0)


class TestTournaments:
    def test_match_counts(self):
        rng = np.random.default_rng(1)
        players = generate_players(rng, n_per_gender=16)
        matches = simulate_tournaments(players, [2000, 2001], rng)
        # 16-player draw = 15 matches, x2 genders x2 years.
        assert len(matches) == 60

    def test_titles_assigned(self):
        rng = np.random.default_rng(1)
        players = generate_players(rng, n_per_gender=8)
        simulate_tournaments(players, [1999, 2000, 2001], rng)
        assert sum(p.titles for p in players) == 6  # 3 years x 2 genders

    def test_winner_played_the_match(self):
        rng = np.random.default_rng(2)
        players = generate_players(rng, n_per_gender=8)
        matches = simulate_tournaments(players, [2001], rng)
        for match in matches:
            assert match.winner in (match.player_a, match.player_b)

    def test_rounds_progress(self):
        rng = np.random.default_rng(3)
        players = generate_players(rng, n_per_gender=8)
        matches = simulate_tournaments(players, [2001], rng)
        rounds = [m.round_name for m in matches if m.gender == "female"]
        assert rounds.count("final") == 1
        assert rounds.count("semifinal") == 2
        assert rounds.count("quarterfinal") == 4

    def test_seed_advantage(self):
        """Top seeds win far more titles over many simulated years."""
        rng = np.random.default_rng(4)
        players = generate_players(rng, n_per_gender=16)
        simulate_tournaments(players, list(range(1960, 2002)), rng)
        top = sum(p.titles for p in players if p.seed <= 4)
        bottom = sum(p.titles for p in players if p.seed > 12)
        assert top > bottom

    def test_requires_years(self, rng):
        players = generate_players(rng, n_per_gender=4)
        with pytest.raises(ValueError):
            simulate_tournaments(players, [], rng)


class TestInterviews:
    def test_mentions_winner(self):
        rng = np.random.default_rng(5)
        players = generate_players(rng, n_per_gender=4)
        matches = simulate_tournaments(players, [2001], rng)
        text = interview_text(matches[0], rng)
        assert matches[0].winner in text

    def test_sentence_count_bounded(self):
        rng = np.random.default_rng(6)
        players = generate_players(rng, n_per_gender=4)
        matches = simulate_tournaments(players, [2001], rng)
        text = interview_text(matches[0], rng, n_sentences=3)
        assert text.count(".") >= 2

    def test_validation(self):
        rng = np.random.default_rng(7)
        players = generate_players(rng, n_per_gender=4)
        matches = simulate_tournaments(players, [2001], rng)
        with pytest.raises(ValueError):
            interview_text(matches[0], rng, n_sentences=0)


class TestVideoPlans:
    def test_plan_is_deterministic(self, dataset):
        plan = dataset.video_plans[0]
        clip_a, truth_a = plan.materialise()
        clip_b, truth_b = plan.materialise()
        assert len(clip_a) == len(clip_b)
        assert np.array_equal(clip_a[0], clip_b[0])
        assert truth_a.cut_frames == truth_b.cut_frames

    def test_plan_validation(self, dataset):
        with pytest.raises(ValueError):
            plan_match_video(dataset.matches[0], 0, n_shots=1)


class TestBuild:
    def test_structure(self, dataset):
        assert len(dataset.players) == 32
        assert len(dataset.matches) == 120  # 15 x 2 x 4 years
        # final + 2 semifinals per draw per year.
        assert len(dataset.video_plans) == 24
        # players + matches + interviews pages.
        assert len(dataset.pages) == 32 + 120 + 120

    def test_motivating_query_answerable(self, dataset):
        """There is at least one left-handed female past champion."""
        champs = [
            p
            for p in dataset.players
            if p.gender == "female" and p.handedness == "left" and p.titles > 0
        ]
        assert champs

    def test_every_match_linked(self, dataset):
        for match in dataset.matches[:10]:
            obj = dataset.match_objects[match.title]
            players = dataset.instance.sources_of("played", obj)
            assert len(players) == 2
            winners = dataset.instance.sources_of("won", obj)
            assert len(winners) == 1
            assert winners[0].get("name") == match.winner

    def test_plan_lookup(self, dataset):
        plan = dataset.video_plans[0]
        assert dataset.plan_for(plan.match_title) is plan
        with pytest.raises(KeyError):
            dataset.plan_for("no such match")

    def test_reproducible(self):
        a = build_australian_open(seed=3, n_per_gender=4, years=[2001])
        b = build_australian_open(seed=3, n_per_gender=4, years=[2001])
        assert [p.name for p in a.players] == [p.name for p in b.players]
        assert [m.winner for m in a.matches] == [m.winner for m in b.matches]
