"""Site writer / crawler tests."""

import pytest

from repro.dataset.site import crawl_site, write_site
from repro.ir.inverted_index import InvertedIndex
from repro.ir.ranking import rank_full_scan


@pytest.fixture(scope="module")
def site(dataset, tmp_path_factory):
    out = tmp_path_factory.mktemp("site")
    paths = write_site(dataset, out)
    return out, paths


class TestWriteSite:
    def test_one_file_per_page(self, dataset, site):
        _out, paths = site
        assert len(paths) == len(dataset.pages)

    def test_layout(self, site):
        out, _paths = site
        assert (out / "players").is_dir()
        assert (out / "matches").is_dir()
        assert (out / "interviews").is_dir()

    def test_files_are_html(self, site):
        out, paths = site
        text = paths[0].read_text()
        assert text.startswith("<html>")


class TestCrawlSite:
    def test_round_trip_document_names(self, dataset, site):
        out, _paths = site
        crawled = crawl_site(out)
        assert sorted(d.name for d in crawled) == sorted(d.name for d in dataset.pages)

    def test_crawled_text_matches_dataset_text(self, dataset, site):
        out, _paths = site
        crawled = crawl_site(out)
        for document in list(dataset.pages)[:10]:
            assert crawled.by_name(document.name).text.split() == document.text.split()

    def test_crawled_index_ranks_like_dataset_index(self, dataset, site):
        out, _paths = site
        crawled = crawl_site(out)
        crawled_index = InvertedIndex(crawled)
        dataset_index = InvertedIndex(dataset.pages)
        terms = crawled.query_terms("Australian Open champion net volley")
        crawled_names = [
            crawled.document(h.doc_id).name
            for h in rank_full_scan(crawled_index, terms, 10)
        ]
        dataset_names = [
            dataset.pages.document(h.doc_id).name
            for h in rank_full_scan(dataset_index, terms, 10)
        ]
        assert set(crawled_names) == set(dataset_names)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            crawl_site(tmp_path / "ghost")
