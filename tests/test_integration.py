"""Cross-module integration tests.

These exercise the complete story of the paper in one place: generate a
broadcast, run the tennis FDE, check the four COBRA layers against
ground truth, and answer the motivating combined query.
"""

import numpy as np
import pytest

from repro.dataset import build_australian_open
from repro.grammar.tennis import build_tennis_fde
from repro.library import DigitalLibraryEngine, LibraryQuery
from repro.shots.evaluate import boundary_scores, category_accuracy, confusion_matrix
from repro.shots.segmenter import SegmentDetector
from repro.shots.boundary import TwinComparisonDetector
from repro.video.generator import BroadcastConfig, BroadcastGenerator
from repro.video.shots import ShotCategory


class TestPipelineAgainstTruth:
    """The complete indexing pipeline scored against generator truth."""

    @pytest.fixture(scope="class")
    def indexed(self):
        fde = build_tennis_fde()
        generator = BroadcastGenerator(BroadcastConfig(gradual_fraction=0.25), seed=77)
        clip, truth = generator.generate(10, name="integration")
        fde.index_video(clip)
        return fde, clip, truth

    def test_shot_boundaries_recovered(self, indexed):
        fde, clip, truth = indexed
        detector = TwinComparisonDetector()
        cuts = [b for b in detector.detect(clip) if b.kind == "cut"]
        scores = boundary_scores(cuts, truth.cut_frames)
        assert scores.f1 > 0.75

    def test_shot_categories_recovered(self, indexed):
        fde, clip, truth = indexed
        segmenter = SegmentDetector(boundary_detector=TwinComparisonDetector())
        matrix = confusion_matrix(segmenter.detect(clip), truth, ShotCategory.ALL)
        assert category_accuracy(matrix) > 0.9

    def test_player_tracks_close_to_truth(self, indexed):
        fde, _clip, truth = indexed
        tennis_shots = [s for s in truth.shots if s.category == "tennis"]
        objects = fde.model.objects
        assert objects
        # Match each object's shot to a truth shot and check the track.
        matched = 0
        for obj in objects:
            shot = fde.model.shot(obj.shot_id)
            for true_shot in tennis_shots:
                overlap = min(shot.stop, true_shot.stop) - max(shot.start, true_shot.start)
                if overlap < 0.8 * true_shot.length:
                    continue
                errors = []
                for i, position in enumerate(obj.trajectory):
                    frame = shot.start + i
                    if position is None or not true_shot.contains(frame):
                        continue
                    true_pos = true_shot.trajectory[frame - true_shot.start]
                    errors.append(
                        np.hypot(position[0] - true_pos[0], position[1] - true_pos[1])
                    )
                if errors and float(np.mean(errors)) < 8.0:
                    matched += 1
                break
        assert matched >= len(objects) * 0.7

    def test_event_recall(self, indexed):
        fde, _clip, truth = indexed
        recovered = 0
        for true_event in truth.events:
            for event in fde.model.events:
                overlap = min(event.stop, true_event.stop) - max(
                    event.start, true_event.start
                )
                if event.label == true_event.label and overlap > 0:
                    recovered += 1
                    break
        if truth.events:
            assert recovered / len(truth.events) >= 0.5


class TestMotivatingQuery:
    """Section 2's query, end to end on a small library."""

    @pytest.fixture(scope="class")
    def engine(self):
        dataset = build_australian_open(seed=11, video_shots=6)
        engine = DigitalLibraryEngine(dataset)
        # Index only videos involving a left-handed female champion, plus one
        # control video, to keep the fixture fast but the query non-trivial.
        target_players = [
            p.name
            for p in dataset.players
            if p.gender == "female" and p.handedness == "left" and p.titles > 0
        ]
        assert target_players, "dataset must guarantee a qualifying champion"
        chosen = []
        for plan in dataset.video_plans:
            relevant = any(name in plan.match_title for name in target_players)
            if relevant and len([c for c in chosen if c[1]]) < 2:
                chosen.append((plan, True))
            elif not relevant and len([c for c in chosen if not c[1]]) < 1:
                chosen.append((plan, False))
        for plan, _ in chosen:
            engine.indexer.index_plan(plan)
        return engine, [c[0] for c in chosen if c[1]]

    def test_combined_query_answers(self, engine):
        eng, relevant_plans = engine
        query = LibraryQuery(
            player={"handedness": "left", "gender": "female", "past_winner": True},
            event="net_play",
        )
        results = eng.search(query)
        if not relevant_plans:
            pytest.skip("no qualifying video plans in this dataset seed")
        # Results must come only from the relevant videos.
        relevant_names = {p.name for p in relevant_plans}
        for scene in results:
            assert scene.video_name in relevant_names
            assert scene.event_label == "net_play"

    def test_keyword_baseline_cannot_express_the_query(self, engine):
        """The crawler view returns pages, not scenes; and the concept
        'left-handed female past winner' needs structured data the pages
        only hint at — the motivating gap of the paper."""
        eng, _ = engine
        hits = eng.keyword_search("left-handed female winner net approach")
        # Keyword search returns *documents*...
        assert all(hasattr(h, "doc_id") for h in hits)
        # ...and cannot constrain results to actual past champions: at
        # least one returned page belongs to a non-champion or non-left-hander.
        pages = [eng.dataset.pages.document(h.doc_id) for h in hits]
        player_pages = [p for p in pages if p.metadata.get("class") == "Player"]
        qualifying = []
        for page in player_pages:
            player = eng.dataset.instance.object(page.metadata["oid"])
            qualifying.append(
                player.get("handedness") == "left"
                and player.get("gender") == "female"
                and player.get("titles") > 0
            )
        assert not all(qualifying) or not player_pages
