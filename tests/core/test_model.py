"""COBRA model container tests."""

import pytest

from repro.core.model import CobraModel


@pytest.fixture
def populated():
    model = CobraModel()
    video = model.add_video("v1", fps=25.0, n_frames=200)
    shot_a = model.add_shot(video.video_id, 0, 100, "tennis", {"entropy": 2.5})
    shot_b = model.add_shot(video.video_id, 100, 200, "closeup")
    obj = model.add_object(shot_a.shot_id, "player", [(1.0, 2.0), None])
    model.add_event(shot_a.shot_id, "rally", 10, 60, object_id=obj.object_id)
    model.add_event(shot_a.shot_id, "net_play", 70, 95)
    return model, video, shot_a, shot_b, obj


class TestRegistration:
    def test_ids_are_sequential(self, populated):
        model, video, shot_a, shot_b, _obj = populated
        assert video.video_id == 1
        assert shot_a.shot_id == 1
        assert shot_b.shot_id == 2

    def test_unknown_video_rejected(self):
        model = CobraModel()
        with pytest.raises(KeyError):
            model.add_shot(99, 0, 10, "tennis")

    def test_unknown_shot_rejected(self, populated):
        model = populated[0]
        with pytest.raises(KeyError):
            model.add_object(99, "player", [])
        with pytest.raises(KeyError):
            model.add_event(99, "rally", 0, 10)

    def test_unknown_object_rejected(self, populated):
        model, _v, shot_a, _b, _o = populated
        with pytest.raises(KeyError):
            model.add_event(shot_a.shot_id, "rally", 0, 10, object_id=12345)

    def test_features_copied(self, populated):
        model, _v, shot_a, _b, _o = populated
        assert model.shot(shot_a.shot_id).features["entropy"] == 2.5


class TestLookups:
    def test_shots_of_filters_category(self, populated):
        model, video, *_ = populated
        assert len(model.shots_of(video.video_id)) == 2
        assert len(model.shots_of(video.video_id, category="tennis")) == 1

    def test_shots_in_time_order(self, populated):
        model, video, *_ = populated
        shots = model.shots_of(video.video_id)
        assert [s.start for s in shots] == [0, 100]

    def test_events_of_label_filter(self, populated):
        model, video, *_ = populated
        assert len(model.events_of(video.video_id)) == 2
        assert len(model.events_of(video.video_id, label="rally")) == 1

    def test_objects_of(self, populated):
        model, _v, shot_a, shot_b, obj = populated
        assert [o.object_id for o in model.objects_of(shot_a.shot_id)] == [obj.object_id]
        assert model.objects_of(shot_b.shot_id) == []

    def test_video_of_event(self, populated):
        model, video, *_ = populated
        event = model.events[0]
        assert model.video_of_event(event.event_id).video_id == video.video_id

    def test_counts(self, populated):
        model = populated[0]
        assert model.counts() == {"raw": 1, "feature": 2, "object": 1, "event": 2}

    def test_object_found_fraction(self, populated):
        obj = populated[4]
        assert obj.found_fraction == 0.5


class TestInvalidation:
    def test_clear_events(self, populated):
        model, video, *_ = populated
        removed = model.clear_events_of_video(video.video_id)
        assert removed == 2
        assert model.events == []
        assert len(model.objects) == 1  # objects survive

    def test_clear_objects_cascades_events(self, populated):
        model, video, *_ = populated
        model.clear_objects_of_video(video.video_id)
        assert model.objects == []
        assert model.events == []
        assert len(model.shots) == 2

    def test_clear_shots_cascades_all(self, populated):
        model, video, *_ = populated
        model.clear_shots_of_video(video.video_id)
        assert model.shots == []
        assert model.objects == []
        assert model.events == []
        assert len(model.videos) == 1

    def test_clear_scoped_to_video(self, populated):
        model, *_ = populated
        other = model.add_video("v2", fps=25.0, n_frames=50)
        shot = model.add_shot(other.video_id, 0, 50, "tennis")
        model.add_event(shot.shot_id, "rally", 0, 40)
        model.clear_shots_of_video(other.video_id)
        # v1's entities untouched.
        assert len(model.shots) == 2
        assert len(model.events) == 2
