"""Interval and Allen relation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.temporal import ALLEN_RELATIONS, Interval, allen_relation, invert_relation

intervals = st.tuples(st.integers(0, 50), st.integers(1, 20)).map(
    lambda t: Interval(t[0], t[0] + t[1])
)


class TestInterval:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(5, 5)

    def test_length(self):
        assert Interval(3, 8).length == 5

    def test_contains_frame(self):
        iv = Interval(3, 8)
        assert iv.contains_frame(3)
        assert iv.contains_frame(7)
        assert not iv.contains_frame(8)

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 3).intersection(Interval(3, 9)) is None

    def test_union_span(self):
        assert Interval(0, 2).union_span(Interval(8, 9)) == Interval(0, 9)

    def test_gap_to(self):
        assert Interval(0, 5).gap_to(Interval(8, 9)) == 3
        assert Interval(0, 5).gap_to(Interval(2, 9)) == -3

    def test_shifted(self):
        assert Interval(1, 3).shifted(10) == Interval(11, 13)

    def test_ordering(self):
        assert Interval(1, 3) < Interval(2, 3)


class TestAllenRelations:
    CASES = [
        (Interval(0, 2), Interval(5, 7), "before"),
        (Interval(0, 5), Interval(5, 7), "meets"),
        (Interval(0, 5), Interval(3, 8), "overlaps"),
        (Interval(0, 3), Interval(0, 8), "starts"),
        (Interval(2, 5), Interval(0, 8), "during"),
        (Interval(5, 8), Interval(0, 8), "finishes"),
        (Interval(0, 8), Interval(0, 8), "equals"),
        (Interval(5, 7), Interval(0, 2), "after"),
        (Interval(5, 7), Interval(0, 5), "met_by"),
        (Interval(3, 8), Interval(0, 5), "overlapped_by"),
        (Interval(0, 8), Interval(0, 3), "started_by"),
        (Interval(0, 8), Interval(2, 5), "contains"),
        (Interval(0, 8), Interval(5, 8), "finished_by"),
    ]

    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_all_thirteen(self, a, b, expected):
        assert allen_relation(a, b) == expected

    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_inverse_consistency(self, a, b, expected):
        assert allen_relation(b, a) == invert_relation(expected)

    def test_invert_unknown(self):
        with pytest.raises(ValueError):
            invert_relation("sideways")

    def test_relations_list_complete(self):
        assert len(ALLEN_RELATIONS) == 13
        assert len(set(ALLEN_RELATIONS)) == 13

    @given(intervals, intervals)
    @settings(max_examples=200, deadline=None)
    def test_exactly_one_relation_holds(self, a, b):
        """Allen's relations are jointly exhaustive and mutually exclusive."""
        relation = allen_relation(a, b)
        assert relation in ALLEN_RELATIONS
        # The inverse of the inverse is the original.
        assert invert_relation(invert_relation(relation)) == relation
        # And (b, a) gives exactly the inverse.
        assert allen_relation(b, a) == invert_relation(relation)

    @given(intervals, intervals)
    @settings(max_examples=100, deadline=None)
    def test_intersection_consistent_with_relation(self, a, b):
        relation = allen_relation(a, b)
        disjoint = relation in ("before", "after", "meets", "met_by")
        assert (a.intersection(b) is None) == disjoint
