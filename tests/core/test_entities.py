"""Entity record tests."""

import pytest

from repro.core.entities import Event, ShotRecord, Video, VideoObject


class TestVideo:
    def test_duration(self):
        video = Video(video_id=1, name="v", fps=25.0, n_frames=100)
        assert video.duration == pytest.approx(4.0)


class TestShotRecord:
    def test_interval_and_length(self):
        shot = ShotRecord(shot_id=1, video_id=1, start=10, stop=30, category="tennis")
        assert shot.length == 20
        assert shot.interval.start == 10

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ShotRecord(shot_id=1, video_id=1, start=5, stop=5, category="tennis")


class TestVideoObject:
    def test_found_fraction(self):
        obj = VideoObject(
            object_id=1, shot_id=1, label="player", trajectory=((1.0, 2.0), None, (3.0, 4.0))
        )
        assert obj.found_fraction == pytest.approx(2 / 3)

    def test_empty_trajectory(self):
        obj = VideoObject(object_id=1, shot_id=1, label="player", trajectory=())
        assert obj.found_fraction == 0.0


class TestEvent:
    def test_interval(self):
        event = Event(event_id=1, shot_id=1, label="rally", start=5, stop=20)
        assert event.interval.length == 15

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            Event(event_id=1, shot_id=1, label="rally", start=5, stop=20, confidence=0.0)
        with pytest.raises(ValueError):
            Event(event_id=1, shot_id=1, label="rally", start=5, stop=20, confidence=1.5)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            Event(event_id=1, shot_id=1, label="rally", start=20, stop=5)
