"""Concept grammar parser tests."""

import pytest

from repro.core.grammars import (
    And,
    Comparison,
    GrammarError,
    HoldsRule,
    Not,
    Or,
    SeqRule,
    parse_grammar,
)


class TestParsing:
    def test_minimal_event(self):
        grammar = parse_grammar("EVENT x := HOLDS zone = net FOR 5 ;")
        (rule,) = grammar.event_rules
        assert isinstance(rule, HoldsRule)
        assert rule.name == "x"
        assert rule.min_frames == 5
        assert rule.predicate == Comparison("zone", "=", "net")

    def test_full_holds_rule(self):
        text = """
        EVENT rally := HOLDS (zone != net AND speed >= 0.7) FOR 12 BRIDGE 4
                       REQUIRE mean_speed >= 1.2 AND direction_changes >= 1 ;
        """
        (rule,) = parse_grammar(text).event_rules
        assert rule.bridge == 4
        assert len(rule.requires) == 2
        assert isinstance(rule.predicate, And)

    def test_unless_clause(self):
        text = """
        EVENT a := HOLDS zone = net FOR 5 ;
        EVENT b := HOLDS zone = baseline FOR 5 UNLESS a ;
        """
        rules = parse_grammar(text).event_rules
        assert rules[1].unless == ("a",)

    def test_seq_rule(self):
        text = """
        EVENT a := HOLDS zone = baseline FOR 5 ;
        EVENT b := HOLDS zone = net FOR 5 ;
        EVENT c := SEQ a THEN b WITHIN 30 ;
        """
        rules = parse_grammar(text).event_rules
        assert isinstance(rules[2], SeqRule)
        assert (rules[2].first, rules[2].then, rules[2].within) == ("a", "b", 30)

    def test_object_rule(self):
        grammar = parse_grammar("OBJECT player := area >= 12 AND aspect_ratio >= 0.8 ;")
        (rule,) = grammar.object_rules
        assert rule.name == "player"

    def test_comments_ignored(self):
        grammar = parse_grammar("# hello\nEVENT x := HOLDS zone = net FOR 5 ; # bye\n")
        assert grammar.event_names == ["x"]

    def test_not_and_or(self):
        text = "EVENT x := HOLDS NOT zone = net OR (speed > 1 AND speed < 3) FOR 2 ;"
        (rule,) = parse_grammar(text).event_rules
        assert isinstance(rule.predicate, Or)
        assert isinstance(rule.predicate.items[0], Not)

    def test_case_insensitive_keywords(self):
        grammar = parse_grammar("event x := holds zone = net for 5 ;")
        assert grammar.event_names == ["x"]


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "EVENT x := HOLDS zone = net FOR 0 ;",  # bad FOR
            "EVENT x := HOLDS wrongfield = net FOR 5 ;",  # unknown field
            "EVENT x := HOLDS zone > net FOR 5 ;",  # zone only supports =/!=
            "EVENT x := HOLDS speed = fast FOR 5 ;",  # number field vs name
            "EVENT x := HOLDS zone = net FOR 5",  # missing semicolon
            "EVENT x := SEQ a THEN b WITHIN 30 ;",  # undefined references
            "EVENT x := HOLDS zone = net FOR 5 ; EVENT x := HOLDS zone = net FOR 5 ;",
            "EVENT x := HOLDS zone = net FOR 5 REQUIRE nonsense >= 2 ;",
            "BANANA x := HOLDS zone = net FOR 5 ;",
            "EVENT x := HOLDS zone = net FOR 5 UNLESS ghost ;",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(GrammarError):
            parse_grammar(text)

    def test_forward_reference_rejected(self):
        text = """
        EVENT c := SEQ a THEN b WITHIN 30 ;
        EVENT a := HOLDS zone = baseline FOR 5 ;
        EVENT b := HOLDS zone = net FOR 5 ;
        """
        with pytest.raises(GrammarError):
            parse_grammar(text)

    def test_unexpected_character(self):
        with pytest.raises(GrammarError):
            parse_grammar("EVENT x := HOLDS zone = net FOR 5 @ ;")


class TestLookup:
    def test_event_rule_lookup(self):
        grammar = parse_grammar("EVENT x := HOLDS zone = net FOR 5 ;")
        assert grammar.event_rule("x").name == "x"
        with pytest.raises(KeyError):
            grammar.event_rule("y")

    def test_object_rule_lookup(self):
        grammar = parse_grammar("OBJECT p := area > 1 ;")
        assert grammar.object_rule("p").name == "p"
        with pytest.raises(KeyError):
            grammar.object_rule("q")
