"""MPEG-7 export/import tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.model import CobraModel
from repro.core.mpeg7 import export_mpeg7, import_mpeg7


def parse(xml_text):
    """Parse and strip the default-namespace qualification for XPath use."""
    root = ET.fromstring(xml_text)
    for element in root.iter():
        if element.tag.startswith("{"):
            element.tag = element.tag.split("}", 1)[1]
    return root


@pytest.fixture
def model():
    model = CobraModel()
    video = model.add_video("final_set3", fps=25.0, n_frames=500, match_id=7)
    shot_a = model.add_shot(video.video_id, 0, 200, "tennis", {"entropy": 2.5, "skin_ratio": 0.01})
    model.add_shot(video.video_id, 200, 500, "closeup")
    obj = model.add_object(
        shot_a.shot_id,
        "player",
        [(10.0, 20.0), None, (11.5, 21.25)],
        dominant_color=(200.0, 40.0, 40.0),
        mean_area=82.0,
    )
    model.add_event(shot_a.shot_id, "net_play", 50, 120, confidence=0.9, object_id=obj.object_id)
    model.add_event(shot_a.shot_id, "rally", 130, 190)
    return model


class TestExport:
    def test_well_formed_xml(self, model):
        root = parse(export_mpeg7(model))
        assert root.tag == "Mpeg7"

    def test_structure(self, model):
        root = parse(export_mpeg7(model))
        videos = root.findall(".//Video")
        assert len(videos) == 1
        segments = root.findall(".//VideoSegment")
        assert len(segments) == 2
        regions = root.findall(".//MovingRegion")
        assert len(regions) == 1
        events = root.findall(".//Semantic/Event")
        assert len(events) == 2

    def test_media_time_attributes(self, model):
        root = parse(export_mpeg7(model))
        segment = root.find(".//VideoSegment")
        time_el = segment.find("MediaTime")
        assert time_el.get("startFrame") == "0"
        assert time_el.get("stopFrame") == "200"
        assert time_el.find("MediaDuration").text == "8.000s"

    def test_event_references(self, model):
        root = parse(export_mpeg7(model))
        event = root.find(".//Semantic/Event[@label='net_play']")
        assert event.get("segment") == "shot-1"
        assert event.get("agent") == "object-1"

    def test_lost_frames_marked(self, model):
        root = parse(export_mpeg7(model))
        points = root.findall(".//FigureTrajectory")
        assert len(points) == 3
        assert points[1].get("lost") == "true"
        assert points[0].get("row") == "10.00"

    def test_empty_model(self):
        root = parse(export_mpeg7(CobraModel()))
        assert root.find("Description") is not None


class TestRoundTrip:
    def test_counts_preserved(self, model):
        loaded = import_mpeg7(export_mpeg7(model))
        assert loaded.counts() == model.counts()

    def test_layer_content_preserved(self, model):
        loaded = import_mpeg7(export_mpeg7(model))
        video = loaded.videos[0]
        assert (video.name, video.fps, video.n_frames) == ("final_set3", 25.0, 500)
        assert video.match_id == 7
        categories = sorted(s.category for s in loaded.shots)
        assert categories == ["closeup", "tennis"]
        obj = loaded.objects[0]
        assert obj.trajectory[1] is None
        assert obj.trajectory[0] == (10.0, 20.0)
        events = sorted(loaded.events, key=lambda e: e.start)
        assert [e.label for e in events] == ["net_play", "rally"]
        assert events[0].confidence == pytest.approx(0.9)
        assert events[0].object_id == obj.object_id

    def test_features_preserved(self, model):
        loaded = import_mpeg7(export_mpeg7(model))
        tennis = next(s for s in loaded.shots if s.category == "tennis")
        assert tennis.features["entropy"] == pytest.approx(2.5)

    def test_rejects_non_mpeg7(self):
        with pytest.raises(ValueError):
            import_mpeg7("<NotMpeg7/>")

    def test_pipeline_model_round_trips(self, broadcast):
        """The real FDE output survives the MPEG-7 round trip."""
        from repro.grammar.tennis import build_tennis_fde

        clip, _truth = broadcast
        fde = build_tennis_fde()
        fde.index_video(clip.subclip(0, min(len(clip), 200), name="mpeg7_rt"))
        loaded = import_mpeg7(export_mpeg7(fde.model))
        assert loaded.counts() == fde.model.counts()
