"""Grammar inference engine tests."""

import pytest

from repro.core.defaults import tennis_grammar
from repro.core.grammars import parse_grammar
from repro.core.inference import GrammarEventDetector, ObjectClassifier, TrajectoryContext
from repro.events.quantize import CourtZones


@pytest.fixture
def zones():
    return CourtZones(net_row=50.0, baseline_row=90.0, left_col=20.0, right_col=108.0)


def net_stand(n):
    return [(52.0, 64.0)] * n


def corner_stand(n):
    return [(88.0, 100.0)] * n


class TestTrajectoryContext:
    def test_fields(self, zones):
        trajectory = [(52.0, 30.0), None, (88.0, 100.0)]
        context = TrajectoryContext(trajectory, zones)
        assert list(context.valid) == [True, False, True]
        assert context.zone_index[0] == 0
        assert context.zone_index[1] == -1
        assert context.zone_index[2] == 2
        assert context.side_index[0] == 0
        assert context.side_index[2] == 2

    def test_speeds(self, zones):
        context = TrajectoryContext([(50.0, 10.0), (50.0, 13.0)], zones)
        assert context.speeds[0] == 0.0
        assert context.speeds[1] == pytest.approx(3.0)

    def test_aggregates(self, zones):
        trajectory = [(85.0, 10.0), (85.0, 14.0), (85.0, 10.0), (85.0, 14.0)]
        context = TrajectoryContext(trajectory, zones)
        assert context.aggregate("duration", 0, 4) == 4.0
        assert context.aggregate("max_speed", 0, 4) == pytest.approx(4.0)
        assert context.aggregate("direction_changes", 0, 4) == 2.0

    def test_unknown_field(self, zones):
        context = TrajectoryContext(net_stand(3), zones)
        with pytest.raises(Exception):
            context.field("altitude")


class TestGrammarEventDetector:
    def test_holds_rule_fires(self, zones):
        grammar = parse_grammar("EVENT net_play := HOLDS zone = net FOR 8 ;")
        events = GrammarEventDetector(grammar, zones).detect(net_stand(12))
        assert [(e.label, e.start, e.stop) for e in events] == [("net_play", 0, 12)]

    def test_min_frames_enforced(self, zones):
        grammar = parse_grammar("EVENT net_play := HOLDS zone = net FOR 20 ;")
        assert GrammarEventDetector(grammar, zones).detect(net_stand(12)) == []

    def test_side_field(self, zones):
        grammar = parse_grammar(
            "EVENT corner := HOLDS (zone = baseline AND NOT side = center) FOR 5 ;"
        )
        detector = GrammarEventDetector(grammar, zones)
        assert detector.detect(corner_stand(8))
        assert not detector.detect([(88.0, 64.0)] * 8)

    def test_bridge_spans_gaps(self, zones):
        grammar = parse_grammar("EVENT x := HOLDS zone = net FOR 10 BRIDGE 3 ;")
        trajectory = net_stand(5) + corner_stand(2) + net_stand(5)
        events = GrammarEventDetector(grammar, zones).detect(trajectory)
        assert len(events) == 1
        assert events[0].stop - events[0].start == 12

    def test_require_filters_runs(self, zones):
        grammar = parse_grammar(
            "EVENT fast := HOLDS zone = baseline FOR 5 REQUIRE mean_speed >= 2 ;"
        )
        slow = corner_stand(10)
        assert GrammarEventDetector(grammar, zones).detect(slow) == []

    def test_unless_subtracts(self, zones):
        grammar = parse_grammar(
            """
            EVENT corner := HOLDS side = right FOR 5 ;
            EVENT base := HOLDS zone = baseline FOR 5 UNLESS corner ;
            """
        )
        events = GrammarEventDetector(grammar, zones).detect(corner_stand(10))
        labels = [e.label for e in events]
        assert "corner" in labels
        assert "base" not in labels

    def test_seq_composition(self, zones):
        grammar = parse_grammar(
            """
            EVENT base := HOLDS zone = baseline FOR 5 ;
            EVENT netp := HOLDS zone = net FOR 5 ;
            EVENT approach := SEQ base THEN netp WITHIN 10 ;
            """
        )
        trajectory = corner_stand(8) + [(70.0, 64.0)] * 3 + net_stand(8)
        events = GrammarEventDetector(grammar, zones).detect(trajectory)
        approach = [e for e in events if e.label == "approach"]
        assert len(approach) == 1
        assert approach[0].start == 0
        assert approach[0].stop == 19

    def test_seq_within_enforced(self, zones):
        grammar = parse_grammar(
            """
            EVENT base := HOLDS zone = baseline FOR 5 ;
            EVENT netp := HOLDS zone = net FOR 5 ;
            EVENT approach := SEQ base THEN netp WITHIN 2 ;
            """
        )
        trajectory = corner_stand(8) + [(70.0, 64.0)] * 6 + net_stand(8)
        events = GrammarEventDetector(grammar, zones).detect(trajectory)
        assert not [e for e in events if e.label == "approach"]

    def test_none_frames_never_match(self, zones):
        grammar = parse_grammar("EVENT x := HOLDS zone = net FOR 3 ;")
        trajectory = [None] * 10
        assert GrammarEventDetector(grammar, zones).detect(trajectory) == []

    def test_default_tennis_grammar_runs(self, zones):
        detector = GrammarEventDetector(tennis_grammar(), zones)
        events = detector.detect(net_stand(20))
        assert any(e.label == "net_play" for e in events)


class TestObjectClassifier:
    def test_classify(self):
        grammar = parse_grammar(
            """
            OBJECT ball := area < 5 ;
            OBJECT player := area >= 12 AND aspect_ratio >= 0.8 ;
            """
        )
        classifier = ObjectClassifier(grammar)
        assert classifier.classify({"area": 3, "aspect_ratio": 1.0}) == "ball"
        assert classifier.classify({"area": 50, "aspect_ratio": 2.0}) == "player"
        assert classifier.classify({"area": 8, "aspect_ratio": 0.1}) is None

    def test_declaration_order_wins(self):
        grammar = parse_grammar(
            """
            OBJECT first := area > 0 ;
            OBJECT second := area > 0 ;
            """
        )
        assert ObjectClassifier(grammar).classify({"area": 1}) == "first"

    def test_missing_feature_rejected(self):
        grammar = parse_grammar("OBJECT player := area >= 12 ;")
        with pytest.raises(Exception):
            ObjectClassifier(grammar).classify({})

    def test_default_grammar_accepts_player_blob(self):
        classifier = ObjectClassifier(tennis_grammar())
        features = {"area": 80, "aspect_ratio": 2.0, "eccentricity": 0.9, "height": 16, "width": 7}
        assert classifier.classify(features) == "player"
