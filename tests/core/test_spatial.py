"""Spatial predicate tests."""

import pytest

from repro.core.spatial import (
    above,
    below,
    boxes_overlap,
    distance,
    inside,
    left_of,
    near,
    right_of,
)


class TestDirectional:
    def test_left_right(self):
        assert left_of((0, 1), (0, 5))
        assert right_of((0, 5), (0, 1))
        assert not left_of((0, 5), (0, 1))

    def test_margin(self):
        assert not left_of((0, 4), (0, 5), margin=2)
        assert left_of((0, 2), (0, 5), margin=2)

    def test_above_below(self):
        assert above((1, 0), (5, 0))  # smaller row = higher
        assert below((5, 0), (1, 0))

    def test_antisymmetry(self):
        assert left_of((0, 1), (0, 5)) != left_of((0, 5), (0, 1))


class TestMetric:
    def test_distance(self):
        assert distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_near(self):
        assert near((0, 0), (3, 4), radius=5)
        assert not near((0, 0), (3, 4), radius=4.9)

    def test_near_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            near((0, 0), (0, 0), radius=-1)


class TestBoxes:
    def test_overlap(self):
        assert boxes_overlap((0, 0, 5, 5), (4, 4, 8, 8))
        assert not boxes_overlap((0, 0, 5, 5), (5, 5, 8, 8))  # touching only

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            boxes_overlap((0, 0, 0, 5), (0, 0, 2, 2))

    def test_inside(self):
        assert inside((2, 2), (0, 0, 5, 5))
        assert not inside((5, 2), (0, 0, 5, 5))  # half-open rows
        assert inside((0, 0), (0, 0, 5, 5))
