"""VideoClip container tests."""

import numpy as np
import pytest

from repro.video.frames import VideoClip


def frames(n=5, h=8, w=10):
    return [np.zeros((h, w, 3), dtype=np.uint8) for _ in range(n)]


class TestConstruction:
    def test_basic(self):
        clip = VideoClip(frames(5), fps=25.0, name="c")
        assert len(clip) == 5
        assert clip.shape == (8, 10)
        assert clip.name == "c"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VideoClip([])

    def test_rejects_mixed_shapes(self):
        bad = frames(2) + [np.zeros((9, 10, 3), dtype=np.uint8)]
        with pytest.raises(ValueError):
            VideoClip(bad)

    def test_rejects_non_rgb(self):
        with pytest.raises(ValueError):
            VideoClip([np.zeros((8, 10), dtype=np.uint8)])

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            VideoClip([np.zeros((8, 10, 3), dtype=np.float64)])

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            VideoClip(frames(2), fps=0)


class TestAccess:
    def test_iteration(self):
        clip = VideoClip(frames(4))
        assert len(list(clip)) == 4

    def test_duration(self):
        clip = VideoClip(frames(50), fps=25.0)
        assert clip.duration == pytest.approx(2.0)

    def test_frame_time(self):
        clip = VideoClip(frames(10), fps=10.0)
        assert clip.frame_time(5) == pytest.approx(0.5)

    def test_frame_time_bounds(self):
        clip = VideoClip(frames(3))
        with pytest.raises(IndexError):
            clip.frame_time(3)


class TestSubclip:
    def test_subclip_range(self):
        clip = VideoClip(frames(10), name="parent")
        sub = clip.subclip(2, 6)
        assert len(sub) == 4
        assert "parent" in sub.name

    def test_subclip_shares_frames(self):
        clip = VideoClip(frames(4))
        sub = clip.subclip(0, 2)
        assert sub[0] is clip[0]

    def test_subclip_validation(self):
        clip = VideoClip(frames(4))
        with pytest.raises(ValueError):
            clip.subclip(3, 3)
        with pytest.raises(ValueError):
            clip.subclip(0, 99)
