"""Transition rendering tests."""

import numpy as np
import pytest

from repro.video.transitions import dissolve_frames, fade_frames


def solid(value):
    return np.full((8, 8, 3), value, dtype=np.uint8)


class TestDissolve:
    def test_length(self):
        assert len(dissolve_frames(solid(0), solid(200), 5)) == 5

    def test_monotone_blend(self):
        frames = dissolve_frames(solid(0), solid(200), 6)
        means = [f.mean() for f in frames]
        assert means == sorted(means)

    def test_never_duplicates_endpoints(self):
        frames = dissolve_frames(solid(0), solid(200), 3)
        assert frames[0].mean() > 0
        assert frames[-1].mean() < 200

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            dissolve_frames(solid(0), solid(1), 0)


class TestFade:
    def test_length(self):
        assert len(fade_frames(solid(100), solid(200), 8)) == 8

    def test_passes_through_dark(self):
        frames = fade_frames(solid(200), solid(200), 10)
        means = [f.mean() for f in frames]
        assert min(means) < 80  # approaches black in the middle

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            fade_frames(solid(0), solid(1), 1)
