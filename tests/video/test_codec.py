"""Video codec tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.codec import (
    CodecError,
    decode_clip,
    encode_clip,
    load_clip,
    save_clip,
)
from repro.video.frames import VideoClip


def clip_of(frames, fps=25.0, name="c"):
    return VideoClip(frames, fps=fps, name=name)


def random_clip(rng, n=6, h=16, w=20):
    return clip_of([rng.integers(0, 256, size=(h, w, 3)).astype(np.uint8) for _ in range(n)])


class TestRoundTrip:
    def test_bit_exact_random(self):
        rng = np.random.default_rng(0)
        clip = random_clip(rng)
        decoded = decode_clip(encode_clip(clip))
        assert len(decoded) == len(clip)
        for i in range(len(clip)):
            assert np.array_equal(decoded[i], clip[i])

    def test_metadata_preserved(self):
        rng = np.random.default_rng(1)
        clip = clip_of([rng.integers(0, 256, size=(8, 8, 3)).astype(np.uint8)], fps=30.0)
        decoded = decode_clip(encode_clip(clip))
        assert decoded.fps == 30.0
        assert decoded.shape == (8, 8)

    def test_broadcast_round_trip(self, broadcast):
        clip, _truth = broadcast
        sub = clip.subclip(0, 40)
        decoded = decode_clip(encode_clip(sub))
        for i in range(len(sub)):
            assert np.array_equal(decoded[i], sub[i])

    @given(
        frames=st.integers(1, 5),
        h=st.integers(1, 12),
        w=st.integers(1, 12),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_round_trip(self, frames, h, w, seed):
        rng = np.random.default_rng(seed)
        clip = clip_of(
            [rng.integers(0, 256, size=(h, w, 3)).astype(np.uint8) for _ in range(frames)]
        )
        decoded = decode_clip(encode_clip(clip))
        assert all(np.array_equal(decoded[i], clip[i]) for i in range(frames))


class TestCompression:
    def test_static_content_compresses_well(self):
        frame = np.full((32, 32, 3), 120, dtype=np.uint8)
        clip = clip_of([frame.copy() for _ in range(20)])
        encoded = encode_clip(clip)
        raw_size = 20 * 32 * 32 * 3
        assert len(encoded) < raw_size / 20

    def test_broadcast_compresses(self, broadcast):
        """On noisy broadcast material lossless gains are modest, but the
        temporal prediction must still beat entropy-coding raw frames."""
        import zlib

        clip, _truth = broadcast
        sub = clip.subclip(0, 60)
        encoded = encode_clip(sub)
        raw = np.stack([sub[i] for i in range(len(sub))]).tobytes()
        assert len(encoded) < len(raw) / 1.2
        assert len(encoded) < len(zlib.compress(raw, 6))

    def test_level_validation(self, broadcast):
        clip, _ = broadcast
        with pytest.raises(ValueError):
            encode_clip(clip.subclip(0, 2), level=11)


class TestFileIO:
    def test_save_load(self, tmp_path):
        rng = np.random.default_rng(2)
        clip = random_clip(rng)
        path = tmp_path / "clip.rvc"
        size = save_clip(clip, path)
        assert path.stat().st_size == size
        loaded = load_clip(path)
        assert loaded.name == "clip"
        assert np.array_equal(loaded[3], clip[3])


class TestErrors:
    def test_truncated(self):
        with pytest.raises(CodecError):
            decode_clip(b"RV")

    def test_bad_magic(self):
        rng = np.random.default_rng(3)
        data = bytearray(encode_clip(random_clip(rng, n=1)))
        data[0:4] = b"NOPE"
        with pytest.raises(CodecError):
            decode_clip(bytes(data))

    def test_corrupt_size(self):
        rng = np.random.default_rng(4)
        data = bytearray(encode_clip(random_clip(rng, n=2)))
        # Claim more frames than the payload holds.
        import struct

        struct.pack_into(">I", data, 8, 99)
        with pytest.raises(CodecError):
            decode_clip(bytes(data))
