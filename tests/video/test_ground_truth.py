"""Ground truth record tests."""

import pytest

from repro.video.ground_truth import EventTruth, GroundTruth, ShotTruth, TransitionTruth


class TestShotTruth:
    def test_length_and_contains(self):
        shot = ShotTruth(start=10, stop=20, category="tennis", trajectory=tuple([(0.0, 0.0)] * 10))
        assert shot.length == 10
        assert shot.contains(10)
        assert shot.contains(19)
        assert not shot.contains(20)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            ShotTruth(start=5, stop=5, category="other")


class TestTransitionTruth:
    def test_cut_has_no_length(self):
        with pytest.raises(ValueError):
            TransitionTruth(frame=5, kind="cut", length=3)

    def test_gradual_needs_length(self):
        with pytest.raises(ValueError):
            TransitionTruth(frame=5, kind="fade", length=0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            TransitionTruth(frame=5, kind="wipe", length=3)

    def test_span(self):
        assert TransitionTruth(frame=5, kind="dissolve", length=4).span == (5, 9)
        assert TransitionTruth(frame=5, kind="cut").span == (5, 6)


class TestEventTruth:
    def test_overlap(self):
        event = EventTruth(start=10, stop=20, label="rally", shot_index=0)
        assert event.overlap(15, 25) == 5
        assert event.overlap(0, 5) == 0
        assert event.overlap(10, 20) == 10

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EventTruth(start=3, stop=3, label="rally", shot_index=0)


class TestGroundTruth:
    def make(self):
        truth = GroundTruth()
        truth.shots.append(ShotTruth(0, 30, "tennis", tuple([(0.0, 0.0)] * 30)))
        truth.transitions.append(TransitionTruth(frame=30, kind="cut"))
        truth.shots.append(ShotTruth(30, 50, "closeup"))
        truth.transitions.append(TransitionTruth(frame=50, kind="fade", length=8))
        truth.shots.append(ShotTruth(58, 80, "audience"))
        truth.events.append(EventTruth(5, 25, "rally", shot_index=0))
        return truth

    def test_cut_frames(self):
        assert self.make().cut_frames == [30]

    def test_gradual_spans(self):
        assert self.make().gradual_spans == [(50, 58)]

    def test_shot_at(self):
        truth = self.make()
        assert truth.shot_at(0).category == "tennis"
        assert truth.shot_at(35).category == "closeup"
        assert truth.shot_at(52) is None  # inside the fade
        assert truth.category_at(60) == "audience"

    def test_events_labelled(self):
        truth = self.make()
        assert len(truth.events_labelled("rally")) == 1
        assert truth.events_labelled("net_play") == []

    def test_validate_passes(self):
        self.make().validate(80)

    def test_validate_rejects_overrun(self):
        with pytest.raises(ValueError):
            self.make().validate(60)

    def test_validate_rejects_trajectory_mismatch(self):
        truth = GroundTruth()
        truth.shots.append(ShotTruth(0, 30, "tennis", trajectory=((0.0, 0.0),)))
        with pytest.raises(ValueError):
            truth.validate(30)

    def test_validate_rejects_dangling_event(self):
        truth = self.make()
        truth.events.append(EventTruth(1, 2, "rally", shot_index=99))
        with pytest.raises(ValueError):
            truth.validate(80)
