"""Noise model tests."""

import numpy as np
import pytest

from repro.video.noise import add_gaussian_noise, apply_flicker


def solid(value=128):
    return np.full((32, 32, 3), value, dtype=np.uint8)


class TestGaussianNoise:
    def test_zero_sigma_is_copy(self):
        frame = solid()
        noisy = add_gaussian_noise(frame, 0.0, np.random.default_rng(0))
        assert np.array_equal(noisy, frame)
        assert noisy is not frame

    def test_sigma_scales_spread(self):
        rng = np.random.default_rng(0)
        low = add_gaussian_noise(solid(), 2.0, rng).astype(float).std()
        high = add_gaussian_noise(solid(), 8.0, rng).astype(float).std()
        assert high > low

    def test_mean_preserved(self):
        noisy = add_gaussian_noise(solid(128), 5.0, np.random.default_rng(0))
        assert abs(noisy.mean() - 128) < 1.0

    def test_clipping(self):
        noisy = add_gaussian_noise(solid(250), 30.0, np.random.default_rng(0))
        assert noisy.max() <= 255

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            add_gaussian_noise(solid(), -1.0, np.random.default_rng(0))


class TestFlicker:
    def test_zero_amount_is_copy(self):
        frame = solid()
        out = apply_flicker(frame, 0.0, np.random.default_rng(0))
        assert np.array_equal(out, frame)

    def test_scales_globally(self):
        out = apply_flicker(solid(100), 0.3, np.random.default_rng(5))
        # All pixels share the same gain: still flat.
        assert out.std() == 0

    def test_rejects_bad_amount(self):
        with pytest.raises(ValueError):
            apply_flicker(solid(), 1.5, np.random.default_rng(0))
