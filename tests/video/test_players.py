"""Player sprite and motion script tests."""

import numpy as np
import pytest

from repro.video.court import DEFAULT_GEOMETRY
from repro.video.players import (
    NEAR_PLAYER,
    SCRIPT_KINDS,
    draw_player,
    far_player_positions,
    motion_script,
)
from repro.vision.skin import skin_ratio

H, W = 96, 128


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestMotionScript:
    @pytest.mark.parametrize("kind", SCRIPT_KINDS)
    def test_lengths(self, kind, rng):
        script = motion_script(kind, 40, rng, H, W)
        assert len(script) == 40
        assert script.kind == kind

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError):
            motion_script("moonwalk", 40, rng, H, W)

    def test_too_short(self, rng):
        with pytest.raises(ValueError):
            motion_script("rally", 5, rng, H, W)

    @pytest.mark.parametrize("kind", SCRIPT_KINDS)
    def test_positions_inside_court(self, kind, rng):
        top, _net, bottom = DEFAULT_GEOMETRY.rows(H)
        left, right = DEFAULT_GEOMETRY.cols(W)
        script = motion_script(kind, 60, rng, H, W)
        rows = [p[0] for p in script.positions]
        cols = [p[1] for p in script.positions]
        assert min(rows) >= top and max(rows) <= bottom
        assert min(cols) >= left and max(cols) <= right

    def test_rally_covers_whole_shot(self, rng):
        script = motion_script("rally", 50, rng, H, W)
        assert script.events == ((0, 50, "rally"),)

    def test_net_approach_enters_net_zone(self, rng):
        script = motion_script("net_approach", 60, rng, H, W)
        labels = [e[2] for e in script.events]
        assert "net_play" in labels
        start, stop, _ = script.events[-1]
        # Net play lasts until the end of the shot.
        assert stop == 60
        assert start > 0

    def test_net_approach_rows_decrease(self, rng):
        script = motion_script("net_approach", 60, rng, H, W)
        rows = [p[0] for p in script.positions]
        assert rows[-1] < rows[0] - 10

    def test_service_has_still_phase(self, rng):
        script = motion_script("service", 40, rng, H, W)
        (start, stop, label), = script.events
        assert label == "service"
        assert start == 0
        cols = [p[1] for p in script.positions[start:stop]]
        assert np.std(cols) < 2.0

    def test_rally_moves_laterally(self, rng):
        script = motion_script("rally", 60, rng, H, W)
        cols = np.array([p[1] for p in script.positions])
        assert cols.max() - cols.min() > 20


class TestFarPlayer:
    def test_far_player_above_net(self, rng):
        _top, net, _bottom = DEFAULT_GEOMETRY.rows(H)
        positions = far_player_positions(30, rng, H, W)
        assert all(p[0] < net for p in positions)


class TestDrawPlayer:
    def test_paints_shirt_and_skin(self):
        frame = np.zeros((H, W, 3), dtype=np.uint8)
        draw_player(frame, 60.0, 64.0, NEAR_PLAYER)
        # Shirt colour present at the body centre.
        assert tuple(frame[60, 64]) == NEAR_PLAYER.shirt
        # Head contributes skin pixels.
        assert skin_ratio(frame) > 0

    def test_clipped_at_border(self):
        frame = np.zeros((H, W, 3), dtype=np.uint8)
        draw_player(frame, 0.0, 0.0, NEAR_PLAYER)  # must not raise
        draw_player(frame, float(H), float(W), NEAR_PLAYER)

    def test_offscreen_is_noop(self):
        frame = np.zeros((H, W, 3), dtype=np.uint8)
        draw_player(frame, -100.0, -100.0, NEAR_PLAYER)
        assert not frame.any()
