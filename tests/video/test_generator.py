"""Broadcast generator tests."""

import numpy as np
import pytest

from repro.video.generator import BroadcastConfig, BroadcastGenerator
from repro.video.shots import CourtShotSpec, ShotCategory


class TestConfigValidation:
    def test_defaults_valid(self):
        BroadcastConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"height": 10},
            {"gradual_fraction": 1.5},
            {"gradual_length": (1, 5)},
            {"gradual_length": (8, 4)},
            {"shot_length": (5, 50)},
            {"category_weights": (0, 0, 0, 0)},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            BroadcastConfig(**kwargs)


class TestDeterminism:
    def test_same_seed_same_broadcast(self):
        a_clip, a_truth = BroadcastGenerator(seed=5).generate(4)
        b_clip, b_truth = BroadcastGenerator(seed=5).generate(4)
        assert len(a_clip) == len(b_clip)
        assert np.array_equal(a_clip[0], b_clip[0])
        assert [s.category for s in a_truth.shots] == [s.category for s in b_truth.shots]

    def test_different_seed_differs(self):
        a_clip, _ = BroadcastGenerator(seed=5).generate(4)
        b_clip, _ = BroadcastGenerator(seed=6).generate(4)
        assert len(a_clip) != len(b_clip) or not np.array_equal(a_clip[0], b_clip[0])


class TestAssembly:
    def test_truth_consistent(self, broadcast):
        clip, truth = broadcast
        truth.validate(len(clip))

    def test_shot_count(self, broadcast):
        _clip, truth = broadcast
        assert len(truth.shots) == 12

    def test_transition_count(self, broadcast):
        _clip, truth = broadcast
        assert len(truth.transitions) == 11

    def test_first_shot_starts_at_zero(self, broadcast):
        _clip, truth = broadcast
        assert truth.shots[0].start == 0

    def test_shots_and_transitions_tile_the_clip(self, broadcast):
        clip, truth = broadcast
        covered = np.zeros(len(clip), dtype=bool)
        for shot in truth.shots:
            assert not covered[shot.start : shot.stop].any(), "overlapping shots"
            covered[shot.start : shot.stop] = True
        for t in truth.transitions:
            if t.kind != "cut":
                start, stop = t.span
                assert not covered[start:stop].any()
                covered[start:stop] = True
        assert covered.all()

    def test_tennis_shots_have_events(self, broadcast):
        _clip, truth = broadcast
        tennis_indices = {
            i for i, s in enumerate(truth.shots) if s.category == "tennis"
        }
        event_shots = {e.shot_index for e in truth.events}
        assert event_shots <= tennis_indices
        assert event_shots  # at least one tennis shot produced events

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            BroadcastGenerator().assemble([])

    def test_zero_shots_rejected(self):
        with pytest.raises(ValueError):
            BroadcastGenerator().generate(0)


class TestSampling:
    def test_consecutive_specs_distinct(self):
        generator = BroadcastGenerator(seed=1)
        specs = generator.sample_specs(40)
        for previous, current in zip(specs, specs[1:]):
            if type(previous) is type(current):
                assert abs(previous.gain - current.gain) >= 0.12
                if isinstance(current, CourtShotSpec):
                    assert previous.geometry != current.geometry

    def test_category_weights_respected(self):
        config = BroadcastConfig(category_weights=(1, 0, 0, 0))
        generator = BroadcastGenerator(config, seed=2)
        specs = generator.sample_specs(10)
        assert all(isinstance(s, CourtShotSpec) for s in specs)


class TestTennisClip:
    def test_single_shot(self):
        clip, truth = BroadcastGenerator(seed=3).tennis_clip(n_frames=30)
        assert len(truth.shots) == 1
        assert truth.shots[0].category == ShotCategory.TENNIS
        assert len(clip) == 30
