"""Shot renderer tests: each category carries its signature statistics."""

import numpy as np
import pytest

from repro.video.shots import (
    AudienceSpec,
    CloseUpSpec,
    CourtShotSpec,
    OtherSpec,
    ShotCategory,
    apply_gain,
)
from repro.vision.dominant import color_coverage
from repro.vision.skin import skin_ratio
from repro.vision.stats import frame_entropy

H, W = 96, 128
SIGMA = 6.0


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestApplyGain:
    def test_identity(self):
        frame = np.full((2, 2, 3), 100, dtype=np.uint8)
        assert apply_gain(frame, 1.0) is frame

    def test_scales(self):
        frame = np.full((2, 2, 3), 100, dtype=np.uint8)
        assert apply_gain(frame, 0.5).max() == 50

    def test_clips(self):
        frame = np.full((2, 2, 3), 200, dtype=np.uint8)
        assert apply_gain(frame, 2.0).max() == 255

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            apply_gain(np.zeros((2, 2, 3), dtype=np.uint8), 0.0)


class TestCourtShot:
    def test_category_and_counts(self, rng):
        shot = CourtShotSpec(n_frames=20).render(H, W, rng, SIGMA)
        assert shot.category == ShotCategory.TENNIS
        assert len(shot.frames) == 20
        assert len(shot.trajectory) == 20
        assert len(shot.far_trajectory) == 20

    def test_court_color_dominates(self, rng):
        shot = CourtShotSpec(n_frames=12).render(H, W, rng, SIGMA)
        coverage = color_coverage(shot.frames[5], np.array([40, 130, 80]))
        assert coverage > 0.35

    def test_events_present(self, rng):
        shot = CourtShotSpec(n_frames=30, script="rally").render(H, W, rng, SIGMA)
        assert shot.events and shot.events[0][2] == "rally"

    def test_gain_darkens(self, rng):
        bright = CourtShotSpec(n_frames=12, gain=1.1).render(H, W, rng, 0.0)
        dark = CourtShotSpec(n_frames=12, gain=0.85).render(H, W, rng, 0.0)
        assert bright.frames[0].mean() > dark.frames[0].mean()


class TestCloseUp:
    def test_high_skin_ratio(self, rng):
        shot = CloseUpSpec(n_frames=10).render(H, W, rng, SIGMA)
        assert skin_ratio(shot.frames[5]) > 0.15

    def test_no_trajectory(self, rng):
        shot = CloseUpSpec(n_frames=10).render(H, W, rng, SIGMA)
        assert shot.trajectory == ()
        assert shot.events == ()


class TestAudience:
    def test_high_entropy(self, rng):
        shot = AudienceSpec(n_frames=8).render(H, W, rng, SIGMA)
        assert frame_entropy(shot.frames[4]) > 4.2

    def test_low_skin(self, rng):
        shot = AudienceSpec(n_frames=8).render(H, W, rng, SIGMA)
        assert skin_ratio(shot.frames[4]) < 0.12

    def test_temporal_coherence(self, rng):
        from repro.vision.histogram import color_histogram, histogram_difference

        shot = AudienceSpec(n_frames=8).render(H, W, rng, SIGMA)
        d = histogram_difference(
            color_histogram(shot.frames[3]), color_histogram(shot.frames[4])
        )
        assert d < 0.3


class TestOther:
    def test_low_entropy_no_court_no_skin(self, rng):
        shot = OtherSpec(n_frames=8).render(H, W, rng, SIGMA)
        frame = shot.frames[4]
        assert frame_entropy(frame) < 4.2
        assert skin_ratio(frame) < 0.12
        assert color_coverage(frame, np.array([40, 130, 80])) < 0.05

    def test_static(self, rng):
        from repro.vision.histogram import color_histogram, histogram_difference

        shot = OtherSpec(n_frames=8).render(H, W, rng, SIGMA)
        d = histogram_difference(
            color_histogram(shot.frames[0]), color_histogram(shot.frames[7])
        )
        assert d < 0.2


class TestCategorySeparation:
    """The statistics that drive classification must be separable."""

    def test_skin_separates_closeup(self, rng):
        closeup = CloseUpSpec(n_frames=6).render(H, W, rng, SIGMA)
        court = CourtShotSpec(n_frames=12).render(H, W, rng, SIGMA)
        audience = AudienceSpec(n_frames=6).render(H, W, rng, SIGMA)
        s_closeup = skin_ratio(closeup.frames[3])
        assert s_closeup > 2 * skin_ratio(court.frames[6])
        assert s_closeup > 2 * skin_ratio(audience.frames[3])

    def test_entropy_separates_audience(self, rng):
        audience = AudienceSpec(n_frames=6).render(H, W, rng, SIGMA)
        other = OtherSpec(n_frames=6).render(H, W, rng, SIGMA)
        assert frame_entropy(audience.frames[3]) > frame_entropy(other.frames[3]) + 1.0
