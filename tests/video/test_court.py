"""Court renderer tests."""

import numpy as np

from repro.video.court import (
    AUSTRALIAN_OPEN_STYLE,
    CAMERA_PRESETS,
    CourtGeometry,
    CourtStyle,
    render_court,
)
from repro.vision.dominant import color_coverage


class TestRenderCourt:
    def test_shape_and_dtype(self):
        frame = render_court(96, 128)
        assert frame.shape == (96, 128, 3)
        assert frame.dtype == np.uint8

    def test_surface_dominates(self):
        frame = render_court(96, 128)
        coverage = color_coverage(frame, np.array(AUSTRALIAN_OPEN_STYLE.surface))
        assert coverage > 0.4

    def test_surround_outside_court(self):
        frame = render_court(96, 128)
        assert tuple(frame[0, 0]) == AUSTRALIAN_OPEN_STYLE.surround

    def test_net_band_present(self):
        geometry = CourtGeometry()
        frame = render_court(96, 128, geometry=geometry)
        _top, net, _bottom = geometry.rows(96)
        left, right = geometry.cols(128)
        assert tuple(frame[net, (left + right) // 2]) == AUSTRALIAN_OPEN_STYLE.net

    def test_baseline_is_white(self):
        geometry = CourtGeometry()
        frame = render_court(96, 128, geometry=geometry)
        top, _net, _bottom = geometry.rows(96)
        left, right = geometry.cols(128)
        assert tuple(frame[top, (left + right) // 2]) == AUSTRALIAN_OPEN_STYLE.line

    def test_custom_style(self):
        style = CourtStyle(surface=(200, 50, 50))
        frame = render_court(64, 64, style=style)
        assert color_coverage(frame, np.array([200, 50, 50])) > 0.3


class TestGeometry:
    def test_rows_ordering(self):
        top, net, bottom = CourtGeometry().rows(100)
        assert top < net < bottom

    def test_camera_presets_distinct(self):
        geometries = list(CAMERA_PRESETS.values())
        assert len(set(geometries)) == len(geometries)

    def test_presets_render_different_coverage(self):
        wide = render_court(96, 128, geometry=CAMERA_PRESETS["wide"])
        tight = render_court(96, 128, geometry=CAMERA_PRESETS["tight"])
        surface = np.array(AUSTRALIAN_OPEN_STYLE.surface)
        assert color_coverage(wide, surface) > color_coverage(tight, surface)
