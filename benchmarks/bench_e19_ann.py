"""E19 — approximate nearest-neighbour shot retrieval.

Query-by-example over shot feature vectors: the IVF index
(:class:`repro.ir.ann.AnnIndex`) against the brute-force oracle
(:func:`repro.ir.ann_reference.brute_force_search`) on a replicated
corpus, the same scaling trick E6 uses for text.  The gate demands

- a >= 5x median speedup of the probed search over the full scan,
- recall@10 >= 0.9 at the serving ``nprobe``, and
- ``fused_mismatches == 0``: with every cell probed the index must
  reproduce the oracle — and therefore the fused ranking — byte for
  byte.  Approximation is allowed only where it is asked for.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.ir.ann import AnnIndex, ShotVectorizer
from repro.ir.ann_reference import brute_force_search, recall_at_k, replicate_vectors

#: Corpus replication factor; >= 25x is where the vectorized cell scan
#: separates from the oracle's per-row loop (same rationale as E6).
REPLICATION = 25
N_CELLS = 16
#: The serving operating point: probe 4 of 16 cells.
NPROBE = 4
#: Fusion weights used for the byte-identity check.
WEIGHTS = (0.5, 0.5)


@pytest.fixture(scope="module")
def ann_corpus(bench_dataset):
    """Replicated shot-vector corpus, built index and degraded queries."""
    vectorizer = ShotVectorizer()
    base = []
    for plan in bench_dataset.video_plans[:4]:
        clip, truth = plan.materialise()
        for shot in truth.shots:
            stop = min(shot.stop, len(clip))
            if stop > shot.start:
                base.append(vectorizer.vectorize_clip(clip, shot.start, stop))
    base = np.array(base)
    scaled = replicate_vectors(base, REPLICATION, np.random.default_rng(0))
    return {
        "vectors": scaled,
        "index": AnnIndex.build(scaled, n_cells=N_CELLS, rng=np.random.default_rng(1)),
        # Jittered copies of indexed shots: stand-ins for degraded clips.
        "queries": replicate_vectors(base[:8], 1, np.random.default_rng(7)),
    }


def fused_ranking(ids, distances, weights=WEIGHTS):
    """Late fusion against a deterministic synthetic text score.

    Mirrors the engine's arithmetic (text weight times a per-video score
    plus ann weight times ``1 / (1 + distance)``) so byte-identity of the
    fused ranking, not just the raw neighbour list, is what is compared.
    """
    text_scores = (ids * 31 % 97) / 97.0
    fused = weights[0] * text_scores + weights[1] / (1.0 + distances)
    order = np.lexsort((ids, -fused))
    return ids[order].tolist(), fused[order].tolist()


def test_e19_brute_force(benchmark, ann_corpus):
    """Gate baseline: the oracle's full scan over every query."""
    vectors = ann_corpus["vectors"]
    queries = ann_corpus["queries"]

    def run():
        for q in queries:
            brute_force_search(vectors, q, 10)

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_e19_ann_search(benchmark, ann_corpus):
    """Gate candidate: probed IVF search, plus the quality accounting."""
    vectors = ann_corpus["vectors"]
    index = ann_corpus["index"]
    queries = ann_corpus["queries"]

    def run():
        for q in queries:
            index.search(q, k=10, nprobe=NPROBE)

    benchmark.pedantic(run, rounds=5, iterations=1)

    # Recall sweep: quality as a function of cells probed.
    rows = []
    serving_recall = None
    for nprobe in (1, 2, NPROBE, 8, N_CELLS):
        recalls = []
        for q in queries:
            got_ids, _ = index.search(q, k=10, nprobe=nprobe)
            want_ids, _ = brute_force_search(vectors, q, 10)
            recalls.append(recall_at_k(got_ids, want_ids, 10))
        mean_recall = float(np.mean(recalls))
        rows.append([nprobe, f"{nprobe / N_CELLS:.2f}", f"{mean_recall:.3f}"])
        if nprobe == NPROBE:
            serving_recall = mean_recall
    print_table(
        "E19: IVF recall@10 vs cells probed",
        ["nprobe", "cell fraction", "recall@10"],
        rows,
    )

    # Full coverage must reproduce the oracle — and the fused ranking
    # built from it — byte for byte.
    fused_mismatches = 0
    for q in queries:
        got_ids, got_distances = index.search(q, k=10, nprobe=index.n_cells)
        want_ids, want_distances = brute_force_search(vectors, q, 10)
        if not (
            np.array_equal(got_ids, want_ids)
            and np.array_equal(got_distances, want_distances)
            and fused_ranking(got_ids, got_distances)
            == fused_ranking(want_ids, want_distances)
        ):
            fused_mismatches += 1

    benchmark.extra_info["recall_at_10"] = serving_recall
    benchmark.extra_info["fused_mismatches"] = fused_mismatches
    benchmark.extra_info["replication"] = REPLICATION
    benchmark.extra_info["vectors"] = len(vectors)
    assert serving_recall >= 0.9
    assert fused_mismatches == 0


def test_e19_index_build_speed(benchmark, ann_corpus):
    """Timed kernel: k-means plus packed cell-list construction."""
    vectors = ann_corpus["vectors"]
    index = benchmark.pedantic(
        lambda: AnnIndex.build(vectors, n_cells=N_CELLS, rng=np.random.default_rng(1)),
        rounds=1,
        iterations=1,
    )
    assert index.n_vectors == len(vectors)
