"""E2 — shot-boundary detection quality and speed.

Regenerates the boundary-detection tables:

- precision/recall/F1 of the paper's fixed-threshold histogram method
  over a threshold sweep (cuts only, and against all transitions);
- the twin-comparison detector on cuts *and* gradual transitions;
- E2a ablation: histogram bin count.

Expected shape: the threshold method has near-perfect cut recall with
precision degrading as gradual transitions increase; twin-comparison
recovers precision and finds the gradual transitions.
"""


from benchmarks.conftest import print_table
from repro.shots.boundary import ThresholdCutDetector, TwinComparisonDetector, frame_distances
from repro.shots.evaluate import boundary_scores, transition_scores
from repro.video.generator import BroadcastConfig, BroadcastGenerator

THRESHOLDS = (0.2, 0.35, 0.5, 0.65)


def test_e2_threshold_sweep(benchmark, bench_broadcast):
    clip, truth = bench_broadcast

    def sweep():
        out = []
        for threshold in THRESHOLDS:
            detector = ThresholdCutDetector(threshold)
            detected = detector.detect(clip)
            out.append((threshold, boundary_scores(detected, truth.cut_frames),
                        transition_scores(detected, truth)))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for threshold, cut_result, trans_result in results:
        rows.append(
            [
                f"{threshold:.2f}",
                f"{cut_result.precision:.2f}",
                f"{cut_result.recall:.2f}",
                f"{cut_result.f1:.2f}",
                f"{trans_result.precision:.2f}",
                f"{trans_result.recall:.2f}",
            ]
        )
    print_table(
        "E2: fixed-threshold boundary detection vs threshold",
        ["threshold", "cut P", "cut R", "cut F1", "trans P", "trans R"],
        rows,
    )
    # At the paper-style operating point, cut recall is essentially perfect.
    detector = ThresholdCutDetector(0.35)
    result = boundary_scores(detector.detect(clip), truth.cut_frames)
    assert result.recall >= 0.9


def test_e2_twin_comparison(benchmark, bench_broadcast):
    clip, truth = bench_broadcast
    rows = []
    twin = TwinComparisonDetector()
    boundaries = benchmark.pedantic(twin.detect, args=(clip,), rounds=1, iterations=1)
    cuts = [b for b in boundaries if b.kind == "cut"]
    gradual = [b for b in boundaries if b.kind == "gradual"]
    cut_result = boundary_scores(cuts, truth.cut_frames)
    grad_result = boundary_scores(
        gradual, [start for start, _stop in truth.gradual_spans], tolerance=4
    )
    threshold_result = boundary_scores(
        ThresholdCutDetector(0.35).detect(clip), truth.cut_frames
    )
    rows.append(
        ["threshold(0.35)", f"{threshold_result.precision:.2f}",
         f"{threshold_result.recall:.2f}", "-", "-"]
    )
    rows.append(
        ["twin-comparison", f"{cut_result.precision:.2f}", f"{cut_result.recall:.2f}",
         f"{grad_result.precision:.2f}", f"{grad_result.recall:.2f}"]
    )
    print_table(
        "E2: cut vs gradual detection (threshold vs twin-comparison)",
        ["detector", "cut P", "cut R", "grad P", "grad R"],
        rows,
    )
    assert cut_result.precision >= threshold_result.precision
    if truth.gradual_spans:
        assert grad_result.recall >= 0.5


def test_e2a_bin_count_ablation(benchmark, bench_broadcast):
    clip, truth = bench_broadcast

    def sweep():
        out = []
        for bins in (4, 8, 16):
            for color_space in ("rgb", "hsv"):
                detector = ThresholdCutDetector(0.35, bins=bins, color_space=color_space)
                out.append(
                    (bins, color_space, boundary_scores(detector.detect(clip), truth.cut_frames))
                )
        return out

    rows = [
        [bins, color_space, f"{r.precision:.2f}", f"{r.recall:.2f}", f"{r.f1:.2f}"]
        for bins, color_space, r in benchmark.pedantic(sweep, rounds=1, iterations=1)
    ]
    print_table(
        "E2a: histogram bins x colour space vs cut detection",
        ["bins", "space", "P", "R", "F1"],
        rows,
    )


def test_e2_noise_sweep(benchmark):
    """Boundary quality as broadcast noise grows."""

    def sweep():
        out = []
        for sigma in (2.0, 6.0, 12.0):
            generator = BroadcastGenerator(
                BroadcastConfig(noise_sigma=sigma, gradual_fraction=0.0), seed=555
            )
            clip, truth = generator.generate(10)
            out.append(
                (sigma, boundary_scores(ThresholdCutDetector(0.35).detect(clip), truth.cut_frames))
            )
        return out

    rows = [
        [sigma, f"{r.precision:.2f}", f"{r.recall:.2f}"]
        for sigma, r in benchmark.pedantic(sweep, rounds=1, iterations=1)
    ]
    print_table("E2: noise sensitivity (cuts only)", ["sigma", "P", "R"], rows)


def test_e2_distance_kernel_speed(benchmark, bench_broadcast):
    """Timed kernel: the per-frame histogram difference pass."""
    clip, _truth = bench_broadcast
    frames = [clip[i] for i in range(60)]
    distances = benchmark(frame_distances, frames)
    assert len(distances) == 60
