"""E9 — end-to-end indexing throughput.

Regenerates the per-stage cost breakdown of the tennis FDE pipeline:
frames/second of each detector stage and of the full pipeline on the
reference broadcast — the operational number a digital library cares
about when ingesting a tournament's footage.
"""

import time


from benchmarks.conftest import print_table
from repro.grammar.tennis import build_tennis_fde


def test_e9_stage_breakdown(benchmark, bench_broadcast):
    clip, _truth = bench_broadcast

    def run():
        fde = build_tennis_fde()
        timings = {}
        original_run = fde.registry.run

        def timed_run(name, context):
            start = time.perf_counter()
            original_run(name, context)
            timings[name] = timings.get(name, 0.0) + time.perf_counter() - start

        fde.registry.run = timed_run
        start = time.perf_counter()
        fde.index_video(clip)
        total = time.perf_counter() - start
        return timings, total, fde

    timings, total, fde = benchmark.pedantic(run, rounds=1, iterations=1)
    n_frames = len(clip)
    rows = [
        [
            stage,
            f"{seconds * 1e3:.0f}ms",
            f"{seconds / total:.0%}",
            f"{n_frames / seconds:.0f}" if seconds > 0 else "-",
        ]
        for stage, seconds in timings.items()
    ]
    rows.append(["TOTAL", f"{total * 1e3:.0f}ms", "100%", f"{n_frames / total:.0f}"])
    print_table(
        f"E9: indexing cost per stage ({n_frames} frames @ {clip.fps:.0f} fps)",
        ["stage", "time", "share", "frames/s"],
        rows,
    )
    # The pipeline indexes faster than a realtime 25fps broadcast plays.
    assert n_frames / total > 25
    # All four layers were populated.
    counts = fde.model.counts()
    assert min(counts.values()) >= 1


def test_e9_full_pipeline_speed(benchmark, bench_broadcast):
    """Timed kernel: the complete FDE run on the reference broadcast."""
    clip, _truth = bench_broadcast

    def run():
        fde = build_tennis_fde()
        fde.index_video(clip)
        return fde

    fde = benchmark.pedantic(run, rounds=3, iterations=1)
    assert fde.model.counts()["raw"] == 1
