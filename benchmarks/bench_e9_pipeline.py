"""E9 — end-to-end indexing throughput.

Regenerates the per-stage cost breakdown of the tennis FDE pipeline:
frames/second of each detector stage and of the full pipeline on the
reference broadcast — the operational number a digital library cares
about when ingesting a tournament's footage.
"""

import time

import numpy as np

from benchmarks.conftest import print_table
from repro.grammar.tennis import build_tennis_fde
from repro.vision.dominant import color_coverage, color_coverages, dominant_color, dominant_colors
from repro.vision.skin import DEFAULT_SKIN_MODEL
from repro.vision.stats import frame_statistics, frame_statistics_batch

#: Reference colour of the classify-stage coverage kernel.
_COURT_COLOR = np.array([40.0, 130.0, 80.0])


def test_e9_stage_breakdown(benchmark, bench_broadcast):
    clip, _truth = bench_broadcast

    def run():
        fde = build_tennis_fde()
        timings = {}
        original_run = fde.registry.run

        def timed_run(name, context):
            start = time.perf_counter()
            original_run(name, context)
            timings[name] = timings.get(name, 0.0) + time.perf_counter() - start

        fde.registry.run = timed_run
        start = time.perf_counter()
        fde.index_video(clip)
        total = time.perf_counter() - start
        return timings, total, fde

    timings, total, fde = benchmark.pedantic(run, rounds=1, iterations=1)
    n_frames = len(clip)
    rows = [
        [
            stage,
            f"{seconds * 1e3:.0f}ms",
            f"{seconds / total:.0%}",
            f"{n_frames / seconds:.0f}" if seconds > 0 else "-",
        ]
        for stage, seconds in timings.items()
    ]
    rows.append(["TOTAL", f"{total * 1e3:.0f}ms", "100%", f"{n_frames / total:.0f}"])
    print_table(
        f"E9: indexing cost per stage ({n_frames} frames @ {clip.fps:.0f} fps)",
        ["stage", "time", "share", "frames/s"],
        rows,
    )
    # The batched kernels push the pipeline well past realtime: four
    # broadcast-speed (25 fps) streams at once, with headroom for slow
    # CI runners (measured ~1450 frames/s on a weak host).
    assert n_frames / total > 100
    # All four layers were populated.
    counts = fde.model.counts()
    assert min(counts.values()) >= 1


def _perframe_vision_features(clip):
    """The classify-stage vision kernels, one frame at a time (the seed)."""
    return (
        [DEFAULT_SKIN_MODEL.ratio(f) for f in clip],
        [color_coverage(f, _COURT_COLOR) for f in clip],
        [dominant_color(f) for f in clip],
        [frame_statistics(f) for f in clip],
    )


def _batched_vision_features(clip):
    """The same kernels through the batched entry points."""
    arr = clip.as_array()
    return (
        DEFAULT_SKIN_MODEL.ratios(arr),
        color_coverages(arr, _COURT_COLOR),
        dominant_colors(arr),
        frame_statistics_batch(arr),
    )


def test_e9_perframe_vision(benchmark, bench_broadcast):
    """Gate baseline: per-frame vision feature kernels on the broadcast."""
    clip, _truth = bench_broadcast
    benchmark.pedantic(lambda: _perframe_vision_features(clip), rounds=3, iterations=1)


def test_e9_batched_vision(benchmark, bench_broadcast):
    """Gate candidate: batched vision kernels, bit-identical features.

    The CI gate demands a >= 2x median speedup over
    :func:`test_e9_perframe_vision` and ``mismatches == 0``: every
    skin ratio, coverage, dominant colour and statistics dict must
    equal the per-frame computation exactly.
    """
    clip, _truth = bench_broadcast
    benchmark.pedantic(lambda: _batched_vision_features(clip), rounds=3, iterations=1)

    skin, coverage, dominant, stats = _batched_vision_features(clip)
    ref_skin, ref_coverage, ref_dominant, ref_stats = _perframe_vision_features(clip)
    mismatches = 0
    for i in range(len(clip)):
        if skin[i] != ref_skin[i] or coverage[i] != ref_coverage[i]:
            mismatches += 1
        elif not np.array_equal(dominant[i][0], ref_dominant[i][0]):
            mismatches += 1
        elif dominant[i][1] != ref_dominant[i][1] or stats[i] != ref_stats[i]:
            mismatches += 1
    benchmark.extra_info["mismatches"] = mismatches
    benchmark.extra_info["frames"] = len(clip)
    assert mismatches == 0


def test_e9_full_pipeline_speed(benchmark, bench_broadcast):
    """Timed kernel: the complete FDE run on the reference broadcast."""
    clip, _truth = bench_broadcast

    def run():
        fde = build_tennis_fde()
        fde.index_video(clip)
        return fde

    fde = benchmark.pedantic(run, rounds=3, iterations=1)
    assert fde.model.counts()["raw"] == 1
