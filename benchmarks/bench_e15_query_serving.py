"""E15 — query serving: cached vs cold latency, reader throughput.

PRs 1-3 made the *indexing* half fast and safe; this experiment
measures the *search* half behind the new query-serving layer
(:mod:`repro.library.service`): a warm generation-keyed cache must
serve a repeated query mix at least ``MIN_SPEEDUP``x faster than cold
evaluation, cached answers must stay byte-identical to uncached ones —
including across an interleaved index commit — and concurrent readers
must scale against the shared cache.

The CI benchmark-regression gate runs this module with
``--benchmark-json`` and fails when the cached path stops beating the
uncached path by ``--min-speedup``.
"""

import time
from concurrent.futures import ThreadPoolExecutor

from benchmarks.conftest import print_table
from repro.dataset import build_australian_open
from repro.library import DigitalLibraryEngine, LibraryQuery, LibrarySearchService

N_VIDEOS = 3
MIN_SPEEDUP = 10.0
N_READERS = 4
REQUESTS_PER_READER = 200

MIX = [
    LibraryQuery(top_n=100),
    LibraryQuery(event="rally"),
    LibraryQuery(event="net_play", text="approach the net"),
    LibraryQuery(event="service", player={"gender": "female"}),
    LibraryQuery(player={"handedness": "left", "past_winner": True}, event="net_play"),
    LibraryQuery(sequence=("service", "rally"), within=500),
    LibraryQuery(text="champion wins in straight sets"),
    LibraryQuery(event="baseline_play", top_n=5),
]

# Built once; the timed kernels and the consistency test share it.
_state: dict = {}


def _service() -> LibrarySearchService:
    if "service" not in _state:
        dataset = build_australian_open(seed=1234, video_shots=6)
        engine = DigitalLibraryEngine(dataset)
        service = LibrarySearchService(engine, cache_size=256)
        for plan in dataset.video_plans[:N_VIDEOS]:
            service.index_plan(plan)
        _state["service"] = service
    return _state["service"]


def _serve_mix(service: LibrarySearchService, bypass_cache: bool) -> list:
    return [service.search(query, bypass_cache=bypass_cache).results for query in MIX]


def test_e15_uncached_query(benchmark):
    """Timed kernel: the query mix evaluated cold (cache bypassed)."""
    service = _service()
    results = benchmark(_serve_mix, service, True)
    assert all(isinstance(r, list) for r in results)
    _state["uncached_results"] = results


def test_e15_cached_query(benchmark):
    """Timed kernel: the same mix answered from the warm cache."""
    service = _service()
    _serve_mix(service, False)  # populate
    results = benchmark(_serve_mix, service, False)
    _state["cached_results"] = results
    stats = service.stats()
    assert stats.cache_hits > 0


def test_e15_speedup_consistency_and_concurrency():
    """Cached serving is >= 10x faster, byte-identical, and scales."""
    service = _service()

    def median_seconds(bypass_cache: bool, rounds: int = 9) -> float:
        times = []
        for _ in range(rounds):
            started = time.perf_counter()
            _serve_mix(service, bypass_cache)
            times.append(time.perf_counter() - started)
        return sorted(times)[len(times) // 2]

    _serve_mix(service, False)  # ensure the cache is warm
    cold = median_seconds(True)
    warm = median_seconds(False)
    speedup = cold / warm

    # Byte-identical serving: every query, cached vs uncached.
    uncached = _state.get("uncached_results") or _serve_mix(service, True)
    cached = _state.get("cached_results") or _serve_mix(service, False)
    assert cached == uncached

    # Across an interleaved commit: the generation moves and the cache
    # refreshes to exactly the new uncached truth.
    generation = service.generation
    service.index_plan(service.engine.dataset.video_plans[N_VIDEOS])
    assert service.generation == generation + 1
    post_commit = [service.search(query) for query in MIX]
    assert all(not served.cache_hit for served in post_commit)
    assert all(served.generation == generation + 1 for served in post_commit)
    assert [s.results for s in post_commit] == _serve_mix(service, True)
    assert all(service.search(query).cache_hit for query in MIX)

    # Concurrent readers against the shared (re-warmed) cache.
    def reader(reader_id: int) -> int:
        for step in range(REQUESTS_PER_READER):
            service.search(MIX[(reader_id + step) % len(MIX)])
        return REQUESTS_PER_READER

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=N_READERS) as pool:
        served = sum(pool.map(reader, range(N_READERS)))
    elapsed = time.perf_counter() - started

    stats = service.stats()
    print_table(
        f"E15: query serving ({N_VIDEOS}+1 videos, {len(MIX)}-query mix)",
        ["path", "latency/mix", "speedup", "throughput"],
        [
            ["cold (uncached)", f"{cold * 1e3:.2f} ms", "1.0x", "-"],
            ["warm (cached)", f"{warm * 1e3:.2f} ms", f"{speedup:.1f}x", "-"],
            [
                f"{N_READERS} readers",
                "-",
                "-",
                f"{served / elapsed:,.0f} q/s",
            ],
        ],
    )
    print(f"cache: {stats.cache_hits} hits / {stats.cache_misses} misses")
    assert speedup >= MIN_SPEEDUP, (
        f"cached serving speedup {speedup:.1f}x below the {MIN_SPEEDUP}x gate"
    )
