"""E4 — player segmentation and tracking.

Regenerates the tracking tables:

- mean position error and found fraction per motion script;
- error vs search-window size per predictor (static / constant-velocity
  / Kalman) — the predict-and-search trade-off the paper's tennis
  detector embodies;
- E4a ablation: court-statistics segmentation vs a global threshold.

Expected shape: with a generous window every predictor works; as the
window shrinks, better prediction keeps the player in view longer.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.tracking.court_model import CourtColorModel
from repro.tracking.predictor import (
    ConstantVelocityPredictor,
    KalmanPredictor,
    StaticPredictor,
)
from repro.tracking.tracker import PlayerTracker

PREDICTORS = {
    "static": StaticPredictor,
    "const-velocity": ConstantVelocityPredictor,
    "kalman": KalmanPredictor,
}


def test_e4_per_script_tracking(benchmark, bench_tennis_clips):
    def sweep():
        out = []
        for script, (clip, truth) in bench_tennis_clips.items():
            track = PlayerTracker().track(list(clip))
            error = track.mean_error(list(truth.shots[0].trajectory))
            out.append([script, f"{track.found_fraction:.2f}", f"{error:.2f}"])
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E4: tracking per motion script (window=14, kalman)",
        ["script", "found", "mean err (px)"],
        rows,
    )
    for row in rows:
        assert float(row[1]) > 0.9
        assert float(row[2]) < 6.0


def test_e4_window_predictor_sweep(benchmark, bench_tennis_clips):
    clip, truth = bench_tennis_clips["rally"]
    trajectory = list(truth.shots[0].trajectory)

    def sweep():
        out = {}
        for window in (4, 8, 14):
            for name, factory in PREDICTORS.items():
                tracker = PlayerTracker(search_half_size=window, predictor_factory=factory)
                track = tracker.track(list(clip))
                out[(window, name)] = (track.found_fraction, track.mean_error(trajectory))
        return out

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [window, name, f"{found:.2f}", f"{error:.2f}"]
        for (window, name), (found, error) in errors.items()
    ]
    print_table(
        "E4: search window x predictor (rally clip)",
        ["window", "predictor", "found", "mean err (px)"],
        rows,
    )
    # Generous window: all predictors land close to the truth.
    assert errors[(14, "kalman")][1] < 6.0
    # The kalman tracker is never substantially worse than static.
    for window in (4, 8, 14):
        assert errors[(window, "kalman")][1] <= errors[(window, "static")][1] + 2.0


def test_e4a_segmentation_ablation(benchmark, bench_tennis_clips):
    """Court-statistics segmentation vs a naive global threshold."""
    clip, truth = bench_tennis_clips["rally"]
    frame = clip[0]
    model = benchmark.pedantic(CourtColorModel.estimate, args=(frame,), rounds=1, iterations=1)

    from repro.tracking.segmentation import court_bounds, restrict_to_bounds
    from repro.vision.morphology import opening
    from repro.vision.regions import regions_in

    bounds = court_bounds(frame, model)
    r0, c0, r1, c1 = bounds
    near_half = ((r0 + r1) // 2, c0, r1, c1)

    # Court-statistics mask: pixels far from the estimated court colour.
    stat_mask = ~model.is_court(frame)

    # Naive global threshold: dark pixels (a 2002-era fallback).
    grey = frame.mean(axis=-1)
    naive_mask = grey < grey.mean() * 0.6

    true_pos = truth.shots[0].trajectory[0]
    rows = []
    for name, mask in (("court statistics", stat_mask), ("global threshold", naive_mask)):
        cleaned = restrict_to_bounds(opening(mask, size=3), near_half)
        regions = regions_in(cleaned, min_area=12)
        near = [
            r
            for r in regions
            if np.hypot(r.centroid[0] - true_pos[0], r.centroid[1] - true_pos[1]) < 10
        ]
        rows.append([name, len(regions), "yes" if near else "no"])
    print_table(
        "E4a: initial segmentation method (first rally frame)",
        ["method", "candidate regions", "player found near truth"],
        rows,
    )
    assert rows[0][2] == "yes"


def test_e4b_camera_pan_ablation(benchmark):
    """Tracking under camera pan: the court model is estimated once per
    shot, so a fast pan slowly invalidates it — error grows with pan."""
    import numpy as np
    from repro.video.shots import CourtShotSpec

    rng = np.random.default_rng(99)

    def sweep():
        out = []
        for pan in (0.0, 0.2, 0.5):
            shot = CourtShotSpec(n_frames=50, script="rally", pan_speed=pan).render(
                96, 128, rng, 6.0
            )
            track = PlayerTracker().track(shot.frames)
            errors = [
                np.hypot(p[0] - t[0], p[1] - t[1])
                for p, t in zip(track.positions, shot.trajectory)
                if p is not None
            ]
            out.append([pan, f"{track.found_fraction:.2f}", f"{np.mean(errors):.2f}"])
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E4b: tracking under camera pan (rally, window=14)",
        ["pan px/frame", "found", "mean err (px)"],
        rows,
    )
    assert float(rows[0][2]) <= float(rows[-1][2]) + 0.5


def test_e4_tracking_speed(benchmark, bench_tennis_clips):
    """Timed kernel: tracking a 60-frame court shot."""
    clip, _truth = bench_tennis_clips["rally"]
    frames = list(clip)
    track = benchmark(PlayerTracker().track, frames)
    assert track.found_fraction > 0.9
