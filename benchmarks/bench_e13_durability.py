"""E13 — durability: crash-recovery matrix and resume savings.

Quantifies what the durability layer buys:

- **Recovery correctness**: killing the writer at every named crash
  point in the snapshot/journal write path and reloading always yields
  a parseable catalogue — either the new snapshot or the previous good
  generation — and recovery is cheap (one extra file read at worst).
- **Resume savings**: after a mid-batch crash, ``--resume`` re-indexes
  only the uncommitted remainder instead of the whole batch, and the
  resumed snapshot is identical (same checksum) to an uninterrupted
  cold run.
"""

import json
import time

import pytest

from benchmarks.conftest import print_table
from repro.dataset import build_australian_open
from repro.faults import (
    JOURNAL_POINTS,
    SNAPSHOT_POINTS,
    CrashPoint,
    SimulatedCrash,
)
from repro.grammar.tennis import build_tennis_fde
from repro.library.indexing import LibraryIndexer
from repro.library.persistence import model_to_catalog
from repro.storage.journal import IndexingJournal
from repro.storage.persist import load_catalog, save_catalog

N_VIDEOS = 3


def make_indexer() -> LibraryIndexer:
    dataset = build_australian_open(seed=7, video_shots=4)
    return LibraryIndexer(dataset, fde=build_tennis_fde())


@pytest.fixture(scope="module")
def generations():
    """Two realistic meta-index generations (after video 1, after video 2)."""
    indexer = make_indexer()
    plans = indexer.dataset.video_plans
    indexer.index_plan(plans[0])
    gen1 = model_to_catalog(indexer.model)
    indexer.index_plan(plans[1])
    gen2 = model_to_catalog(indexer.model)
    return gen1, gen2


def test_e13_crash_recovery_matrix(benchmark, generations, tmp_path_factory):
    """Kill the snapshot writer at every crash point; recovery never fails."""
    gen1, gen2 = generations
    new_rows = len(gen2.table("videos"))

    def evaluate():
        results = []
        for point in SNAPSHOT_POINTS:
            path = tmp_path_factory.mktemp(point) / "meta.json"
            save_catalog(gen1, path)
            with CrashPoint(point):
                try:
                    save_catalog(gen2, path)
                    crashed = False
                except SimulatedCrash:
                    crashed = True
            start = time.perf_counter()
            loaded = load_catalog(path)  # the matrix property: never raises
            recovery = time.perf_counter() - start
            survivor = "new" if len(loaded.table("videos")) == new_rows else "old"
            results.append((point, crashed, survivor, recovery))
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = [
        [point, "yes" if crashed else "no", survivor, f"{recovery * 1e3:.2f} ms"]
        for point, crashed, survivor, recovery in results
    ]
    print_table(
        "E13: snapshot crash matrix (recovery after a kill at each write point)",
        ["crash point", "crashed", "survivor", "recovery time"],
        rows,
    )
    assert all(crashed for _, crashed, _, _ in results)
    by_point = {point: survivor for point, _, survivor, _ in results}
    # Only a crash after the atomic replace exposes the new generation.
    assert by_point.pop("snapshot-post-replace") == "new"
    assert set(by_point.values()) == {"old"}


def test_e13_journal_crash_points_keep_replayable_prefix(tmp_path):
    rows = []
    for point in JOURNAL_POINTS:
        journal = IndexingJournal(tmp_path / f"{point}.jsonl")
        journal.begin("v1")
        journal.commit("v1")
        with CrashPoint(point):
            try:
                journal.begin("v2")
            except SimulatedCrash:
                pass
        dropped = journal.recover()
        records = journal.replay()  # never raises after recover()
        rows.append([point, len(records), dropped, sorted(journal.committed())])
        assert journal.committed() == {"v1": False}
    print_table(
        "E13: journal crash matrix",
        ["crash point", "records kept", "bytes dropped", "committed"],
        rows,
    )


def test_e13_chunk_journal_crash_points(tmp_path):
    """Chunk-append records obey the same torn-write contract: a crash
    anywhere in a ``chunk_commit`` append keeps the committed prefix
    replayable and reports the in-flight chunk as a recoverable orphan."""
    rows = []
    for point in JOURNAL_POINTS:
        journal = IndexingJournal(tmp_path / f"chunk-{point}.jsonl")
        journal.chunk_begin("s", 1, 0, 24)
        journal.chunk_commit("s", 1, watermark=24, frames=24, shots=1, generation=1)
        journal.chunk_begin("s", 2, 24, 48)
        with CrashPoint(point):
            try:
                journal.chunk_commit(
                    "s", 2, watermark=48, frames=48, shots=2, generation=2
                )
            except SimulatedCrash:
                pass
        dropped = journal.recover()
        report = journal.verify()
        committed = [int(r["seq"]) for r in report.chunk_commits.get("s", [])]
        orphans = report.orphan_chunks.get("s", [])
        rows.append([point, len(report.records), dropped, committed, orphans])
        assert committed[:1] == [1]  # the committed prefix always survives
        assert 1 not in orphans
        # The in-flight chunk either landed (crash after the append) or
        # is reported as an orphan whose frames resume replays.
        assert committed == [1, 2] or orphans == [2]
    print_table(
        "E13: chunk-append journal crash matrix",
        ["crash point", "records kept", "bytes dropped", "committed seqs", "orphans"],
        rows,
    )


def test_e13_resume_savings(benchmark, tmp_path_factory):
    """Resume re-indexes only the uncommitted tail of a crashed batch."""
    tmp = tmp_path_factory.mktemp("e13_resume")

    def run_cold():
        path = tmp / "cold.json"
        indexer = make_indexer()
        start = time.perf_counter()
        records = indexer.index_checkpointed(path, limit=N_VIDEOS)
        return path, len(records), time.perf_counter() - start

    cold_path, cold_indexed, cold_time = benchmark.pedantic(
        run_cold, rounds=1, iterations=1
    )

    # Crash during the last video's snapshot: N-1 commits survive.
    crash_path = tmp / "crash.json"
    crashed = make_indexer()
    start = time.perf_counter()
    with CrashPoint("snapshot-pre-replace", after=N_VIDEOS - 1):
        try:
            crashed.index_checkpointed(crash_path, limit=N_VIDEOS)
        except SimulatedCrash:
            pass
    crash_time = time.perf_counter() - start

    fresh = make_indexer()
    start = time.perf_counter()
    restored = fresh.restore_snapshot(crash_path)
    records = fresh.index_checkpointed(crash_path, limit=N_VIDEOS, resume=True)
    resume_time = time.perf_counter() - start

    print_table(
        f"E13: resume savings ({N_VIDEOS} videos, crash during the last snapshot)",
        ["phase", "videos indexed", "wall time"],
        [
            ["cold run", cold_indexed, f"{cold_time:.2f} s"],
            ["crashed run", f"{restored} committed", f"{crash_time:.2f} s"],
            ["resume", len(records), f"{resume_time:.2f} s"],
        ],
    )
    assert cold_indexed == N_VIDEOS
    assert restored == N_VIDEOS - 1
    assert len(records) == 1  # only the interrupted video is re-indexed
    cold_doc = json.loads(cold_path.read_text())
    resumed_doc = json.loads(crash_path.read_text())
    assert resumed_doc["tables"] == cold_doc["tables"]
    assert resumed_doc["checksum"] == cold_doc["checksum"]
