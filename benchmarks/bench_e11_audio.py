"""E11 (extension) — audio interviews: the second FDE domain.

The demo site "contains multimedia fragments, like audio files of
interviews"; Acoi's claim is that feature grammars manage meta-data
extraction for multimedia documents *in general*.  This experiment
validates the audio instantiation:

- keyword-spotting word accuracy vs SNR (synth → spot round trip);
- retrieval quality when the text index is built from *recognised*
  transcripts instead of ground-truth text (the content-based-retrieval-
  of-hidden-information story);
- the interview FDE: mention events vs synthesis ground truth, and
  incremental revalidation parity with the video FDE.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.audio.signal import AudioSignal
from repro.audio.spotting import KeywordSpotter
from repro.audio.synth import synthesize_utterance
from repro.grammar.interview import build_interview_fde
from repro.ir.collection import DocumentCollection
from repro.ir.inverted_index import InvertedIndex
from repro.ir.ranking import rank_full_scan
from repro.ir.tokenizer import tokenize

SNR_LEVELS = (30.0, 10.0, 5.0, 0.0)


@pytest.fixture(scope="module")
def spoken_corpus(bench_dataset):
    """The first 40 interview transcripts as synthesised audio."""
    transcripts = []
    for doc in bench_dataset.pages:
        if doc.metadata.get("class") == "Interview":
            transcripts.append((doc.name, tokenize(doc.text)))
        if len(transcripts) == 40:
            break
    utterances = [
        (name, words, synthesize_utterance(words, name=name)[0])
        for name, words in transcripts
    ]
    vocabulary = sorted({w for _n, words, _s in utterances for w in words})
    return utterances, vocabulary


def _word_accuracy(spotter, signal: AudioSignal, words: list[str]) -> float:
    got = [w for _seg, w in spotter.transcribe(signal)]
    if not words:
        return 1.0
    # Align greedily: count positional matches up to the shorter length,
    # penalising length mismatch.
    matches = sum(g == w for g, w in zip(got, words))
    return matches / max(len(words), len(got))


def test_e11_spotting_accuracy_vs_snr(benchmark, spoken_corpus):
    utterances, vocabulary = spoken_corpus
    spotter = KeywordSpotter(vocabulary)
    rng = np.random.default_rng(7)
    sample = utterances[:10]

    def sweep():
        out = []
        for snr in SNR_LEVELS:
            accuracies = [
                _word_accuracy(spotter, signal.with_noise(snr, rng), words)
                for _name, words, signal in sample
            ]
            out.append((snr, float(np.mean(accuracies))))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[snr, f"{acc:.2f}"] for snr, acc in results]
    print_table("E11: keyword-spotting word accuracy vs SNR", ["SNR (dB)", "accuracy"], rows)
    by_snr = dict(results)
    assert by_snr[30.0] >= 0.95
    assert by_snr[0.0] <= by_snr[30.0]


def test_e11_retrieval_from_recognised_transcripts(benchmark, spoken_corpus):
    """Index ASR output; compare top-10 overlap with the truth index."""
    utterances, vocabulary = spoken_corpus
    spotter = KeywordSpotter(vocabulary)
    rng = np.random.default_rng(8)

    def evaluate():
        truth_coll = DocumentCollection()
        asr_coll = DocumentCollection()
        for name, words, signal in utterances:
            truth_coll.add(name, " ".join(words))
            noisy = signal.with_noise(20.0, rng)
            recognised = [w for _seg, w in spotter.transcribe(noisy) if w]
            asr_coll.add(name, " ".join(recognised))
        truth_index = InvertedIndex(truth_coll)
        asr_index = InvertedIndex(asr_coll)
        overlaps = []
        for query in ("net volley", "long rallies baseline", "crowd melbourne"):
            terms = truth_coll.query_terms(query)
            truth_top = {h.doc_id for h in rank_full_scan(truth_index, terms, 10)}
            asr_top = {h.doc_id for h in rank_full_scan(asr_index, terms, 10)}
            if truth_top:
                overlaps.append(len(truth_top & asr_top) / len(truth_top))
        return overlaps

    overlaps = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = [[q, f"{o:.2f}"] for q, o in zip(
        ("net volley", "long rallies baseline", "crowd melbourne"), overlaps
    )]
    print_table(
        "E11: top-10 overlap, recognised-transcript index vs truth index (SNR 20 dB)",
        ["query", "overlap@10"],
        rows,
    )
    assert float(np.mean(overlaps)) >= 0.7


def test_e11_interview_fde(benchmark, spoken_corpus):
    """Mentions found by the audio FDE vs synthesis ground truth."""
    utterances, vocabulary = spoken_corpus

    def evaluate():
        fde = build_interview_fde(vocabulary=vocabulary)
        found = truth_count = 0
        for name, words, signal in utterances[:10]:
            fde.index_video(signal)
            truth_count += sum(words.count(k) for k in ("net", "volley", "rally"))
        for event in fde.model.events:
            if event.label in ("mention:net", "mention:volley", "mention:rally"):
                found += 1
        return fde, found, truth_count

    fde, found, truth_count = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "E11: interview FDE mention events (10 interviews)",
        ["metric", "value"],
        [
            ["true net/volley/rally mentions", truth_count],
            ["mention events extracted", found],
        ],
    )
    assert found >= truth_count * 0.9

    # Incremental revalidation works identically to the video FDE.
    fde.registry.bump_version("mentions")
    report = fde.revalidate_all()
    assert set(report.executed) == {"mentions"}
