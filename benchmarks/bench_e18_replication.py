"""E18 — replicated shard serving: availability under replica loss.

E17 priced shard loss honestly: a killed worker costs coverage until
its slice is rebuilt.  Replication buys that coverage back — each
shard is a group of byte-identical workers, reads fail over and hedge
across siblings, and rebuilt replicas rejoin only generation-aligned.
This experiment kills **one replica in every group mid-soak** and
gates the availability claim:

- **Zero loss.**  Every answer during the soak stays complete,
  labeled, and byte-identical to the unsharded service — no rejected
  queries, no unlabeled subsets, no partial coverage.  A single
  replica death per group is invisible to callers.
- **Recovery.**  Every killed replica is rebuilt and back in rotation
  (per-replica health: alive, in-rotation, generation-aligned) before
  the soak ends.
- **Bounded tail.**  The fan-out p99 stays bounded while failover and
  hedging do their work.

The CI gate runs this module with ``--benchmark-json`` and requires
``rejected``, ``unlabeled``, ``coverage_loss``, ``mismatches`` and
``not_rejoined`` to be zero, and bounds ``fanout_p99_ms``, via
``check_regression.py``.
"""

import time

from benchmarks.conftest import print_table
from repro.dataset import build_australian_open
from repro.faults import ShardFaultPlan, ShardFaultSpec
from repro.library import (
    DigitalLibraryEngine,
    LibraryQuery,
    LibrarySearchService,
)
from repro.library.sharding import ShardedSearchService, ShardingConfig

SEED = 4321
DATASET_ARGS = {"video_shots": 3}  # cheap videos; identical for every service
N_VIDEOS = 8
N_SHARDS = 2
N_REPLICAS = 2
BUDGET_S = 5.0
P99_BOUND_MS = 2000.0  # failover within the budget, far under it

MIX = [
    LibraryQuery(top_n=100),
    LibraryQuery(event="rally"),
    LibraryQuery(event="net_play", text="approach the net"),
    LibraryQuery(player={"gender": "female"}, event="service"),
    LibraryQuery(sequence=("service", "rally"), within=500),
    LibraryQuery(text="champion wins in straight sets"),
]

_state: dict = {}


def _dataset():
    if "dataset" not in _state:
        _state["dataset"] = build_australian_open(seed=SEED, **DATASET_ARGS)
    return _state["dataset"]


def _names() -> list[str]:
    return [plan.name for plan in _dataset().video_plans[:N_VIDEOS]]


def _reference() -> dict[int, list]:
    """Unsharded results for the mix — the byte-identity baseline."""
    if "reference" not in _state:
        engine = DigitalLibraryEngine(_dataset())
        service = LibrarySearchService(engine)
        for name in _names():
            service.index_plan(engine.indexer.plan_named(name))
        _state["reference"] = {
            id(query): service.search(query).results for query in MIX
        }
    return _state["reference"]


def _kill_plan() -> ShardFaultPlan:
    """One replica killed per group, staggered a few queries apart."""
    return ShardFaultPlan(
        specs=(
            ShardFaultSpec(shard=0, replica=1, mode="kill", after=2),
            ShardFaultSpec(shard=1, replica=0, mode="kill", after=4),
        )
    )


def test_e18_replica_kill_soak(benchmark):
    """Timed kernel: the query mix soaked while one replica per group dies.

    Gated metrics: ``rejected`` / ``unlabeled`` / ``coverage_loss`` /
    ``mismatches`` (all must be zero — replica death is invisible),
    ``not_rejoined`` (killed replicas back in rotation before the soak
    ends — must be zero) and ``fanout_p99_ms``.
    """
    reference = _reference()
    config = ShardingConfig(
        n_shards=N_SHARDS,
        replication=N_REPLICAS,
        budget_seconds=BUDGET_S,
        quarantine_cooldown=0.2,
        probe_interval=0.05,
        hedge_min_seconds=0.1,
    )
    counters = {
        "rejected": 0,
        "unlabeled": 0,
        "coverage_loss": 0,
        "mismatches": 0,
    }
    latencies: list[float] = []

    with ShardedSearchService(
        _names(),
        seed=SEED,
        config=config,
        fault_plan=_kill_plan(),
        dataset_args=DATASET_ARGS,
    ) as service:

        def run() -> None:
            for query in MIX:
                served = service.search(query, bypass_cache=True)
                latencies.append(served.seconds)
                if served.rejected:
                    counters["rejected"] += 1
                coverage = served.coverage
                if sorted(coverage.responded + coverage.missing) != list(
                    range(N_SHARDS)
                ):
                    counters["unlabeled"] += 1
                if not coverage.complete:
                    counters["coverage_loss"] += 1
                if served.results != reference[id(query)]:
                    counters["mismatches"] += 1

        benchmark.pedantic(run, rounds=5, iterations=1)

        # Both kills must actually have been delivered for the soak to
        # have tested anything.
        stats = service.stats()
        assert stats.restarts >= 1 or any(
            not rep.alive for row in stats.shards for rep in row.replicas
        ), "no replica died during the soak"

        # Recovery: every killed replica rebuilt, generation-aligned,
        # and back in rotation before the soak ends.
        deadline = time.monotonic() + 120.0
        not_rejoined: list[str] = []
        while time.monotonic() < deadline:
            rows = service.stats().shards
            not_rejoined = [
                f"{row.shard}.{rep.replica}"
                for row in rows
                for rep in row.replicas
                if not (rep.alive and rep.in_rotation)
            ]
            if not not_rejoined:
                break
            time.sleep(0.1)
        stats = service.stats()

    latencies.sort()
    rank = max(1, -(-len(latencies) * 99 // 100))
    p99_ms = latencies[rank - 1] * 1e3
    benchmark.extra_info.update(counters)
    benchmark.extra_info["not_rejoined"] = len(not_rejoined)
    benchmark.extra_info["restarts"] = stats.restarts
    benchmark.extra_info["failovers"] = stats.failovers
    benchmark.extra_info["hedges"] = stats.hedges
    benchmark.extra_info["fanout_p99_ms"] = round(p99_ms, 2)
    row = [
        len(latencies),
        f"{p99_ms:.2f}",
        counters["coverage_loss"],
        stats.restarts,
        stats.failovers,
    ]
    print_table(
        "E18 replica-kill soak",
        ["requests", "p99 ms", "coverage loss", "restarts", "failovers"],
        [row],
    )
    assert counters["rejected"] == 0
    assert counters["unlabeled"] == 0
    assert counters["coverage_loss"] == 0
    assert counters["mismatches"] == 0
    assert not_rejoined == [], f"still out of rotation: {not_rejoined}"
    assert p99_ms <= P99_BOUND_MS


def test_e18_group_commit_barrier():
    """Ground truth: writes land on every replica, generation-aligned."""
    config = ShardingConfig(
        n_shards=N_SHARDS, replication=N_REPLICAS, budget_seconds=BUDGET_S
    )
    names = _names()
    with ShardedSearchService(
        [], seed=SEED, config=config, dataset_args=DATASET_ARGS
    ) as service:
        result = service.index_videos(names)
        assert result.ok, result.failed_shards
        for outcome in result.outcomes.values():
            assert outcome.replicas_committed == tuple(range(N_REPLICAS))
        for row in service.stats().shards:
            for rep in row.replicas:
                assert rep.generation == row.generation
