"""E12 — indexing throughput and completeness under injected failures.

Quantifies what the fault-tolerance runtime buys at collection scale:
with detector faults injected at increasing rates (the fault-injection
harness of :mod:`repro.faults`), how much indexing throughput survives
and how much meta-data the library keeps, per isolation policy?

Expected shape: under ``skip_subtree``, every video still commits at
every failure rate — meta-data completeness degrades gracefully with
the rate instead of dropping to zero — while ``fail_fast`` loses whole
videos.  Transient faults are fully absorbed by retries.
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.faults import FaultPlan
from repro.grammar.runtime import (
    IsolationPolicy,
    PermanentDetectorError,
    RunPolicy,
    TransientDetectorError,
)
from repro.grammar.tennis import build_tennis_fde
from repro.video.generator import BroadcastConfig, BroadcastGenerator

N_VIDEOS = 4
DETECTORS = ("segment", "tennis", "shape", "rules")
RATES = (0.0, 0.15, 0.35, 0.6)

# No real sleeping in a benchmark: retries back off by zero seconds.
SKIP_POLICY = RunPolicy(
    isolation=IsolationPolicy.SKIP_SUBTREE, max_retries=2, backoff_base=0.0
)


@pytest.fixture(scope="module")
def clips():
    generator = BroadcastGenerator(BroadcastConfig(), seed=1212)
    return [generator.generate(6, name=f"e12_video_{i}")[0] for i in range(N_VIDEOS)]


def _index_under_faults(clips, rate, error, times, policy):
    """Index all clips with a sampled fault plan; returns run metrics."""
    fde = build_tennis_fde(policy=policy)
    plan = FaultPlan.random(
        detectors=list(DETECTORS),
        videos=[clip.name for clip in clips],
        rate=rate,
        seed=11,
        error=error,
        times=times,
    )
    injector = plan.install(fde.registry)
    committed = 0
    start = time.perf_counter()
    for clip in clips:
        try:
            fde.index_video(clip)
            committed += 1
        except Exception:
            pass  # fail_fast rollback: the video is lost, the batch goes on
    elapsed = time.perf_counter() - start
    reports = [fde.health_of(name) for name in fde.indexed_videos]
    completeness = (
        sum(r.completeness for r in reports) / len(reports) if reports else 0.0
    )
    return {
        "elapsed": elapsed,
        "committed": committed,
        "completeness": completeness,
        "retries": sum(r.total_retries for r in reports),
        "events": fde.model.counts()["event"],
        "injected": injector.injected,
    }


def test_e12_completeness_vs_failure_rate(benchmark, clips):
    """Permanent faults, skip_subtree: graceful meta-data degradation."""

    def evaluate():
        return [
            (
                rate,
                _index_under_faults(
                    clips, rate, PermanentDetectorError, None, SKIP_POLICY
                ),
            )
            for rate in RATES
        ]

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    baseline_events = results[0][1]["events"]
    rows = [
        [
            f"{rate:.0%}",
            run["injected"],
            f"{run['committed']}/{N_VIDEOS}",
            f"{run['completeness']:.0%}",
            f"{run['events'] / max(baseline_events, 1):.0%}",
            f"{N_VIDEOS / max(run['elapsed'], 1e-9):.1f}/s",
        ]
        for rate, run in results
    ]
    print_table(
        f"E12: degraded indexing under permanent faults ({N_VIDEOS} videos, skip_subtree)",
        ["fault rate", "injected", "committed", "completeness", "events kept", "throughput"],
        rows,
    )
    by_rate = dict(results)
    # No faults: full meta-data.
    assert by_rate[0.0]["completeness"] == 1.0
    assert by_rate[0.0]["injected"] == 0
    # Every video commits at every rate — that is the tentpole property.
    assert all(run["committed"] == N_VIDEOS for _, run in results)
    # Same sampler seed => fault sets nest as the rate grows, so
    # completeness is monotone non-increasing.
    completeness = [run["completeness"] for _, run in results]
    assert all(b <= a + 1e-9 for a, b in zip(completeness, completeness[1:]))
    assert by_rate[RATES[-1]]["completeness"] < 1.0


def test_e12_transient_faults_absorbed_by_retries(benchmark, clips):
    """Transient faults (fail once) cost retries, not meta-data."""

    def evaluate():
        return _index_under_faults(
            clips, 0.5, TransientDetectorError, 1, SKIP_POLICY
        )

    run = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(
        f"\nE12 transient: {run['injected']} faults injected, "
        f"{run['retries']} retries, completeness={run['completeness']:.0%}"
    )
    assert run["injected"] > 0
    assert run["retries"] >= run["injected"]
    assert run["completeness"] == 1.0
    assert run["committed"] == N_VIDEOS


def test_e12_fail_fast_loses_videos(benchmark, clips):
    """The historical policy drops whole videos where skip_subtree keeps them."""
    policy = RunPolicy(isolation=IsolationPolicy.FAIL_FAST, backoff_base=0.0)

    def evaluate():
        return _index_under_faults(clips, 0.35, PermanentDetectorError, None, policy)

    run = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    skip_run = _index_under_faults(
        clips, 0.35, PermanentDetectorError, None, SKIP_POLICY
    )
    print(
        "\nE12 fail_fast vs skip_subtree at 35% faults: "
        f"committed {run['committed']} vs {skip_run['committed']} videos, "
        f"events {run['events']} vs {skip_run['events']}"
    )
    assert run["committed"] < N_VIDEOS
    assert skip_run["committed"] == N_VIDEOS
    assert skip_run["events"] >= run["events"]
