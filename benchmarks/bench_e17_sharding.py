"""E17 — sharded scatter-gather serving: throughput, exactness, loss.

The catalog is partitioned across shard worker processes; this
experiment measures the three claims the sharded layer makes:

- **Near-linear indexing.**  A batch indexes across shards in
  parallel; the speedup over one shard must stay within 2x of the
  machine's ideal (``min(shards, cores)`` — a single-core runner
  cannot parallelize processes, and the gate is honest about it).
- **Exact merge.**  With every shard healthy, the fan-out's merged
  top-N is byte-identical to the unsharded service, and the fan-out
  p99 stays bounded.
- **Typed loss.**  Killing a shard mid-serving yields answers labeled
  ``coverage = (N-1)/N`` within the deadline — never an unlabeled
  subset, never an exception — and the restarted worker restores full
  coverage.

The CI gate runs this module with ``--benchmark-json`` and bounds
``parallel_deficit``, ``fanout_p99_ms``, ``mismatches`` and
``unlabeled`` via ``check_regression.py``.
"""

import os
import time

from benchmarks.conftest import print_table
from repro.dataset import build_australian_open
from repro.faults import ShardFaultPlan
from repro.library import (
    DigitalLibraryEngine,
    LibraryQuery,
    LibrarySearchService,
)
from repro.library.sharding import ShardedSearchService, ShardingConfig

SEED = 4321
DATASET_ARGS = {"video_shots": 3}  # cheap videos; identical for every service
N_VIDEOS = 8
N_SHARDS = 4
BUDGET_S = 2.0
P99_BOUND_MS = 500.0

MIX = [
    LibraryQuery(top_n=100),
    LibraryQuery(event="rally"),
    LibraryQuery(event="net_play", text="approach the net"),
    LibraryQuery(player={"gender": "female"}, event="service"),
    LibraryQuery(sequence=("service", "rally"), within=500),
    LibraryQuery(text="champion wins in straight sets"),
]

_state: dict = {}


def _dataset():
    if "dataset" not in _state:
        _state["dataset"] = build_australian_open(seed=SEED, **DATASET_ARGS)
    return _state["dataset"]


def _names() -> list[str]:
    return [plan.name for plan in _dataset().video_plans[:N_VIDEOS]]


def _reference() -> dict[int, list]:
    """Unsharded results for the mix — the byte-identity baseline."""
    if "reference" not in _state:
        engine = DigitalLibraryEngine(_dataset())
        service = LibrarySearchService(engine)
        for name in _names():
            service.index_plan(engine.indexer.plan_named(name))
        _state["reference"] = {
            id(query): service.search(query).results for query in MIX
        }
    return _state["reference"]


def _config(n_shards: int, **overrides) -> ShardingConfig:
    options = {"n_shards": n_shards, "budget_seconds": BUDGET_S}
    options.update(overrides)
    return ShardingConfig(**options)


def _timed_batch_index(n_shards: int) -> float:
    """Seconds to index the batch through *n_shards* shards (spawn excluded)."""
    with ShardedSearchService(
        [], seed=SEED, config=_config(n_shards), dataset_args=DATASET_ARGS
    ) as service:
        started = time.perf_counter()
        service.index_videos(_names())
        return time.perf_counter() - started


def test_e17_sharded_indexing(benchmark):
    """Timed kernel: the 4-shard batch index; gated on parallel deficit.

    ``parallel_deficit`` = ideal speedup / achieved speedup, where
    ideal = ``min(N_SHARDS, cores)``.  A deficit of 1.0 is perfect
    scaling; the gate allows 2.0 (>= 50% parallel efficiency), which a
    single-core runner passes at deficit ~1 because its ideal is 1.
    """
    sequential_s = _timed_batch_index(1)
    sharded_s: list[float] = []

    def run() -> float:
        elapsed = _timed_batch_index(N_SHARDS)
        sharded_s.append(elapsed)
        return elapsed

    benchmark.pedantic(run, rounds=1, iterations=1)
    best = min(sharded_s)
    speedup = sequential_s / best if best > 0 else float("inf")
    ideal = min(N_SHARDS, os.cpu_count() or 1)
    deficit = ideal / speedup if speedup > 0 else float("inf")
    benchmark.extra_info["sequential_s"] = round(sequential_s, 3)
    benchmark.extra_info["sharded_s"] = round(best, 3)
    benchmark.extra_info["indexing_speedup"] = round(speedup, 3)
    benchmark.extra_info["ideal_speedup"] = ideal
    benchmark.extra_info["parallel_deficit"] = round(deficit, 3)
    print_table(
        "E17 batch indexing (8 videos)",
        ["shards", "seconds", "speedup"],
        [[1, f"{sequential_s:.2f}", "1.00"], [N_SHARDS, f"{best:.2f}", f"{speedup:.2f}"]],
    )
    assert deficit < 10.0  # sanity even without the CI gate


def test_e17_scatter_gather(benchmark):
    """Timed kernel: the full query mix fanned out, bypassing the cache.

    Gated metrics: ``mismatches`` (results differing from the
    unsharded service — must be zero), ``unlabeled`` (answers whose
    coverage does not partition the shards — must be zero) and
    ``fanout_p99_ms``.
    """
    reference = _reference()
    rows: list[list] = []
    counters = {"mismatches": 0, "unlabeled": 0}
    latencies: list[float] = []

    with ShardedSearchService(
        _names(), seed=SEED, config=_config(N_SHARDS), dataset_args=DATASET_ARGS
    ) as service:

        def run() -> None:
            for query in MIX:
                served = service.search(query, bypass_cache=True)
                latencies.append(served.seconds)
                if served.results != reference[id(query)]:
                    counters["mismatches"] += 1
                coverage = served.coverage
                if sorted(coverage.responded + coverage.missing) != list(
                    range(N_SHARDS)
                ):
                    counters["unlabeled"] += 1

        benchmark.pedantic(run, rounds=5, iterations=1)

    latencies.sort()
    rank = max(1, -(-len(latencies) * 99 // 100))
    p99_ms = latencies[rank - 1] * 1e3
    benchmark.extra_info["mismatches"] = counters["mismatches"]
    benchmark.extra_info["unlabeled"] = counters["unlabeled"]
    benchmark.extra_info["fanout_p99_ms"] = round(p99_ms, 2)
    rows.append([len(latencies), f"{p99_ms:.2f}", counters["mismatches"]])
    print_table(
        "E17 scatter-gather fan-out",
        ["requests", "p99 ms", "mismatches"],
        rows,
    )
    assert counters["mismatches"] == 0
    assert counters["unlabeled"] == 0
    assert p99_ms <= P99_BOUND_MS


def test_e17_shard_loss_is_typed():
    """Ground truth: a killed shard degrades to labeled partial, then heals."""
    plan = ShardFaultPlan.dead(shard=1, after=1)
    config = _config(
        2, quarantine_cooldown=0.2, probe_interval=0.05, budget_seconds=BUDGET_S
    )
    names = _names()[:4]
    with ShardedSearchService(
        names, seed=SEED, config=config, fault_plan=plan, dataset_args=DATASET_ARGS
    ) as service:
        warm = service.search(MIX[1], bypass_cache=True)
        assert warm.coverage.complete

        killed = service.search(MIX[1], bypass_cache=True)
        assert killed.coverage.label == "1/2"
        assert killed.coverage.missing == (1,)
        assert not killed.rejected
        assert killed.seconds < BUDGET_S

        deadline = time.monotonic() + 120.0
        recovered = killed
        while time.monotonic() < deadline and not recovered.coverage.complete:
            time.sleep(0.1)
            recovered = service.search(MIX[1], bypass_cache=True)
        assert recovered.coverage.complete
        assert recovered.results == warm.results
        assert service.stats().shards[1].restarts == 1
