"""E3 — shot classification.

Regenerates the 4x4 confusion matrix of the segment detector's
classifier (rule-based, the paper's method) on labelled synthetic shots,
compares against the Gaussian naive-Bayes variant, and runs the E3a
feature ablation (dropping one classification cue at a time).

Expected shape: near-diagonal confusion for the rule classifier; each
dropped cue costs accuracy for exactly the category it separates.
"""


from benchmarks.conftest import print_table
from repro.shots.boundary import TwinComparisonDetector
from repro.shots.classify import (
    NaiveBayesShotClassifier,
    RuleBasedShotClassifier,
    ShotFeatureExtractor,
)
from repro.shots.evaluate import category_accuracy, confusion_matrix
from repro.shots.segmenter import SegmentDetector
from repro.video.generator import BroadcastConfig, BroadcastGenerator
from repro.video.shots import ShotCategory


def _labelled_features(seed, n_broadcasts=3, shots_per=10):
    """Shot features + truth labels from generated broadcasts."""
    extractor = ShotFeatureExtractor()
    features, labels = [], []
    for b in range(n_broadcasts):
        generator = BroadcastGenerator(
            BroadcastConfig(gradual_fraction=0.0), seed=seed + b
        )
        clip, truth = generator.generate(shots_per)
        for shot in truth.shots:
            features.append(extractor.extract_from_clip(clip, shot.start, shot.stop))
            labels.append(shot.category)
    return features, labels


def test_e3_confusion_matrix(benchmark, bench_broadcast):
    clip, truth = bench_broadcast
    segmenter = SegmentDetector(boundary_detector=TwinComparisonDetector())
    detected = benchmark.pedantic(segmenter.detect, args=(clip,), rounds=1, iterations=1)
    matrix = confusion_matrix(detected, truth, ShotCategory.ALL)
    rows = [
        [truth_cat] + list(matrix[i])
        for i, truth_cat in enumerate(ShotCategory.ALL)
    ]
    print_table(
        "E3: frame-level confusion matrix (rule classifier), rows = truth",
        ["truth \\ predicted"] + list(ShotCategory.ALL),
        rows,
    )
    accuracy = category_accuracy(matrix)
    print(f"overall frame accuracy: {accuracy:.3f}")
    assert accuracy > 0.9


def test_e3_rule_vs_naive_bayes(benchmark):
    def build():
        return (
            _labelled_features(seed=7000, n_broadcasts=4),
            _labelled_features(seed=8000, n_broadcasts=2),
        )

    (train_x, train_y), (test_x, test_y) = benchmark.pedantic(build, rounds=1, iterations=1)

    rule = RuleBasedShotClassifier()
    bayes = NaiveBayesShotClassifier().fit(train_x, train_y)

    rows = []
    for name, classify in (("rule-based", rule.classify), ("naive-bayes", bayes.classify)):
        correct = sum(classify(x) == y for x, y in zip(test_x, test_y))
        rows.append([name, len(test_x), f"{correct / len(test_x):.3f}"])
    print_table("E3: classifier comparison (shot accuracy)", ["classifier", "shots", "accuracy"], rows)

    rule_acc = sum(rule.classify(x) == y for x, y in zip(test_x, test_y)) / len(test_x)
    bayes_acc = sum(bayes.classify(x) == y for x, y in zip(test_x, test_y)) / len(test_x)
    assert rule_acc > 0.9
    assert bayes_acc >= 0.75


def test_e3a_feature_ablation(benchmark):
    """Dropping a rule removes exactly the categories it separates."""
    test_x, test_y = benchmark.pedantic(
        _labelled_features, kwargs={"seed": 9000, "n_broadcasts": 2}, rounds=1, iterations=1
    )
    variants = {
        "full": RuleBasedShotClassifier(),
        "no court rule": RuleBasedShotClassifier(court_coverage_min=None),
        "no skin rule": RuleBasedShotClassifier(skin_ratio_min=None),
        "no entropy rule": RuleBasedShotClassifier(entropy_min=None),
    }
    rows = []
    accuracies = {}
    for name, classifier in variants.items():
        correct = sum(classifier.classify(x) == y for x, y in zip(test_x, test_y))
        accuracies[name] = correct / len(test_x)
        rows.append([name, f"{accuracies[name]:.3f}"])
    print_table("E3a: rule ablation (shot accuracy)", ["variant", "accuracy"], rows)
    assert accuracies["full"] >= max(
        accuracies["no court rule"], accuracies["no skin rule"], accuracies["no entropy rule"]
    )
    # Each category's cue matters: every ablation hurts on a mixed corpus.
    assert accuracies["no court rule"] < accuracies["full"]


def test_e3_feature_extraction_speed(benchmark, bench_broadcast):
    """Timed kernel: feature extraction for one 50-frame shot."""
    clip, truth = bench_broadcast
    shot = next(s for s in truth.shots if s.length >= 30)
    extractor = ShotFeatureExtractor()
    features = benchmark(extractor.extract_from_clip, clip, shot.start, shot.stop)
    assert features.entropy > 0
