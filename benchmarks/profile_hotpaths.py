"""Profile the E6/E9 hot paths and emit flamegraph + stats artifacts.

Thin driver over ``repro profile``: profiles packed top-N retrieval on
the replicated tournament corpus (E6) and the tennis FDE pipeline on
the reference broadcast (E9), writing ``<target>.svg`` flamegraphs and
``<target>.json`` stats bundles.  The CI benchmark gate runs this after
the benchmarks and uploads the output directory as an artifact, so
every gate run keeps a picture of where the time went.

Usage::

    python benchmarks/profile_hotpaths.py [--target e6|e9|all] [--out DIR]
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["profile", *sys.argv[1:]]))
