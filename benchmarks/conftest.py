"""Shared benchmark fixtures.

Benchmarks regenerate the experiment tables of EXPERIMENTS.md; each
module prints its rows (run with ``-s`` to see them) and times its
central kernel with pytest-benchmark.  Expensive inputs (broadcasts,
the tournament dataset) are built once per session.
"""

from __future__ import annotations

import pytest

from repro.dataset import build_australian_open
from repro.video.generator import BroadcastConfig, BroadcastGenerator


@pytest.fixture(scope="session")
def bench_broadcast():
    """The reference broadcast used by E2/E3/E9: 16 shots, 25% gradual."""
    generator = BroadcastGenerator(BroadcastConfig(gradual_fraction=0.25), seed=1001)
    return generator.generate(16, name="bench_broadcast")


@pytest.fixture(scope="session")
def bench_tennis_clips():
    """Per-script tennis clips for E4/E5."""
    generator = BroadcastGenerator(seed=2002)
    return {
        kind: generator.tennis_clip(script=kind, n_frames=60, name=f"bench_{kind}")
        for kind in ("rally", "net_approach", "service", "baseline_play")
    }


@pytest.fixture(scope="session")
def bench_dataset():
    """The tournament dataset for E6/E7/E10."""
    return build_australian_open(seed=1234, video_shots=6)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render one experiment table to stdout."""
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
