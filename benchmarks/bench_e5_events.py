"""E5 — event recognition: rules vs HMM.

Regenerates the event-recognition tables of the companion paper
(Petković & Jonker 2001): shot-level accuracy of the white-box
spatio-temporal rules, the grammar-interpreted rules, and the stochastic
(HMM) recogniser, as trajectory noise grows; plus per-event
precision/recall of the rule intervals and the E5a HMM state-count
sweep.

Expected shape: rules and HMM are both near-perfect on clean
trajectories; as observation noise grows the hard thresholds of the
rules break earlier than the HMM's probabilistic scoring.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.defaults import tennis_grammar
from repro.core.inference import GrammarEventDetector
from repro.events.quantize import CourtZones, TrajectoryQuantizer
from repro.events.recognizer import (
    CombinedRecognizer,
    RuleBasedRecognizer,
    train_hmm_recognizer,
)
from repro.events.rules import RuleEventDetector
from repro.tracking.court_model import CourtColorModel
from repro.tracking.segmentation import court_bounds
from repro.tracking.tracker import PlayerTracker
from repro.video.generator import BroadcastGenerator

SCRIPT_TO_LABEL = {
    "rally": "rally",
    "net_approach": "net_play",
    "service": "service",
    "baseline_play": "baseline_play",
}
NOISE_LEVELS = (0.0, 2.0, 4.0)


@pytest.fixture(scope="module")
def corpus():
    """Tracked trajectories: 6 train + 4 test per label, with zones."""
    generator = BroadcastGenerator(seed=4004)
    tracker = PlayerTracker()
    zones = None
    train = {label: [] for label in SCRIPT_TO_LABEL.values()}
    test = []
    for i in range(40):
        script = list(SCRIPT_TO_LABEL)[i % 4]
        clip, _truth = generator.tennis_clip(script=script, n_frames=60)
        trajectory = tracker.track(list(clip)).positions
        if zones is None:
            model = CourtColorModel.estimate(clip[0])
            zones = CourtZones.from_court_bounds(court_bounds(clip[0], model))
        if i < 24:
            train[SCRIPT_TO_LABEL[script]].append([p for p in trajectory if p])
        else:
            test.append((SCRIPT_TO_LABEL[script], trajectory))
    return zones, train, test


def _perturb(trajectory, sigma, rng):
    """Add observation noise, as a worse tracker would produce."""
    out = []
    for position in trajectory:
        if position is None:
            out.append(None)
        else:
            out.append(
                (position[0] + rng.normal(0, sigma), position[1] + rng.normal(0, sigma))
            )
    return out


def _grammar_classify(detector, trajectory):
    events = detector.detect(trajectory)
    coverage = {}
    for event in events:
        if event.label in SCRIPT_TO_LABEL.values():
            coverage[event.label] = coverage.get(event.label, 0) + event.length
    if "net_play" in coverage:
        return "net_play"
    return max(coverage, key=coverage.get) if coverage else None


def test_e5_rules_vs_hmm_noise_sweep(benchmark, corpus):
    zones, train, test = corpus
    rng = np.random.default_rng(99)
    rule = RuleBasedRecognizer(RuleEventDetector(zones))
    grammar_detector = GrammarEventDetector(tennis_grammar(), zones)
    hmm = train_hmm_recognizer(TrajectoryQuantizer(zones), train, n_states=3)
    combined = CombinedRecognizer(rule, hmm)

    def sweep():
        out = {}
        for sigma in NOISE_LEVELS:
            noisy = [(label, _perturb(t, sigma, rng)) for label, t in test]
            rule_acc = np.mean([rule.classify(t) == label for label, t in noisy])
            grammar_acc = np.mean(
                [_grammar_classify(grammar_detector, t) == label for label, t in noisy]
            )
            hmm_acc = np.mean([hmm.classify(t) == label for label, t in noisy])
            combined_acc = np.mean(
                [combined.classify(t) == label for label, t in noisy]
            )
            out[sigma] = (rule_acc, grammar_acc, hmm_acc, combined_acc)
        return out

    accuracies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [sigma, f"{r:.2f}", f"{g:.2f}", f"{h:.2f}", f"{c:.2f}"]
        for sigma, (r, g, h, c) in accuracies.items()
    ]
    print_table(
        "E5: shot-level event accuracy vs trajectory noise",
        ["noise sigma", "rules", "grammar rules", "HMM", "combined"],
        rows,
    )
    clean = accuracies[0.0]
    assert clean[0] >= 0.75 and clean[2] >= 0.75
    # The stochastic recogniser holds up at least as well under heavy noise.
    noisiest = accuracies[NOISE_LEVELS[-1]]
    assert noisiest[2] >= noisiest[0] - 0.15
    # The integration never falls below both of its components.
    for sigma in NOISE_LEVELS:
        r, _g, h, c = accuracies[sigma]
        assert c >= min(r, h) - 1e-9


def test_e5_interval_precision_recall(benchmark, corpus):
    """Per-label interval P/R of the rule detector on tracked shots."""
    zones, _train, _test = corpus
    generator = BroadcastGenerator(seed=6006)
    tracker = PlayerTracker()
    detector = RuleEventDetector(zones)

    def evaluate():
        per_label = {label: [0, 0, 0] for label in SCRIPT_TO_LABEL.values()}
        for i in range(12):
            script = list(SCRIPT_TO_LABEL)[i % 4]
            clip, truth = generator.tennis_clip(script=script, n_frames=60)
            trajectory = tracker.track(list(clip)).positions
            detected = detector.detect(trajectory)
            for label in per_label:
                true_events = [e for e in truth.events if e.label == label]
                found = [e for e in detected if e.label == label]
                matched_truth = set()
                for event in found:
                    hit = None
                    for k, true_event in enumerate(true_events):
                        if k in matched_truth:
                            continue
                        overlap = min(event.stop, true_event.stop) - max(
                            event.start, true_event.start
                        )
                        if overlap > 0.3 * (true_event.stop - true_event.start):
                            hit = k
                            break
                    if hit is None:
                        per_label[label][1] += 1
                    else:
                        matched_truth.add(hit)
                        per_label[label][0] += 1
                per_label[label][2] += len(true_events) - len(matched_truth)
        return per_label

    per_label = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = []
    for label, (tp, fp, fn) in per_label.items():
        precision = tp / (tp + fp) if tp + fp else 1.0
        recall = tp / (tp + fn) if tp + fn else 1.0
        rows.append([label, tp, fp, fn, f"{precision:.2f}", f"{recall:.2f}"])
    print_table(
        "E5: rule-detector interval quality per event",
        ["event", "tp", "fp", "fn", "P", "R"],
        rows,
    )
    # Net play, the query-critical event, is reliably recovered.
    net_row = next(r for r in rows if r[0] == "net_play")
    assert float(net_row[5]) >= 0.75


def test_e5a_hmm_state_sweep(benchmark, corpus):
    zones, train, test = corpus

    def sweep():
        out = []
        for n_states in (2, 3, 5):
            recognizer = train_hmm_recognizer(
                TrajectoryQuantizer(zones), train, n_states=n_states
            )
            accuracy = np.mean([recognizer.classify(t) == label for label, t in test])
            out.append([n_states, f"{accuracy:.2f}"])
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("E5a: HMM hidden-state count", ["states", "accuracy"], rows)
    assert max(float(r[1]) for r in rows) >= 0.75


def test_e5_hmm_training_speed(benchmark, corpus):
    """Timed kernel: Baum-Welch training of one event model."""
    zones, train, _test = corpus
    quantizer = TrajectoryQuantizer(zones)
    sequences = [quantizer.symbols(t) for t in train["rally"]]

    def fit():
        from repro.events.hmm import DiscreteHMM

        model = DiscreteHMM(3, 9, rng=np.random.default_rng(0))
        model.fit(sequences, n_iterations=10)
        return model

    model = benchmark(fit)
    assert model.log_likelihood(sequences[0]) < 0
