"""E16 — serving resilience: deadlines, admission, graceful degradation.

PR 4 made query serving fast; this experiment measures what it does
when the work *cannot* fit the deadline.  A chaos fault injects more
latency into the text stage than the whole query budget allows, and a
thread burst overruns the admission capacity — the service must shed
fast, degrade **labeled**, keep the served p99 within twice the budget,
and trip the text stage's circuit breaker instead of paying the fault
on every request.

The CI benchmark-regression gate runs this module with
``--benchmark-json`` and fails when the burst's ``shed_rate`` or
``p99_ms`` (recorded as benchmark ``extra_info``) drift past their
bounds, or when any result is unlabeled.
"""

import threading
import time

from benchmarks.conftest import print_table
from repro.dataset import build_australian_open
from repro.faults import QueryFaultPlan
from repro.library import (
    DigitalLibraryEngine,
    LibraryQuery,
    LibrarySearchService,
    ResilienceConfig,
)

N_VIDEOS = 2
BUDGET_S = 0.050
FAULT_S = 0.060  # > BUDGET_S: every faulted text stage blows the deadline
N_THREADS = 8
REQUESTS_PER_THREAD = 15
MAX_SHED_RATE = 0.60
P99_BOUND_S = 2 * BUDGET_S

MIX = [
    LibraryQuery(event="net_play", text="approach the net"),
    LibraryQuery(text="champion wins in straight sets"),
    LibraryQuery(player={"gender": "female"}, event="service", text="second serve"),
    LibraryQuery(event="rally", text="baseline rally"),
]

_state: dict = {}


def _engine() -> DigitalLibraryEngine:
    if "engine" not in _state:
        dataset = build_australian_open(seed=4321, video_shots=3)
        engine = DigitalLibraryEngine(dataset)
        service = LibrarySearchService(
            engine,
            resilience=ResilienceConfig(
                max_concurrent=2,
                max_queue=4,
                queue_timeout=0.02,
                budget_seconds=BUDGET_S,
                breaker_failure_threshold=3,
                breaker_cooldown=0.25,
            ),
        )
        for plan in dataset.video_plans[:N_VIDEOS]:
            service.index_plan(plan)
        _state["engine"] = engine
        _state["service"] = service
    return _state["engine"]


def _service() -> LibrarySearchService:
    _engine()
    return _state["service"]


def _run_burst() -> dict:
    """One thread burst against the faulted service; returns outcome counts.

    Every request bypasses the cache, so each admitted query really
    evaluates (and really meets the injected fault); ``unlabeled``
    counts results whose provenance flags contradict ground truth.
    """
    service = _service()
    outcomes = {
        "requests": 0,
        "served": 0,
        "rejected": 0,
        "degraded": 0,
        "stale": 0,
        "unlabeled": 0,
    }
    latencies: list[float] = []
    lock = threading.Lock()

    def worker(worker_id: int) -> None:
        for step in range(REQUESTS_PER_THREAD):
            query = MIX[(worker_id + step) % len(MIX)]
            pre_gen = service.generation
            served = service.search(query, bypass_cache=True)
            with lock:
                outcomes["requests"] += 1
                if served.rejected:
                    outcomes["rejected"] += 1
                else:
                    outcomes["served"] += 1
                    latencies.append(served.seconds)
                if served.degraded:
                    outcomes["degraded"] += 1
                if served.stale:
                    outcomes["stale"] += 1
                if (
                    (served.generation < pre_gen and not served.stale)
                    or (served.degraded and not served.skipped_stages)
                    or (served.rejected and served.results)
                ):
                    outcomes["unlabeled"] += 1

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    latencies.sort()
    if latencies:
        rank = max(1, -(-len(latencies) * 99 // 100))
        outcomes["p99_s"] = latencies[rank - 1]
    else:
        outcomes["p99_s"] = 0.0
    return outcomes


def test_e16_overload_burst(benchmark):
    """Timed kernel: a faulted thread burst; gated via extra_info.

    The gated metrics aggregate *every* round — the first round pays
    the fault until the breaker trips, later rounds ride the open
    breaker, and both regimes must stay inside the bounds.
    """
    service = _service()
    rounds: list[dict] = []

    def run() -> dict:
        outcome = _run_burst()
        rounds.append(outcome)
        return outcome

    plan = QueryFaultPlan.latency(["text_topn"], FAULT_S)
    with plan.install(service.engine):
        benchmark.pedantic(run, rounds=3, iterations=1)
    requests = sum(r["requests"] for r in rounds)
    served = sum(r["served"] for r in rounds)
    rejected = sum(r["rejected"] for r in rounds)
    degraded = sum(r["degraded"] for r in rounds)
    unlabeled = sum(r["unlabeled"] for r in rounds)
    p99_s = max(r["p99_s"] for r in rounds)
    benchmark.extra_info["shed_rate"] = round(rejected / requests, 4)
    benchmark.extra_info["degraded_rate"] = round(degraded / requests, 4)
    benchmark.extra_info["p99_ms"] = round(p99_s * 1e3, 2)
    benchmark.extra_info["unlabeled"] = unlabeled
    assert unlabeled == 0
    assert served > 0


def test_e16_invariants():
    """Ground-truth checks under fault: labels, p99 bound, breaker trips."""
    service = _service()
    engine = service.engine
    service.reset_stats()

    # Ground truth, computed with no fault installed.
    truth = {id(q): engine.search(q) for q in MIX}
    full_keys = {
        id(q): {r.scene_key() for r in results} for q, results in zip(MIX, truth.values())
    }

    plan = QueryFaultPlan.latency(["text_topn"], FAULT_S)
    with plan.install(engine):
        outcome = _run_burst()
        served_degraded = [
            service.search(q, bypass_cache=True) for q in MIX
        ]

    assert outcome["unlabeled"] == 0
    assert outcome["p99_s"] <= P99_BOUND_S, (
        f"served p99 {outcome['p99_s'] * 1e3:.1f} ms exceeds "
        f"{P99_BOUND_S * 1e3:.0f} ms (2x budget)"
    )

    # Degraded results never invent scenes: subset of the full ranking.
    for query, served in zip(MIX, served_degraded):
        if served.degraded:
            assert "text_topn" in served.skipped_stages
            keys = {r.scene_key() for r in served.results}
            assert keys <= full_keys[id(query)]

    stats = service.stats()
    assert stats.queries == stats.cache_hits + stats.cache_misses
    assert stats.degraded_served > 0
    assert stats.breaker_trips.get("text_topn", 0) >= 1, (
        "the text breaker never tripped under a permanent over-budget fault"
    )

    print_table(
        f"E16: resilience ({N_THREADS} threads x {REQUESTS_PER_THREAD} requests, "
        f"{BUDGET_S * 1e3:.0f} ms budget, {FAULT_S * 1e3:.0f} ms fault)",
        ["metric", "value"],
        [
            ["requests", str(outcome["requests"])],
            ["served", str(outcome["served"])],
            ["shed", str(outcome["rejected"])],
            ["degraded", str(outcome["degraded"])],
            ["served p99", f"{outcome['p99_s'] * 1e3:.1f} ms"],
            ["breaker trips", str(stats.breaker_trips.get("text_topn", 0))],
        ],
    )


def test_e16_disabled_resilience_identical():
    """With resilience off, serving is byte-identical to the raw engine."""
    engine = _engine()
    assert engine.stage_hook is None  # no fault leaked out of the other tests
    plain = LibrarySearchService(engine)
    for query in MIX:
        served = plain.search(query, bypass_cache=True)
        assert not served.stale and not served.degraded and not served.rejected
        assert served.results == engine.search(query)
