"""E8 — FDE incremental revalidation (Acoi's pay-off).

Regenerates the incremental-maintenance table: after a detector
implementation changes, how many detector invocations (and how much
wall time) does bringing the meta-index up to date cost, incremental vs
full re-extraction, as a function of *which* detector changed?

Expected shape: changing the leaf (rules) detector costs a tiny
fraction of a full re-run; changing the root (segment) detector
degenerates to the full cost — exactly the dependency-driven behaviour
the feature grammar enables.
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.grammar.tennis import build_tennis_fde
from repro.video.generator import BroadcastConfig, BroadcastGenerator

N_VIDEOS = 4
DETECTORS = ("rules", "shape", "tennis", "segment")


@pytest.fixture(scope="module")
def clips():
    generator = BroadcastGenerator(BroadcastConfig(), seed=8008)
    return [generator.generate(6, name=f"e8_video_{i}")[0] for i in range(N_VIDEOS)]


def _fresh_indexed_fde(clips):
    fde = build_tennis_fde()
    for clip in clips:
        fde.index_video(clip)
    return fde


def test_e8_invocations_per_changed_detector(benchmark, clips):
    def evaluate():
        out = []
        for changed in DETECTORS:
            fde = _fresh_indexed_fde(clips)
            fde.registry.bump_version(changed)
            start = time.perf_counter()
            report = fde.revalidate_all()
            elapsed = time.perf_counter() - start
            out.append(
                (
                    changed,
                    report.total_executed,
                    report.total_reused,
                    len(DETECTORS) * N_VIDEOS,
                    elapsed,
                )
            )
        return out

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = [
        [
            changed,
            executed,
            reused,
            f"{executed / full:.0%}",
            f"{elapsed * 1e3:.0f}ms",
        ]
        for changed, executed, reused, full, elapsed in results
    ]
    print_table(
        "E8: revalidation cost after changing one detector "
        f"({N_VIDEOS} videos, full run = {len(DETECTORS) * N_VIDEOS} invocations)",
        ["changed detector", "invocations", "reused", "of full", "wall time"],
        rows,
    )
    by_name = {r[0]: r for r in results}
    # Leaf change: one invocation per video.
    assert by_name["rules"][1] == N_VIDEOS
    # Root change: everything re-runs.
    assert by_name["segment"][1] == len(DETECTORS) * N_VIDEOS
    # Monotone in dependency depth.
    assert (
        by_name["rules"][1]
        <= by_name["shape"][1]
        <= by_name["tennis"][1]
        <= by_name["segment"][1]
    )


def test_e8_incremental_vs_full_walltime(benchmark, clips):
    """Wall-time: leaf revalidation vs indexing everything again."""

    def evaluate():
        fde = _fresh_indexed_fde(clips)

        start = time.perf_counter()
        fde.registry.bump_version("rules")
        fde.revalidate_all()
        incremental = time.perf_counter() - start

        start = time.perf_counter()
        _fresh_indexed_fde(clips)
        full = time.perf_counter() - start
        return incremental, full

    incremental, full = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(
        f"\nE8 wall time: incremental(rules)={incremental * 1e3:.0f}ms, "
        f"full re-extraction={full * 1e3:.0f}ms, "
        f"speedup={full / max(incremental, 1e-9):.1f}x"
    )
    assert incremental < full / 3


def test_e8_noop_revalidation_speed(benchmark, clips):
    """Timed kernel: revalidation when nothing changed (pure overhead)."""
    fde = _fresh_indexed_fde(clips)
    report = benchmark(fde.revalidate_all)
    assert report.total_executed == 0
