"""E10 — the motivating query of Section 2, end to end.

"Show me video scenes of left-handed female players who have won the
Australian Open in the past, in which they approach the net."

Regenerates the demo's headline behaviour on a small indexed library:

- correctness: every returned scene belongs to a video of a qualifying
  player and shows a net-play event; recall against video ground truth;
- the keyword-only baseline for contrast (documents, not scenes);
- query latency once the index is built.
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.library import DigitalLibraryEngine, LibraryQuery

MOTIVATING = LibraryQuery(
    player={"handedness": "left", "gender": "female", "past_winner": True},
    event="net_play",
)


@pytest.fixture(scope="module")
def engine(bench_dataset):
    """Engine with the qualifying champion's videos indexed, plus controls."""
    engine = DigitalLibraryEngine(bench_dataset)
    qualifying = {
        p.name
        for p in bench_dataset.players
        if p.gender == "female" and p.handedness == "left" and p.titles > 0
    }
    relevant = [
        plan
        for plan in bench_dataset.video_plans
        if any(name in plan.match_title for name in qualifying)
    ][:2]
    controls = [
        plan
        for plan in bench_dataset.video_plans
        if all(name not in plan.match_title for name in qualifying)
    ][:2]
    for plan in relevant + controls:
        engine.indexer.index_plan(plan)
    return engine, relevant, controls


def test_e10_motivating_query(benchmark, engine):
    eng, relevant, controls = engine
    results = benchmark.pedantic(eng.search, args=(MOTIVATING,), rounds=1, iterations=1)

    relevant_names = {plan.name for plan in relevant}
    control_names = {plan.name for plan in controls}

    rows = [
        [r.video_name[:44], f"[{r.start},{r.stop})", r.event_label, ", ".join(r.players)]
        for r in results
    ]
    print_table(
        "E10: 'scenes of left-handed female past champions approaching the net'",
        ["video", "frames", "event", "qualifying players"],
        rows,
    )

    # Correctness: scenes only from qualifying videos, all net play.
    for scene in results:
        assert scene.video_name in relevant_names
        assert scene.video_name not in control_names
        assert scene.event_label == "net_play"

    # Recall against generator truth: every true net_play interval in the
    # qualifying videos is answered by an overlapping scene.
    truth_events = []
    for plan in relevant:
        record = eng.indexer.indexed[plan.name]
        truth_events.extend(
            (plan.name, e) for e in record.truth.events if e.label == "net_play"
        )
    recovered = 0
    for video_name, true_event in truth_events:
        for scene in results:
            if scene.video_name != video_name:
                continue
            overlap = min(scene.stop, true_event.stop) - max(scene.start, true_event.start)
            if overlap > 0:
                recovered += 1
                break
    recall = recovered / len(truth_events) if truth_events else 1.0
    print(f"scene recall vs ground truth: {recall:.2f} ({recovered}/{len(truth_events)})")
    assert recall >= 0.6


def test_e10_keyword_baseline(benchmark, engine):
    """The crawler-style baseline can only return documents."""
    eng, _relevant, _controls = engine
    hits = benchmark.pedantic(
        eng.keyword_search,
        args=("left-handed female Australian Open winner approaching the net",),
        rounds=1,
        iterations=1,
    )
    rows = [
        [f"{hit.score:.2f}", eng.dataset.pages.document(hit.doc_id).name]
        for hit in hits[:5]
    ]
    print_table("E10 baseline: keyword search top pages", ["score", "page"], rows)
    # Documents, not scenes: no frame ranges, no event semantics.
    assert all(not hasattr(hit, "start") for hit in hits)


def test_e10_query_latency(benchmark, engine):
    """Timed kernel: the combined query against the built index."""
    eng, _relevant, _controls = engine
    results = benchmark(eng.search, MOTIVATING)
    assert isinstance(results, list)


def test_e10a_relational_path(benchmark, engine):
    """Ablation: the object-graph engine vs 'the database approach'.

    The relational path answers from column-store tables (scans, hash
    indexes, link-table walks) and must return identical scenes."""
    import time

    eng, _relevant, _controls = engine
    eng.build_relational()

    def compare():
        start = time.perf_counter()
        for _ in range(50):
            object_results = eng.search(MOTIVATING)
        object_time = (time.perf_counter() - start) / 50
        start = time.perf_counter()
        for _ in range(50):
            relational_results = eng.search_relational(MOTIVATING)
        relational_time = (time.perf_counter() - start) / 50
        return object_results, relational_results, object_time, relational_time

    object_results, relational_results, object_time, relational_time = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print_table(
        "E10a: object-graph vs relational evaluation",
        ["path", "scenes", "latency"],
        [
            ["object graph", len(object_results), f"{object_time * 1e6:.0f}us"],
            ["relational (column store)", len(relational_results), f"{relational_time * 1e6:.0f}us"],
        ],
    )
    assert relational_results == object_results
