"""E20 — streaming ingest: chunk-append identity, kill matrix, freshness.

The three claims the streaming layer gates in CI:

- **Batch identity**: a clip streamed in bounded chunks produces a final
  snapshot byte-identical to batch ``index_checkpointed`` over the same
  frames — chunk-append loses nothing and invents nothing.
- **Resume exactly-once**: killing the writer at every crash point of
  the chunk commit protocol (and the snapshot write path underneath it),
  at several chunk edges, then restoring + resuming, always converges to
  the same byte-identical snapshot — zero lost and zero duplicated
  shots, per crash point.
- **Freshness under readers**: with concurrent readers querying the
  service mid-ingest, every stream's p95 frame-arrival -> queryable
  latency stays within the declared SLO, nothing sheds on a paced feed,
  and no reader ever errors.
"""

import threading
import time

import pytest

from benchmarks.conftest import print_table
from repro.dataset import build_australian_open
from repro.grammar.tennis import build_tennis_fde
from repro.library.indexing import LibraryIndexer
from repro.storage.crashpoints import (
    SNAPSHOT_POINTS,
    STREAM_POINTS,
    CrashPoint,
    SimulatedCrash,
)
from repro.storage.journal import IndexingJournal

CHUNK_FRAMES = 24
N_VIDEOS = 2


def make_indexer() -> LibraryIndexer:
    dataset = build_australian_open(seed=7, video_shots=4)
    return LibraryIndexer(dataset, fde=build_tennis_fde())


@pytest.fixture(scope="module")
def batch_control(tmp_path_factory):
    """The oracle: the same videos batch-indexed, snapshot bytes kept."""
    path = tmp_path_factory.mktemp("e20_control") / "batch.json"
    indexer = make_indexer()
    indexer.index_checkpointed(path, limit=N_VIDEOS)
    return path.read_bytes()


def test_e20_streamed_batch_identity(benchmark, batch_control, tmp_path):
    """Chunk-append ingest ends byte-identical to the batch snapshot."""
    path = tmp_path / "streamed.json"

    def run_streamed():
        indexer = make_indexer()
        start = time.perf_counter()
        records = indexer.index_checkpointed(
            path, limit=N_VIDEOS, chunk_frames=CHUNK_FRAMES
        )
        return len(records), time.perf_counter() - start, indexer.generation

    indexed, seconds, generation = benchmark.pedantic(
        run_streamed, rounds=1, iterations=1
    )
    streamed = path.read_bytes()
    identical = streamed == batch_control
    print_table(
        "E20: streamed vs batch snapshot identity",
        ["videos", "chunk frames", "generations", "wall time", "bytes identical"],
        [[indexed, CHUNK_FRAMES, generation, f"{seconds:.2f} s", identical]],
    )
    benchmark.extra_info["identity_mismatch"] = int(not identical)
    assert indexed == N_VIDEOS
    assert identical


def test_e20_kill_matrix(benchmark, batch_control, tmp_path_factory):
    """Kill at every chunk-commit and snapshot crash point; resume always
    converges to the byte-identical batch snapshot (exactly-once)."""
    scenarios = [(point, after) for point in STREAM_POINTS for after in (0, 3)]
    scenarios += [(point, 1) for point in SNAPSHOT_POINTS]

    def evaluate():
        results = []
        for point, after in scenarios:
            tmp = tmp_path_factory.mktemp(f"{point}-{after}")
            path = tmp / "meta.json"
            journal = IndexingJournal(tmp / "meta.journal")
            crashed = False
            indexer = make_indexer()
            with CrashPoint(point, after=after):
                try:
                    indexer.index_checkpointed(
                        path, journal=journal, limit=N_VIDEOS,
                        chunk_frames=CHUNK_FRAMES,
                    )
                except SimulatedCrash:
                    crashed = True
            # Recovery is a fresh process: restore the snapshot, then
            # resume — committed chunks replay as duplicates and dedupe.
            start = time.perf_counter()
            fresh = make_indexer()
            if path.exists():
                fresh.restore_snapshot(path)
            fresh.index_checkpointed(
                path,
                journal=IndexingJournal(tmp / "meta.journal"),
                limit=N_VIDEOS,
                chunk_frames=CHUNK_FRAMES,
                resume=True,
            )
            recovery = time.perf_counter() - start
            identical = path.read_bytes() == batch_control
            results.append((point, after, crashed, identical, recovery))
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "E20: chunk-append kill matrix (resume after a kill at each point)",
        ["crash point", "after", "crashed", "byte-identical", "resume time"],
        [
            [point, after, "yes" if crashed else "no",
             "yes" if identical else "NO", f"{recovery:.2f} s"]
            for point, after, crashed, identical, recovery in results
        ],
    )
    failures = sum(1 for _, _, _, identical, _ in results if not identical)
    benchmark.extra_info["kill_scenarios"] = len(results)
    benchmark.extra_info["kill_failures"] = failures
    assert all(crashed for _, _, crashed, _, _ in results)
    assert failures == 0


def test_e20_freshness_soak(benchmark, batch_control, tmp_path):
    """Concurrent readers during paced multi-stream ingest: p95 freshness
    within the SLO, zero sheds, zero reader errors, identity preserved."""
    from repro.library import DigitalLibraryEngine, LibrarySearchService, parse_query
    from repro.streaming import StreamConfig, iter_chunks

    path = tmp_path / "soak.json"
    slo_seconds = 2.0
    dataset = build_australian_open(seed=7, video_shots=4)
    engine = DigitalLibraryEngine(dataset, fde=build_tennis_fde())
    service = LibrarySearchService(engine)
    config = StreamConfig(freshness_slo=slo_seconds)
    ingestor = service.ingestor(
        path=path, journal=IndexingJournal(tmp_path / "soak.journal"), config=config
    )

    stop = threading.Event()
    reader_errors: list[str] = []
    served = [0]

    def read_loop():
        queries = [
            parse_query("SCENES WHERE event = net_play"),
            parse_query("SCENES WHERE player.handedness = left"),
        ]
        i = 0
        while not stop.is_set():
            try:
                service.search(queries[i % len(queries)])
            except Exception as exc:  # noqa: BLE001 — any reader error fails the gate
                reader_errors.append(f"{type(exc).__name__}: {exc}")
                return
            served[0] += 1
            i += 1
            time.sleep(0.001)

    readers = [threading.Thread(target=read_loop, daemon=True) for _ in range(2)]
    for thread in readers:
        thread.start()

    def run_soak():
        # Streams complete one at a time: interleaved chunk commits would
        # interleave shot ids across videos and break byte identity with
        # the sequential batch control.  Readers stay concurrent — the
        # claim under test is ingest-while-queried, not cross-stream
        # commit interleaving (the CLI soak covers that).
        for plan in dataset.video_plans[:N_VIDEOS]:
            ingestor.open_stream(plan)
            clip, _truth = plan.materialise()
            for chunk in iter_chunks(
                clip, CHUNK_FRAMES, stream=plan.name, clock=time.monotonic
            ):
                while ingestor.backlog(plan.name) >= config.queue_chunks - 1:
                    time.sleep(0.005)
                assert ingestor.offer(chunk)
            assert ingestor.close_stream(plan.name)
        assert ingestor.drain()
        return ingestor.health()

    health = benchmark.pedantic(run_soak, rounds=1, iterations=1)
    stop.set()
    for thread in readers:
        thread.join(timeout=5.0)

    worst_p95 = max(
        row.freshness["p95"] for row in health.values() if row.freshness["p95"]
    )
    sheds = sum(row.lag_sheds for row in health.values())
    quarantined = sum(1 for row in health.values() if row.state != "done")
    identical = path.read_bytes() == batch_control
    print_table(
        "E20: freshness soak (paced ingest under concurrent readers)",
        ["streams", "queries served", "worst p95 freshness", "sheds",
         "not done", "bytes identical"],
        [[len(health), served[0], f"{worst_p95 * 1e3:.1f} ms", sheds,
          quarantined, identical]],
    )
    benchmark.extra_info["freshness_p95_ms"] = worst_p95 * 1e3
    benchmark.extra_info["freshness_slo_ms"] = slo_seconds * 1e3
    benchmark.extra_info["lag_sheds"] = sheds
    benchmark.extra_info["quarantined"] = quarantined
    benchmark.extra_info["reader_errors"] = len(reader_errors)
    benchmark.extra_info["identity_mismatch"] = int(not identical)
    assert worst_p95 <= slo_seconds, f"p95 freshness {worst_p95:.3f}s over SLO"
    assert not reader_errors, reader_errors[:3]
    assert sheds == 0 and quarantined == 0
    assert identical
