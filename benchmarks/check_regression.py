#!/usr/bin/env python
"""CI benchmark-regression gate.

Reads a ``pytest-benchmark --benchmark-json`` report and fails (exit 1)
when the candidate benchmark's median runtime exceeds the baseline's by
more than the tolerance.  The CI workflow uses it to guarantee that
parallel (workers=4) indexing never regresses below sequential::

    python benchmarks/check_regression.py bench.json \\
        --baseline test_e14_sequential_indexing \\
        --candidate test_e14_parallel_indexing \\
        --tolerance 0.10

With ``--min-speedup`` the gate flips into speedup mode: the candidate
must be at least that many times *faster* than the baseline.  The E15
entry uses it to guarantee cached query serving keeps beating cold
evaluation::

    python benchmarks/check_regression.py bench.json \\
        --baseline test_e15_uncached_query \\
        --candidate test_e15_cached_query \\
        --min-speedup 10

With ``--max-extra KEY=VALUE`` / ``--zero-extra KEY`` the gate instead
bounds metrics the candidate recorded as benchmark ``extra_info`` —
non-latency numbers like shed rates or tail latencies.  The E16 entry
uses it to bound overload behaviour::

    python benchmarks/check_regression.py bench.json \\
        --candidate test_e16_overload_burst \\
        --max-extra shed_rate=0.60 --max-extra p99_ms=100 \\
        --zero-extra unlabeled

The E17 entries gate the sharded scatter-gather layer the same way:
``parallel_deficit`` bounds how far batch indexing falls short of the
machine's ideal speedup (``min(shards, cores)``, so single-core runners
are judged fairly), while the fan-out gate demands byte-identical
merged results and labeled coverage on every answer::

    python benchmarks/check_regression.py bench.json \\
        --candidate test_e17_sharded_indexing \\
        --max-extra parallel_deficit=2.0
    python benchmarks/check_regression.py bench.json \\
        --candidate test_e17_scatter_gather \\
        --max-extra fanout_p99_ms=500 \\
        --zero-extra mismatches --zero-extra unlabeled

The E18 entry gates replicated serving's availability claim: with one
replica killed in every group mid-soak, callers must see **zero**
rejected, unlabeled, coverage-losing or mismatching answers, and every
killed replica must be rebuilt and back in rotation before the soak
ends::

    python benchmarks/check_regression.py bench.json \\
        --candidate test_e18_replica_kill_soak \\
        --max-extra fanout_p99_ms=2000 \\
        --zero-extra rejected --zero-extra unlabeled \\
        --zero-extra coverage_loss --zero-extra mismatches \\
        --zero-extra not_rejoined

``--min-extra KEY=VALUE`` is the floor-shaped sibling of ``--max-extra``
for metrics where bigger is better.  The E19 entries use it to hold
approximate shot retrieval to its quality bar — recall at the serving
``nprobe`` — while the speedup and byte-identity gates run alongside::

    python benchmarks/check_regression.py bench.json \\
        --baseline test_e19_brute_force \\
        --candidate test_e19_ann_search \\
        --min-speedup 5
    python benchmarks/check_regression.py bench.json \\
        --candidate test_e19_ann_search \\
        --min-extra recall_at_10=0.9 --zero-extra fused_mismatches

The E20 entries gate streaming ingest's crash-safety and freshness
claims: chunk-append must end byte-identical to batch indexing, a kill
at every chunk-commit and snapshot crash point must resume to the same
bytes (zero lost or duplicated shots), and a paced feed under
concurrent readers must hold its p95 frame-arrival -> queryable latency
inside the SLO with zero sheds, quarantines or reader errors::

    python benchmarks/check_regression.py bench.json \\
        --candidate test_e20_streamed_batch_identity \\
        --zero-extra identity_mismatch
    python benchmarks/check_regression.py bench.json \\
        --candidate test_e20_kill_matrix \\
        --min-extra kill_scenarios=10 --zero-extra kill_failures
    python benchmarks/check_regression.py bench.json \\
        --candidate test_e20_freshness_soak \\
        --max-extra freshness_p95_ms=2000 \\
        --zero-extra reader_errors --zero-extra lag_sheds \\
        --zero-extra quarantined --zero-extra identity_mismatch
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def bench_of(report: dict, name: str) -> dict:
    for bench in report.get("benchmarks", []):
        if bench.get("name") == name:
            return bench
    raise SystemExit(f"benchmark {name!r} missing from the report")


def median_of(report: dict, name: str) -> float:
    return float(bench_of(report, name)["stats"]["median"])


def extra_of(report: dict, name: str, key: str) -> float:
    extra = bench_of(report, name).get("extra_info", {})
    if key not in extra:
        raise SystemExit(f"extra_info key {key!r} missing from benchmark {name!r}")
    return float(extra[key])


def check_extras(report: dict, args) -> int:
    """Gate on recorded ``extra_info`` metrics; returns the exit code."""
    failures = 0
    for bound in args.max_extra:
        key, _, limit_text = bound.partition("=")
        if not limit_text:
            raise SystemExit(f"--max-extra needs KEY=VALUE, got {bound!r}")
        limit = float(limit_text)
        value = extra_of(report, args.candidate, key)
        verdict = "OK" if value <= limit else "FAIL"
        print(f"{verdict}: {args.candidate} {key} = {value} (limit {limit})")
        failures += value > limit
    for bound in args.min_extra:
        key, _, limit_text = bound.partition("=")
        if not limit_text:
            raise SystemExit(f"--min-extra needs KEY=VALUE, got {bound!r}")
        limit = float(limit_text)
        value = extra_of(report, args.candidate, key)
        verdict = "OK" if value >= limit else "FAIL"
        print(f"{verdict}: {args.candidate} {key} = {value} (floor {limit})")
        failures += value < limit
    for key in args.zero_extra:
        value = extra_of(report, args.candidate, key)
        verdict = "OK" if value == 0 else "FAIL"
        print(f"{verdict}: {args.candidate} {key} = {value} (must be 0)")
        failures += value != 0
    if failures:
        print(f"FAIL: {failures} extra_info bound(s) violated", file=sys.stderr)
        return 1
    print("OK: every extra_info metric within bounds")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="pytest-benchmark JSON report path")
    parser.add_argument(
        "--baseline",
        default="test_e14_sequential_indexing",
        help="benchmark the candidate must not be slower than",
    )
    parser.add_argument(
        "--candidate",
        default="test_e14_parallel_indexing",
        help="benchmark under the gate",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed slowdown fraction (0.10 = candidate may take up to "
        "110%% of the baseline median)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="speedup mode: the candidate must be at least this many "
        "times faster than the baseline (overrides --tolerance)",
    )
    parser.add_argument(
        "--max-extra",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="bound a candidate extra_info metric (repeatable); enables "
        "extra_info mode, which ignores --baseline/--tolerance",
    )
    parser.add_argument(
        "--min-extra",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="require a candidate extra_info metric to be at least this "
        "value (repeatable); enables extra_info mode like --max-extra",
    )
    parser.add_argument(
        "--zero-extra",
        action="append",
        default=[],
        metavar="KEY",
        help="require a candidate extra_info metric to be exactly 0 (repeatable)",
    )
    args = parser.parse_args(argv)

    report = json.loads(Path(args.report).read_text())
    if args.max_extra or args.min_extra or args.zero_extra:
        return check_extras(report, args)
    baseline = median_of(report, args.baseline)
    candidate = median_of(report, args.candidate)

    if args.min_speedup is not None:
        speedup = baseline / candidate if candidate > 0 else float("inf")
        print(
            f"baseline  {args.baseline}: {baseline:.6f}s\n"
            f"candidate {args.candidate}: {candidate:.6f}s "
            f"({speedup:.1f}x faster, gate {args.min_speedup:.1f}x)"
        )
        if speedup < args.min_speedup:
            print("FAIL: candidate speedup below the gate", file=sys.stderr)
            return 1
        print("OK: candidate speedup meets the gate")
        return 0

    limit = baseline * (1.0 + args.tolerance)
    ratio = candidate / baseline if baseline > 0 else float("inf")
    print(
        f"baseline  {args.baseline}: {baseline:.3f}s\n"
        f"candidate {args.candidate}: {candidate:.3f}s "
        f"({ratio:.2f}x baseline, limit {1.0 + args.tolerance:.2f}x)"
    )
    if candidate > limit:
        print("FAIL: candidate exceeds the regression limit", file=sys.stderr)
        return 1
    print("OK: candidate within the regression limit")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
