"""E14 — parallel indexing speedup vs. worker count.

The paper's detectors are black-box external processes: their cost is
dominated by waiting on decoding/tool I/O, not the Python interpreter.
This experiment models that with injected per-detector latency (sleeps
release the GIL) and measures how the staged per-video committer scales
batch indexing — while asserting the whole point of the design: the
parallel snapshot is byte-identical to the sequential one.

The CI benchmark-regression gate runs this module with
``--benchmark-json`` and fails when workers=4 stops beating sequential.
"""

import json
import time

from benchmarks.conftest import print_table
from repro.dataset import build_australian_open
from repro.faults import FaultPlan
from repro.grammar.runtime import RunPolicy
from repro.grammar.tennis import build_tennis_fde
from repro.library.indexing import LibraryIndexer

N_VIDEOS = 6
LATENCY = 0.2  # seconds per detector invocation (GIL-releasing sleep)
DETECTORS = ["segment", "tennis", "shape", "rules"]
PARALLEL_WORKERS = 4
MIN_SPEEDUP = 1.8

# test_e14_speedup_and_determinism reads the two timed runs from here.
_results: dict[int, dict] = {}


def _index_with_workers(tmp_path, workers: int) -> dict:
    dataset = build_australian_open(seed=1234, video_shots=3)
    fde = build_tennis_fde(policy=RunPolicy(max_workers=workers))
    FaultPlan.latency(DETECTORS, LATENCY).install(fde.registry)
    indexer = LibraryIndexer(dataset, fde=fde)
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / "meta.json"
    started = time.perf_counter()
    records = indexer.index_checkpointed(path, limit=N_VIDEOS, workers=workers)
    elapsed = time.perf_counter() - started
    document = json.loads(path.read_text())
    health = [
        (
            report.video_name,
            report.degraded,
            [(o.name, o.status, o.skipped_because) for o in report.outcomes.values()],
        )
        for report in indexer.health_reports()
    ]
    return {
        "elapsed": elapsed,
        "indexed": len(records),
        "checksum": document["checksum"],
        "tables": document["tables"],
        "health": health,
    }


def test_e14_sequential_indexing(benchmark, tmp_path):
    """Timed kernel: the sequential (workers=1) checkpointed batch."""
    result = benchmark.pedantic(
        _index_with_workers, args=(tmp_path, 1), rounds=1, iterations=1
    )
    assert result["indexed"] == N_VIDEOS
    _results[1] = result


def test_e14_parallel_indexing(benchmark, tmp_path):
    """Timed kernel: the same batch staged on 4 worker threads."""
    result = benchmark.pedantic(
        _index_with_workers, args=(tmp_path, PARALLEL_WORKERS), rounds=1, iterations=1
    )
    assert result["indexed"] == N_VIDEOS
    _results[PARALLEL_WORKERS] = result


def test_e14_speedup_and_determinism(tmp_path):
    """workers=4 is >= 1.8x faster and byte-identical to sequential."""
    for workers in (1, PARALLEL_WORKERS):
        if workers not in _results:  # ran standalone: measure here
            _results[workers] = _index_with_workers(tmp_path / str(workers), workers)
    sequential = _results[1]
    parallel = _results[PARALLEL_WORKERS]
    speedup = sequential["elapsed"] / parallel["elapsed"]
    print_table(
        f"E14: staged parallel indexing ({N_VIDEOS} videos, "
        f"{LATENCY * 1e3:.0f}ms injected latency x {len(DETECTORS)} detectors)",
        ["workers", "wall time", "speedup", "checksum"],
        [
            [1, f"{sequential['elapsed']:.2f}s", "1.0x", sequential["checksum"]],
            [
                PARALLEL_WORKERS,
                f"{parallel['elapsed']:.2f}s",
                f"{speedup:.1f}x",
                parallel["checksum"],
            ],
        ],
    )
    assert parallel["checksum"] == sequential["checksum"]
    assert parallel["tables"] == sequential["tables"]
    assert parallel["health"] == sequential["health"]
    assert speedup >= MIN_SPEEDUP, (
        f"workers={PARALLEL_WORKERS} speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x gate"
    )
