"""E7 — webspace conceptual queries vs keyword search.

Regenerates the van Zwol & Apers comparison on the tournament site:
ten query templates with known concept-level answers, answered (a) by
conceptual queries over the webspace and (b) by keyword search over the
lossy HTML rendering.  Reported: answer precision/recall per method.

Expected shape: conceptual queries are exact (the schema preserves the
hidden semantics); keyword search misses answers whose facts are spread
across pages and returns pages that merely mention the words.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.ir.inverted_index import InvertedIndex
from repro.ir.ranking import rank_full_scan
from repro.webspace.query import ConceptQuery


def _queries(dataset):
    """(name, concept query, keyword text, truth player-name set)."""
    def players(predicate):
        return {p.name for p in dataset.players if predicate(p)}

    return [
        (
            "left-handed women",
            ConceptQuery("Player").where("handedness", "=", "left").where("gender", "=", "female"),
            "left-handed women's singles player",
            players(lambda p: p.handedness == "left" and p.gender == "female"),
        ),
        (
            "past champions",
            ConceptQuery("Player").where("titles", ">", 0),
            "won the Australian Open",
            players(lambda p: p.titles > 0),
        ),
        (
            "female champions",
            ConceptQuery("Player").where("titles", ">", 0).where("gender", "=", "female"),
            "women's singles won Australian Open champion",
            players(lambda p: p.titles > 0 and p.gender == "female"),
        ),
        (
            "australian players",
            ConceptQuery("Player").where("country", "=", "Australia"),
            "player of Australia",
            players(lambda p: p.country == "Australia"),
        ),
        (
            "top seeds",
            ConceptQuery("Player").where("seed", "<=", 2),
            "seeded 1 or 2",
            players(lambda p: p.seed <= 2),
        ),
        (
            "left-handed champions",
            ConceptQuery("Player").where("handedness", "=", "left").where("titles", ">", 0),
            "left-handed Australian Open winner",
            players(lambda p: p.handedness == "left" and p.titles > 0),
        ),
    ]


def _keyword_answer(dataset, index, text, k=10):
    """Player names inferred from the top-k keyword hits (crawler view)."""
    terms = dataset.pages.query_terms(text)
    names = set()
    for hit in rank_full_scan(index, terms, k):
        doc = dataset.pages.document(hit.doc_id)
        if doc.metadata.get("class") == "Player":
            player = dataset.instance.object(doc.metadata["oid"])
            names.add(player.get("name"))
    return names


def test_e7_concept_vs_keyword(benchmark, bench_dataset):
    dataset = bench_dataset
    index = InvertedIndex(dataset.pages)
    queries = _queries(dataset)

    def evaluate():
        out = []
        for name, concept, keywords, truth in queries:
            concept_names = {
                p.get("name") for p in concept.run_distinct_roots(dataset.instance)
            }
            keyword_names = _keyword_answer(dataset, index, keywords)

            def pr(answer):
                if not answer:
                    return (1.0 if not truth else 0.0), 0.0
                precision = len(answer & truth) / len(answer)
                recall = len(answer & truth) / len(truth) if truth else 1.0
                return precision, recall

            cp, cr = pr(concept_names)
            kp, kr = pr(keyword_names)
            out.append((name, cp, cr, kp, kr))
        return out

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = [
        [name, f"{cp:.2f}", f"{cr:.2f}", f"{kp:.2f}", f"{kr:.2f}"]
        for name, cp, cr, kp, kr in results
    ]
    print_table(
        "E7: conceptual (webspace) vs keyword search, player-set answers",
        ["query", "concept P", "concept R", "keyword P", "keyword R"],
        rows,
    )
    concept_f1 = np.mean(
        [2 * cp * cr / (cp + cr) if cp + cr else 0.0 for _n, cp, cr, _kp, _kr in results]
    )
    keyword_f1 = np.mean(
        [2 * kp * kr / (kp + kr) if kp + kr else 0.0 for _n, _cp, _cr, kp, kr in results]
    )
    print(f"mean F1: concept={concept_f1:.2f}, keyword={keyword_f1:.2f}")
    # Conceptual queries are exact on the schema.
    assert all(cp == 1.0 and cr == 1.0 for _n, cp, cr, _kp, _kr in results)
    # And clearly beat the crawler view overall.
    assert concept_f1 > keyword_f1


def test_e7_concept_query_speed(benchmark, bench_dataset):
    """Timed kernel: a two-hop conceptual query over the instance."""
    query = (
        ConceptQuery("Player")
        .where("titles", ">", 0)
        .follow("won", "Match")
        .where("round", "=", "final")
    )
    bindings = benchmark(query.run, bench_dataset.instance)
    assert bindings


def test_e7a_relational_compilation(benchmark, bench_dataset):
    """Ablation: object-graph vs relational (column-store) evaluation."""
    import time

    from repro.webspace.relational import RelationalConceptEvaluator

    evaluator = RelationalConceptEvaluator(bench_dataset.instance)
    query = (
        ConceptQuery("Player")
        .where("titles", ">", 0)
        .follow("won", "Match")
        .where("round", "=", "final")
    )

    def compare():
        start = time.perf_counter()
        for _ in range(50):
            graph = query.run(bench_dataset.instance)
        graph_time = (time.perf_counter() - start) / 50
        start = time.perf_counter()
        for _ in range(50):
            relational = evaluator.run(query)
        relational_time = (time.perf_counter() - start) / 50
        return graph, relational, graph_time, relational_time

    graph, relational, graph_time, relational_time = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print_table(
        "E7a: conceptual query — object graph vs relational compilation",
        ["path", "bindings", "latency"],
        [
            ["object graph", len(graph), f"{graph_time * 1e6:.0f}us"],
            ["relational (column store)", len(relational), f"{relational_time * 1e6:.0f}us"],
        ],
    )
    graph_keys = sorted(tuple(o.oid for o in b) for b in graph)
    relational_keys = sorted(tuple(o.oid for o in b) for b in relational)
    assert relational_keys == graph_keys
