"""E6 — IR top-N optimization (Blok et al., BNCOD 2001).

Regenerates the top-N trade-off tables on the tournament text corpus:

- speedup (postings-processed ratio and wall time) and precision@N of
  fragment-at-a-time early termination vs the full evaluation, for
  N in {10, 20, 50} and fragments-processed in {1, 2, all};
- E6a: fragment-count sweep at fixed work budget.

Expected shape: large work reduction at modest quality loss; quality
rises toward 1.0 as more fragments are processed; deeper result lists
(larger N) lose more quality at the same work budget.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.ir.inverted_index import InvertedIndex
from repro.ir.ranking import rank_full_scan
from repro.ir.reference import (
    ReferenceFragmentedIndex,
    rank_full_scan_reference,
    replicate_collection,
)
from repro.ir.topn import FragmentedIndex

QUERIES = [
    "net volley approach",
    "long rallies baseline",
    "serve percentage first",
    "Australian Open champion dream",
    "crowd Melbourne press conference",
]

#: Replication factor of the packed-vs-reference corpus.  The seed
#: corpus (~272 pages) is small enough that per-query overhead hides
#: the kernel cost; 25x (~6800 documents, ~170k postings) is where the
#: packed engine's vectorization shows its real ratio.
SCALE_COPIES = 25


@pytest.fixture(scope="module")
def text_index(bench_dataset):
    return InvertedIndex(bench_dataset.pages)


@pytest.fixture(scope="module")
def scaled_corpus(bench_dataset):
    """Replicated corpus + packed and reference engines over it."""
    pages = replicate_collection(bench_dataset.pages, SCALE_COPIES)
    index = InvertedIndex(pages)
    return {
        "pages": pages,
        "index": index,
        "packed": FragmentedIndex(index, n_fragments=4),
        "reference": ReferenceFragmentedIndex(index, n_fragments=4),
        "queries": [pages.query_terms(q) for q in QUERIES],
    }


def _precision_at(approx_ids, exact_ids):
    if not exact_ids:
        return 1.0
    return len(set(approx_ids) & set(exact_ids)) / len(exact_ids)


def test_e6_speed_quality_tradeoff(benchmark, text_index, bench_dataset):
    fragmented = FragmentedIndex(text_index, n_fragments=4)
    queries = [bench_dataset.pages.query_terms(q) for q in QUERIES]

    def sweep():
        out = []
        for n in (10, 20, 50):
            exact = {
                i: [h.doc_id for h in rank_full_scan(text_index, q, n)]
                for i, q in enumerate(queries)
            }
            for max_fragments in (1, 2, None):
                quality, work = [], []
                for i, q in enumerate(queries):
                    result = fragmented.search(q, n, max_fragments=max_fragments)
                    quality.append(_precision_at(result.doc_ids(), exact[i]))
                    work.append(result.work_fraction)
                out.append(
                    (
                        n,
                        "all" if max_fragments is None else max_fragments,
                        float(np.mean(work)),
                        float(np.mean(quality)),
                    )
                )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [n, frags, f"{work:.2f}", f"{1.0 / max(work, 1e-9):.1f}x", f"{quality:.2f}"]
        for n, frags, work, quality in results
    ]
    print_table(
        "E6: top-N early termination (work fraction, speedup, precision@N)",
        ["N", "fragments", "work", "speedup", "P@N"],
        rows,
    )
    by_key = {(n, f): (w, q) for n, f, w, q in results}
    # Full processing is exact.
    for n in (10, 20, 50):
        assert by_key[(n, "all")][1] == pytest.approx(1.0)
    # One fragment processes ~1/4 the postings.
    assert by_key[(10, 1)][0] < 0.4
    # And keeps useful quality.
    assert by_key[(10, 1)][1] >= 0.5


def test_e6a_fragment_count_sweep(benchmark, text_index, bench_dataset):
    """Finer fragmentation: same work budget, finer early termination."""
    queries = [bench_dataset.pages.query_terms(q) for q in QUERIES]

    def sweep():
        out = []
        for n_fragments in (2, 4, 8, 16):
            fragmented = FragmentedIndex(text_index, n_fragments=n_fragments)
            # Process ~half the postings.
            budget = max(1, n_fragments // 2)
            quality, work = [], []
            for q in queries:
                exact = [h.doc_id for h in rank_full_scan(text_index, q, 10)]
                result = fragmented.search(q, 10, max_fragments=budget)
                quality.append(_precision_at(result.doc_ids(), exact))
                work.append(result.work_fraction)
            out.append([n_fragments, budget, f"{np.mean(work):.2f}", f"{np.mean(quality):.2f}"])
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E6a: fragment count at ~50% work budget",
        ["fragments", "processed", "work", "P@10"],
        rows,
    )


def test_e6_wall_time_speedup(benchmark, text_index, bench_dataset):
    """Wall-clock comparison of full vs early-terminated evaluation."""
    fragmented = FragmentedIndex(text_index, n_fragments=4)
    queries = [bench_dataset.pages.query_terms(q) for q in QUERIES]

    def timed(fn):
        start = time.perf_counter()
        for _ in range(20):
            for q in queries:
                fn(q)
        return time.perf_counter() - start

    full_time = timed(lambda q: fragmented.search(q, 10))
    fast_time = timed(lambda q: fragmented.search(q, 10, max_fragments=1))
    print(
        f"\nE6 wall time: full={full_time * 1e3:.1f}ms, "
        f"1-fragment={fast_time * 1e3:.1f}ms, "
        f"speedup={full_time / fast_time:.2f}x"
    )
    benchmark(lambda: fragmented.search(queries[0], 10, max_fragments=1))
    assert fast_time < full_time


def test_e6_reference_topn(benchmark, scaled_corpus):
    """Gate baseline: the seed's per-posting loops on the scaled corpus."""
    reference = scaled_corpus["reference"]
    queries = scaled_corpus["queries"]

    def run():
        for q in queries:
            reference.search(q, 10)

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_e6_packed_topn(benchmark, scaled_corpus):
    """Gate candidate: packed array scoring, byte-identical rankings.

    The CI gate demands a >= 5x median speedup over
    :func:`test_e6_reference_topn` *and* ``mismatches == 0``: every
    ranking (scores bit-for-bit, ids, order) and every accounting field
    must equal the reference across schemes and early-termination
    budgets — speed that changes answers does not pass.
    """
    index = scaled_corpus["index"]
    packed = scaled_corpus["packed"]
    reference = scaled_corpus["reference"]
    queries = scaled_corpus["queries"]

    def run():
        for q in queries:
            packed.search(q, 10)

    packed.search(queries[0], 10)  # warm the weight cache like serving does
    benchmark.pedantic(run, rounds=5, iterations=1)

    mismatches = 0
    for q in queries:
        for scheme in ("tfidf", "bm25"):
            if rank_full_scan(index, q, 10, scheme=scheme) != rank_full_scan_reference(
                index, q, 10, scheme=scheme
            ):
                mismatches += 1
            for max_fragments in (1, 2, None):
                got = packed.search(q, 10, max_fragments=max_fragments, scheme=scheme)
                want = reference.search(q, 10, max_fragments=max_fragments, scheme=scheme)
                if (
                    got.hits != want.hits
                    or got.postings_processed != want.postings_processed
                    or got.postings_total != want.postings_total
                    or got.fragments_processed != want.fragments_processed
                ):
                    mismatches += 1
    benchmark.extra_info["mismatches"] = mismatches
    benchmark.extra_info["documents"] = len(scaled_corpus["pages"])
    assert mismatches == 0


def test_e6_index_build_speed(benchmark, bench_dataset):
    """Timed kernel: building the inverted index over all pages."""
    index = benchmark.pedantic(
        lambda: InvertedIndex(bench_dataset.pages), rounds=1, iterations=1
    )
    assert index.n_documents == len(bench_dataset.pages)
