"""E1 — Figure 1: the tennis FDE detector dependency graph.

Regenerates the paper's only figure from the tennis feature grammar and
asserts its structure: nodes, edges (with guard), white/black kinds and
the execution order.  The timed kernel is FDE construction + schedule
derivation, the operation Acoi performs when a grammar is (re)loaded.
"""

import networkx as nx

from benchmarks.conftest import print_table
from repro.grammar.dot import to_dot
from repro.grammar.tennis import build_tennis_fde

#: The dependency structure of Figure 1: detector -> its input producers.
FIGURE_ONE_EDGES = {
    ("video", "segment"),
    ("segment", "tennis"),
    ("tennis", "shape"),
    ("tennis", "rules"),
    ("shape", "rules"),
}


def test_e1_figure_one_structure(benchmark):
    fde = benchmark(lambda: build_tennis_fde())
    graph = fde.dependency_graph()

    assert set(graph.edges) == FIGURE_ONE_EDGES
    assert nx.is_directed_acyclic_graph(graph)
    assert graph.nodes["rules"]["kind"] == "white"
    assert graph.nodes["segment"]["kind"] == "black"
    assert graph.nodes["tennis"]["guard"] == ("category", "tennis")

    order = fde.execution_order()
    assert order == ["segment", "tennis", "shape", "rules"]

    rows = [
        [name, graph.nodes[name]["kind"], str(graph.nodes[name]["guard"] or "-"),
         ", ".join(sorted(p for p, c in graph.edges if c == name)) or "(axiom)"]
        for name in ["segment", "tennis", "shape", "rules"]
    ]
    print_table(
        "E1 / Figure 1: tennis FDE detector dependencies",
        ["detector", "kind", "guard", "depends on"],
        rows,
    )
    print("\nDOT rendering of Figure 1:\n" + to_dot(graph, title="tennis_fde"))


def test_e1_schedule_derivation_speed(benchmark):
    """Deriving the execution schedule from the grammar is instantaneous."""
    fde = build_tennis_fde()
    order = benchmark(fde.execution_order)
    assert order[0] == "segment"
