"""Profiling harness for the indexing and retrieval hot paths.

The vectorised kernels in :mod:`repro.ir` and :mod:`repro.vision` were
written profile-first; this module is the harness that produced (and
keeps reproducing) those profiles.  It offers two complementary views:

- a **sampling profiler** (:class:`SamplingProfiler`) that snapshots the
  target thread's stack on a timer and aggregates *folded stacks* — the
  input format of flamegraphs — with near-zero overhead on the profiled
  code, and
- a **deterministic profiler** (:func:`profile_call`) built on
  :mod:`cProfile` for exact call counts and per-function timings.

Both feed :func:`write_artifacts`, which emits a self-contained
``flamegraph.svg`` plus a machine-readable ``profile.json`` so CI can
upload the hot-path picture of every gate run next to the benchmark
report.  No third-party tooling is required; the SVG renderer is local.
"""

from __future__ import annotations

import cProfile
import hashlib
import io
import json
import pstats
import sys
import threading
import time
from dataclasses import dataclass, field
from html import escape
from pathlib import Path

__all__ = [
    "SamplingProfiler",
    "ProfileReport",
    "profile_call",
    "render_flamegraph_svg",
    "write_artifacts",
]


class SamplingProfiler:
    """Wall-clock stack sampler producing folded stacks.

    A daemon thread wakes every *interval* seconds, grabs the profiled
    thread's frame via ``sys._current_frames()`` and appends one count
    to the ``caller;...;callee`` folded-stack key.  Sampling observes
    the program from outside, so the measured code runs at full speed —
    the right tool for kernels whose cost is a handful of long NumPy
    calls rather than many short Python calls.

    Use as a context manager::

        with SamplingProfiler(interval=0.002) as prof:
            run_hot_path()
        svg = render_flamegraph_svg(prof.folded(), title="hot path")
    """

    def __init__(self, interval: float = 0.002, max_depth: int = 64):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.max_depth = max_depth
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._target_id: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        """Begin sampling the calling thread."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._target_id = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="sampling-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling; safe to call more than once."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    @property
    def samples(self) -> int:
        """Number of stack samples collected."""
        return self._samples

    def folded(self) -> dict[str, int]:
        """Folded stacks: ``"main;f;g" -> sample count`` (root first)."""
        return dict(self._counts)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_id)
            if frame is None:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                stack.append(f"{code.co_name} ({Path(code.co_filename).name})")
                frame = frame.f_back
                depth += 1
            key = ";".join(reversed(stack))
            self._counts[key] = self._counts.get(key, 0) + 1
            self._samples += 1


@dataclass
class ProfileReport:
    """Deterministic (cProfile) profile of one call.

    Attributes:
        seconds: wall-clock duration of the profiled call.
        top: hottest rows sorted by cumulative time; each row is a dict
            with ``function``, ``calls``, ``tottime`` and ``cumtime``.
        text: classic ``pstats`` table for humans.
    """

    seconds: float
    top: list[dict] = field(default_factory=list)
    text: str = ""

    def to_json(self) -> dict:
        """JSON-ready view of the report."""
        return {"seconds": self.seconds, "top": self.top}


def profile_call(fn, *args, top: int = 25, **kwargs):
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns:
        ``(result, report)`` where *report* is a :class:`ProfileReport`
        of the hottest *top* functions by cumulative time.
    """
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    seconds = time.perf_counter() - started

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)

    rows: list[dict] = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, lineno, name = func
        rows.append(
            {
                "function": f"{Path(filename).name}:{lineno}({name})",
                "calls": nc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
    rows.sort(key=lambda row: -row["cumtime"])
    return result, ProfileReport(seconds=seconds, top=rows[:top], text=stream.getvalue())


# ---------------------------------------------------------------------------
# Flamegraph rendering (self-contained SVG, no external tooling)
# ---------------------------------------------------------------------------

_ROW_HEIGHT = 17
_MIN_WIDTH_PX = 0.5


def _frame_color(name: str) -> str:
    """Deterministic warm colour per frame name."""
    digest = hashlib.sha1(name.encode()).digest()
    red = 205 + digest[0] % 50
    green = 80 + digest[1] % 110
    blue = digest[2] % 55
    return f"rgb({red},{green},{blue})"


def _build_tree(folded: dict[str, int]):
    """Nested dict tree ``{child_name: (count, children)}`` from folded stacks."""
    root: dict = {}
    for stack, count in folded.items():
        node = root
        for part in stack.split(";"):
            entry = node.setdefault(part, [0, {}])
            entry[0] += count
            node = entry[1]
    return root


def render_flamegraph_svg(folded: dict[str, int], title: str = "flamegraph") -> str:
    """Render folded stacks as a standalone flamegraph SVG string.

    Standard flamegraph semantics: x-extent is the share of samples in
    which a frame (with its whole ancestry) was on the stack, rows grow
    downward from the root, and every rect carries a ``<title>`` tooltip
    with its exact sample count.  Colours are a deterministic hash of
    the frame name so two renders of the same profile diff cleanly.
    """
    total = sum(folded.values())
    width = 1200.0
    if total == 0:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" height="40">'
            f"<text x=\"10\" y=\"25\">{escape(title)}: no samples</text></svg>"
        )

    tree = _build_tree(folded)
    rects: list[str] = []
    max_depth = [0]

    def layout(node: dict, x: float, depth: int) -> None:
        max_depth[0] = max(max_depth[0], depth)
        for name, (count, children) in sorted(node.items(), key=lambda kv: -kv[1][0]):
            w = width * count / total
            if w < _MIN_WIDTH_PX:
                x += w
                continue
            y = (depth + 1) * _ROW_HEIGHT
            pct = 100.0 * count / total
            label = escape(name) if w > 60 else ""
            rects.append(
                f'<g><title>{escape(name)} — {count} samples ({pct:.1f}%)</title>'
                f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" height="{_ROW_HEIGHT - 1}" '
                f'fill="{_frame_color(name)}" rx="1"/>'
                f'<text x="{x + 3:.2f}" y="{y + 12}" font-size="11" '
                f'font-family="monospace" clip-path="inset(0)">{label}</text></g>'
            )
            layout(children, x, depth + 1)
            x += w

    layout(tree, 0.0, 0)
    height = (max_depth[0] + 3) * _ROW_HEIGHT
    header = (
        f'<text x="10" y="{_ROW_HEIGHT - 4}" font-size="13" font-family="monospace">'
        f"{escape(title)} — {total} samples</text>"
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height}" style="background:#fff">{header}{"".join(rects)}</svg>'
    )


def write_artifacts(
    out_dir: str | Path,
    folded: dict[str, int],
    report: ProfileReport | None = None,
    name: str = "profile",
    meta: dict | None = None,
) -> list[Path]:
    """Write ``<name>.svg`` + ``<name>.json`` under *out_dir*.

    The JSON artifact bundles the folded stacks, the optional cProfile
    report and caller-provided metadata (frame counts, speedups, ...)
    so the CI gate can archive one self-describing file per hot path.

    Returns:
        The written paths (SVG first).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    svg_path = out / f"{name}.svg"
    svg_path.write_text(render_flamegraph_svg(folded, title=name))
    payload = {
        "name": name,
        "samples": sum(folded.values()),
        "folded": folded,
        "meta": meta or {},
    }
    if report is not None:
        payload["cprofile"] = report.to_json()
    json_path = out / f"{name}.json"
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return [svg_path, json_path]
