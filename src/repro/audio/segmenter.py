"""Energy-based word segmentation.

Words are bursts of energy between silences; the segmenter thresholds
short-time energy relative to the utterance's own peak and reports
sample-accurate word segments — the audio counterpart of the video shot
segmenter.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.audio.features import frame_energy
from repro.audio.signal import AudioSignal

__all__ = ["WordSegment", "segment_words"]


@dataclass(frozen=True)
class WordSegment:
    """One detected word span, in samples."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid segment [{self.start}, {self.stop})")

    @property
    def length(self) -> int:
        return self.stop - self.start


def segment_words(
    signal: AudioSignal,
    frame: int = 80,
    hop: int = 40,
    threshold_fraction: float = 0.02,
    min_word_frames: int = 3,
    absolute_floor: float = 1e-8,
) -> list[WordSegment]:
    """Detect word spans from short-time energy.

    Args:
        signal: the utterance.
        frame: energy frame length in samples.
        hop: energy hop in samples.
        threshold_fraction: a frame is "speech" when its energy exceeds
            this fraction of the utterance's peak frame energy.
        min_word_frames: shorter speech runs are discarded as clicks.
        absolute_floor: minimum speech energy — keeps a silent recording
            from segmenting its own noise floor (the relative threshold
            alone would fire on uniformly tiny energy).
    """
    if not 0 < threshold_fraction < 1:
        raise ValueError("threshold_fraction must be in (0, 1)")
    energy = frame_energy(signal.samples, frame=frame, hop=hop)
    if energy.size == 0:
        return []
    threshold = max(float(energy.max()) * threshold_fraction, absolute_floor)
    speech = energy > threshold

    segments: list[WordSegment] = []
    run_start = None
    for i, flag in enumerate(speech):
        if flag and run_start is None:
            run_start = i
        elif not flag and run_start is not None:
            if i - run_start >= min_word_frames:
                segments.append(
                    WordSegment(start=run_start * hop, stop=(i - 1) * hop + frame)
                )
            run_start = None
    if run_start is not None and len(speech) - run_start >= min_word_frames:
        segments.append(
            WordSegment(start=run_start * hop, stop=(len(speech) - 1) * hop + frame)
        )
    return segments
