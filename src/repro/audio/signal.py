"""The audio signal container."""

from __future__ import annotations

import numpy as np

__all__ = ["AudioSignal", "SAMPLE_RATE"]

#: Default sample rate: 8 kHz telephone quality, plenty for formants.
SAMPLE_RATE = 8000


class AudioSignal:
    """Mono audio: float64 samples in [-1, 1] plus a sample rate.

    Exposes ``name``, ``fps`` (the sample rate) and ``__len__`` so it can
    serve as the raw-layer axiom object of an audio feature grammar.
    """

    def __init__(self, samples: np.ndarray, sample_rate: int = SAMPLE_RATE, name: str = "audio"):
        arr = np.asarray(samples, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"expected mono samples, got shape {arr.shape}")
        if len(arr) == 0:
            raise ValueError("an AudioSignal needs at least one sample")
        if sample_rate <= 0:
            raise ValueError(f"sample_rate must be positive, got {sample_rate}")
        self.samples = arr
        self.sample_rate = int(sample_rate)
        self.name = name

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def fps(self) -> float:
        """Sample rate, under the raw-layer interface name."""
        return float(self.sample_rate)

    @property
    def duration(self) -> float:
        """Length in seconds."""
        return len(self.samples) / self.sample_rate

    def slice_seconds(self, start: float, stop: float) -> "AudioSignal":
        """A new signal covering ``[start, stop)`` seconds."""
        i0 = max(0, int(start * self.sample_rate))
        i1 = min(len(self.samples), int(stop * self.sample_rate))
        if i0 >= i1:
            raise ValueError(f"empty slice [{start}, {stop})s")
        return AudioSignal(
            self.samples[i0:i1], self.sample_rate, name=f"{self.name}[{start}:{stop}]"
        )

    def with_noise(self, snr_db: float, rng: np.random.Generator) -> "AudioSignal":
        """A copy with white noise at the given signal-to-noise ratio."""
        power = float(np.mean(self.samples**2))
        if power == 0:
            return AudioSignal(self.samples.copy(), self.sample_rate, self.name)
        noise_power = power / (10.0 ** (snr_db / 10.0))
        noise = rng.normal(0.0, np.sqrt(noise_power), len(self.samples))
        return AudioSignal(self.samples + noise, self.sample_rate, self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AudioSignal(name={self.name!r}, {self.duration:.2f}s "
            f"@ {self.sample_rate}Hz)"
        )
