"""Audio features: frame energy and spectra."""

from __future__ import annotations

import numpy as np

__all__ = ["frame_energy", "power_spectrum", "spectral_peaks"]


def frame_energy(samples: np.ndarray, frame: int = 80, hop: int = 40) -> np.ndarray:
    """Short-time energy: mean square per frame of *frame* samples.

    Args:
        samples: the waveform.
        frame: frame length in samples (80 = 10 ms at 8 kHz).
        hop: hop size in samples.

    Returns:
        One energy value per frame position.
    """
    if frame < 1 or hop < 1:
        raise ValueError("frame and hop must be >= 1")
    arr = np.asarray(samples, dtype=np.float64)
    if len(arr) < frame:
        return np.array([float(np.mean(arr**2))]) if len(arr) else np.zeros(0)
    n_frames = 1 + (len(arr) - frame) // hop
    out = np.empty(n_frames)
    for i in range(n_frames):
        window = arr[i * hop : i * hop + frame]
        out[i] = float(np.mean(window**2))
    return out


def power_spectrum(samples: np.ndarray, sample_rate: int) -> tuple[np.ndarray, np.ndarray]:
    """Windowed power spectrum of a segment.

    Returns:
        ``(frequencies, power)`` — rFFT bins in Hz and their power.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("cannot take the spectrum of an empty segment")
    windowed = arr * np.hanning(len(arr))
    spectrum = np.abs(np.fft.rfft(windowed)) ** 2
    frequencies = np.fft.rfftfreq(len(arr), d=1.0 / sample_rate)
    return frequencies, spectrum


def spectral_peaks(
    samples: np.ndarray, sample_rate: int, n_peaks: int = 3, min_separation: float = 150.0
) -> list[float]:
    """The *n_peaks* strongest well-separated spectral peaks (Hz).

    Greedy selection by power with a minimum frequency separation — the
    segment-level formant estimate the keyword spotter matches against
    word signatures.
    """
    if n_peaks < 1:
        raise ValueError("n_peaks must be >= 1")
    frequencies, power = power_spectrum(samples, sample_rate)
    order = np.argsort(power)[::-1]
    peaks: list[float] = []
    for index in order:
        frequency = float(frequencies[index])
        if frequency < 100.0:
            continue  # DC / rumble
        if all(abs(frequency - p) >= min_separation for p in peaks):
            peaks.append(frequency)
        if len(peaks) == n_peaks:
            break
    return sorted(peaks)
