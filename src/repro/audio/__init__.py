"""Synthetic audio interviews and keyword spotting.

The demo site "contains multimedia fragments, like audio files of
interviews" whose hidden content the system makes searchable.  The 2002
audio is gone, so this package synthesises it: each vocabulary word has
a deterministic spectral signature (a formant triple), utterances are
word signals separated by silence, and a keyword spotter recovers the
words from the waveform — the audio analogue of the video pipeline.

- :mod:`repro.audio.signal` — the :class:`AudioSignal` container,
- :mod:`repro.audio.synth` — word signatures and utterance synthesis,
- :mod:`repro.audio.features` — frame energy and spectral features,
- :mod:`repro.audio.segmenter` — energy-based word segmentation,
- :mod:`repro.audio.spotting` — template-matching keyword spotting.

The interview feature grammar in :mod:`repro.grammar.interview` drives
this pipeline through the same FDE as the tennis video grammar — the
Acoi claim that the approach handles "multimedia documents in general".
"""

from repro.audio.signal import AudioSignal, SAMPLE_RATE
from repro.audio.synth import WordSignature, word_signature, synthesize_word, synthesize_utterance
from repro.audio.features import frame_energy, power_spectrum, spectral_peaks
from repro.audio.segmenter import WordSegment, segment_words
from repro.audio.spotting import KeywordSpotter

__all__ = [
    "AudioSignal",
    "SAMPLE_RATE",
    "WordSignature",
    "word_signature",
    "synthesize_word",
    "synthesize_utterance",
    "frame_energy",
    "power_spectrum",
    "spectral_peaks",
    "WordSegment",
    "segment_words",
    "KeywordSpotter",
]
