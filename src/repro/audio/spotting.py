"""Template-matching keyword spotting.

The spotter knows a vocabulary; each word's template is its synthesised
spectrum.  A detected segment is classified as the vocabulary word whose
formant signature best matches the segment's spectral peaks, with an
acceptance threshold so out-of-vocabulary bursts come back as ``None``
(an open vocabulary, as real interview audio demands).
"""

from __future__ import annotations

import numpy as np

from repro.audio.features import spectral_peaks
from repro.audio.segmenter import WordSegment, segment_words
from repro.audio.signal import AudioSignal
from repro.audio.synth import word_signature

__all__ = ["KeywordSpotter"]


class KeywordSpotter:
    """Spot known words in an utterance.

    Args:
        vocabulary: the words the spotter can recognise.
        max_distance: mean per-formant distance (Hz) above which a
            segment is rejected as out-of-vocabulary.  The default sits
            between the FFT resolution (~15 Hz on a word segment) and
            the signature grid spacing (40 Hz), so in-vocabulary words
            match and neighbours on the grid do not.
    """

    def __init__(self, vocabulary: list[str], max_distance: float = 30.0):
        if not vocabulary:
            raise ValueError("the spotter needs a non-empty vocabulary")
        if max_distance <= 0:
            raise ValueError("max_distance must be positive")
        self.max_distance = max_distance
        self._signatures = {
            word.lower(): np.asarray(word_signature(word).formants)
            for word in vocabulary
        }

    @property
    def vocabulary(self) -> list[str]:
        return sorted(self._signatures)

    def classify_segment(
        self, signal: AudioSignal, segment: WordSegment
    ) -> tuple[str | None, float]:
        """Best vocabulary word for one segment.

        Returns:
            ``(word, distance)``; word is ``None`` when nothing matches
            within ``max_distance``.
        """
        samples = signal.samples[segment.start : segment.stop]
        peaks = spectral_peaks(samples, signal.sample_rate, n_peaks=3)
        if len(peaks) < 3:
            return None, float("inf")
        observed = np.asarray(peaks)
        best_word = None
        best_distance = float("inf")
        for word, formants in self._signatures.items():
            distance = float(np.mean(np.abs(observed - formants)))
            if distance < best_distance:
                best_word, best_distance = word, distance
        if best_distance > self.max_distance:
            return None, best_distance
        return best_word, best_distance

    def transcribe(self, signal: AudioSignal) -> list[tuple[WordSegment, str | None]]:
        """Segment the utterance and classify every segment."""
        return [
            (segment, self.classify_segment(signal, segment)[0])
            for segment in segment_words(signal)
        ]

    def spot(self, signal: AudioSignal, keyword: str) -> list[WordSegment]:
        """Segments where *keyword* occurs."""
        wanted = keyword.lower()
        if wanted not in self._signatures:
            raise KeyError(f"{keyword!r} is not in the spotter's vocabulary")
        return [
            segment
            for segment, word in self.transcribe(signal)
            if word == wanted
        ]
