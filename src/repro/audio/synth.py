"""Word synthesis: deterministic spectral signatures.

Every vocabulary word maps (by a stable hash) to a triple of formant
frequencies in disjoint bands — the word's *signature*.  A word sounds
as the sum of its three formant sinusoids under a Hann envelope; an
utterance is its words separated by silence.  The synthesis is the
inverse problem the keyword spotter solves, exactly as the broadcast
generator is the inverse of the video pipeline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.audio.signal import SAMPLE_RATE, AudioSignal

__all__ = ["WordSignature", "word_signature", "synthesize_word", "synthesize_utterance"]

#: Formant bands (Hz): one formant per band keeps signatures separable.
_BANDS = ((300.0, 900.0), (1000.0, 2000.0), (2200.0, 3600.0))
#: Frequency grid step inside each band; coarse enough that distinct
#: words rarely collide, fine enough for a large effective vocabulary.
_GRID = 40.0

WORD_SECONDS = 0.06
GAP_SECONDS = 0.03


@dataclass(frozen=True)
class WordSignature:
    """A word's formant triple (Hz)."""

    word: str
    formants: tuple[float, float, float]


def word_signature(word: str) -> WordSignature:
    """The deterministic signature of a (lowercased) word."""
    normalized = word.lower()
    digest = hashlib.sha256(normalized.encode()).digest()
    formants = []
    for band_index, (low, high) in enumerate(_BANDS):
        steps = int((high - low) / _GRID)
        value = int.from_bytes(digest[band_index * 4 : band_index * 4 + 4], "big")
        formants.append(low + (value % (steps + 1)) * _GRID)
    return WordSignature(word=normalized, formants=tuple(formants))


def synthesize_word(
    word: str, sample_rate: int = SAMPLE_RATE, seconds: float = WORD_SECONDS
) -> np.ndarray:
    """Samples of one word: three enveloped formant sinusoids."""
    signature = word_signature(word)
    n = int(seconds * sample_rate)
    t = np.arange(n) / sample_rate
    envelope = np.hanning(n)
    samples = np.zeros(n)
    for k, frequency in enumerate(signature.formants):
        amplitude = 0.5 / (k + 1)  # falling formant amplitudes, speech-like
        samples += amplitude * np.sin(2.0 * np.pi * frequency * t)
    samples *= envelope
    peak = np.abs(samples).max()
    return samples / peak * 0.8 if peak > 0 else samples


def synthesize_utterance(
    words: list[str],
    sample_rate: int = SAMPLE_RATE,
    name: str = "utterance",
) -> tuple[AudioSignal, list[tuple[int, int, str]]]:
    """Synthesise an utterance and its word-boundary ground truth.

    Returns:
        ``(signal, truth)`` where truth lists ``(start_sample,
        stop_sample, word)`` for every word.
    """
    if not words:
        raise ValueError("an utterance needs at least one word")
    gap = np.zeros(int(GAP_SECONDS * sample_rate))
    pieces = [gap]
    truth: list[tuple[int, int, str]] = []
    cursor = len(gap)
    for word in words:
        samples = synthesize_word(word, sample_rate=sample_rate)
        truth.append((cursor, cursor + len(samples), word.lower()))
        pieces.append(samples)
        cursor += len(samples)
        pieces.append(gap)
        cursor += len(gap)
    return AudioSignal(np.concatenate(pieces), sample_rate, name=name), truth
