"""Fault-injection harness for the Feature Detector Engine.

Production detectors fail in ways unit fixtures do not: on *specific*
videos, a *bounded* number of times, or by hanging.  This module injects
exactly those failures into a live
:class:`~repro.grammar.detectors.DetectorRegistry` so tests and the E12
benchmark can measure the runtime's behaviour under controlled fault
rates:

- :class:`FaultSpec` — one fault: "detector X, on video Y, for the
  first N attempts, raise error class E" (or hang for S seconds before
  running, which trips the runner's cooperative timeout);
- :class:`FaultPlan` — an ordered collection of specs, with
  :meth:`FaultPlan.random` sampling Bernoulli faults over a
  (detector x video) grid for failure-rate sweeps;
- :class:`FaultInjector` — installs a plan by wrapping the registered
  implementations *in place* (versions untouched, so cache
  revalidation semantics are unchanged) and records every injection.

Injection keys on ``context.clip.name``, the video the FDE is indexing.

Process *crashes* are a different fault class from detector failures:
they kill the storage write path mid-flight.  The :class:`CrashPoint`
harness (implemented in :mod:`repro.storage.crashpoints`, re-exported
here) arms named points in the snapshot/journal write protocol —
``snapshot-pre-replace``, ``snapshot-post-temp-write``,
``journal-mid-append``, ... (see :data:`WRITE_POINTS`) — and the next
write through an armed point raises :class:`SimulatedCrash`, a
``BaseException`` no recovery code can swallow.  The E13 durability
benchmark and the crash-recovery test matrix kill the writer at every
point and assert the library reloads to a consistent state.

The *query side* has its own fault surface: a slow or broken pipeline
stage inside :meth:`DigitalLibraryEngine.search`.  :class:`QueryFaultSpec`
/ :class:`QueryFaultPlan` / :class:`QueryFaultInjector` inject
deterministic latency or exceptions at stage entry through the engine's
``stage_hook``, which is what the E16 resilience benchmark and the
``repro serve-bench --soak`` chaos harness use to provoke deadline
expiry, circuit-breaker trips and the degradation ladder.

Scatter-gather serving adds a fourth fault class: *whole shards* going
slow, wrong, or away.  :class:`ShardFaultSpec` / :class:`ShardFaultPlan`
describe per-shard faults — delay a shard's query handling, make it
error, kill its worker process outright, or make it report a stale
generation — as plain picklable data, so a plan crosses the process
boundary into :mod:`repro.library.sharding` workers at spawn time.
:class:`ShardFaultState` is the worker-side delivery counter.  The E17
benchmark and the ``repro serve-sharded --soak`` harness use these to
provoke partial coverage, hedged fan-out and quarantine/recovery.

Live streaming ingest adds a fifth: *the chunk feed itself* misbehaving.
:class:`StreamFaultSpec` / :class:`StreamFaultPlan` describe per-stream
feed faults — a chunk arriving late (``delay``), torn into fragments
(``torn``), re-delivered (``duplicate``), or the consumer dying
mid-commit (``kill``, which arms one of the :data:`STREAM_POINTS` crash
points so the next chunk commit raises :class:`SimulatedCrash`).
:class:`StreamFaultState` sits between the producer and
``StreamIngestor.offer``/``StreamSession.push_chunk``: call
:meth:`StreamFaultState.mangle` on each chunk and deliver what it
returns.  The E20 benchmark and ``repro stream --soak`` use these to
prove exactly-once resume, offset dedupe and the freshness SLO under
feed chaos.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.grammar.detectors import DetectorRegistry, IndexingContext
from repro.grammar.runtime import TransientDetectorError
from repro.storage.crashpoints import (  # noqa: F401 — re-exported harness
    JOURNAL_POINTS,
    SNAPSHOT_POINTS,
    STREAM_POINTS,
    WRITE_POINTS,
    CrashPoint,
    SimulatedCrash,
)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "StageFault",
    "QueryFaultSpec",
    "QueryFaultPlan",
    "QueryFaultInjector",
    "ShardFaultSpec",
    "ShardFaultPlan",
    "ShardFaultState",
    "SHARD_FAULT_MODES",
    "StreamFaultSpec",
    "StreamFaultPlan",
    "StreamFaultState",
    "STREAM_FAULT_MODES",
    "CrashPoint",
    "SimulatedCrash",
    "SNAPSHOT_POINTS",
    "JOURNAL_POINTS",
    "STREAM_POINTS",
    "WRITE_POINTS",
]

HANG = "hang"


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    Attributes:
        detector: the detector to sabotage.
        video: clip name the fault applies to (``None`` = every video).
        times: how many matching attempts fail before the detector
            behaves again (``None`` = every attempt, forever).
        error: exception class to raise, or the string ``"hang"`` to
            sleep for :attr:`hang_seconds` before running the real
            implementation (trips a cooperative per-attempt timeout).
        hang_seconds: hang duration for ``error="hang"``.
        jitter_seconds: extra sleep in ``[0, jitter_seconds)`` added on
            top of :attr:`hang_seconds`, drawn deterministically from
            :attr:`jitter_seed` and the (detector, video, attempt)
            triple — same delays on every run, but different delays per
            invocation, which shakes out scheduler interleavings.
        jitter_seed: seed for the jitter draw.
        message: override for the raised error's message.
    """

    detector: str
    video: str | None = None
    times: int | None = 1
    error: type[BaseException] | str = TransientDetectorError
    hang_seconds: float = 0.0
    jitter_seconds: float = 0.0
    jitter_seed: int = 0
    message: str = ""

    def __post_init__(self) -> None:
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if isinstance(self.error, str) and self.error != HANG:
            raise ValueError(f"error must be an exception class or {HANG!r}")
        if self.jitter_seconds < 0:
            raise ValueError(f"jitter_seconds must be >= 0, got {self.jitter_seconds}")

    def matches(self, detector: str, video: str) -> bool:
        return detector == self.detector and (self.video is None or self.video == video)

    def delay_for(self, video: str, attempt: int) -> float:
        """The (deterministic) sleep a hang/latency delivery applies."""
        delay = self.hang_seconds
        if self.jitter_seconds > 0:
            draw = random.Random(f"{self.jitter_seed}:{self.detector}:{video}:{attempt}")
            delay += draw.uniform(0.0, self.jitter_seconds)
        return delay

    def make_error(self, video: str) -> BaseException:
        message = self.message or f"injected fault in {self.detector!r} on {video!r}"
        if isinstance(self.error, str):
            raise AssertionError("hang specs do not raise")  # pragma: no cover
        try:
            return self.error(message, detector=self.detector)  # taxonomy classes
        except TypeError:
            return self.error(message)


@dataclass
class FaultPlan:
    """An ordered set of :class:`FaultSpec` to install together."""

    specs: list[FaultSpec] = field(default_factory=list)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    @property
    def detectors(self) -> list[str]:
        """Targeted detector names, first-seen order."""
        out: list[str] = []
        for spec in self.specs:
            if spec.detector not in out:
                out.append(spec.detector)
        return out

    @classmethod
    def random(
        cls,
        detectors: list[str],
        videos: list[str],
        rate: float,
        seed: int = 0,
        error: type[BaseException] | str = TransientDetectorError,
        times: int | None = 1,
        hang_seconds: float = 0.0,
    ) -> "FaultPlan":
        """Bernoulli-sample faults over the (detector x video) grid.

        Each pair independently receives one :class:`FaultSpec` with
        probability *rate*; deterministic in *seed*.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        rng = random.Random(seed)
        plan = cls()
        for detector in detectors:
            for video in videos:
                if rng.random() < rate:
                    plan.add(
                        FaultSpec(
                            detector=detector,
                            video=video,
                            times=times,
                            error=error,
                            hang_seconds=hang_seconds,
                        )
                    )
        return plan

    @classmethod
    def latency(
        cls,
        detectors: list[str],
        seconds: float,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """Slow every listed detector down on every video, forever.

        Models black-box detector processes whose cost is dominated by
        I/O or an external tool: each invocation sleeps *seconds* (plus
        a deterministic jitter draw in ``[0, jitter)``) before running
        the real implementation.  Sleeps release the GIL, so this is
        what the E14 benchmark uses to measure scheduler overlap, and —
        with *jitter* — what the determinism tests use to scramble
        thread interleavings without changing any result.
        """
        plan = cls()
        for detector in detectors:
            plan.add(
                FaultSpec(
                    detector=detector,
                    video=None,
                    times=None,
                    error=HANG,
                    hang_seconds=seconds,
                    jitter_seconds=jitter,
                    jitter_seed=seed,
                )
            )
        return plan

    def install(self, registry: DetectorRegistry, sleep=time.sleep) -> "FaultInjector":
        """Wire the plan into *registry*; returns the live injector."""
        injector = FaultInjector(self, registry, sleep=sleep)
        injector.install()
        return injector


@dataclass
class InjectionEvent:
    """Log record of one fault actually delivered."""

    detector: str
    video: str
    mode: str  # "raise" or "hang"


class FaultInjector:
    """Wraps registered detector implementations to deliver a plan.

    Wrapping goes through :meth:`DetectorRegistry.wrap`, which replaces
    the callable without bumping the version — injected faults must not
    look like implementation changes to the revalidation machinery.
    Use :meth:`uninstall` (or the context-manager form) to restore the
    original implementations.

    Delivery is thread-safe: fired counters and the injection log are
    lock-protected, so faults hit exactly as planned when the engine
    runs detectors (or whole videos) on worker threads.  Note that
    :attr:`log` *order* reflects wall-clock delivery and is therefore
    not deterministic under parallelism — compare its contents, not its
    sequence.
    """

    def __init__(self, plan: FaultPlan, registry: DetectorRegistry, sleep=time.sleep):
        self.plan = plan
        self.registry = registry
        self._sleep = sleep
        self._fired: dict[tuple[int, str], int] = {}  # (spec index, video) -> count
        self._originals: dict[str, object] = {}
        self._lock = threading.Lock()
        self.log: list[InjectionEvent] = []

    # -- lifecycle ------------------------------------------------------ #

    def install(self) -> None:
        if self._originals:
            raise RuntimeError("fault plan already installed")
        for name in self.plan.detectors:
            if name not in self.registry:
                raise KeyError(f"cannot inject into unregistered detector {name!r}")
            self._originals[name] = self.registry.fn(name)
            self.registry.wrap(name, lambda fn, name=name: self._wrapped(name, fn))

    def uninstall(self) -> None:
        """Restore the original implementations (versions untouched)."""
        for name, fn in self._originals.items():
            self.registry.wrap(name, lambda _wrapped, fn=fn: fn)
        self._originals.clear()

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- delivery ------------------------------------------------------- #

    @property
    def injected(self) -> int:
        """How many faults have been delivered so far."""
        return len(self.log)

    def _next_fault(self, detector: str, video: str) -> tuple[FaultSpec | None, int]:
        with self._lock:
            for index, spec in enumerate(self.plan.specs):
                if not spec.matches(detector, video):
                    continue
                key = (index, video)
                fired = self._fired.get(key, 0)
                if spec.times is not None and fired >= spec.times:
                    continue
                self._fired[key] = fired + 1
                return spec, fired
        return None, 0

    def _wrapped(self, name: str, fn):
        def run(context: IndexingContext) -> None:
            video = getattr(context.clip, "name", "<unnamed>")
            spec, attempt = self._next_fault(name, video)
            if spec is not None:
                if spec.error == HANG:
                    with self._lock:
                        self.log.append(InjectionEvent(name, video, "hang"))
                    self._sleep(spec.delay_for(video, attempt))
                else:
                    with self._lock:
                        self.log.append(InjectionEvent(name, video, "raise"))
                    raise spec.make_error(video)
            fn(context)

        return run


# ---------------------------------------------------------------------- #
# Query-side chaos: stage latency and stage errors
# ---------------------------------------------------------------------- #


class StageFault(Exception):
    """The default exception a query-stage fault raises.

    Carries the stage name so the serving layer's degradation ladder
    can attribute the failure (mirroring ``DeadlineExceeded.stage``).
    """

    def __init__(self, message: str, *, stage: str | None = None) -> None:
        super().__init__(message)
        self.stage = stage


@dataclass(frozen=True)
class QueryFaultSpec:
    """One injected query-pipeline fault, delivered at stage entry.

    Attributes:
        stage: the pipeline stage to sabotage (``concept_filter``,
            ``text_topn``, ``scene_scan``, ``sequence_match``,
            ``rank_merge``).
        latency_seconds: sleep this long before the stage runs (eats the
            query's budget — the soak harness's main lever).
        jitter_seconds: extra sleep in ``[0, jitter_seconds)``, drawn
            deterministically from :attr:`jitter_seed` and the
            (stage, attempt) pair — same delays on every run, different
            per delivery.
        jitter_seed: seed for the jitter draw.
        error: exception class to raise after any sleep (``None`` =
            latency only).
        times: deliveries before the stage behaves again (``None`` =
            every entry, forever).
        message: override for the raised error's message.
    """

    stage: str
    latency_seconds: float = 0.0
    jitter_seconds: float = 0.0
    jitter_seed: int = 0
    error: type[BaseException] | None = None
    times: int | None = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ValueError(f"latency_seconds must be >= 0, got {self.latency_seconds}")
        if self.jitter_seconds < 0:
            raise ValueError(f"jitter_seconds must be >= 0, got {self.jitter_seconds}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")

    def delay_for(self, attempt: int) -> float:
        """The (deterministic) sleep one delivery applies."""
        delay = self.latency_seconds
        if self.jitter_seconds > 0:
            draw = random.Random(f"{self.jitter_seed}:{self.stage}:{attempt}")
            delay += draw.uniform(0.0, self.jitter_seconds)
        return delay

    def make_error(self) -> BaseException:
        message = self.message or f"injected fault in query stage {self.stage!r}"
        assert self.error is not None
        try:
            return self.error(message, stage=self.stage)  # StageFault-like
        except TypeError:
            return self.error(message)


@dataclass
class QueryFaultPlan:
    """An ordered set of :class:`QueryFaultSpec` to install together."""

    specs: list[QueryFaultSpec] = field(default_factory=list)

    def add(self, spec: QueryFaultSpec) -> "QueryFaultPlan":
        self.specs.append(spec)
        return self

    @classmethod
    def latency(
        cls,
        stages: list[str],
        seconds: float,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> "QueryFaultPlan":
        """Slow every listed stage down on every query, forever."""
        plan = cls()
        for stage in stages:
            plan.add(
                QueryFaultSpec(
                    stage=stage,
                    latency_seconds=seconds,
                    jitter_seconds=jitter,
                    jitter_seed=seed,
                )
            )
        return plan

    @classmethod
    def failing(
        cls,
        stages: list[str],
        error: type[BaseException] = StageFault,
        times: int | None = 1,
    ) -> "QueryFaultPlan":
        """Make every listed stage raise *error* for its first *times* entries."""
        plan = cls()
        for stage in stages:
            plan.add(QueryFaultSpec(stage=stage, error=error, times=times))
        return plan

    def install(self, engine, sleep=time.sleep) -> "QueryFaultInjector":
        """Wire the plan into *engine*'s ``stage_hook``; returns the injector."""
        injector = QueryFaultInjector(self, engine, sleep=sleep)
        injector.install()
        return injector


class QueryFaultInjector:
    """Delivers a :class:`QueryFaultPlan` through an engine's stage hook.

    The hook fires at stage *entry*, before the stage's budget check, so
    injected latency is charged to the stage that "hung" — exactly how a
    slow text index or a pathological sequence scan would bill.
    Delivery is thread-safe and the log is lock-protected (compare its
    contents, not its order, under concurrency).
    """

    def __init__(self, plan: QueryFaultPlan, engine, sleep=time.sleep):
        self.plan = plan
        self.engine = engine
        self._sleep = sleep
        self._fired: dict[int, int] = {}  # spec index -> deliveries
        self._installed = False
        self._lock = threading.Lock()
        self.log: list[InjectionEvent] = []

    # -- lifecycle ------------------------------------------------------ #

    def install(self) -> None:
        if self._installed:
            raise RuntimeError("query fault plan already installed")
        if self.engine.stage_hook is not None:
            raise RuntimeError("engine already has a stage_hook installed")
        self.engine.stage_hook = self._deliver
        self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            self.engine.stage_hook = None
            self._installed = False

    def __enter__(self) -> "QueryFaultInjector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- delivery ------------------------------------------------------- #

    @property
    def injected(self) -> int:
        """How many faults have been delivered so far."""
        return len(self.log)

    def _next_fault(self, stage: str) -> tuple[QueryFaultSpec | None, int]:
        with self._lock:
            for index, spec in enumerate(self.plan.specs):
                if spec.stage != stage:
                    continue
                fired = self._fired.get(index, 0)
                if spec.times is not None and fired >= spec.times:
                    continue
                self._fired[index] = fired + 1
                return spec, fired
        return None, 0

    def _deliver(self, stage: str) -> None:
        spec, attempt = self._next_fault(stage)
        if spec is None:
            return
        delay = spec.delay_for(attempt)
        if delay > 0:
            with self._lock:
                self.log.append(InjectionEvent(spec.stage, "<query>", "hang"))
            self._sleep(delay)
        if spec.error is not None:
            with self._lock:
                self.log.append(InjectionEvent(spec.stage, "<query>", "raise"))
            raise spec.make_error()


# ---------------------------------------------------------------------- #
# Shard-level chaos: slow, broken, dead or lying shard workers
# ---------------------------------------------------------------------- #

#: The shard fault modes :class:`ShardFaultSpec` accepts.
SHARD_FAULT_MODES = ("delay", "error", "kill", "stale_generation")


@dataclass(frozen=True)
class ShardFaultSpec:
    """One injected shard-level fault, delivered on query handling.

    Plain picklable data — a plan is handed to a shard worker process at
    spawn time and delivered *inside* the worker (so a ``delay`` really
    stalls that shard's reply, a ``kill`` really takes the process down,
    and the coordinator exercises its production gather/quarantine
    paths, not a mock).

    Attributes:
        shard: the shard id the fault applies to (``None`` = every
            shard — useful for uniform background latency).
        replica: the replica index within the shard's group the fault
            applies to (``None`` = every replica).  Replica-addressed
            chaos is how the E18 availability soak kills exactly one
            replica per group while its siblings keep serving.
        mode: ``"delay"`` (sleep before evaluating), ``"error"`` (reply
            with an injected error), ``"kill"`` (hard-exit the worker
            process, no goodbye), or ``"stale_generation"`` (answer
            normally but report ``generation - generation_lag``,
            modelling a replica that missed commits).
        after: skip the first *after* matching query deliveries (lets a
            soak warm up healthy before the fault lands).
        times: deliveries before the shard behaves again (``None`` =
            every matching delivery, forever; ``kill`` is naturally
            once per process lifetime).
        delay_seconds: sleep duration for ``mode="delay"``.
        generation_lag: how many generations ``stale_generation``
            under-reports (>= 1).
        message: override for the injected error's message.
    """

    shard: int | None
    mode: str = "delay"
    after: int = 0
    times: int | None = None
    delay_seconds: float = 0.0
    generation_lag: int = 1
    message: str = ""
    replica: int | None = None

    def __post_init__(self) -> None:
        if self.shard is not None and self.shard < 0:
            raise ValueError(f"shard must be >= 0 or None, got {self.shard}")
        if self.replica is not None and self.replica < 0:
            raise ValueError(f"replica must be >= 0 or None, got {self.replica}")
        if self.mode not in SHARD_FAULT_MODES:
            raise ValueError(
                f"mode must be one of {SHARD_FAULT_MODES}, got {self.mode!r}"
            )
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.generation_lag < 1:
            raise ValueError(f"generation_lag must be >= 1, got {self.generation_lag}")

    def matches(self, shard: int, replica: int | None = None) -> bool:
        """Does the spec apply to this worker?

        With *replica* omitted the check is shard-only (a coarse "can
        this spec ever fire somewhere in the group"); a worker passes
        its replica index so replica-addressed specs land on exactly
        one process.
        """
        if self.shard is not None and self.shard != shard:
            return False
        if replica is None or self.replica is None:
            return True
        return self.replica == replica


@dataclass(frozen=True)
class ShardFaultPlan:
    """An ordered, picklable set of :class:`ShardFaultSpec`.

    Frozen (tuple-backed) because the whole plan is serialized into each
    worker at spawn; build with the constructors below or pass specs
    directly.
    """

    specs: tuple[ShardFaultSpec, ...] = ()

    @classmethod
    def straggler(
        cls,
        shard: int,
        seconds: float,
        times: int | None = None,
        after: int = 0,
        replica: int | None = None,
    ) -> "ShardFaultPlan":
        """Make *shard* (or one replica of it) sleep before each query."""
        return cls(
            specs=(
                ShardFaultSpec(
                    shard=shard,
                    mode="delay",
                    delay_seconds=seconds,
                    times=times,
                    after=after,
                    replica=replica,
                ),
            )
        )

    @classmethod
    def dead(
        cls, shard: int, after: int = 0, replica: int | None = None
    ) -> "ShardFaultPlan":
        """Kill *shard*'s worker (or one replica) on its next matching query."""
        return cls(
            specs=(
                ShardFaultSpec(shard=shard, mode="kill", after=after, replica=replica),
            )
        )

    @classmethod
    def failing(
        cls,
        shard: int,
        times: int | None = 1,
        after: int = 0,
        replica: int | None = None,
    ) -> "ShardFaultPlan":
        """Make *shard* (or one replica of it) reply with an injected error."""
        return cls(
            specs=(
                ShardFaultSpec(
                    shard=shard, mode="error", times=times, after=after, replica=replica
                ),
            )
        )

    @classmethod
    def stale(
        cls,
        shard: int,
        lag: int = 1,
        times: int | None = None,
        after: int = 0,
        replica: int | None = None,
    ) -> "ShardFaultPlan":
        """Make *shard* (or one replica of it) under-report its generation."""
        return cls(
            specs=(
                ShardFaultSpec(
                    shard=shard,
                    mode="stale_generation",
                    generation_lag=lag,
                    times=times,
                    after=after,
                    replica=replica,
                ),
            )
        )

    def extend(self, other: "ShardFaultPlan") -> "ShardFaultPlan":
        return ShardFaultPlan(specs=self.specs + other.specs)

    def for_shard(self, shard: int) -> tuple[ShardFaultSpec, ...]:
        """The specs that can ever fire somewhere in *shard*'s group."""
        return tuple(spec for spec in self.specs if spec.matches(shard))

    def for_worker(self, shard: int, replica: int) -> tuple[ShardFaultSpec, ...]:
        """The specs that can fire on the ``(shard, replica)`` worker."""
        return tuple(spec for spec in self.specs if spec.matches(shard, replica))


class ShardFaultState:
    """Worker-side delivery counter for one worker's fault specs.

    Lives inside the shard worker process; :meth:`next_fault` is called
    once per *query* delivery (pings and index commands are exempt, so
    the coordinator's half-open probes can observe genuine recovery).
    Thread-safe because workers evaluate queries on a small thread pool.
    The optional *replica* index narrows replica-addressed specs to
    this worker (``None`` keeps the shard-wide pre-replication view).
    """

    def __init__(
        self,
        shard: int,
        specs: tuple[ShardFaultSpec, ...],
        replica: int | None = None,
    ) -> None:
        self.shard = shard
        self.replica = replica
        self.specs = tuple(spec for spec in specs if spec.matches(shard, replica))
        self._seen: dict[int, int] = {}  # spec index -> matching deliveries
        self._fired: dict[int, int] = {}  # spec index -> faults delivered
        self._lock = threading.Lock()
        self.delivered = 0

    def next_fault(self) -> ShardFaultSpec | None:
        """The spec to deliver on this query, advancing all counters."""
        with self._lock:
            chosen: ShardFaultSpec | None = None
            for index, spec in enumerate(self.specs):
                seen = self._seen.get(index, 0)
                self._seen[index] = seen + 1
                if chosen is not None:
                    continue
                if seen < spec.after:
                    continue
                fired = self._fired.get(index, 0)
                if spec.times is not None and fired >= spec.times:
                    continue
                self._fired[index] = fired + 1
                chosen = spec
            if chosen is not None:
                self.delivered += 1
            return chosen


# ---------------------------------------------------------------------- #
# Stream-level chaos: late, torn, duplicated chunks and mid-commit kills
# ---------------------------------------------------------------------- #

#: The stream fault modes :class:`StreamFaultSpec` accepts.
STREAM_FAULT_MODES = ("delay", "torn", "duplicate", "kill")


@dataclass(frozen=True)
class StreamFaultSpec:
    """One injected chunk-feed fault, delivered at chunk delivery.

    Attributes:
        stream: the stream the fault applies to (``None`` = every
            stream).
        mode: ``"delay"`` (sleep before delivering — arrival-to-
            queryable freshness suffers), ``"torn"`` (deliver the chunk
            as two half-size fragments, only the second carrying the
            original ``final`` flag), ``"duplicate"`` (deliver the chunk
            twice — offset dedupe must drop the copy), or ``"kill"``
            (arm :attr:`point` for one trip, so the *consumer* dies
            mid-commit with :class:`SimulatedCrash` and recovery resumes
            from the last committed chunk).
        after: skip the first *after* matching chunk deliveries.
        times: deliveries before the feed behaves again (``None`` =
            every matching delivery, forever).
        delay_seconds: sleep duration for ``mode="delay"``.
        point: the crash point ``"kill"`` arms — one of
            :data:`STREAM_POINTS` (or any :data:`WRITE_POINTS` entry).
    """

    stream: str | None = None
    mode: str = "delay"
    after: int = 0
    times: int | None = 1
    delay_seconds: float = 0.0
    point: str = "chunk-pre-commit"

    def __post_init__(self) -> None:
        if self.mode not in STREAM_FAULT_MODES:
            raise ValueError(
                f"mode must be one of {STREAM_FAULT_MODES}, got {self.mode!r}"
            )
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.mode == "kill" and self.point not in WRITE_POINTS:
            raise ValueError(f"unknown crash point {self.point!r}; see WRITE_POINTS")

    def matches(self, stream: str) -> bool:
        return self.stream is None or self.stream == stream


@dataclass(frozen=True)
class StreamFaultPlan:
    """An ordered set of :class:`StreamFaultSpec` for one chunk feed."""

    specs: tuple[StreamFaultSpec, ...] = ()

    @classmethod
    def late(
        cls, seconds: float, stream: str | None = None, times: int | None = None,
        after: int = 0,
    ) -> "StreamFaultPlan":
        """Delay matching chunk deliveries by *seconds* each."""
        return cls(specs=(StreamFaultSpec(
            stream=stream, mode="delay", delay_seconds=seconds, times=times,
            after=after,
        ),))

    @classmethod
    def torn(
        cls, stream: str | None = None, times: int | None = None, after: int = 0
    ) -> "StreamFaultPlan":
        """Tear matching chunks into two fragments."""
        return cls(specs=(StreamFaultSpec(
            stream=stream, mode="torn", times=times, after=after,
        ),))

    @classmethod
    def duplicated(
        cls, stream: str | None = None, times: int | None = None, after: int = 0
    ) -> "StreamFaultPlan":
        """Re-deliver matching chunks (exactly-once must dedupe them)."""
        return cls(specs=(StreamFaultSpec(
            stream=stream, mode="duplicate", times=times, after=after,
        ),))

    @classmethod
    def killed(
        cls, point: str = "chunk-pre-commit", stream: str | None = None,
        after: int = 0,
    ) -> "StreamFaultPlan":
        """Kill the consumer at *point* during one matching chunk's commit."""
        return cls(specs=(StreamFaultSpec(
            stream=stream, mode="kill", point=point, times=1, after=after,
        ),))

    def extend(self, other: "StreamFaultPlan") -> "StreamFaultPlan":
        return StreamFaultPlan(specs=self.specs + other.specs)

    def state(self, sleep=time.sleep) -> "StreamFaultState":
        return StreamFaultState(self, sleep=sleep)


class StreamFaultState:
    """Delivers a :class:`StreamFaultPlan` into a chunk feed.

    The producer routes every chunk through :meth:`mangle` and offers
    whatever comes back, in order.  Thread-safe; ``kill`` delivery arms
    the spec's crash point for exactly one trip (the armed point stays
    active until it fires or :meth:`disarm` runs).
    """

    def __init__(self, plan: StreamFaultPlan, sleep=time.sleep):
        self.plan = plan
        self._sleep = sleep
        self._seen: dict[int, int] = {}
        self._fired: dict[int, int] = {}
        self._armed: list[CrashPoint] = []
        self._lock = threading.Lock()
        self.log: list[InjectionEvent] = []

    @property
    def injected(self) -> int:
        return len(self.log)

    def _next_fault(self, stream: str) -> StreamFaultSpec | None:
        with self._lock:
            chosen: StreamFaultSpec | None = None
            for index, spec in enumerate(self.plan.specs):
                if not spec.matches(stream):
                    continue
                seen = self._seen.get(index, 0)
                self._seen[index] = seen + 1
                if chosen is not None:
                    continue
                if seen < spec.after:
                    continue
                fired = self._fired.get(index, 0)
                if spec.times is not None and fired >= spec.times:
                    continue
                self._fired[index] = fired + 1
                chosen = spec
            return chosen

    def mangle(self, chunk) -> list:
        """The chunks to actually deliver in place of *chunk*."""
        from dataclasses import replace as _replace

        spec = self._next_fault(chunk.stream)
        if spec is None:
            return [chunk]
        with self._lock:
            self.log.append(InjectionEvent("stream", chunk.stream, spec.mode))
        if spec.mode == "delay":
            self._sleep(spec.delay_seconds)
            return [chunk]
        if spec.mode == "duplicate":
            return [chunk, chunk]
        if spec.mode == "torn":
            if len(chunk) < 2:
                return [chunk]
            half = len(chunk) // 2
            head = _replace(chunk, frames=chunk.frames[:half], final=False)
            tail = _replace(
                chunk, frames=chunk.frames[half:], start=chunk.start + half
            )
            return [head, tail]
        # kill: the *consumer* dies inside the commit protocol.
        armed = CrashPoint(spec.point, times=1)
        armed.__enter__()
        with self._lock:
            self._armed.append(armed)
        return [chunk]

    def disarm(self) -> None:
        """Drop any kill points still armed (test/soak teardown)."""
        with self._lock:
            armed, self._armed = self._armed, []
        for point in armed:
            point.__exit__(None, None, None)

    def __enter__(self) -> "StreamFaultState":
        return self

    def __exit__(self, *exc_info) -> None:
        self.disarm()
