"""Packed postings: the main-memory IR storage layer of the hot path.

The paper's query engine runs inside Monet, a main-memory column store
whose speed comes from tight scans over packed arrays rather than
pointer-chasing object graphs.  This module gives the reproduction the
same substrate:

- **Packed arrays** — a term's postings are two parallel NumPy vectors
  (``doc_ids`` ascending, ``tfs``), scanned whole-array at a time.
- **Delta + varint compression** — sorted doc ids are gap-encoded and
  LEB128-packed (:func:`encode_delta_varint`), the classic inverted-file
  compression; both codecs are fully vectorized (no per-value Python).
- **Roaring-style bitmaps** — dense terms additionally expose a
  :class:`Bitmap` (one bit per document) so AND/OR intersection becomes
  bitwise ops over ``uint64`` words instead of merges.
- **Pooled scoring buffers** — :class:`ScorePool` hands out reusable
  dense accumulator arrays so per-query allocation disappears from the
  top-N path.

Everything here is *exactness-preserving*: the scoring kernels
(:func:`tfidf_term_weights`, :func:`bm25_term_weights`) perform the same
IEEE-754 operations, in the same order per posting, as the scalar
reference implementations in :mod:`repro.ir.reference`, so rankings are
byte-identical — the differential suite pins that.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Bitmap",
    "PackedPostings",
    "ScoreBuffer",
    "ScorePool",
    "bm25_term_weights",
    "decode_delta_varint",
    "decode_varint",
    "encode_delta_varint",
    "encode_varint",
    "intersect_sorted",
    "tfidf_term_weights",
    "union_sorted",
]

#: Longest legal LEB128 encoding of a uint64 value.
_MAX_VARINT_BYTES = 10

#: A term is "dense" when it covers at least this fraction of documents;
#: dense terms get a bitmap and boolean ops use bitwise words.
DENSE_FRACTION = 1.0 / 16.0


# ---------------------------------------------------------------------- #
# Varint (LEB128) + delta codecs, vectorized
# ---------------------------------------------------------------------- #


def encode_varint(values: np.ndarray) -> bytes:
    """LEB128-encode an array of unsigned integers, vectorized.

    Each value is written as 1..10 bytes of 7 payload bits with the high
    bit flagging continuation.  The loop below runs once per *byte
    position* (at most 10 iterations), never per value.
    """
    v = np.ascontiguousarray(np.asarray(values, dtype=np.uint64))
    if v.size == 0:
        return b""
    # Bytes needed per value: number of 7-bit groups, at least one.
    nbytes = np.ones(v.shape, dtype=np.int64)
    shifted = v >> np.uint64(7)
    while shifted.any():
        nbytes += (shifted != 0).astype(np.int64)
        shifted >>= np.uint64(7)
    ends = np.cumsum(nbytes)
    starts = ends - nbytes
    out = np.empty(int(ends[-1]), dtype=np.uint8)
    for pos in range(int(nbytes.max())):
        member = nbytes > pos
        payload = (v[member] >> np.uint64(7 * pos)) & np.uint64(0x7F)
        cont = (nbytes[member] > pos + 1).astype(np.uint8) << 7
        out[starts[member] + pos] = payload.astype(np.uint8) | cont
    return out.tobytes()


def decode_varint(blob: bytes) -> np.ndarray:
    """Decode a LEB128 byte string back to a ``uint64`` array, vectorized.

    Raises:
        ValueError: on a truncated stream (trailing continuation bit) or
            an over-long encoding (> 10 bytes for one value).
    """
    raw = np.frombuffer(blob, dtype=np.uint8)
    if raw.size == 0:
        return np.empty(0, dtype=np.uint64)
    terminal = (raw & 0x80) == 0
    if not terminal[-1]:
        raise ValueError("truncated varint stream: ends mid-value")
    ends = np.nonzero(terminal)[0]
    starts = np.concatenate(([0], ends[:-1] + 1)).astype(np.int64)
    lengths = ends - starts + 1
    if int(lengths.max()) > _MAX_VARINT_BYTES:
        raise ValueError("over-long varint encoding (> 10 bytes)")
    # Position of every byte inside its value: index minus value start.
    within = np.arange(raw.size, dtype=np.int64) - np.repeat(starts, lengths)
    shifted = (raw & 0x7F).astype(np.uint64) << (np.uint64(7) * within.astype(np.uint64))
    return np.add.reduceat(shifted, starts)


def encode_delta_varint(sorted_ids: np.ndarray) -> bytes:
    """Gap-encode ascending ids, then varint-pack the gaps.

    The first id is stored absolutely; every later entry stores its
    difference from the predecessor.  Ids must be non-decreasing.
    """
    ids = np.asarray(sorted_ids, dtype=np.uint64)
    if ids.size == 0:
        return b""
    deltas = np.empty(ids.shape, dtype=np.uint64)
    deltas[0] = ids[0]
    deltas[1:] = ids[1:] - ids[:-1]
    if ids.size > 1 and (ids[1:] < ids[:-1]).any():
        raise ValueError("ids must be sorted ascending for delta encoding")
    return encode_varint(deltas)


def decode_delta_varint(blob: bytes) -> np.ndarray:
    """Invert :func:`encode_delta_varint` back to the ascending id array."""
    deltas = decode_varint(blob)
    return np.cumsum(deltas, dtype=np.uint64)


# ---------------------------------------------------------------------- #
# Roaring-style bitmap
# ---------------------------------------------------------------------- #


class Bitmap:
    """A dense document-id set: one bit per document in ``uint64`` words.

    This is the "dense container" half of a roaring bitmap — terms whose
    postings cover a meaningful fraction of the collection intersect and
    union via single bitwise operations over packed words.

    Args:
        words: little-endian bit-packed membership words.
        universe: number of representable ids (``0 .. universe - 1``).
    """

    __slots__ = ("words", "universe")

    def __init__(self, words: np.ndarray, universe: int):
        self.words = np.asarray(words, dtype=np.uint64)
        self.universe = int(universe)

    @classmethod
    def from_ids(cls, ids: np.ndarray, universe: int) -> "Bitmap":
        """Build from an array of unique ids below *universe*."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= universe):
            raise ValueError("bitmap ids out of universe range")
        words = np.zeros((universe + 63) // 64, dtype=np.uint64)
        if ids.size:
            word_index = (ids >> 6).astype(np.int64)
            bits = np.uint64(1) << (ids.astype(np.uint64) & np.uint64(63))
            np.bitwise_or.at(words, word_index, bits)
        return cls(words, universe)

    def ids(self) -> np.ndarray:
        """Member ids, ascending ``int64``."""
        if self.words.size == 0:
            return np.empty(0, dtype=np.int64)
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        members = np.nonzero(bits[: self.universe])[0]
        return members.astype(np.int64)

    def count(self) -> int:
        """Popcount: number of member ids."""
        if self.words.size == 0:
            return 0
        return int(np.unpackbits(self.words.view(np.uint8), bitorder="little").sum())

    def _aligned(self, other: "Bitmap") -> None:
        if self.universe != other.universe:
            raise ValueError(
                f"bitmap universes differ: {self.universe} vs {other.universe}"
            )

    def __and__(self, other: "Bitmap") -> "Bitmap":
        self._aligned(other)
        return Bitmap(self.words & other.words, self.universe)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        self._aligned(other)
        return Bitmap(self.words | other.words, self.universe)

    def __contains__(self, doc_id: int) -> bool:
        if not 0 <= doc_id < self.universe:
            return False
        word = int(self.words[doc_id >> 6])
        return bool((word >> (doc_id & 63)) & 1)


# ---------------------------------------------------------------------- #
# Packed postings of one term
# ---------------------------------------------------------------------- #


@dataclass
class PackedPostings:
    """One term's postings as parallel packed arrays.

    Attributes:
        doc_ids: ascending ``int64`` document ids.
        tfs: matching ``int64`` term frequencies (all >= 1).
    """

    doc_ids: np.ndarray
    tfs: np.ndarray

    def __post_init__(self) -> None:
        self.doc_ids = np.ascontiguousarray(self.doc_ids, dtype=np.int64)
        self.tfs = np.ascontiguousarray(self.tfs, dtype=np.int64)
        if self.doc_ids.shape != self.tfs.shape:
            raise ValueError("doc_ids and tfs must be parallel arrays")

    def __len__(self) -> int:
        return int(self.doc_ids.size)

    @property
    def df(self) -> int:
        """Document frequency: how many documents hold the term."""
        return int(self.doc_ids.size)

    def is_dense(self, universe: int) -> bool:
        """Whether this term qualifies for the bitmap boolean path."""
        return universe > 0 and self.df >= universe * DENSE_FRACTION

    def bitmap(self, universe: int) -> Bitmap:
        """Membership bitmap over ``0 .. universe - 1``."""
        return Bitmap.from_ids(self.doc_ids, universe)

    # -- wire format ---------------------------------------------------- #

    def to_blobs(self) -> tuple[bytes, bytes]:
        """Serialise to ``(delta-varint ids, varint tfs)`` byte strings."""
        return encode_delta_varint(self.doc_ids), encode_varint(self.tfs)

    @classmethod
    def from_blobs(cls, id_blob: bytes, tf_blob: bytes) -> "PackedPostings":
        """Decode :meth:`to_blobs` output back into packed arrays."""
        doc_ids = decode_delta_varint(id_blob).astype(np.int64)
        tfs = decode_varint(tf_blob).astype(np.int64)
        if doc_ids.shape != tfs.shape:
            raise ValueError("postings blobs decode to mismatched lengths")
        return cls(doc_ids=doc_ids, tfs=tfs)


# ---------------------------------------------------------------------- #
# Sorted-array boolean ops
# ---------------------------------------------------------------------- #


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """AND of two ascending unique id arrays."""
    return np.intersect1d(a, b, assume_unique=True)


def union_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """OR of two ascending unique id arrays."""
    return np.union1d(a, b)


# ---------------------------------------------------------------------- #
# Exactness-preserving scoring kernels
# ---------------------------------------------------------------------- #


def tfidf_term_weights(tfs: np.ndarray, df: int, n_docs: int) -> np.ndarray:
    """Vectorized ``tf_idf_score`` over a term's tf array.

    Byte-identical to the scalar reference: the weight of every distinct
    tf value is computed once with the same two ``math.log`` calls and
    float multiplies the scalar path performs, then gathered back.
    """
    if df < 1 or n_docs < 1:
        raise ValueError("df and n_docs must be >= 1")
    idf = math.log(max(n_docs / df, 1.0))
    unique, inverse = np.unique(tfs, return_inverse=True)
    if unique.size and int(unique[0]) < 1:
        raise ValueError("term frequencies must be >= 1")
    table = np.array(
        [(1.0 + math.log(int(tf))) * idf for tf in unique], dtype=np.float64
    )
    return table[inverse]


def bm25_term_weights(
    tfs: np.ndarray,
    doc_lengths: np.ndarray,
    df: int,
    n_docs: int,
    avg_doc_length: float,
    k1: float = 1.2,
    b: float = 0.75,
) -> np.ndarray:
    """Vectorized ``bm25_score`` over a term's postings.

    Every operation is elementwise IEEE-754 arithmetic written in the
    same order as the scalar reference, so each weight is bit-equal.
    """
    if avg_doc_length <= 0:
        avg_doc_length = 1.0
    idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
    tf = tfs.astype(np.float64)
    lengths = doc_lengths.astype(np.float64)
    denom = tf + k1 * (1.0 - b + b * lengths / avg_doc_length)
    return idf * tf * (k1 + 1.0) / denom


# ---------------------------------------------------------------------- #
# Pooled scoring buffers
# ---------------------------------------------------------------------- #


class ScoreBuffer:
    """A dense accumulator pair sized to the document universe.

    ``acc[doc_id]`` carries the accumulating score, ``touched[doc_id]``
    whether any posting hit the document (distinguishing a genuine 0.0
    score from an untouched slot).  Buffers are always handed back clean.
    """

    __slots__ = ("acc", "touched", "capacity")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.acc = np.zeros(capacity, dtype=np.float64)
        self.touched = np.zeros(capacity, dtype=bool)

    def accumulate(self, doc_ids: np.ndarray, weights: np.ndarray) -> None:
        """Add per-document weights (ids unique within one call)."""
        self.acc[doc_ids] += weights
        self.touched[doc_ids] = True

    def candidates(self, n_docs: int) -> tuple[np.ndarray, np.ndarray]:
        """(doc ids, scores) of every touched document below *n_docs*."""
        ids = np.nonzero(self.touched[:n_docs])[0]
        return ids, self.acc[ids]

    def reset(self) -> None:
        """Clear only the touched slots — O(candidates), not O(universe)."""
        ids = np.nonzero(self.touched)[0]
        if ids.size:
            self.acc[ids] = 0.0
            self.touched[ids] = False


class ScorePool:
    """A thread-safe pool of reusable :class:`ScoreBuffer` instances.

    The serving layer evaluates queries from many threads concurrently
    (snapshot-isolated readers); each evaluation borrows a buffer at
    least as large as the document universe and returns it clean.
    Capacities are rounded up to powers of two so a growing collection
    keeps reusing the same buffers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: list[ScoreBuffer] = []

    @staticmethod
    def _bucket(capacity: int) -> int:
        size = 1024
        while size < capacity:
            size <<= 1
        return size

    def acquire(self, capacity: int) -> ScoreBuffer:
        """Borrow a clean buffer able to index ``0 .. capacity - 1``."""
        needed = self._bucket(capacity)
        with self._lock:
            for i, buf in enumerate(self._free):
                if buf.capacity >= needed:
                    return self._free.pop(i)
        return ScoreBuffer(needed)

    def release(self, buffer: ScoreBuffer) -> None:
        """Return a buffer to the pool (reset by the caller or here)."""
        buffer.reset()
        with self._lock:
            if len(self._free) < 32:
                self._free.append(buffer)


#: Process-wide default pool shared by the ranking kernels.
DEFAULT_SCORE_POOL = ScorePool()
