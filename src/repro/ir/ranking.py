"""Ranking functions: tf-idf and BM25, scored over packed arrays.

The scalar weight functions (:func:`tf_idf_score`, :func:`bm25_score`)
define the semantics; :func:`rank_full_scan` evaluates them over whole
packed postings arrays at a time — one NumPy pass per query term into a
pooled dense accumulator — and produces rankings byte-identical to the
per-posting loop preserved in :mod:`repro.ir.reference` (same IEEE-754
operations in the same order per posting; the differential suite pins
it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ir.inverted_index import InvertedIndex
from repro.ir.packed import DEFAULT_SCORE_POOL, ScorePool

__all__ = ["RankedHit", "tf_idf_score", "bm25_score", "rank_full_scan", "top_hits"]


@dataclass(frozen=True, order=True)
class RankedHit:
    """A scored document (ordering: score, then doc id for stability)."""

    score: float
    doc_id: int


def tf_idf_score(tf: int, df: int, n_docs: int) -> float:
    """Classic ltc-style weight: ``(1 + log tf) * log(N / df)``."""
    if tf < 1 or df < 1 or n_docs < 1:
        raise ValueError("tf, df and n_docs must all be >= 1")
    return (1.0 + math.log(tf)) * math.log(max(n_docs / df, 1.0))


def bm25_score(
    tf: int,
    df: int,
    n_docs: int,
    doc_length: int,
    avg_doc_length: float,
    k1: float = 1.2,
    b: float = 0.75,
) -> float:
    """Okapi BM25 term weight."""
    if avg_doc_length <= 0:
        avg_doc_length = 1.0
    idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
    denom = tf + k1 * (1.0 - b + b * doc_length / avg_doc_length)
    return idf * tf * (k1 + 1.0) / denom


def top_hits(doc_ids: np.ndarray, scores: np.ndarray, n: int) -> list[RankedHit]:
    """The best *n* hits under the engine's total order ``(-score, doc_id)``.

    ``np.lexsort`` with ``-scores`` primary and ``doc_ids`` secondary is
    exactly the reference ``sorted(key=(-score, doc_id))``: float
    negation is sign-flip-exact and equal scores (including ±0.0) fall
    through to the ascending doc id.
    """
    if doc_ids.size == 0:
        return []
    order = np.lexsort((doc_ids, -scores))[:n]
    ids = doc_ids[order].tolist()
    top = scores[order].tolist()
    return [RankedHit(score=s, doc_id=d) for d, s in zip(ids, top)]


def rank_full_scan(
    index: InvertedIndex,
    query_terms: list[str],
    n: int,
    scheme: str = "tfidf",
    pool: ScorePool | None = None,
) -> list[RankedHit]:
    """Exact top-*n* scoring every posting of every query term, vectorized.

    One whole-array pass per query term: the term's packed tf vector is
    weighted by the scheme kernel and scattered into a pooled dense
    accumulator (`acc[doc_ids] += weights`), replicating the reference
    loop's per-document addition order term by term.

    Args:
        index: the inverted index.
        query_terms: normalised query terms.
        n: result count.
        scheme: ``"tfidf"`` or ``"bm25"``.
        pool: scoring-buffer pool override (tests; defaults to the
            process-wide pool).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if scheme not in ("tfidf", "bm25"):
        raise ValueError(f"unknown ranking scheme {scheme!r}")
    n_docs = max(index.n_documents, 1)
    pool = pool or DEFAULT_SCORE_POOL
    buffer = pool.acquire(n_docs)
    try:
        for term in query_terms:
            packed = index.packed(term)
            if packed is None or packed.df == 0:
                continue
            weights = index.term_weights(term, scheme)
            buffer.accumulate(packed.doc_ids, weights)
        candidates, scores = buffer.candidates(n_docs)
        return top_hits(candidates, scores, n)
    finally:
        pool.release(buffer)
