"""Ranking functions: tf-idf and BM25.

Both operate on the statistics of an :class:`~repro.ir.inverted_index.InvertedIndex`
and return per-document accumulator scores; the retrieval drivers (full
scan in :meth:`InvertedIndex`-based search, fragment-at-a-time in
:mod:`repro.ir.topn`) share them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.inverted_index import InvertedIndex

__all__ = ["RankedHit", "tf_idf_score", "bm25_score", "rank_full_scan"]


@dataclass(frozen=True, order=True)
class RankedHit:
    """A scored document (ordering: score, then doc id for stability)."""

    score: float
    doc_id: int


def tf_idf_score(tf: int, df: int, n_docs: int) -> float:
    """Classic ltc-style weight: ``(1 + log tf) * log(N / df)``."""
    if tf < 1 or df < 1 or n_docs < 1:
        raise ValueError("tf, df and n_docs must all be >= 1")
    return (1.0 + math.log(tf)) * math.log(max(n_docs / df, 1.0))


def bm25_score(
    tf: int,
    df: int,
    n_docs: int,
    doc_length: int,
    avg_doc_length: float,
    k1: float = 1.2,
    b: float = 0.75,
) -> float:
    """Okapi BM25 term weight."""
    if avg_doc_length <= 0:
        avg_doc_length = 1.0
    idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
    denom = tf + k1 * (1.0 - b + b * doc_length / avg_doc_length)
    return idf * tf * (k1 + 1.0) / denom


def rank_full_scan(
    index: InvertedIndex,
    query_terms: list[str],
    n: int,
    scheme: str = "tfidf",
) -> list[RankedHit]:
    """Exact top-*n* by scanning every posting of every query term.

    This is the unoptimised baseline the fragmented engine is compared
    against in E6.

    Args:
        index: the inverted index.
        query_terms: normalised query terms.
        n: result count.
        scheme: ``"tfidf"`` or ``"bm25"``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if scheme not in ("tfidf", "bm25"):
        raise ValueError(f"unknown ranking scheme {scheme!r}")
    accumulators: dict[int, float] = {}
    n_docs = max(index.n_documents, 1)
    avg_len = index.average_doc_length
    for term in query_terms:
        df = index.document_frequency(term)
        if df == 0:
            continue
        for posting in index.postings(term):
            if scheme == "tfidf":
                weight = tf_idf_score(posting.tf, df, n_docs)
            else:
                weight = bm25_score(
                    posting.tf, df, n_docs, index.doc_length(posting.doc_id), avg_len
                )
            accumulators[posting.doc_id] = accumulators.get(posting.doc_id, 0.0) + weight
    hits = [RankedHit(score=s, doc_id=d) for d, s in accumulators.items()]
    hits.sort(key=lambda h: (-h.score, h.doc_id))
    return hits[:n]
