"""Full-text indexing and retrieval with top-N optimization.

Contribution (2) of the paper: "Scalability and efficiency support are
illustrated for full text indexing and retrieval" — the IR engine of
Blok, de Vries, Blanken & Apers, *Experiences with IR TOP-N Optimization
in a Main Memory DBMS* (BNCOD 2001).  The library indexes the textual
side of the digital library (web pages, interview transcripts) and
supports top-N queries whose cost/quality trade-off is tunable by index
fragmentation:

- :mod:`repro.ir.tokenizer` / :mod:`repro.ir.stopwords` /
  :mod:`repro.ir.stemmer` — text normalisation (Porter stemmer),
- :mod:`repro.ir.collection` — the document collection,
- :mod:`repro.ir.inverted_index` — the inverted index over packed
  postings arrays,
- :mod:`repro.ir.packed` — the packed storage substrate: delta+varint
  codecs, roaring-style bitmaps, pooled scoring buffers,
- :mod:`repro.ir.ranking` — tf-idf and BM25 scoring (vectorized),
- :mod:`repro.ir.topn` — horizontally fragmented index with
  early-terminating top-N evaluation (the Blok et al. optimization),
- :mod:`repro.ir.reference` — the seed's per-posting loops, kept as the
  byte-identical semantic anchor of the packed engine,
- :mod:`repro.ir.ann` — query-by-example: shot feature vectors and the
  IVF ANN index over them (packed cells, pooled distance buffers),
- :mod:`repro.ir.ann_reference` — the exact brute-force scorer kept as
  the ANN index's differential oracle.
"""

from repro.ir.tokenizer import tokenize, normalize_terms
from repro.ir.stopwords import STOPWORDS
from repro.ir.stemmer import porter_stem
from repro.ir.collection import Document, DocumentCollection
from repro.ir.inverted_index import InvertedIndex, Posting
from repro.ir.packed import Bitmap, PackedPostings, ScorePool
from repro.ir.ranking import tf_idf_score, bm25_score, RankedHit
from repro.ir.topn import FragmentedIndex, TopNResult
from repro.ir.ann import AnnIndex, AnnSnapshotError, ShotVectorizer

__all__ = [
    "AnnIndex",
    "AnnSnapshotError",
    "Bitmap",
    "PackedPostings",
    "ScorePool",
    "ShotVectorizer",
    "tokenize",
    "normalize_terms",
    "STOPWORDS",
    "porter_stem",
    "Document",
    "DocumentCollection",
    "InvertedIndex",
    "Posting",
    "tf_idf_score",
    "bm25_score",
    "RankedHit",
    "FragmentedIndex",
    "TopNResult",
]
