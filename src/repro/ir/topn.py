"""Top-N optimization by horizontal index fragmentation.

Blok et al. (BNCOD 2001) speed up top-N queries in a main-memory DBMS by
horizontally fragmenting each term's postings on descending term
frequency and evaluating fragment-at-a-time: the first fragments hold
the postings most likely to matter, so processing can stop early and
trade a little quality for a lot of work saved.

:class:`FragmentedIndex` reproduces that engine:

- each term's postings are sorted by descending tf and cut into
  ``n_fragments`` equal fragments;
- ``search(..., max_fragments=k)`` processes only the first ``k``
  fragments of every query term (unsafe early termination — the quality
  loss the paper measures);
- ``search(..., max_fragments=None)`` processes everything and equals
  the full scan.

The result records how many postings were touched, which is the
machine-independent cost measure E6 reports alongside wall time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Sequence

from repro.budget import QueryBudget
from repro.ir.inverted_index import InvertedIndex, Posting
from repro.ir.ranking import RankedHit, bm25_score, tf_idf_score

__all__ = ["FragmentedIndex", "TopNResult", "full_scan_postings", "merge_topn"]


def full_scan_postings(index: InvertedIndex, query_terms: list[str]) -> int:
    """Postings a full-scan evaluation of *query_terms* scores.

    The machine-independent cost of :func:`~repro.ir.ranking
    .rank_full_scan` — each query term contributes its whole postings
    list (duplicated terms are scored twice, as in the scan itself).
    The query-serving layer reports it per text stage.
    """
    return sum(index.document_frequency(term) for term in query_terms)


def merge_topn(parts: Iterable[Sequence[RankedHit]], n: int) -> list[RankedHit]:
    """Merge per-partition top-N rankings into the global top-*n*.

    The scatter-gather counterpart of :class:`FragmentedIndex`: when a
    document collection is horizontally partitioned (each document
    scored by exactly one partition, with shared global statistics),
    every global top-*n* hit is inside its own partition's local
    top-*n*, so a k-way merge of the locally ranked lists under the
    engine's total order ``(-score, doc_id)`` is *exact* — identical to
    ranking the unpartitioned collection.  Inputs must already be
    sorted under that order, which is what :meth:`FragmentedIndex
    .search` and :func:`~repro.ir.ranking.rank_full_scan` return.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    merged = heapq.merge(*parts, key=lambda hit: (-hit.score, hit.doc_id))
    return list(islice(merged, n))


@dataclass
class TopNResult:
    """Outcome of one top-N evaluation.

    Attributes:
        hits: the ranked results, best first.
        postings_processed: how many postings were scored.
        postings_total: how many postings a full evaluation would score.
        fragments_processed: fragments actually touched.
    """

    hits: list[RankedHit] = field(default_factory=list)
    postings_processed: int = 0
    postings_total: int = 0
    fragments_processed: int = 0

    @property
    def work_fraction(self) -> float:
        """Fraction of full-evaluation postings actually processed."""
        if self.postings_total == 0:
            return 0.0
        return self.postings_processed / self.postings_total

    def doc_ids(self) -> list[int]:
        return [h.doc_id for h in self.hits]


class FragmentedIndex:
    """A tf-descending horizontally fragmented inverted index.

    Args:
        index: the source inverted index.
        n_fragments: fragments per term (>= 1).  Fragment 0 holds the
            highest-tf postings.
    """

    def __init__(self, index: InvertedIndex, n_fragments: int = 4):
        if n_fragments < 1:
            raise ValueError(f"n_fragments must be >= 1, got {n_fragments}")
        self.index = index
        self.n_fragments = n_fragments
        self._fragments: dict[str, list[list[Posting]]] = {}
        self._build()

    def _build(self) -> None:
        for term in self.index.vocabulary:
            postings = sorted(
                self.index.postings(term), key=lambda p: (-p.tf, p.doc_id)
            )
            n = len(postings)
            fragments: list[list[Posting]] = []
            base = n // self.n_fragments
            remainder = n % self.n_fragments
            cursor = 0
            for f in range(self.n_fragments):
                size = base + (1 if f < remainder else 0)
                fragments.append(postings[cursor : cursor + size])
                cursor += size
            self._fragments[term] = fragments

    def fragments(self, term: str) -> list[list[Posting]]:
        """The fragment lists of *term* (empty lists for unseen terms)."""
        return [list(f) for f in self._fragments.get(term, [[]] * self.n_fragments)]

    # ------------------------------------------------------------------ #
    # Retrieval
    # ------------------------------------------------------------------ #

    def search(
        self,
        query_terms: list[str],
        n: int,
        max_fragments: int | None = None,
        scheme: str = "tfidf",
        budget: QueryBudget | None = None,
    ) -> TopNResult:
        """Fragment-at-a-time top-*n* evaluation.

        Args:
            query_terms: normalised query terms.
            n: result count.
            max_fragments: process at most this many fragments per term
                (``None`` = all: exact evaluation).
            scheme: ``"tfidf"`` or ``"bm25"``.
            budget: optional :class:`~repro.budget.QueryBudget` checked
                per term and (strided) per posting; expiry raises
                :class:`~repro.budget.DeadlineExceeded`.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if scheme not in ("tfidf", "bm25"):
            raise ValueError(f"unknown ranking scheme {scheme!r}")
        limit = self.n_fragments if max_fragments is None else max_fragments
        if limit < 1:
            raise ValueError(f"max_fragments must be >= 1, got {max_fragments}")

        n_docs = max(self.index.n_documents, 1)
        avg_len = self.index.average_doc_length
        accumulators: dict[int, float] = {}
        processed = 0
        total = 0
        fragments_processed = 0

        for term in query_terms:
            if budget is not None:
                budget.check("text_topn")
            fragments = self._fragments.get(term)
            if fragments is None:
                continue
            df = self.index.document_frequency(term)
            total += sum(len(f) for f in fragments)
            for fragment in fragments[:limit]:
                if not fragment:
                    continue
                fragments_processed += 1
                for posting in fragment:
                    if budget is not None:
                        budget.tick("text_topn")
                    if scheme == "tfidf":
                        weight = tf_idf_score(posting.tf, df, n_docs)
                    else:
                        weight = bm25_score(
                            posting.tf,
                            df,
                            n_docs,
                            self.index.doc_length(posting.doc_id),
                            avg_len,
                        )
                    accumulators[posting.doc_id] = (
                        accumulators.get(posting.doc_id, 0.0) + weight
                    )
                    processed += 1

        hits = [RankedHit(score=s, doc_id=d) for d, s in accumulators.items()]
        hits.sort(key=lambda h: (-h.score, h.doc_id))
        return TopNResult(
            hits=hits[:n],
            postings_processed=processed,
            postings_total=total,
            fragments_processed=fragments_processed,
        )
