"""Top-N optimization by horizontal index fragmentation.

Blok et al. (BNCOD 2001) speed up top-N queries in a main-memory DBMS by
horizontally fragmenting each term's postings on descending term
frequency and evaluating fragment-at-a-time: the first fragments hold
the postings most likely to matter, so processing can stop early and
trade a little quality for a lot of work saved.

:class:`FragmentedIndex` reproduces that engine over *packed arrays*:

- each term's postings are sorted by descending tf and stored as two
  parallel NumPy vectors with ``n_fragments + 1`` offsets cutting them
  into equal fragments;
- ``search(..., max_fragments=k)`` processes only the first ``k``
  fragments of every query term (unsafe early termination — the quality
  loss the paper measures), one vectorized scoring pass per fragment
  into a pooled dense accumulator;
- ``search(..., max_fragments=None)`` processes everything and equals
  the full scan.

Rankings are byte-identical to the per-posting reference loop kept in
:class:`repro.ir.reference.ReferenceFragmentedIndex` — the E6 gate
measures the packed engine's speedup against exactly that code.

The result records how many postings were touched, which is the
machine-independent cost measure E6 reports alongside wall time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Sequence

import numpy as np

from repro.budget import QueryBudget
from repro.ir.inverted_index import InvertedIndex, Posting
from repro.ir.packed import (
    DEFAULT_SCORE_POOL,
    ScorePool,
    bm25_term_weights,
    tfidf_term_weights,
)
from repro.ir.ranking import RankedHit, top_hits

__all__ = ["FragmentedIndex", "TopNResult", "full_scan_postings", "merge_topn"]


def full_scan_postings(index: InvertedIndex, query_terms: list[str]) -> int:
    """Postings a full-scan evaluation of *query_terms* scores.

    The machine-independent cost of :func:`~repro.ir.ranking
    .rank_full_scan` — each query term contributes its whole postings
    list (duplicated terms are scored twice, as in the scan itself).
    The query-serving layer reports it per text stage.
    """
    return sum(index.document_frequency(term) for term in query_terms)


def merge_topn(parts: Iterable[Sequence[RankedHit]], n: int) -> list[RankedHit]:
    """Merge per-partition top-N rankings into the global top-*n*.

    The scatter-gather counterpart of :class:`FragmentedIndex`: when a
    document collection is horizontally partitioned (each document
    scored by exactly one partition, with shared global statistics),
    every global top-*n* hit is inside its own partition's local
    top-*n*, so a k-way merge of the locally ranked lists under the
    engine's total order ``(-score, doc_id)`` is *exact* — identical to
    ranking the unpartitioned collection.  Inputs must already be
    sorted under that order, which is what :meth:`FragmentedIndex
    .search` and :func:`~repro.ir.ranking.rank_full_scan` return.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    merged = heapq.merge(*parts, key=lambda hit: (-hit.score, hit.doc_id))
    return list(islice(merged, n))


@dataclass
class TopNResult:
    """Outcome of one top-N evaluation.

    Attributes:
        hits: the ranked results, best first.
        postings_processed: how many postings were scored.
        postings_total: how many postings a full evaluation would score.
        fragments_processed: fragments actually touched.
    """

    hits: list[RankedHit] = field(default_factory=list)
    postings_processed: int = 0
    postings_total: int = 0
    fragments_processed: int = 0

    @property
    def work_fraction(self) -> float:
        """Fraction of full-evaluation postings actually processed."""
        if self.postings_total == 0:
            return 0.0
        return self.postings_processed / self.postings_total

    def doc_ids(self) -> list[int]:
        return [h.doc_id for h in self.hits]


@dataclass
class _PackedFragments:
    """One term's tf-descending postings with fragment cut offsets."""

    doc_ids: np.ndarray
    tfs: np.ndarray
    offsets: np.ndarray  # int64, length n_fragments + 1


class FragmentedIndex:
    """A tf-descending horizontally fragmented inverted index.

    Args:
        index: the source inverted index.
        n_fragments: fragments per term (>= 1).  Fragment 0 holds the
            highest-tf postings.
        pool: scoring-buffer pool override (defaults to the
            process-wide pool; buffers are reused across queries).
    """

    def __init__(
        self,
        index: InvertedIndex,
        n_fragments: int = 4,
        pool: ScorePool | None = None,
    ):
        if n_fragments < 1:
            raise ValueError(f"n_fragments must be >= 1, got {n_fragments}")
        self.index = index
        self.n_fragments = n_fragments
        self._pool = pool or DEFAULT_SCORE_POOL
        self._fragments: dict[str, _PackedFragments] = {}
        self._weights: dict[tuple[str, str, int], np.ndarray] = {}
        self._build()

    def _build(self) -> None:
        for term in self.index.vocabulary:
            packed = self.index.packed(term)
            # Sort by (-tf, doc_id): lexsort's primary key last.
            order = np.lexsort((packed.doc_ids, -packed.tfs))
            doc_ids = packed.doc_ids[order]
            tfs = packed.tfs[order]
            n = int(doc_ids.size)
            base = n // self.n_fragments
            remainder = n % self.n_fragments
            sizes = np.full(self.n_fragments, base, dtype=np.int64)
            sizes[:remainder] += 1
            offsets = np.zeros(self.n_fragments + 1, dtype=np.int64)
            np.cumsum(sizes, out=offsets[1:])
            self._fragments[term] = _PackedFragments(
                doc_ids=doc_ids, tfs=tfs, offsets=offsets
            )

    def _term_weights(
        self,
        term: str,
        entry: _PackedFragments,
        scheme: str,
        n_docs: int,
        avg_len: float,
        lengths: np.ndarray,
    ) -> np.ndarray:
        """Whole-term weight vector in fragment (tf-descending) order.

        Cached per (term, scheme, n_docs): the kernels are slice-invariant,
        so computing the full vector once and slicing per fragment gives
        the same bytes as weighting each fragment separately, and repeat
        queries skip the kernels entirely.  Keying on ``n_docs`` keeps a
        stale cache from surviving a refresh of the underlying index.
        """
        key = (term, scheme, n_docs)
        cached = self._weights.get(key)
        if cached is None:
            df = int(entry.doc_ids.size)
            if scheme == "tfidf":
                cached = tfidf_term_weights(entry.tfs, df, n_docs)
            else:
                cached = bm25_term_weights(
                    entry.tfs, lengths[entry.doc_ids], df, n_docs, avg_len
                )
            self._weights[key] = cached
        return cached

    def fragments(self, term: str) -> list[list[Posting]]:
        """The fragment lists of *term* (empty lists for unseen terms)."""
        entry = self._fragments.get(term)
        if entry is None:
            return [[] for _ in range(self.n_fragments)]
        out: list[list[Posting]] = []
        for f in range(self.n_fragments):
            start, stop = int(entry.offsets[f]), int(entry.offsets[f + 1])
            out.append(
                [
                    Posting(doc_id=int(d), tf=int(t))
                    for d, t in zip(
                        entry.doc_ids[start:stop].tolist(),
                        entry.tfs[start:stop].tolist(),
                    )
                ]
            )
        return out

    # ------------------------------------------------------------------ #
    # Retrieval
    # ------------------------------------------------------------------ #

    def search(
        self,
        query_terms: list[str],
        n: int,
        max_fragments: int | None = None,
        scheme: str = "tfidf",
        budget: QueryBudget | None = None,
    ) -> TopNResult:
        """Fragment-at-a-time top-*n* evaluation, one array pass per fragment.

        Args:
            query_terms: normalised query terms.
            n: result count.
            max_fragments: process at most this many fragments per term
                (``None`` = all: exact evaluation).
            scheme: ``"tfidf"`` or ``"bm25"``.
            budget: optional :class:`~repro.budget.QueryBudget` checked
                per term and (batch-ticked) per fragment; expiry raises
                :class:`~repro.budget.DeadlineExceeded`.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if scheme not in ("tfidf", "bm25"):
            raise ValueError(f"unknown ranking scheme {scheme!r}")
        limit = self.n_fragments if max_fragments is None else max_fragments
        if limit < 1:
            raise ValueError(f"max_fragments must be >= 1, got {max_fragments}")

        n_docs = max(self.index.n_documents, 1)
        avg_len = self.index.average_doc_length
        lengths = self.index.doc_lengths_array
        processed = 0
        total = 0
        fragments_processed = 0

        buffer = self._pool.acquire(n_docs)
        try:
            for term in query_terms:
                if budget is not None:
                    budget.check("text_topn")
                entry = self._fragments.get(term)
                if entry is None:
                    continue
                total += int(entry.doc_ids.size)
                term_weights = self._term_weights(
                    term, entry, scheme, n_docs, avg_len, lengths
                )
                for f in range(min(limit, self.n_fragments)):
                    start, stop = int(entry.offsets[f]), int(entry.offsets[f + 1])
                    if start == stop:
                        continue
                    fragments_processed += 1
                    if budget is not None:
                        budget.tick_batch(stop - start, "text_topn")
                    buffer.accumulate(
                        entry.doc_ids[start:stop], term_weights[start:stop]
                    )
                    processed += stop - start
            candidates, scores = buffer.candidates(n_docs)
            hits = top_hits(candidates, scores, n)
        finally:
            self._pool.release(buffer)
        return TopNResult(
            hits=hits,
            postings_processed=processed,
            postings_total=total,
            fragments_processed=fragments_processed,
        )
