"""Tokenisation and term normalisation."""

from __future__ import annotations

import re

from repro.ir.stemmer import porter_stem
from repro.ir.stopwords import STOPWORDS

__all__ = ["tokenize", "normalize_terms"]

_WORD_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens of *text* (letters/digits, internal apostrophes)."""
    return _WORD_RE.findall(text.lower())


def normalize_terms(
    text: str, stem: bool = True, drop_stopwords: bool = True
) -> list[str]:
    """Tokens normalised for indexing: stopword-filtered and stemmed.

    Args:
        text: raw text.
        stem: apply the Porter stemmer.
        drop_stopwords: remove common English function words.
    """
    terms = tokenize(text)
    if drop_stopwords:
        terms = [t for t in terms if t not in STOPWORDS]
    if stem:
        terms = [porter_stem(t) for t in terms]
    return terms
