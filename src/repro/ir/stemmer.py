"""The Porter stemming algorithm.

A faithful implementation of M.F. Porter, *An algorithm for suffix
stripping* (1980) — the stemmer IR systems of the paper's era used.
Implemented from the published rule tables; behaviour matches the
reference implementation on the classic examples (``caresses`` ->
``caress``, ``ponies`` -> ``poni``, ``relational`` -> ``relat`` ...).
"""

from __future__ import annotations

__all__ = ["porter_stem"]

_VOWELS = set("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's m: the number of VC sequences in the stem."""
    m = 0
    i = 0
    n = len(stem)
    # Skip the initial consonant run.
    while i < n and _is_consonant(stem, i):
        i += 1
    while i < n:
        # Vowel run.
        while i < n and not _is_consonant(stem, i):
            i += 1
        if i >= n:
            break
        # Consonant run: one full VC sequence seen.
        while i < n and _is_consonant(stem, i):
            i += 1
        m += 1
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """Consonant-vowel-consonant ending where the final C is not w, x, y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace(word: str, suffix: str, replacement: str, min_measure: int) -> str | None:
    """Replace *suffix* if present and the remaining stem has m > min_measure."""
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word  # suffix matched but condition failed: rule consumed, no change


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        return stem + "ee" if _measure(stem) > 0 else word
    changed = False
    if word.endswith("ed"):
        stem = word[:-2]
        if _contains_vowel(stem):
            word, changed = stem, True
    elif word.endswith("ing"):
        stem = word[:-3]
        if _contains_vowel(stem):
            word, changed = stem, True
    if changed:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = (
    ("ational", "ate"),
    ("tional", "tion"),
    ("enci", "ence"),
    ("anci", "ance"),
    ("izer", "ize"),
    ("abli", "able"),
    ("alli", "al"),
    ("entli", "ent"),
    ("eli", "e"),
    ("ousli", "ous"),
    ("ization", "ize"),
    ("ation", "ate"),
    ("ator", "ate"),
    ("alism", "al"),
    ("iveness", "ive"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("aliti", "al"),
    ("iviti", "ive"),
    ("biliti", "ble"),
)

_STEP3_RULES = (
    ("icate", "ic"),
    ("ative", ""),
    ("alize", "al"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ful", ""),
    ("ness", ""),
)

_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _step_2(word: str) -> str:
    for suffix, replacement in _STEP2_RULES:
        result = _replace(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step_3(word: str) -> str:
    for suffix, replacement in _STEP3_RULES:
        result = _replace(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    # The (m > 1 and (*S or *T)) ION rule.
    if word.endswith("ion"):
        stem = word[:-3]
        if _measure(stem) > 1 and stem and stem[-1] in "st":
            return stem
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step_5b(word: str) -> str:
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        return word[:-1]
    return word


def porter_stem(word: str) -> str:
    """Stem a lowercase word with the Porter algorithm.

    Words of length <= 2 are returned unchanged, as in the original.
    """
    if len(word) <= 2:
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _step_2(word)
    word = _step_3(word)
    word = _step_4(word)
    word = _step_5a(word)
    word = _step_5b(word)
    return word
