"""Exact brute-force scorer — the ANN index's differential oracle.

Same role :mod:`repro.ir.reference` plays for the packed text engine:
an obviously-correct per-vector loop kept as the *semantic anchor* of
the IVF index in :mod:`repro.ir.ann`.  The contract, pinned by the
hypothesis suite in ``tests/ir/test_ann_differential.py`` and measured
by the E19 benchmark gate:

- when ``nprobe`` covers every cell, :meth:`AnnIndex.search` returns
  ids *and* distances byte-identical to :func:`brute_force_search`;
- at partial ``nprobe`` the IVF answer may miss neighbours but never
  invents them: every returned distance equals the oracle's distance
  for that id, and recall@10 stays above the CI gate.

Nothing here is on a production path — keep it boring.
"""

from __future__ import annotations

import numpy as np

__all__ = ["brute_force_search", "recall_at_k", "replicate_vectors"]


def brute_force_search(
    vectors: np.ndarray, query: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-*k* nearest rows of *vectors* by squared L2 distance.

    One Python loop iteration per stored vector; ties broken by
    ascending id via ``np.lexsort`` — the same rule the IVF index uses,
    so full-coverage searches compare equal array-for-array.

    Returns:
        ``(ids, distances)`` — int64 ids and float64 squared distances,
        sorted by (distance, id), at most *k* entries.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    vectors = np.asarray(vectors, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    n = int(vectors.shape[0]) if vectors.ndim == 2 else 0
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    distances = np.empty(n, dtype=np.float64)
    for i in range(n):
        diff = vectors[i] - query
        distances[i] = (diff * diff).sum()
    ids = np.arange(n, dtype=np.int64)
    order = np.lexsort((ids, distances))[:k]
    return ids[order], distances[order]


def recall_at_k(got_ids, want_ids, k: int) -> float:
    """Fraction of the oracle's top-*k* ids present in the ANN top-*k*."""
    want = list(want_ids)[:k]
    if not want:
        return 1.0
    got = set(list(got_ids)[:k])
    return len(got & set(want)) / len(want)


def replicate_vectors(
    vectors: np.ndarray, copies: int, rng: np.random.Generator, jitter: float = 0.01
) -> np.ndarray:
    """Scale a vector corpus by *copies* jittered replicas of each row.

    The seed corpora are too small for the IVF pruning win to show
    above per-query overhead, so the E19 gate measures on a replicated
    corpus.  Each replica is Gaussian-perturbed (sigma *jitter*) and
    re-normalized so replicas are near — but not exact — duplicates,
    which keeps recall measurements free of tie ambiguity.
    """
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    vectors = np.asarray(vectors, dtype=np.float64)
    blocks = [vectors]
    for _ in range(copies - 1):
        noisy = vectors + rng.normal(0.0, jitter, size=vectors.shape)
        norms = np.sqrt((noisy * noisy).sum(axis=1, keepdims=True))
        norms[norms == 0.0] = 1.0
        blocks.append(noisy / norms)
    return np.ascontiguousarray(np.concatenate(blocks, axis=0))
