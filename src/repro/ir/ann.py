"""Query-by-example ANN search over shot feature vectors.

The paper's library search is text/concept-driven; this module adds the
query-by-example modality the related systems are built around: a shot
is embedded as a fixed-dimension feature vector (colour histogram ⊕
classification moments ⊕ dominant-colour shape block, L2-normalized,
schema-versioned) and indexed by a pure-NumPy IVF structure:

- a k-means coarse quantizer partitions the vectors into cells, seeded
  from an *explicit* ``rng`` (no module-level random state anywhere);
- cell membership is stored as packed parallel int64 arrays
  (``cell_offsets``/``cell_members``) in the style of
  :mod:`repro.ir.packed`;
- a search probes the ``nprobe`` nearest cells, gathers their members
  and computes *exact* squared-L2 distances over the candidates into a
  pooled buffer, so when ``nprobe`` covers every cell the answer is
  byte-identical to :func:`repro.ir.ann_reference.brute_force_search`
  (the differential oracle).

Snapshots ride the catalog like the packed text index: base64 blobs in
``ann_*`` tables, each protected by a crc32 checked on load —
corruption is a typed :class:`AnnSnapshotError`, never a wrong answer.
"""

from __future__ import annotations

import base64
import threading
import zlib
from dataclasses import dataclass

import numpy as np

from repro.budget import QueryBudget
from repro.shots.classify import ShotFeatureExtractor, ShotFeatures
from repro.video.frames import VideoClip
from repro.vision.histogram import color_histogram

__all__ = [
    "AnnIndex",
    "AnnSnapshotError",
    "DEFAULT_DISTANCE_POOL",
    "DistancePool",
    "FEATURE_SCHEMA_VERSION",
    "HIST_BINS",
    "ShotVectorizer",
    "export_ann_to_catalog",
    "has_ann_tables",
    "kmeans",
    "load_ann_from_catalog",
]

#: Version of the shot feature vector layout.  Bump on any change to
#: the blocks below; snapshots carry it and loads refuse a mismatch.
FEATURE_SCHEMA_VERSION = 1

#: Per-channel histogram bins of the colour block (HIST_BINS**3 dims).
HIST_BINS = 4

#: Dimensions: colour histogram + 5 moments + dominant RGB + coverage.
FEATURE_DIM = HIST_BINS**3 + 5 + 4


class AnnSnapshotError(ValueError):
    """A persisted ANN snapshot fails validation (checksum, schema)."""


class ShotVectorizer:
    """Assemble the schema-v1 feature vector of a shot.

    Blocks, in order:

    1. mean colour histogram over the sampled frames
       (``HIST_BINS**3`` dims, already sums to 1);
    2. classification moments from :class:`ShotFeatures`, each scaled
       into roughly [0, 1]: court coverage, skin ratio, entropy / 8,
       mean / 255, variance / 255^2;
    3. shape/colour block: dominant RGB / 255 and dominant coverage.

    The concatenation is L2-normalized, so squared-L2 ANN distance is
    monotone in cosine similarity.  Frames are sampled at the same
    midpoint indices :class:`ShotFeatureExtractor` uses, which keeps
    the vector stable under truncation of a query clip.
    """

    def __init__(self, samples: int = 3, bins: int = HIST_BINS):
        self.samples = samples
        self.bins = bins
        self.extractor = ShotFeatureExtractor(samples=samples)

    @property
    def dim(self) -> int:
        return self.bins**3 + 5 + 4

    def vector_from_frames(self, frames: list[np.ndarray]) -> np.ndarray:
        """The feature vector of a shot given as its frames."""
        features = self.extractor.extract(frames)
        picks = [frames[i] for i in self.extractor.sample_indices(len(frames))]
        hist = np.mean([color_histogram(f, bins=self.bins) for f in picks], axis=0)
        return self._assemble(hist, features)

    def vectorize_clip(self, clip: VideoClip, start: int = 0, stop: int | None = None):
        """The feature vector of ``clip[start:stop]`` (whole clip by default)."""
        stop = len(clip) if stop is None else stop
        frames = [clip[i] for i in range(start, stop)]
        return self.vector_from_frames(frames)

    def _assemble(self, hist: np.ndarray, features: ShotFeatures) -> np.ndarray:
        moments = np.array(
            [
                features.court_coverage,
                features.skin_ratio,
                features.entropy / 8.0,
                features.mean / 255.0,
                features.variance / (255.0 * 255.0),
            ],
            dtype=np.float64,
        )
        shape = np.array(
            [
                features.dominant[0] / 255.0,
                features.dominant[1] / 255.0,
                features.dominant[2] / 255.0,
                features.dominant_coverage,
            ],
            dtype=np.float64,
        )
        vector = np.concatenate([np.asarray(hist, dtype=np.float64), moments, shape])
        norm = np.sqrt((vector * vector).sum())
        if norm > 0.0:
            vector = vector / norm
        return vector


class DistancePool:
    """A thread-safe pool of reusable float64 distance buffers.

    The serving layer runs ANN probes from many reader threads; each
    search borrows a buffer at least as long as its candidate list and
    returns it.  Capacities round up to powers of two (floor 1024) so a
    growing corpus keeps reusing the same allocations — the same scheme
    as :class:`repro.ir.packed.ScorePool`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: list[np.ndarray] = []

    @staticmethod
    def _bucket(capacity: int) -> int:
        size = 1024
        while size < capacity:
            size <<= 1
        return size

    def acquire(self, capacity: int) -> np.ndarray:
        """Borrow a float64 buffer of at least *capacity* entries."""
        needed = self._bucket(capacity)
        with self._lock:
            for i, buf in enumerate(self._free):
                if buf.shape[0] >= needed:
                    return self._free.pop(i)
        return np.empty(needed, dtype=np.float64)

    def release(self, buffer: np.ndarray) -> None:
        with self._lock:
            if len(self._free) < 32:
                self._free.append(buffer)


#: Process-wide default pool shared by ANN searches.
DEFAULT_DISTANCE_POOL = DistancePool()


def kmeans(
    vectors: np.ndarray,
    n_cells: int,
    rng: np.random.Generator,
    n_iters: int = 25,
) -> np.ndarray:
    """Deterministic k-means centroids seeded from an explicit *rng*.

    There is deliberately no default rng: every caller must pass a
    generator so index builds are reproducible and worker-count
    independent.  ``n_cells`` is clamped to the number of vectors;
    cells that empty out keep their previous centroid.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError("kmeans requires an explicit numpy Generator rng")
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    if n == 0:
        raise ValueError("cannot run k-means over zero vectors")
    n_cells = max(1, min(n_cells, n))
    picks = np.sort(rng.choice(n, size=n_cells, replace=False))
    centroids = np.ascontiguousarray(vectors[picks])
    for _ in range(n_iters):
        assign = _nearest_cells(vectors, centroids)
        counts = np.bincount(assign, minlength=n_cells)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, vectors)
        updated = centroids.copy()
        filled = counts > 0
        updated[filled] = sums[filled] / counts[filled, None]
        if np.array_equal(updated, centroids):
            break
        centroids = updated
    return centroids


def _nearest_cells(vectors: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of each vector's nearest centroid (ties to the lowest cell)."""
    # ||v - c||^2 = ||v||^2 - 2 v.c + ||c||^2; the ||v||^2 term is
    # constant per row and dropped — assignment only needs the argmin.
    scores = -2.0 * (vectors @ centroids.T) + (centroids * centroids).sum(axis=1)[None, :]
    return np.argmin(scores, axis=1)


@dataclass(frozen=True)
class AnnIndex:
    """A pure-NumPy IVF index over L2-normalized feature vectors.

    Attributes:
        centroids: ``(n_cells, dim)`` coarse quantizer centroids.
        cell_offsets: ``(n_cells + 1,)`` int64 — cell *c* owns
            ``cell_members[cell_offsets[c]:cell_offsets[c + 1]]``.
        cell_members: ``(n_vectors,)`` int64 ann ids grouped by cell,
            ascending within each cell (the packed-postings idiom).
        vectors: ``(n_vectors, dim)`` float64 — row *i* is the vector
            of ann id *i*; kept for exact re-ranking of candidates.
        generation: the catalog index generation the vectors were drawn
            from (``-1`` = untagged, e.g. a pre-generation snapshot).
            Streaming ingest commits shots without rebuilding the ANN
            index, so serving compares this against the live generation
            to label results ``ann_stale``.
    """

    centroids: np.ndarray
    cell_offsets: np.ndarray
    cell_members: np.ndarray
    vectors: np.ndarray
    generation: int = -1

    @property
    def n_vectors(self) -> int:
        return int(self.vectors.shape[0])

    @property
    def n_cells(self) -> int:
        return int(self.centroids.shape[0])

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1]) if self.vectors.ndim == 2 else 0

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        n_cells: int = 8,
        rng: np.random.Generator | None = None,
        n_iters: int = 25,
        generation: int = -1,
    ) -> AnnIndex:
        """Quantize *vectors* into at most *n_cells* inverted cells.

        *rng* is mandatory for a non-empty build — k-means
        initialization must come from an explicit generator.
        *generation* tags the index with the catalog generation it was
        built against (staleness labeling).
        """
        vectors = np.ascontiguousarray(np.asarray(vectors, dtype=np.float64))
        if vectors.ndim != 2:
            vectors = vectors.reshape(0, FEATURE_DIM)
        n, dim = vectors.shape
        if n == 0:
            return cls(
                centroids=np.zeros((0, dim), dtype=np.float64),
                cell_offsets=np.zeros(1, dtype=np.int64),
                cell_members=np.zeros(0, dtype=np.int64),
                vectors=vectors,
                generation=generation,
            )
        if rng is None:
            raise TypeError("AnnIndex.build requires an explicit numpy Generator rng")
        centroids = kmeans(vectors, n_cells, rng, n_iters=n_iters)
        assign = _nearest_cells(vectors, centroids)
        members = np.argsort(assign, kind="stable").astype(np.int64)
        counts = np.bincount(assign, minlength=centroids.shape[0])
        offsets = np.zeros(centroids.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(
            centroids=centroids,
            cell_offsets=offsets,
            cell_members=members,
            vectors=vectors,
            generation=generation,
        )

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        nprobe: int | None = None,
        budget: QueryBudget | None = None,
        pool: DistancePool | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-*k* nearest stored vectors to *query*.

        Probes the *nprobe* nearest cells (all of them by default),
        computes exact squared-L2 distances over the gathered
        candidates in one vectorized pass through a pooled buffer, and
        sorts by ``np.lexsort((ids, distances))`` — distance then id,
        the oracle's tie rule.  With ``nprobe >= n_cells`` the result
        equals :func:`repro.ir.ann_reference.brute_force_search`
        byte-for-byte.

        *budget* hooks the serving deadlines: the probe checks the
        deadline up front and charges one posting per candidate.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self.n_vectors == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise ValueError(f"query shape {query.shape} != ({self.dim},)")
        if budget is not None:
            budget.check("ann_search")
        n_cells = self.n_cells
        nprobe = n_cells if nprobe is None else max(1, min(nprobe, n_cells))
        diff = self.centroids - query
        cell_distances = (diff * diff).sum(axis=1)
        probe_order = np.lexsort((np.arange(n_cells), cell_distances))[:nprobe]
        parts = [
            self.cell_members[self.cell_offsets[c] : self.cell_offsets[c + 1]]
            for c in probe_order
        ]
        ids = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        if ids.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        if budget is not None:
            budget.charge_postings(int(ids.shape[0]), stage="ann_search")
            budget.tick_batch(int(ids.shape[0]), "ann_search")
        pool = pool if pool is not None else DEFAULT_DISTANCE_POOL
        buffer = pool.acquire(int(ids.shape[0]))
        try:
            candidates = self.vectors[ids] - query
            np.multiply(candidates, candidates, out=candidates)
            distances = np.sum(candidates, axis=1, out=buffer[: ids.shape[0]])
            order = np.lexsort((ids, distances))[:k]
            return ids[order].copy(), distances[order].copy()
        finally:
            pool.release(buffer)


# ---------------------------------------------------------------------------
# Catalog persistence


_META_TABLE = "{prefix}_meta"
_BLOB_TABLE = "{prefix}_blobs"
_SHOT_TABLE = "{prefix}_shots"

#: The arrays persisted as checksummed blobs, in a fixed order.
_BLOB_FIELDS = ("centroids", "cell_offsets", "cell_members", "vectors")


def _encode_array(array: np.ndarray) -> dict:
    data = np.ascontiguousarray(array).tobytes()
    return {
        "dtype": str(array.dtype),
        "rows": int(array.shape[0]),
        "cols": int(array.shape[1]) if array.ndim == 2 else -1,
        "crc32": int(zlib.crc32(data)),
        "payload": base64.b64encode(data).decode("ascii"),
    }


def _decode_array(row: dict, name: str) -> np.ndarray:
    data = base64.b64decode(row["payload"])
    crc = int(zlib.crc32(data))
    if crc != int(row["crc32"]):
        raise AnnSnapshotError(
            f"ANN blob {name!r} fails its checksum: stored crc32={row['crc32']}, "
            f"decoded crc32={crc}"
        )
    array = np.frombuffer(data, dtype=np.dtype(row["dtype"]))
    rows, cols = int(row["rows"]), int(row["cols"])
    try:
        array = array.reshape(rows) if cols < 0 else array.reshape(rows, cols)
    except ValueError as exc:
        raise AnnSnapshotError(f"ANN blob {name!r} has inconsistent shape metadata") from exc
    return array.copy()


def export_ann_to_catalog(
    index: AnnIndex, shot_meta: list[dict], catalog, prefix: str = "ann"
) -> None:
    """Materialise an ANN snapshot as ``<prefix>_*`` catalog tables.

    ``<prefix>_meta`` carries the schema version and shape parameters,
    ``<prefix>_blobs`` one crc32-protected base64 blob per index array,
    and ``<prefix>_shots`` the per-ann-id provenance rows (*shot_meta*:
    dicts with ``shot_id``/``video_name``/``start``/``stop``/
    ``category``).  The snapshot layer persists the tables like any
    others, so the index survives ``save_catalog``/``load_catalog`` and
    is validated by ``repro fsck``.
    """
    if len(shot_meta) != index.n_vectors:
        raise ValueError(
            f"shot metadata covers {len(shot_meta)} ids, index holds {index.n_vectors}"
        )
    for template in (_META_TABLE, _BLOB_TABLE, _SHOT_TABLE):
        name = template.format(prefix=prefix)
        if name in catalog:
            catalog.drop_table(name)
    meta = catalog.create_table(_META_TABLE.format(prefix=prefix), {"key": "str", "value": "str"})
    for key, value in (
        ("schema_version", FEATURE_SCHEMA_VERSION),
        ("dim", index.dim),
        ("n_cells", index.n_cells),
        ("n_vectors", index.n_vectors),
        ("generation", index.generation),
    ):
        meta.append({"key": key, "value": str(value)})
    blobs = catalog.create_table(
        _BLOB_TABLE.format(prefix=prefix),
        {
            "name": "str",
            "dtype": "str",
            "rows": "int",
            "cols": "int",
            "crc32": "int",
            "payload": "str",
        },
    )
    for name in _BLOB_FIELDS:
        blobs.append({"name": name, **_encode_array(getattr(index, name))})
    shots = catalog.create_table(
        _SHOT_TABLE.format(prefix=prefix),
        {
            "ann_id": "int",
            "shot_id": "str",
            "video_name": "str",
            "start": "int",
            "stop": "int",
            "category": "str",
        },
    )
    for ann_id, row in enumerate(shot_meta):
        shots.append(
            {
                "ann_id": ann_id,
                "shot_id": str(row.get("shot_id", "")),
                "video_name": row["video_name"],
                "start": int(row["start"]),
                "stop": int(row["stop"]),
                "category": str(row.get("category", "")),
            }
        )


def has_ann_tables(catalog, prefix: str = "ann") -> bool:
    """Whether *catalog* carries an ANN snapshot under *prefix*."""
    return _META_TABLE.format(prefix=prefix) in catalog


def load_ann_from_catalog(catalog, prefix: str = "ann") -> tuple[AnnIndex, list[dict]]:
    """Restore an ANN snapshot, validating checksums and schema.

    Raises:
        AnnSnapshotError: on a schema-version mismatch, a blob whose
            crc32 disagrees with its payload, a missing blob, or shape
            metadata inconsistent with the decoded arrays — a typed
            failure, never a silently wrong index.
    """
    meta_table = catalog.table(_META_TABLE.format(prefix=prefix))
    meta = {row["key"]: row["value"] for row in meta_table.scan()}
    version = int(meta.get("schema_version", -1))
    if version != FEATURE_SCHEMA_VERSION:
        raise AnnSnapshotError(
            f"ANN snapshot schema version {version} != supported {FEATURE_SCHEMA_VERSION}"
        )
    blob_table = catalog.table(_BLOB_TABLE.format(prefix=prefix))
    blob_rows = {row["name"]: row for row in blob_table.scan()}
    arrays = {}
    for name in _BLOB_FIELDS:
        if name not in blob_rows:
            raise AnnSnapshotError(f"ANN snapshot is missing blob {name!r}")
        arrays[name] = _decode_array(blob_rows[name], name)
    # Older snapshots predate the generation tag; stay loadable as -1.
    index = AnnIndex(**arrays, generation=int(meta.get("generation", -1)))
    if index.n_vectors != int(meta["n_vectors"]) or index.n_cells != int(meta["n_cells"]):
        raise AnnSnapshotError("ANN snapshot metadata disagrees with decoded arrays")
    if (
        index.cell_members.shape[0] != index.n_vectors
        or index.cell_offsets.shape[0] != index.n_cells + 1
    ):
        raise AnnSnapshotError("ANN snapshot cell arrays are inconsistent")
    shot_meta = sorted(
        catalog.table(_SHOT_TABLE.format(prefix=prefix)).scan(), key=lambda r: int(r["ann_id"])
    )
    if len(shot_meta) != index.n_vectors:
        raise AnnSnapshotError(
            f"ANN snapshot shot metadata covers {len(shot_meta)} ids, "
            f"index holds {index.n_vectors}"
        )
    return index, [dict(row) for row in shot_meta]
