"""The document collection.

Documents are the textual objects of the digital library: generated web
pages and interview transcripts.  The collection assigns ids, keeps raw
text for snippet display, and exposes normalised term streams for
indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.tokenizer import normalize_terms

__all__ = ["Document", "DocumentCollection"]


@dataclass(frozen=True)
class Document:
    """One document of the library.

    Attributes:
        doc_id: collection-assigned identifier.
        name: stable external name (URL path, transcript key...).
        text: raw text.
        metadata: free-form attributes (e.g. ``player``, ``year``) used to
            join text hits back to the conceptual layer.
    """

    doc_id: int
    name: str
    text: str
    metadata: dict[str, object] = field(default_factory=dict)


class DocumentCollection:
    """An append-only set of documents with normalised term access."""

    def __init__(self, stem: bool = True, drop_stopwords: bool = True):
        self._documents: list[Document] = []
        self._by_name: dict[str, int] = {}
        self.stem = stem
        self.drop_stopwords = drop_stopwords

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self):
        return iter(self._documents)

    def add(self, name: str, text: str, metadata: dict[str, object] | None = None) -> Document:
        """Add a document; duplicate names are rejected."""
        if name in self._by_name:
            raise ValueError(f"document {name!r} already in the collection")
        doc = Document(
            doc_id=len(self._documents),
            name=name,
            text=text,
            metadata=dict(metadata or {}),
        )
        self._documents.append(doc)
        self._by_name[name] = doc.doc_id
        return doc

    def document(self, doc_id: int) -> Document:
        return self._documents[doc_id]

    def by_name(self, name: str) -> Document:
        return self._documents[self._by_name[name]]

    def terms(self, doc_id: int) -> list[str]:
        """Normalised terms of one document."""
        return normalize_terms(
            self._documents[doc_id].text,
            stem=self.stem,
            drop_stopwords=self.drop_stopwords,
        )

    def query_terms(self, query: str) -> list[str]:
        """Normalise a query string the same way documents are."""
        return normalize_terms(query, stem=self.stem, drop_stopwords=self.drop_stopwords)
