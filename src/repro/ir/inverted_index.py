"""The inverted index: term -> packed postings.

Postings keep per-document term frequencies; document frequencies and
lengths support the ranking functions.  Since the vectorized-hot-path
rewrite each term's postings live as *packed parallel NumPy arrays*
(ascending doc ids + term frequencies) instead of lists of
:class:`Posting` objects — the layout a main-memory column engine like
the paper's Monet substrate scans.  The object API (:meth:`postings`)
is preserved for callers that want materialised pairs.

The index can export itself to :mod:`repro.storage` tables two ways:
the relational representation (the paper runs IR *inside* the DBMS; the
E6 benchmark fragments that export) and the packed representation
(delta+varint blobs, the on-disk twin of the in-memory arrays), which
round-trips through catalog snapshots and ``repro fsck``.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass

import numpy as np

from repro.ir.collection import DocumentCollection
from repro.ir.packed import (
    Bitmap,
    PackedPostings,
    bm25_term_weights,
    intersect_sorted,
    tfidf_term_weights,
    union_sorted,
)
from repro.storage.catalog import Catalog

__all__ = ["Posting", "InvertedIndex", "load_packed_postings"]


@dataclass(frozen=True)
class Posting:
    """One (document, term frequency) pair of a postings list."""

    doc_id: int
    tf: int

    def __post_init__(self) -> None:
        if self.tf < 1:
            raise ValueError(f"term frequency must be >= 1, got {self.tf}")


class InvertedIndex:
    """Term -> packed postings map built from a :class:`DocumentCollection`."""

    def __init__(self, collection: DocumentCollection):
        self.collection = collection
        self._packed: dict[str, PackedPostings] = {}
        self._doc_lengths: dict[int, int] = {}
        self._lengths_array: np.ndarray = np.empty(0, dtype=np.int64)
        self._weight_cache: dict[tuple[str, str], np.ndarray] = {}
        self._indexed_docs = 0
        self.refresh()

    def refresh(self) -> None:
        """Index documents added to the collection since the last build.

        New postings are gathered per term and appended to the packed
        arrays in one concatenation — documents arrive in ascending
        doc-id order, so the arrays stay sorted without re-sorting.
        """
        fresh_ids: dict[str, list[int]] = {}
        fresh_tfs: dict[str, list[int]] = {}
        for doc in self.collection:
            if doc.doc_id < self._indexed_docs:
                continue
            counts: dict[str, int] = {}
            terms = self.collection.terms(doc.doc_id)
            for term in terms:
                counts[term] = counts.get(term, 0) + 1
            self._doc_lengths[doc.doc_id] = len(terms)
            for term, tf in counts.items():
                fresh_ids.setdefault(term, []).append(doc.doc_id)
                fresh_tfs.setdefault(term, []).append(tf)
        for term, ids in fresh_ids.items():
            new_ids = np.asarray(ids, dtype=np.int64)
            new_tfs = np.asarray(fresh_tfs[term], dtype=np.int64)
            existing = self._packed.get(term)
            if existing is None:
                self._packed[term] = PackedPostings(doc_ids=new_ids, tfs=new_tfs)
            else:
                self._packed[term] = PackedPostings(
                    doc_ids=np.concatenate([existing.doc_ids, new_ids]),
                    tfs=np.concatenate([existing.tfs, new_tfs]),
                )
        self._indexed_docs = len(self.collection)
        self._lengths_array = np.zeros(max(self._indexed_docs, 1), dtype=np.int64)
        for doc_id, length in self._doc_lengths.items():
            self._lengths_array[doc_id] = length
        self._weight_cache.clear()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def n_documents(self) -> int:
        return self._indexed_docs

    @property
    def vocabulary(self) -> list[str]:
        return sorted(self._packed)

    def postings(self, term: str) -> list[Posting]:
        """The postings list of *term* (empty when unseen), materialised."""
        packed = self._packed.get(term)
        if packed is None:
            return []
        return [
            Posting(doc_id=int(d), tf=int(t))
            for d, t in zip(packed.doc_ids.tolist(), packed.tfs.tolist())
        ]

    def packed(self, term: str) -> PackedPostings | None:
        """The packed arrays of *term* (``None`` when unseen).

        The returned arrays are the live index storage — callers must
        treat them as read-only.
        """
        return self._packed.get(term)

    @property
    def doc_lengths_array(self) -> np.ndarray:
        """Document lengths as an ``int64`` array indexed by doc id."""
        return self._lengths_array

    def term_weights(self, term: str, scheme: str) -> np.ndarray | None:
        """Per-posting *scheme* weights for *term*, cached until refresh.

        The weight vector is a pure function of the term's packed arrays
        and the collection statistics, so it is computed once by the
        exact kernels and reused across queries; :meth:`refresh`
        invalidates the cache.  ``None`` for unseen terms.
        """
        packed = self._packed.get(term)
        if packed is None:
            return None
        key = (term, scheme)
        cached = self._weight_cache.get(key)
        if cached is None:
            n_docs = max(self._indexed_docs, 1)
            if scheme == "tfidf":
                cached = tfidf_term_weights(packed.tfs, packed.df, n_docs)
            else:
                cached = bm25_term_weights(
                    packed.tfs,
                    self._lengths_array[packed.doc_ids],
                    packed.df,
                    n_docs,
                    self.average_doc_length,
                )
            self._weight_cache[key] = cached
        return cached

    def document_frequency(self, term: str) -> int:
        packed = self._packed.get(term)
        return 0 if packed is None else packed.df

    def doc_length(self, doc_id: int) -> int:
        return self._doc_lengths.get(doc_id, 0)

    @property
    def average_doc_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return sum(self._doc_lengths.values()) / len(self._doc_lengths)

    def total_postings(self) -> int:
        return sum(p.df for p in self._packed.values())

    # ------------------------------------------------------------------ #
    # Boolean retrieval — packed AND/OR
    # ------------------------------------------------------------------ #

    def matching_docs(self, query_terms: list[str], mode: str = "and") -> np.ndarray:
        """Ascending doc ids matching the AND/OR of *query_terms*.

        Dense terms (>= 1/16 of the collection) take the roaring-style
        bitmap path — bitwise words instead of sorted merges; sparse
        combinations use whole-array sorted intersection/union.  Results
        match :func:`repro.ir.reference.boolean_docs_reference` exactly.
        """
        if mode not in ("and", "or"):
            raise ValueError(f"mode must be 'and' or 'or', got {mode!r}")
        if not query_terms:
            return np.empty(0, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        arrays: list[np.ndarray] = []
        packs: list[PackedPostings | None] = []
        for term in query_terms:
            packed = self._packed.get(term)
            packs.append(packed)
            arrays.append(empty if packed is None else packed.doc_ids)
        universe = max(self._indexed_docs, 1)
        all_dense = all(p is not None and p.is_dense(universe) for p in packs)
        if all_dense and len(arrays) > 1:
            bitmap = packs[0].bitmap(universe)
            for packed in packs[1:]:
                other = packed.bitmap(universe)
                bitmap = bitmap & other if mode == "and" else bitmap | other
            return bitmap.ids()
        result = arrays[0]
        for ids in arrays[1:]:
            result = intersect_sorted(result, ids) if mode == "and" else union_sorted(result, ids)
            if mode == "and" and result.size == 0:
                break
        return np.asarray(result, dtype=np.int64)

    def term_bitmap(self, term: str) -> Bitmap:
        """Membership bitmap of *term* over the indexed document universe."""
        universe = max(self._indexed_docs, 1)
        packed = self._packed.get(term)
        ids = np.empty(0, dtype=np.int64) if packed is None else packed.doc_ids
        return Bitmap.from_ids(ids, universe)

    # ------------------------------------------------------------------ #
    # Database export — "the database approach"
    # ------------------------------------------------------------------ #

    def export_to_catalog(self, catalog: Catalog, prefix: str = "ir") -> None:
        """Materialise the index as ``<prefix>_postings`` / ``<prefix>_docs``.

        This is the relational representation the Blok et al. engine
        operates on: one postings table (term, doc, tf) and one document
        statistics table.
        """
        postings = catalog.create_table(
            f"{prefix}_postings", {"term": "str", "doc_id": "int", "tf": "int"}
        )
        for term in self.vocabulary:
            packed = self._packed[term]
            for doc_id, tf in zip(packed.doc_ids.tolist(), packed.tfs.tolist()):
                postings.append({"term": term, "doc_id": doc_id, "tf": tf})
        docs = catalog.create_table(
            f"{prefix}_docs", {"doc_id": "int", "name": "str", "length": "int"}
        )
        for doc in self.collection:
            docs.append(
                {
                    "doc_id": doc.doc_id,
                    "name": doc.name,
                    "length": self.doc_length(doc.doc_id),
                }
            )
        catalog.create_hash_index(f"{prefix}_postings", "term")

    def export_packed_to_catalog(self, catalog: Catalog, prefix: str = "ir") -> None:
        """Materialise the packed format as ``<prefix>_packed``.

        One row per term: document frequency plus the delta+varint id
        blob and varint tf blob (base64, since columns carry text).  The
        snapshot layer persists it like any other table, so the packed
        index survives ``save_catalog``/``load_catalog`` and is checked
        by ``repro fsck``; :func:`load_packed_postings` restores the
        arrays bit-exactly.
        """
        table = catalog.create_table(
            f"{prefix}_packed",
            {"term": "str", "df": "int", "id_blob": "str", "tf_blob": "str"},
        )
        for term in self.vocabulary:
            packed = self._packed[term]
            id_blob, tf_blob = packed.to_blobs()
            table.append(
                {
                    "term": term,
                    "df": packed.df,
                    "id_blob": base64.b64encode(id_blob).decode("ascii"),
                    "tf_blob": base64.b64encode(tf_blob).decode("ascii"),
                }
            )
        catalog.create_hash_index(f"{prefix}_packed", "term")


def load_packed_postings(catalog: Catalog, prefix: str = "ir") -> dict[str, PackedPostings]:
    """Decode a ``<prefix>_packed`` table back to packed postings arrays.

    Raises:
        ValueError: when a row's stored document frequency disagrees
            with its decoded blob — corruption the varint layer itself
            cannot see.
    """
    table = catalog.table(f"{prefix}_packed")
    out: dict[str, PackedPostings] = {}
    for row in table.scan():
        packed = PackedPostings.from_blobs(
            base64.b64decode(row["id_blob"]), base64.b64decode(row["tf_blob"])
        )
        if packed.df != int(row["df"]):
            raise ValueError(
                f"packed postings for term {row['term']!r} decode to df={packed.df}, "
                f"snapshot says {row['df']}"
            )
        out[row["term"]] = packed
    return out
