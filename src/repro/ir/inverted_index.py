"""The inverted index: term -> postings.

Postings keep per-document term frequencies; document frequencies and
lengths support the ranking functions.  The index can export itself to
:mod:`repro.storage` tables (the paper runs IR *inside* the DBMS), and
that export is what the E6 benchmark fragments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.collection import DocumentCollection
from repro.storage.catalog import Catalog

__all__ = ["Posting", "InvertedIndex"]


@dataclass(frozen=True)
class Posting:
    """One (document, term frequency) pair of a postings list."""

    doc_id: int
    tf: int

    def __post_init__(self) -> None:
        if self.tf < 1:
            raise ValueError(f"term frequency must be >= 1, got {self.tf}")


class InvertedIndex:
    """Term -> postings map built from a :class:`DocumentCollection`."""

    def __init__(self, collection: DocumentCollection):
        self.collection = collection
        self._postings: dict[str, list[Posting]] = {}
        self._doc_lengths: dict[int, int] = {}
        self._indexed_docs = 0
        self.refresh()

    def refresh(self) -> None:
        """Index documents added to the collection since the last build."""
        for doc in self.collection:
            if doc.doc_id < self._indexed_docs:
                continue
            counts: dict[str, int] = {}
            terms = self.collection.terms(doc.doc_id)
            for term in terms:
                counts[term] = counts.get(term, 0) + 1
            self._doc_lengths[doc.doc_id] = len(terms)
            for term, tf in counts.items():
                self._postings.setdefault(term, []).append(
                    Posting(doc_id=doc.doc_id, tf=tf)
                )
        self._indexed_docs = len(self.collection)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def n_documents(self) -> int:
        return self._indexed_docs

    @property
    def vocabulary(self) -> list[str]:
        return sorted(self._postings)

    def postings(self, term: str) -> list[Posting]:
        """The postings list of *term* (empty when unseen)."""
        return list(self._postings.get(term, []))

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def doc_length(self, doc_id: int) -> int:
        return self._doc_lengths.get(doc_id, 0)

    @property
    def average_doc_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return sum(self._doc_lengths.values()) / len(self._doc_lengths)

    def total_postings(self) -> int:
        return sum(len(p) for p in self._postings.values())

    # ------------------------------------------------------------------ #
    # Database export — "the database approach"
    # ------------------------------------------------------------------ #

    def export_to_catalog(self, catalog: Catalog, prefix: str = "ir") -> None:
        """Materialise the index as ``<prefix>_postings`` / ``<prefix>_docs``.

        This is the relational representation the Blok et al. engine
        operates on: one postings table (term, doc, tf) and one document
        statistics table.
        """
        postings = catalog.create_table(
            f"{prefix}_postings", {"term": "str", "doc_id": "int", "tf": "int"}
        )
        for term in self.vocabulary:
            for posting in self._postings[term]:
                postings.append(
                    {"term": term, "doc_id": posting.doc_id, "tf": posting.tf}
                )
        docs = catalog.create_table(
            f"{prefix}_docs", {"doc_id": "int", "name": "str", "length": "int"}
        )
        for doc in self.collection:
            docs.append(
                {
                    "doc_id": doc.doc_id,
                    "name": doc.name,
                    "length": self.doc_length(doc.doc_id),
                }
            )
        catalog.create_hash_index(f"{prefix}_postings", "term")
