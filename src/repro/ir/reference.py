"""Pure-Python reference implementations of the IR hot paths.

These are the seed's per-posting loops, kept verbatim as the *semantic
anchor* of the packed engine: the vectorized kernels in
:mod:`repro.ir.ranking` / :mod:`repro.ir.topn` must produce rankings
byte-identical to what these loops compute (same floats, same order).
The hypothesis differential suite pins that equality on random corpora,
and the E6 benchmark gate measures the packed engine's speedup against
exactly this code.

Nothing here is on a production path — the engine modules no longer
call into it — so keep it boring and obviously correct.
"""

from __future__ import annotations

from repro.budget import QueryBudget
from repro.ir.inverted_index import InvertedIndex, Posting
from repro.ir.ranking import RankedHit, bm25_score, tf_idf_score
from repro.ir.topn import TopNResult

__all__ = [
    "ReferenceFragmentedIndex",
    "boolean_docs_reference",
    "rank_full_scan_reference",
    "replicate_collection",
]


def replicate_collection(pages, copies: int):
    """Scale a document collection by replicating every page *copies* times.

    The seed tournament corpus is too small for vectorization wins to
    show above per-query overhead, so the E6 gate and the profiling
    harness measure on a replicated corpus: same vocabulary and term
    statistics shape, ``copies``-times the postings.  Document names are
    suffixed ``~r`` to stay unique; term normalisation settings carry
    over from the source collection.
    """
    from repro.ir.collection import DocumentCollection

    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    scaled = DocumentCollection(stem=pages.stem, drop_stopwords=pages.drop_stopwords)
    for r in range(copies):
        for doc in pages:
            scaled.add(f"{doc.name}~{r}", doc.text, dict(doc.metadata))
    return scaled


def rank_full_scan_reference(
    index: InvertedIndex,
    query_terms: list[str],
    n: int,
    scheme: str = "tfidf",
) -> list[RankedHit]:
    """Exact top-*n* by a per-posting Python loop (the seed implementation)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if scheme not in ("tfidf", "bm25"):
        raise ValueError(f"unknown ranking scheme {scheme!r}")
    accumulators: dict[int, float] = {}
    n_docs = max(index.n_documents, 1)
    avg_len = index.average_doc_length
    for term in query_terms:
        df = index.document_frequency(term)
        if df == 0:
            continue
        for posting in index.postings(term):
            if scheme == "tfidf":
                weight = tf_idf_score(posting.tf, df, n_docs)
            else:
                weight = bm25_score(
                    posting.tf, df, n_docs, index.doc_length(posting.doc_id), avg_len
                )
            accumulators[posting.doc_id] = accumulators.get(posting.doc_id, 0.0) + weight
    hits = [RankedHit(score=s, doc_id=d) for d, s in accumulators.items()]
    hits.sort(key=lambda h: (-h.score, h.doc_id))
    return hits[:n]


def boolean_docs_reference(
    index: InvertedIndex, query_terms: list[str], mode: str = "and"
) -> list[int]:
    """AND/OR document sets by Python set algebra (reference semantics).

    Unknown terms contribute the empty set: an AND containing one is
    empty, an OR ignores it.  An empty term list is empty either way.
    """
    if mode not in ("and", "or"):
        raise ValueError(f"mode must be 'and' or 'or', got {mode!r}")
    sets = [{p.doc_id for p in index.postings(term)} for term in query_terms]
    if not sets:
        return []
    result = sets[0]
    for docs in sets[1:]:
        result = result & docs if mode == "and" else result | docs
    return sorted(result)


class ReferenceFragmentedIndex:
    """The seed's tf-descending fragmented index, per-posting loops intact.

    Mirrors :class:`repro.ir.topn.FragmentedIndex` exactly — same
    fragment layout, same accounting, same result ordering — but stores
    fragments as lists of :class:`Posting` objects and scores them one
    posting at a time, which is the baseline the E6 packed-vs-reference
    gate measures against.
    """

    def __init__(self, index: InvertedIndex, n_fragments: int = 4):
        if n_fragments < 1:
            raise ValueError(f"n_fragments must be >= 1, got {n_fragments}")
        self.index = index
        self.n_fragments = n_fragments
        self._fragments: dict[str, list[list[Posting]]] = {}
        self._build()

    def _build(self) -> None:
        for term in self.index.vocabulary:
            postings = sorted(
                self.index.postings(term), key=lambda p: (-p.tf, p.doc_id)
            )
            n = len(postings)
            fragments: list[list[Posting]] = []
            base = n // self.n_fragments
            remainder = n % self.n_fragments
            cursor = 0
            for f in range(self.n_fragments):
                size = base + (1 if f < remainder else 0)
                fragments.append(postings[cursor : cursor + size])
                cursor += size
            self._fragments[term] = fragments

    def search(
        self,
        query_terms: list[str],
        n: int,
        max_fragments: int | None = None,
        scheme: str = "tfidf",
        budget: QueryBudget | None = None,
    ) -> TopNResult:
        """Fragment-at-a-time top-*n*, one posting per loop iteration."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if scheme not in ("tfidf", "bm25"):
            raise ValueError(f"unknown ranking scheme {scheme!r}")
        limit = self.n_fragments if max_fragments is None else max_fragments
        if limit < 1:
            raise ValueError(f"max_fragments must be >= 1, got {max_fragments}")

        n_docs = max(self.index.n_documents, 1)
        avg_len = self.index.average_doc_length
        accumulators: dict[int, float] = {}
        processed = 0
        total = 0
        fragments_processed = 0

        for term in query_terms:
            if budget is not None:
                budget.check("text_topn")
            fragments = self._fragments.get(term)
            if fragments is None:
                continue
            df = self.index.document_frequency(term)
            total += sum(len(f) for f in fragments)
            for fragment in fragments[:limit]:
                if not fragment:
                    continue
                fragments_processed += 1
                for posting in fragment:
                    if budget is not None:
                        budget.tick("text_topn")
                    if scheme == "tfidf":
                        weight = tf_idf_score(posting.tf, df, n_docs)
                    else:
                        weight = bm25_score(
                            posting.tf,
                            df,
                            n_docs,
                            self.index.doc_length(posting.doc_id),
                            avg_len,
                        )
                    accumulators[posting.doc_id] = (
                        accumulators.get(posting.doc_id, 0.0) + weight
                    )
                    processed += 1

        hits = [RankedHit(score=s, doc_id=d) for d, s in accumulators.items()]
        hits.sort(key=lambda h: (-h.score, h.doc_id))
        return TopNResult(
            hits=hits[:n],
            postings_processed=processed,
            postings_total=total,
            fragments_processed=fragments_processed,
        )
