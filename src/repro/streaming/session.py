"""One stream's crash-safe chunk-append ingest session.

:class:`StreamSession` applies :class:`~repro.streaming.chunker.FrameChunk`
batches of one stream to a :class:`~repro.library.indexing.LibraryIndexer`.
Each accepted chunk lands with the commit protocol::

    journal chunk_begin          (intent)
    detect + mutate meta-index   (in memory only)
    atomic snapshot save         (model + runner state + stream_state)
    journal chunk_commit         (promise: snapshot holds the chunk)
    generation += 1              (readers see the new shots)

A kill between any two steps loses at most in-memory work: on restart
the snapshot's ``stream_state`` row names the exactly-once resume point
(``watermark``), the producer re-feeds frames from there, and offset
deduplication drops anything re-delivered below it — no lost and no
duplicated shots, proved per crash point by the E20 kill matrix.

Detector work per chunk reuses the batch pipeline's own helpers
(:func:`~repro.grammar.tennis.track_shot_player`,
:func:`~repro.grammar.tennis.detect_player_events`) in batch order, so
a stream ingested without interference produces a final snapshot
byte-identical to ``index_checkpointed`` over the same frames.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass

from repro.core.defaults import tennis_grammar
from repro.grammar.tennis import (
    detect_player_events,
    shot_features_dict,
    track_shot_player,
)
from repro.library.persistence import load_stream_state, save_model
from repro.library.stats import LatencyReservoir
from repro.storage.crashpoints import trip
from repro.streaming.chunker import FrameChunk
from repro.streaming.segmenter import StreamingSegmenter
from repro.tracking.tracker import PlayerTracker
from repro.video.shots import ShotCategory

__all__ = ["StreamSession", "ChunkCommit", "StreamGapError"]


class StreamGapError(RuntimeError):
    """A chunk arrived beyond the next expected frame (frames missing).

    Raised by :meth:`StreamSession.push_chunk`; the ingestor handles it
    by force-finalising the tail at the last ingested frame and
    restarting the boundary state past the gap (a labeled
    ``degraded_freshness`` shed, never a silent hole in a shot).
    """

    def __init__(self, stream: str, expected: int, got: int):
        super().__init__(
            f"stream {stream!r}: expected frame {expected}, chunk starts at {got}"
        )
        self.stream = stream
        self.expected = expected
        self.got = got


@dataclass(frozen=True)
class ChunkCommit:
    """Outcome of one committed chunk."""

    stream: str
    seq: int
    accepted_frames: int
    deduped_frames: int
    new_shots: int
    watermark: int
    generation: int
    final: bool
    freshness_seconds: float | None = None


class StreamSession:
    """Chunk-append one stream into a library indexer.

    Args:
        indexer: the :class:`~repro.library.indexing.LibraryIndexer`.
        plan: the stream's video plan (names the stream and its match).
        path: snapshot path; ``None`` runs memory-only (no durability —
            shard workers rebuild from scratch and use this mode).
        journal: indexing journal for chunk records (requires *path*).
        segmenter: batch segment detector to mirror (defaults to the
            FDE's twin-comparison configuration).
        tracker / far_tracker: player trackers (defaults match
            ``build_tennis_fde``; pass the engine's own to mirror a
            customised pipeline).
        grammar: COBRA event grammar (defaults to ``tennis_grammar()``).
        commit_lock: zero-argument context-manager factory entered
            around every chunk's shared-state mutation (the serving
            layer passes its write lock).
        clock: monotonic clock for freshness sampling.

    Use :meth:`resume` to continue an interrupted session from a
    restored snapshot.
    """

    def __init__(
        self,
        indexer,
        plan,
        *,
        path=None,
        journal=None,
        segmenter=None,
        tracker: PlayerTracker | None = None,
        far_tracker: PlayerTracker | None = None,
        grammar=None,
        commit_lock=None,
        clock=time.monotonic,
        _resume_state: dict | None = None,
    ):
        if journal is not None and path is None:
            raise ValueError("a journal requires a snapshot path")
        self.indexer = indexer
        self.plan = plan
        self.name = plan.name
        self.path = path
        self.journal = journal
        self.tracker = tracker or PlayerTracker()
        self.far_tracker = far_tracker
        self.grammar = grammar or tennis_grammar()
        self._lock = commit_lock if commit_lock is not None else nullcontext
        self._clock = clock
        self.freshness = LatencyReservoir()
        self.duplicates_dropped = 0
        self.finalized = False
        self.degraded = False  # a gap() shed broke batch identity

        if _resume_state is not None:
            state = _resume_state
            self.seq = int(state["seq"])
            self.shots_total = int(state["shots"])
            self.segmenter = StreamingSegmenter(
                segmenter,
                origin=int(state["watermark"]),
                scan_base=int(state["scan_base"]),
            )
            record = indexer.indexed.get(self.name)
            if record is None:
                raise ValueError(
                    f"resume of {self.name!r} needs the restored snapshot's video"
                )
            self.video_id = record.video_id
        else:
            self.seq = 0
            self.shots_total = 0
            self.segmenter = StreamingSegmenter(segmenter)
            self.video_id: int | None = None

    @classmethod
    def resume(cls, indexer, plan, path, journal=None, **kwargs) -> "StreamSession":
        """Continue an interrupted ingest from a restored snapshot.

        The indexer must already hold the snapshot's model (via
        ``restore_snapshot``); this reads the snapshot's
        ``stream_state`` row for *plan* and rebuilds the carry-over
        boundary state.  Re-feed frames from :attr:`next_frame`.
        """
        states = load_stream_state(path)
        state = states.get(plan.name)
        if state is None:
            raise ValueError(f"snapshot {path} has no stream state for {plan.name!r}")
        if journal is not None:
            journal.recover()
        return cls(
            indexer, plan, path=path, journal=journal, _resume_state=state, **kwargs
        )

    # -- state ---------------------------------------------------------- #

    @property
    def next_frame(self) -> int:
        """The next absolute frame index this session will accept."""
        return self.segmenter.frames_seen

    @property
    def watermark(self) -> int:
        """Durably committed resume point (after the last commit)."""
        return self.segmenter.watermark

    def export_state(self) -> dict:
        """This session's ``stream_state`` snapshot row."""
        return {
            "stream": self.name,
            "seq": self.seq,
            "watermark": self.segmenter.watermark,
            "scan_base": self.segmenter.scan_base,
            "frames": self.segmenter.frames_seen,
            "shots": self.shots_total,
        }

    # -- ingest --------------------------------------------------------- #

    def push_chunk(self, chunk: FrameChunk) -> ChunkCommit | None:
        """Apply one chunk; returns the commit, or ``None`` when the
        chunk was entirely duplicate (idempotent redelivery)."""
        if self.finalized:
            raise RuntimeError(f"stream {self.name!r} already finalised")
        if chunk.stream != self.name:
            raise ValueError(f"chunk for {chunk.stream!r} offered to {self.name!r}")
        expected = self.next_frame
        if chunk.start > expected:
            raise StreamGapError(self.name, expected, chunk.start)
        accepted = chunk.tail_from(expected)
        deduped = len(chunk) - len(accepted)
        self.duplicates_dropped += deduped
        if not accepted.frames and not chunk.final:
            return None

        self.seq += 1
        if self.journal is not None:
            self.journal.chunk_begin(self.name, self.seq, accepted.start, accepted.stop)
        trip("chunk-post-begin")

        emitted = self.segmenter.push(accepted.frames)
        if chunk.final:
            emitted.extend(self.segmenter.finalize())

        with self._lock():
            self._ensure_video(chunk.fps)
            new_shots = 0
            for shot, frames in emitted:
                self._commit_shot(shot, frames)
                new_shots += 1
            self.shots_total += new_shots
            total = self.segmenter.frames_seen
            watermark = self.segmenter.watermark
            self.indexer.model.set_video_frames(
                self.video_id, total if chunk.final else watermark
            )
            trip("chunk-pre-snapshot")
            if self.path is not None:
                self._save_snapshot(final=chunk.final)
            trip("chunk-pre-commit")
            generation = self.indexer.generation + 1
            if self.journal is not None:
                self.journal.chunk_commit(
                    self.name,
                    self.seq,
                    watermark=watermark,
                    frames=total,
                    shots=self.shots_total,
                    generation=generation,
                )
            trip("chunk-pre-generation")
            self.indexer.generation = generation
            trip("chunk-post-generation")

        freshness = None
        if chunk.arrived_at is not None:
            freshness = max(0.0, self._clock() - chunk.arrived_at)
            self.freshness.add(freshness)
        if chunk.final:
            self._finish(total)
        return ChunkCommit(
            stream=self.name,
            seq=self.seq,
            accepted_frames=len(accepted),
            deduped_frames=deduped,
            new_shots=new_shots,
            watermark=self.segmenter.watermark,
            generation=self.indexer.generation,
            final=chunk.final,
            freshness_seconds=freshness,
        )

    def record_gap(self, new_start: int) -> int:
        """Shed recovery: finalise the tail at the last ingested frame
        and restart past the dropped frames.  Returns the number of
        tail shots flushed.  The stream is marked degraded."""
        emitted = self.segmenter.gap(new_start)
        with self._lock():
            if emitted:
                self._ensure_video(self.plan_fps())
                for shot, frames in emitted:
                    self._commit_shot(shot, frames)
                self.shots_total += len(emitted)
        self.degraded = True
        return len(emitted)

    def plan_fps(self) -> float:
        return float(getattr(self.plan, "fps", 25.0))

    # -- internals ------------------------------------------------------ #

    def _ensure_video(self, fps: float) -> None:
        if self.video_id is not None:
            return
        video = self.indexer.model.add_video(self.name, fps=fps, n_frames=0)
        self.video_id = video.video_id
        self.indexer.register_streamed_video(self.plan, video.video_id)

    def _commit_shot(self, shot, frames) -> None:
        """Register one finalised shot in batch detector order:
        shot record, player objects, then events."""
        model = self.indexer.model
        record = model.add_shot(
            self.video_id,
            start=shot.start,
            stop=shot.stop,
            category=shot.category,
            features=shot_features_dict(shot),
        )
        if shot.category != ShotCategory.TENNIS:
            return
        player = track_shot_player(
            model, frames, shot, record.shot_id, self.tracker, self.far_tracker
        )
        detect_player_events(model, player, self.grammar)

    def _save_snapshot(self, final: bool) -> None:
        states = self.indexer.stream_states
        if final:
            states.pop(self.name, None)
        else:
            states[self.name] = self.export_state()
        save_model(
            self.indexer.model,
            self.path,
            runner_state=self.indexer.fde.runner.export_state(),
            stream_state=[states[name] for name in sorted(states)],
        )

    def _finish(self, total: int) -> None:
        self.finalized = True
        record = self.indexer.indexed.get(self.name)
        if record is not None:
            record.n_frames = total
        self.indexer.stream_states.pop(self.name, None)
        video_obj = self.indexer.webspace_video(self.name)
        if video_obj is not None:
            video_obj.attributes["n_frames"] = total
