"""Crash-safe live streaming ingest (chunk-append indexing).

Frames arrive in bounded :class:`~repro.streaming.chunker.FrameChunk`
batches; :class:`~repro.streaming.segmenter.StreamingSegmenter` runs
shot-boundary detection incrementally with carry-over state across
chunk edges; :class:`~repro.streaming.session.StreamSession` lands each
chunk as a journal record plus an atomic snapshot delta (resume exactly
at the last committed chunk after a kill); and
:class:`~repro.streaming.ingest.StreamIngestor` runs many sessions
behind bounded queues with typed backpressure, stall quarantine and a
per-stream freshness SLO metric.
"""

from repro.streaming.chunker import FrameChunk, iter_chunks
from repro.streaming.ingest import StreamConfig, StreamHealth, StreamIngestor
from repro.streaming.segmenter import StreamingSegmenter
from repro.streaming.session import ChunkCommit, StreamGapError, StreamSession

__all__ = [
    "FrameChunk",
    "iter_chunks",
    "StreamingSegmenter",
    "StreamSession",
    "ChunkCommit",
    "StreamGapError",
    "StreamIngestor",
    "StreamConfig",
    "StreamHealth",
]
