"""Multi-stream ingest loop: bounded queues, backpressure, quarantine.

:class:`StreamIngestor` runs one consumer thread per live stream.  The
producer side (:meth:`StreamIngestor.offer`) never blocks and never
grows without bound: each stream has a bounded chunk queue, and when it
overflows the *oldest* queued chunks are shed — freshness degrades in a
labeled way (``degraded_freshness`` + ``lag_sheds`` counters in health)
instead of the process OOMing or silently stalling the producer.

Robustness ladder per stream:

- per-chunk retry/backoff/timeout from a
  :class:`~repro.grammar.runtime.RunPolicy` — transient detector
  failures retry with backoff, a chunk overrunning ``policy.timeout``
  counts as a breaker failure;
- shed gaps route through
  :meth:`~repro.streaming.session.StreamSession.record_gap` (tail
  finalised, boundary state restarted past the gap, stream marked
  degraded);
- a stream making no commit progress within ``stall_deadline`` trips
  its breaker and is quarantined — its queue drops, its thread exits,
  and *other* streams are unaffected.

Freshness SLO: every committed chunk samples frame-arrival ->
queryable latency into a per-stream reservoir; :meth:`health` reports
p50/p95 against the declared ``freshness_slo``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.grammar.runtime import RunPolicy
from repro.library.stats import PERCENTILES
from repro.storage.crashpoints import SimulatedCrash
from repro.streaming.chunker import FrameChunk
from repro.streaming.session import StreamGapError, StreamSession

__all__ = ["StreamConfig", "StreamHealth", "StreamIngestor"]


@dataclass(frozen=True)
class StreamConfig:
    """Ingest-loop tuning knobs.

    Attributes:
        queue_chunks: bounded per-stream queue depth; overflow sheds the
            oldest queued chunk (labeled, never silent).
        stall_deadline: seconds without a chunk commit (while work is
            queued) before the stream's breaker trips and it is
            quarantined.
        freshness_slo: declared p95 frame-arrival -> queryable bound in
            seconds (reported in health; gated by E20).
        policy: per-chunk retry/backoff/timeout policy.
    """

    queue_chunks: int = 8
    stall_deadline: float = 30.0
    freshness_slo: float = 2.0
    policy: RunPolicy = field(default_factory=lambda: RunPolicy(max_retries=1))


@dataclass
class StreamHealth:
    """One stream's health row (see :meth:`StreamIngestor.health`)."""

    stream: str
    state: str  # "live" | "done" | "quarantined"
    chunks_committed: int
    frames: int
    shots: int
    watermark: int
    lag_sheds: int
    shed_frames: int
    duplicates_dropped: int
    retries: int
    timeouts: int
    degraded_freshness: bool
    freshness: dict[str, float | None]
    freshness_slo: float
    last_error: str | None = None


class _StreamState:
    """Internal per-stream bookkeeping."""

    def __init__(self, session: StreamSession, config: StreamConfig):
        self.session = session
        self.config = config
        self.queue: deque[FrameChunk] = deque()
        self.cond = threading.Condition()
        self.state = "live"
        self.chunks_committed = 0
        self.lag_sheds = 0
        self.shed_frames = 0
        self.retries = 0
        self.timeouts = 0
        self.degraded_freshness = False
        self.last_error: str | None = None
        self.last_progress: float | None = None
        self.closing = False
        self.thread: threading.Thread | None = None


class StreamIngestor:
    """Run many crash-safe stream sessions behind bounded queues.

    Args:
        indexer: the shared :class:`~repro.library.indexing.LibraryIndexer`.
        path / journal: durability targets passed to each session
            (``None`` for memory-only ingest, e.g. inside shard workers).
        config: ingest tuning (queue depth, stall deadline, SLO, policy).
        commit_lock: context-manager factory serialising chunk commits
            across streams (the serving layer's write lock); defaults to
            a private lock so concurrent sessions never interleave
            half-commits.
        clock / sleep: injectable time sources (tests use fakes).
    """

    def __init__(
        self,
        indexer,
        *,
        path=None,
        journal=None,
        config: StreamConfig | None = None,
        commit_lock=None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.indexer = indexer
        self.path = path
        self.journal = journal
        self.config = config or StreamConfig()
        self._clock = clock
        self._sleep = sleep
        if commit_lock is None:
            shared = threading.Lock()

            def commit_lock():
                return shared

        self._commit_lock = commit_lock
        self._streams: dict[str, _StreamState] = {}
        self._lock = threading.Lock()

    # -- stream lifecycle ------------------------------------------------ #

    def open_stream(self, plan, *, resume: bool = False, segmenter=None) -> str:
        """Start a consumer for *plan*'s stream; returns the stream name."""
        with self._lock:
            if plan.name in self._streams:
                raise ValueError(f"stream {plan.name!r} already open")
        if resume:
            session = StreamSession.resume(
                self.indexer, plan, self.path, journal=self.journal,
                segmenter=segmenter, commit_lock=self._commit_lock,
                clock=self._clock,
            )
        else:
            session = StreamSession(
                self.indexer, plan, path=self.path, journal=self.journal,
                segmenter=segmenter, commit_lock=self._commit_lock,
                clock=self._clock,
            )
        state = _StreamState(session, self.config)
        thread = threading.Thread(
            target=self._consume, args=(state,), name=f"stream-{plan.name}", daemon=True
        )
        state.thread = thread
        with self._lock:
            self._streams[plan.name] = state
        thread.start()
        return plan.name

    def offer(self, chunk: FrameChunk) -> bool:
        """Enqueue a chunk (producer side; never blocks).

        Returns False when the stream is quarantined/closed (the chunk
        is dropped).  On a full queue the oldest queued chunk is shed:
        ``lag_sheds`` counts it, ``degraded_freshness`` labels it, and
        the consumer later bridges the frame gap via ``record_gap``.
        """
        state = self._streams.get(chunk.stream)
        if state is None:
            raise KeyError(f"no open stream {chunk.stream!r}")
        with state.cond:
            if state.state != "live" or state.closing:
                return False
            while len(state.queue) >= self.config.queue_chunks:
                shed = state.queue.popleft()
                state.lag_sheds += 1
                state.shed_frames += len(shed)
                state.degraded_freshness = True
            state.queue.append(chunk)
            state.cond.notify()
        self._check_stall(state)
        return True

    def backlog(self, stream: str) -> int:
        """Chunks queued (offered but not yet applied) for *stream*.

        A producer that wants flow control instead of sheds polls this
        and slows down while the queue sits near ``queue_chunks``.
        """
        state = self._streams.get(stream)
        if state is None:
            raise KeyError(f"no open stream {stream!r}")
        with state.cond:
            return len(state.queue)

    def close_stream(self, stream: str, timeout: float = 60.0) -> bool:
        """Drain the stream's queue and stop its consumer.

        Returns True when the consumer exited within *timeout*.  The
        final chunk (``chunk.final``) finalises the session; closing
        without one just stops consuming (resume state stays durable).
        """
        state = self._streams.get(stream)
        if state is None:
            raise KeyError(f"no open stream {stream!r}")
        with state.cond:
            state.closing = True
            state.cond.notify_all()
        assert state.thread is not None
        state.thread.join(timeout)
        return not state.thread.is_alive()

    def drain(self, timeout: float = 120.0) -> bool:
        """Close every stream; True when all consumers exited."""
        ok = True
        for name in list(self._streams):
            ok = self.close_stream(name, timeout=timeout) and ok
        return ok

    # -- consumer ------------------------------------------------------- #

    def _consume(self, state: _StreamState) -> None:
        session = state.session
        while True:
            with state.cond:
                while not state.queue and not state.closing and state.state == "live":
                    state.cond.wait(timeout=0.05)
                if state.state != "live":
                    return
                if not state.queue:
                    if state.closing:
                        if state.state == "live":
                            state.state = "done"
                        return
                    continue
                chunk = state.queue.popleft()
            try:
                self._apply(state, chunk)
            except SimulatedCrash:
                # A simulated kill must behave like a real one: the
                # consumer dies where it stood; recovery is a new
                # session resumed from the snapshot.
                with state.cond:
                    state.state = "quarantined"
                    state.last_error = "simulated crash"
                raise
            if session.finalized:
                with state.cond:
                    state.state = "done"
                return

    def _apply(self, state: _StreamState, chunk: FrameChunk) -> None:
        session = state.session
        policy = self.config.policy
        attempts = (policy.max_retries or 0) + 1
        for attempt in range(attempts):
            started = self._clock()
            try:
                try:
                    result = session.push_chunk(chunk)
                except StreamGapError:
                    # Frames between the watermark and this chunk were
                    # shed: finalise the tail, restart past the gap.
                    session.record_gap(chunk.start)
                    state.degraded_freshness = True
                    result = session.push_chunk(chunk)
            except SimulatedCrash:
                raise
            except Exception as error:  # transient detector/storage fault
                state.retries += 1
                state.last_error = f"{type(error).__name__}: {error}"
                if attempt + 1 >= attempts:
                    self._quarantine(state, f"chunk failed after {attempts} attempts")
                    return
                self._sleep(policy.backoff(attempt))
                continue
            elapsed = self._clock() - started
            if policy.timeout is not None and elapsed > policy.timeout:
                # The chunk did commit, but overran its budget — count
                # it toward stall detection rather than undoing work.
                state.timeouts += 1
            if result is not None:
                state.chunks_committed += 1
            state.last_progress = self._clock()
            return

    def _check_stall(self, state: _StreamState) -> None:
        """Producer-side watchdog: no commit progress while work queues."""
        if state.state != "live":
            return
        with state.cond:
            backlog = len(state.queue)
            last = state.last_progress
        if backlog == 0:
            return
        if last is None:
            state.last_progress = self._clock()
            return
        if self._clock() - last > self.config.stall_deadline:
            self._quarantine(state, "stalled: no chunk progress within deadline")

    def _quarantine(self, state: _StreamState, reason: str) -> None:
        with state.cond:
            state.state = "quarantined"
            state.last_error = reason
            state.queue.clear()
            state.cond.notify_all()

    # -- reporting ------------------------------------------------------- #

    def health(self) -> dict[str, StreamHealth]:
        """Per-stream health rows, in open order."""
        out: dict[str, StreamHealth] = {}
        for name, state in self._streams.items():
            session = state.session
            freshness = {
                f"p{p}": session.freshness.percentile(p) for p in PERCENTILES
            }
            out[name] = StreamHealth(
                stream=name,
                state=state.state,
                chunks_committed=state.chunks_committed,
                frames=session.segmenter.frames_seen,
                shots=session.shots_total,
                watermark=session.watermark,
                lag_sheds=state.lag_sheds,
                shed_frames=state.shed_frames,
                duplicates_dropped=session.duplicates_dropped,
                retries=state.retries,
                timeouts=state.timeouts,
                degraded_freshness=state.degraded_freshness or session.degraded,
                freshness=freshness,
                freshness_slo=self.config.freshness_slo,
                last_error=state.last_error,
            )
        return out

    def stats_payload(self) -> dict[str, dict]:
        """Compact per-stream dict for ``QueryStats.streams``."""
        payload: dict[str, dict] = {}
        for name, row in self.health().items():
            payload[name] = {
                "state": row.state,
                "chunks": row.chunks_committed,
                "frames": row.frames,
                "shots": row.shots,
                "lag_sheds": row.lag_sheds,
                "shed_frames": row.shed_frames,
                "duplicates_dropped": row.duplicates_dropped,
                "degraded_freshness": row.degraded_freshness,
                "freshness_p50_ms": _ms(row.freshness.get("p50")),
                "freshness_p95_ms": _ms(row.freshness.get("p95")),
                "freshness_slo_ms": row.freshness_slo * 1000.0,
            }
        return payload


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else seconds * 1000.0
