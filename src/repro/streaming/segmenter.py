"""Incremental shot segmentation over streaming frame chunks.

:class:`StreamingSegmenter` wraps a batch
:class:`~repro.shots.segmenter.SegmentDetector` and reproduces its
output *incrementally*: frames are pushed in chunks, and a shot is
emitted as soon as the boundary evidence that closes it can no longer
change.  For any chunking of a clip, the concatenation of emitted shots
equals ``SegmentDetector.detect(clip)`` bit-for-bit — histograms are
per-frame independent, distances are the same pairwise float ops, and a
boundary is only declared *final* once no future frame can merge into
or extend it.

Finality rule (twin comparison): distances partition into maximal
regime runs (cut: ``d > high``; accumulation: ``low < d <= high``).
Let ``tail`` be the start of the run still open at the end of the
distance array (or ``n`` when the last frame is quiet).  New raw events
can only start at or after ``tail``, and the merge pass bridges gaps of
at most ``merge_gap`` frames, so a merged boundary ``m`` is final iff
``m.span[1] + merge_gap < tail``.  Finality is monotone: ``tail`` never
decreases, so the final prefix of the merged-event list only grows.

Crash resume: the committed state is ``(watermark, scan_base)`` — the
shot-emission cursor and the start of the first still-pending boundary
run.  Frames are re-fed from ``watermark``; raw events whose run starts
before ``scan_base`` are suppressed, because they are residue of runs
already consumed by committed boundaries (e.g. the tail of a cut run
whose boundary frame is the watermark itself).
"""

from __future__ import annotations

import numpy as np

from repro.shots.boundary import (
    AdaptiveCutDetector,
    Boundary,
    ThresholdCutDetector,
    TwinComparisonDetector,
)
from repro.shots.segmenter import DetectedShot, SegmentDetector
from repro.vision.histogram import color_histograms

__all__ = ["StreamingSegmenter"]


class StreamingSegmenter:
    """Chunk-incremental shot segmentation, byte-identical to batch.

    Args:
        segmenter: the batch segment detector to mirror; defaults to
            the tennis FDE's twin-comparison configuration.  The
            boundary detector must be a
            :class:`~repro.shots.boundary.TwinComparisonDetector` or a
            fixed-threshold
            :class:`~repro.shots.boundary.ThresholdCutDetector`;
            adaptive thresholds need the whole clip's statistics and
            cannot stream.
        origin: absolute stream index of the first frame that will be
            pushed (0 for a fresh stream, the committed watermark on
            resume).
        scan_base: suppress raw boundary events whose run starts before
            this absolute index (resume only; defaults to no-op).

    Memory note: the distance series of the current stream epoch is
    retained and re-scanned per push (boundary scans are O(n) on a
    float array — negligible next to histogram extraction); the frame
    buffer is trimmed to the unfinalized tail after every push.
    """

    def __init__(
        self,
        segmenter: SegmentDetector | None = None,
        origin: int = 0,
        scan_base: int | None = None,
    ):
        seg = segmenter or SegmentDetector(boundary_detector=TwinComparisonDetector())
        detector = seg.boundary_detector
        if isinstance(detector, AdaptiveCutDetector):
            raise TypeError("AdaptiveCutDetector needs whole-clip statistics; cannot stream")
        if not isinstance(detector, (TwinComparisonDetector, ThresholdCutDetector)):
            raise TypeError(
                f"unsupported boundary detector {type(detector).__name__}; "
                "streaming needs TwinComparisonDetector or ThresholdCutDetector"
            )
        self.segmenter = seg
        self.detector = detector
        self._origin = origin
        self._suppress = scan_base if scan_base is not None else origin + 1
        self._distances: list[float] = []
        self._frames: list = []
        self._frames_base = origin
        self._prev_hist: np.ndarray | None = None
        self._n = origin  # absolute index one past the newest frame
        self._cursor = origin  # absolute shot-emission cursor
        self._n_final_merged = 0
        self._scan_base = origin + 1  # absolute; updated per drain

    # -- state ---------------------------------------------------------- #

    @property
    def watermark(self) -> int:
        """Absolute resume point: frames below it are fully decided."""
        return self._cursor

    @property
    def frames_seen(self) -> int:
        """Absolute index one past the newest pushed frame."""
        return self._n

    @property
    def scan_base(self) -> int:
        """Absolute start of the first still-pending boundary run."""
        return self._scan_base

    # -- ingest --------------------------------------------------------- #

    def push(self, frames) -> list[tuple[DetectedShot, list]]:
        """Ingest consecutive frames; return newly-final shots.

        Each element is ``(shot, frames)`` — the classified shot plus
        its frames (needed downstream for player tracking; the internal
        buffer is trimmed as shots finalise)."""
        frames = list(frames)
        if not frames:
            return []
        hists = color_histograms(frames, bins=self.detector.bins)
        fresh = np.zeros(len(frames))
        if self._prev_hist is not None:
            fresh[0] = np.abs(hists[0] - self._prev_hist).sum() / 2.0
        if len(frames) > 1:
            fresh[1:] = np.abs(np.diff(hists, axis=0)).sum(axis=1) / 2.0
        self._prev_hist = hists[-1]
        self._distances.extend(float(d) for d in fresh)
        self._frames.extend(frames)
        self._n += len(frames)
        return self._drain(final=False)

    def finalize(self) -> list[tuple[DetectedShot, list]]:
        """End of stream: flush every pending boundary + the tail shot."""
        shots = self._drain(final=True)
        if self._cursor < self._n:
            shots.extend(self._classify(self._cursor, self._n))
            self._cursor = self._n
        self._release()
        return shots

    def gap(self, new_start: int) -> list[tuple[DetectedShot, list]]:
        """Shed recovery: finalise at the last ingested frame, then
        restart the boundary state at *new_start* (frames in between
        were dropped; batch identity is forfeited for this stream)."""
        if new_start < self._n:
            raise ValueError(f"gap target {new_start} precedes ingested frames ({self._n})")
        shots = self.finalize()
        self._origin = new_start
        self._suppress = new_start + 1
        self._distances = []
        self._frames = []
        self._frames_base = new_start
        self._prev_hist = None
        self._n = new_start
        self._cursor = new_start
        self._n_final_merged = 0
        self._scan_base = new_start + 1
        return shots

    # -- internals ------------------------------------------------------ #

    def _raw_events(self, arr: np.ndarray) -> list[Boundary]:
        if isinstance(self.detector, TwinComparisonDetector):
            raw = self.detector._raw_events(arr)
        else:
            raw = self.detector._from_distances(arr)
        if self._suppress > self._origin + 1:
            raw = [b for b in raw if b.frame + self._origin >= self._suppress]
        return raw

    def _merge_counted(self, events: list[Boundary]) -> list[tuple[Boundary, int]]:
        """The detector's merge pass, tracking each merged event's last
        raw constituent (for :attr:`scan_base`)."""
        gap = getattr(self.detector, "merge_gap", None)
        if gap is None:
            return [(event, i) for i, event in enumerate(events)]
        merged: list[tuple[Boundary, int]] = []
        for i, event in enumerate(events):
            if merged and event.span[0] - merged[-1][0].span[1] <= gap:
                prev = merged[-1][0]
                start = prev.span[0]
                stop = event.span[1]
                merged[-1] = (
                    Boundary(
                        frame=start,
                        kind="gradual" if stop - start >= 3 else "cut",
                        length=(stop - start) if stop - start >= 3 else 0,
                        score=max(prev.score, event.score),
                    ),
                    i,
                )
            else:
                merged.append((event, i))
        return merged

    def _tail_start(self, arr: np.ndarray) -> int:
        """Relative start of the regime run still open at the end."""
        n = len(arr)
        if n <= 1:
            return n
        last = arr[n - 1]
        detector = self.detector
        if isinstance(detector, TwinComparisonDetector):
            if last > detector.high:
                def in_regime(d):
                    return d > detector.high
            elif last > detector.low:
                def in_regime(d):
                    return detector.low < d <= detector.high
            else:
                return n
        else:
            if last > detector.threshold:
                def in_regime(d):
                    return d > detector.threshold
            else:
                return n
        i = n - 1
        while i >= 1 and in_regime(arr[i]):
            i -= 1
        return i + 1

    def _drain(self, final: bool) -> list[tuple[DetectedShot, list]]:
        arr = np.asarray(self._distances)
        raw = self._raw_events(arr)
        merged = self._merge_counted(raw)
        tail = self._tail_start(arr)
        gap = getattr(self.detector, "merge_gap", 0) or 0
        if final:
            n_final = len(merged)
        else:
            n_final = 0
            for boundary, _ in merged:
                if boundary.span[1] + gap < tail:
                    n_final += 1
                else:
                    break
        shots: list[tuple[DetectedShot, list]] = []
        for boundary, _ in merged[self._n_final_merged : n_final]:
            span_start, span_stop = boundary.span
            if boundary.kind == "cut":
                span_stop = span_start
            abs_start = span_start + self._origin
            abs_stop = span_stop + self._origin
            if abs_start > self._cursor:
                shots.extend(self._classify(self._cursor, abs_start))
            self._cursor = max(self._cursor, abs_stop)
        self._n_final_merged = n_final
        # Recompute scan_base: first raw event not consumed by the final
        # prefix, bounded by the open tail run.
        consumed = merged[n_final - 1][1] + 1 if n_final else 0
        pending_start = raw[consumed].frame if consumed < len(raw) else tail
        self._scan_base = min(pending_start, tail) + self._origin
        self._release()
        return shots

    def _classify(self, start: int, stop: int) -> list[tuple[DetectedShot, list]]:
        if stop - start < self.segmenter.min_shot_length:
            return []
        lo = start - self._frames_base
        hi = stop - self._frames_base
        frames = self._frames[lo:hi]
        features = self.segmenter.extractor.extract(frames)
        category = self.segmenter.classifier.classify(features)
        shot = DetectedShot(start=start, stop=stop, category=category, features=features)
        return [(shot, frames)]

    def _release(self) -> None:
        drop = self._cursor - self._frames_base
        if drop > 0:
            del self._frames[:drop]
            self._frames_base = self._cursor
