"""Frame chunks: the unit of streaming ingest.

A live broadcast arrives as a sequence of bounded :class:`FrameChunk`
batches.  Chunks carry their absolute frame offset, so the ingest path
is idempotent by construction: a re-delivered (duplicated) chunk or the
overlapping half of a torn chunk is recognised by offset and dropped,
and after a crash the producer simply re-offers frames from the last
committed watermark.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, replace

import numpy as np

__all__ = ["FrameChunk", "iter_chunks"]


@dataclass(frozen=True)
class FrameChunk:
    """One bounded batch of consecutive frames of a stream.

    Attributes:
        stream: stream (video) name.
        seq: producer-side sequence number (informational; the session
            keys exactly-once on frame offsets, not seqs).
        start: absolute index of ``frames[0]`` in the stream.
        frames: the RGB frames, oldest first.
        fps: nominal frame rate of the stream.
        final: True on the last chunk — the session finalises the tail
            shot and drops its resume state.
        arrived_at: producer timestamp (monotonic clock) used for the
            frame-arrival -> queryable freshness metric; ``None`` when
            the producer does not track it.
    """

    stream: str
    seq: int
    start: int
    frames: tuple
    fps: float = 25.0
    final: bool = False
    arrived_at: float | None = None

    @property
    def stop(self) -> int:
        """One past the absolute index of the last frame."""
        return self.start + len(self.frames)

    def __len__(self) -> int:
        return len(self.frames)

    def tail_from(self, start: int) -> "FrameChunk":
        """The suffix of this chunk from absolute frame *start* on."""
        if start <= self.start:
            return self
        return replace(self, start=start, frames=self.frames[start - self.start :])


def iter_chunks(
    clip: Sequence[np.ndarray],
    chunk_frames: int,
    stream: str = "stream",
    start: int = 0,
    fps: float | None = None,
    clock=None,
) -> Iterator[FrameChunk]:
    """Cut a materialised clip into :class:`FrameChunk` batches.

    This is the replay producer used by batch-over-chunk indexing, the
    benchmarks and the CLI: it re-feeds a clip as if it had streamed.

    Args:
        clip: the full clip (a :class:`~repro.video.frames.VideoClip`
            or frame sequence).
        chunk_frames: frames per chunk (the last chunk may be shorter).
        stream: stream name stamped on each chunk.
        start: first absolute frame to emit (resume replay from a
            committed watermark).
        fps: frame rate override; defaults to ``clip.fps`` or 25.
        clock: zero-argument monotonic clock for ``arrived_at`` stamps;
            ``None`` leaves chunks unstamped.
    """
    if chunk_frames < 1:
        raise ValueError(f"chunk_frames must be >= 1, got {chunk_frames}")
    total = len(clip)
    rate = fps if fps is not None else float(getattr(clip, "fps", 25.0))
    seq = 0
    for offset in range(start, total, chunk_frames):
        stop = min(offset + chunk_frames, total)
        yield FrameChunk(
            stream=stream,
            seq=seq,
            start=offset,
            frames=tuple(clip[i] for i in range(offset, stop)),
            fps=rate,
            final=stop == total,
            arrived_at=clock() if clock is not None else None,
        )
        seq += 1
    if start >= total and total > 0:
        # Resuming past the end: emit one empty final marker so the
        # session still finalises.
        yield FrameChunk(
            stream=stream, seq=0, start=total, frames=(), fps=rate, final=True,
            arrived_at=clock() if clock is not None else None,
        )
