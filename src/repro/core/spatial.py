"""Spatial predicates for object-layer reasoning.

Object-layer entities have "prominent spatial dimensions"; the grammars
relate them with directional and metric predicates.  Positions are
``(row, col)`` pairs, boxes are ``(row_min, col_min, row_max, col_max)``
half-open bounds — the conventions of :mod:`repro.vision`.
"""

from __future__ import annotations

import math

__all__ = [
    "left_of",
    "right_of",
    "above",
    "below",
    "near",
    "distance",
    "boxes_overlap",
    "inside",
]

Position = tuple[float, float]
Box = tuple[float, float, float, float]


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two positions."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def left_of(a: Position, b: Position, margin: float = 0.0) -> bool:
    """True when *a* lies at least *margin* pixels left of *b*."""
    return a[1] < b[1] - margin


def right_of(a: Position, b: Position, margin: float = 0.0) -> bool:
    """True when *a* lies at least *margin* pixels right of *b*."""
    return a[1] > b[1] + margin


def above(a: Position, b: Position, margin: float = 0.0) -> bool:
    """True when *a* lies at least *margin* pixels above *b* (smaller row)."""
    return a[0] < b[0] - margin


def below(a: Position, b: Position, margin: float = 0.0) -> bool:
    """True when *a* lies at least *margin* pixels below *b*."""
    return a[0] > b[0] + margin


def near(a: Position, b: Position, radius: float) -> bool:
    """True when the two positions are within *radius* pixels."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    return distance(a, b) <= radius


def _check_box(box: Box) -> Box:
    r0, c0, r1, c1 = box
    if r1 <= r0 or c1 <= c0:
        raise ValueError(f"degenerate box {box}")
    return box


def boxes_overlap(a: Box, b: Box) -> bool:
    """True when two boxes share any area."""
    ar0, ac0, ar1, ac1 = _check_box(a)
    br0, bc0, br1, bc1 = _check_box(b)
    return ar0 < br1 and br0 < ar1 and ac0 < bc1 and bc0 < ac1


def inside(position: Position, box: Box) -> bool:
    """True when *position* falls within *box* (half-open bounds)."""
    r0, c0, r1, c1 = _check_box(box)
    return r0 <= position[0] < r1 and c0 <= position[1] < c1
