"""The object/event grammar language.

"The model is extended with object and event grammars.  These grammars
are aimed at formalizing the descriptions of high-level concepts, as
well as facilitating their extraction based on spatio-temporal
reasoning."

The concrete syntax (one rule per statement, ``;``-terminated,
``#`` comments)::

    OBJECT player := area >= 12 AND aspect_ratio >= 0.8 ;

    EVENT net_play := HOLDS zone = net FOR 8 ;
    EVENT service  := HOLDS (zone = baseline AND speed < 0.7) FOR 6 ;
    EVENT rally    := HOLDS (zone != net AND speed >= 0.7) FOR 12 BRIDGE 4
                      REQUIRE mean_speed >= 1.2 AND direction_changes >= 1 ;
    EVENT baseline_play := HOLDS zone = baseline FOR 12 UNLESS rally, service ;
    EVENT attack   := SEQ baseline_play THEN net_play WITHIN 60 ;

Rule forms:

- ``OBJECT name := <predicate>`` — classify object-layer blobs from
  shape features (fields: ``area``, ``aspect_ratio``, ``eccentricity``,
  ``height``, ``width``).
- ``EVENT name := HOLDS <predicate> FOR n [BRIDGE m] [REQUIRE <aggs>]
  [UNLESS e1, e2]`` — frames satisfying the per-frame predicate
  (fields: ``zone`` / ``side`` (= / != a zone or side name),
  ``speed``, ``row``, ``col``),
  grouped into runs of at least ``n`` frames, with gaps up to ``m``
  bridged; each run must satisfy the aggregate constraints (fields:
  ``mean_speed``, ``max_speed``, ``direction_changes``, ``duration``);
  frames already claimed by the ``UNLESS`` events are excluded.
- ``EVENT name := SEQ a THEN b WITHIN n`` — composite event: an ``a``
  interval followed by a ``b`` interval starting at most ``n`` frames
  after ``a`` ends (Allen ``before``/``meets``), spanning both.

This module owns the syntax: tokeniser, parser and AST.  Evaluation
lives in :mod:`repro.core.inference`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "GrammarError",
    "Comparison",
    "And",
    "Or",
    "Not",
    "AggConstraint",
    "HoldsRule",
    "SeqRule",
    "ObjectRule",
    "ConceptGrammar",
    "parse_grammar",
]


class GrammarError(ValueError):
    """Raised for syntax or semantic errors in a grammar text."""


# --------------------------------------------------------------------- #
# AST
# --------------------------------------------------------------------- #

#: Per-frame predicate fields and their value kinds.
FRAME_FIELDS = {
    "zone": "name",
    "side": "name",
    "speed": "number",
    "row": "number",
    "col": "number",
}
#: Object predicate fields (all numeric).
OBJECT_FIELDS = ("area", "aspect_ratio", "eccentricity", "height", "width")
#: Aggregate fields allowed in REQUIRE clauses.
AGG_FIELDS = ("mean_speed", "max_speed", "direction_changes", "duration")

COMPARATORS = ("=", "!=", ">=", "<=", ">", "<")


@dataclass(frozen=True)
class Comparison:
    """``field <op> value`` — a leaf predicate."""

    fieldname: str
    op: str
    value: float | str

    def __post_init__(self) -> None:
        if self.op not in COMPARATORS:
            raise GrammarError(f"unknown comparator {self.op!r}")


@dataclass(frozen=True)
class And:
    items: tuple

    def __post_init__(self) -> None:
        if len(self.items) < 2:
            raise GrammarError("AND needs at least two operands")


@dataclass(frozen=True)
class Or:
    items: tuple

    def __post_init__(self) -> None:
        if len(self.items) < 2:
            raise GrammarError("OR needs at least two operands")


@dataclass(frozen=True)
class Not:
    item: object


@dataclass(frozen=True)
class AggConstraint:
    """``agg_field <op> value`` over one candidate run."""

    fieldname: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.fieldname not in AGG_FIELDS:
            raise GrammarError(f"unknown aggregate {self.fieldname!r}")
        if self.op not in COMPARATORS:
            raise GrammarError(f"unknown comparator {self.op!r}")


@dataclass(frozen=True)
class HoldsRule:
    """``EVENT name := HOLDS pred FOR n [BRIDGE m] [REQUIRE ...] [UNLESS ...]``"""

    name: str
    predicate: object
    min_frames: int
    bridge: int = 0
    requires: tuple[AggConstraint, ...] = ()
    unless: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.min_frames < 1:
            raise GrammarError(f"FOR must be >= 1, got {self.min_frames}")
        if self.bridge < 0:
            raise GrammarError(f"BRIDGE must be >= 0, got {self.bridge}")


@dataclass(frozen=True)
class SeqRule:
    """``EVENT name := SEQ first THEN then WITHIN n``"""

    name: str
    first: str
    then: str
    within: int

    def __post_init__(self) -> None:
        if self.within < 0:
            raise GrammarError(f"WITHIN must be >= 0, got {self.within}")


@dataclass(frozen=True)
class ObjectRule:
    """``OBJECT name := pred`` over shape-feature fields."""

    name: str
    predicate: object


@dataclass
class ConceptGrammar:
    """A parsed grammar: ordered event rules + object rules."""

    event_rules: list = field(default_factory=list)
    object_rules: list[ObjectRule] = field(default_factory=list)

    @property
    def event_names(self) -> list[str]:
        return [r.name for r in self.event_rules]

    def event_rule(self, name: str):
        for rule in self.event_rules:
            if rule.name == name:
                return rule
        raise KeyError(f"no event rule named {name!r}")

    def object_rule(self, name: str) -> ObjectRule:
        for rule in self.object_rules:
            if rule.name == name:
                return rule
        raise KeyError(f"no object rule named {name!r}")


# --------------------------------------------------------------------- #
# Tokeniser
# --------------------------------------------------------------------- #

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)        # whitespace / comments
  | (?P<assign>:=)
  | (?P<op>!=|>=|<=|=|>|<)
  | (?P<punct>[();,])
  | (?P<number>\d+(\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "EVENT",
    "OBJECT",
    "HOLDS",
    "FOR",
    "BRIDGE",
    "REQUIRE",
    "UNLESS",
    "SEQ",
    "THEN",
    "WITHIN",
    "AND",
    "OR",
    "NOT",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'keyword' | 'ident' | 'number' | 'op' | 'punct' | 'assign'
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise GrammarError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        value = match.group()
        if kind == "ident" and value.upper() in KEYWORDS:
            tokens.append(_Token("keyword", value.upper(), match.start()))
        else:
            tokens.append(_Token(kind, value, match.start()))
    return tokens


# --------------------------------------------------------------------- #
# Parser (recursive descent)
# --------------------------------------------------------------------- #


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._index = 0

    # -- token helpers -------------------------------------------------- #

    def _peek(self) -> _Token | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise GrammarError("unexpected end of grammar")
        self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise GrammarError(
                f"expected {wanted!r} at offset {token.position}, got {token.text!r}"
            )
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "keyword" and token.text == word

    # -- grammar -------------------------------------------------------- #

    def parse(self) -> ConceptGrammar:
        grammar = ConceptGrammar()
        while self._peek() is not None:
            token = self._next()
            if token.kind != "keyword" or token.text not in ("EVENT", "OBJECT"):
                raise GrammarError(
                    f"expected EVENT or OBJECT at offset {token.position}, got {token.text!r}"
                )
            name = self._expect("ident").text
            self._expect("assign")
            if token.text == "OBJECT":
                predicate = self._predicate(OBJECT_FIELDS)
                grammar.object_rules.append(ObjectRule(name=name, predicate=predicate))
            else:
                grammar.event_rules.append(self._event_body(name, grammar))
            self._expect("punct", ";")
        self._check_references(grammar)
        return grammar

    def _event_body(self, name: str, grammar: ConceptGrammar):
        if self._at_keyword("HOLDS"):
            self._next()
            predicate = self._predicate(tuple(FRAME_FIELDS))
            self._expect("keyword", "FOR")
            min_frames = int(float(self._expect("number").text))
            bridge = 0
            requires: list[AggConstraint] = []
            unless: list[str] = []
            if self._at_keyword("BRIDGE"):
                self._next()
                bridge = int(float(self._expect("number").text))
            if self._at_keyword("REQUIRE"):
                self._next()
                requires.append(self._agg_constraint())
                while self._at_keyword("AND"):
                    self._next()
                    requires.append(self._agg_constraint())
            if self._at_keyword("UNLESS"):
                self._next()
                unless.append(self._expect("ident").text)
                while self._peek() is not None and self._peek().text == ",":
                    self._next()
                    unless.append(self._expect("ident").text)
            return HoldsRule(
                name=name,
                predicate=predicate,
                min_frames=min_frames,
                bridge=bridge,
                requires=tuple(requires),
                unless=tuple(unless),
            )
        if self._at_keyword("SEQ"):
            self._next()
            first = self._expect("ident").text
            self._expect("keyword", "THEN")
            then = self._expect("ident").text
            self._expect("keyword", "WITHIN")
            within = int(float(self._expect("number").text))
            return SeqRule(name=name, first=first, then=then, within=within)
        token = self._peek()
        raise GrammarError(
            f"expected HOLDS or SEQ in event rule {name!r}"
            + (f" at offset {token.position}" if token else "")
        )

    def _agg_constraint(self) -> AggConstraint:
        fieldname = self._expect("ident").text
        op = self._expect("op").text
        value = float(self._expect("number").text)
        return AggConstraint(fieldname=fieldname, op=op, value=value)

    # -- predicates ------------------------------------------------------ #

    def _predicate(self, fields: tuple[str, ...]):
        return self._or_expr(fields)

    def _or_expr(self, fields):
        items = [self._and_expr(fields)]
        while self._at_keyword("OR"):
            self._next()
            items.append(self._and_expr(fields))
        return items[0] if len(items) == 1 else Or(tuple(items))

    def _and_expr(self, fields):
        items = [self._unary(fields)]
        while self._at_keyword("AND"):
            self._next()
            items.append(self._unary(fields))
        return items[0] if len(items) == 1 else And(tuple(items))

    def _unary(self, fields):
        if self._at_keyword("NOT"):
            self._next()
            return Not(self._unary(fields))
        token = self._peek()
        if token is not None and token.text == "(":
            self._next()
            inner = self._or_expr(fields)
            self._expect("punct", ")")
            return inner
        return self._comparison(fields)

    def _comparison(self, fields) -> Comparison:
        fieldname = self._expect("ident").text
        if fieldname not in fields:
            raise GrammarError(
                f"unknown field {fieldname!r}; expected one of {sorted(fields)}"
            )
        op = self._expect("op").text
        token = self._next()
        if token.kind == "number":
            value: float | str = float(token.text)
        elif token.kind == "ident":
            value = token.text
        else:
            raise GrammarError(f"expected a value at offset {token.position}")
        if fieldname in FRAME_FIELDS and FRAME_FIELDS.get(fieldname) == "name":
            if not isinstance(value, str):
                raise GrammarError(f"field {fieldname!r} compares to a zone name")
            if op not in ("=", "!="):
                raise GrammarError(f"field {fieldname!r} supports only = and !=")
        elif isinstance(value, str):
            raise GrammarError(f"field {fieldname!r} compares to a number")
        return Comparison(fieldname=fieldname, op=op, value=value)

    # -- semantics -------------------------------------------------------- #

    @staticmethod
    def _check_references(grammar: ConceptGrammar) -> None:
        """SEQ/UNLESS may only reference *previously declared* events."""
        seen: set[str] = set()
        for rule in grammar.event_rules:
            if rule.name in seen:
                raise GrammarError(f"duplicate event rule {rule.name!r}")
            if isinstance(rule, SeqRule):
                for ref in (rule.first, rule.then):
                    if ref not in seen:
                        raise GrammarError(
                            f"event {rule.name!r} references {ref!r} before declaration"
                        )
            elif isinstance(rule, HoldsRule):
                for ref in rule.unless:
                    if ref not in seen:
                        raise GrammarError(
                            f"event {rule.name!r} UNLESS references {ref!r} before declaration"
                        )
            seen.add(rule.name)
        names = [r.name for r in grammar.object_rules]
        if len(names) != len(set(names)):
            raise GrammarError("duplicate object rule names")


def parse_grammar(text: str) -> ConceptGrammar:
    """Parse a grammar text into a :class:`ConceptGrammar`.

    Raises:
        GrammarError: on any syntax or semantic problem.
    """
    return _Parser(_tokenize(text)).parse()
