"""The default tennis concept grammar.

This is the declarative (white-box) equivalent of the hand-coded rule
detectors in :mod:`repro.events.rules` — the grammar instantiation the
demo uses for the tennis domain.
"""

from repro.core.grammars import ConceptGrammar, parse_grammar

__all__ = ["TENNIS_GRAMMAR_TEXT", "tennis_grammar"]

TENNIS_GRAMMAR_TEXT = """
# Object layer: a player blob is person-sized and roughly upright.
OBJECT player := area >= 12 AND area <= 600 AND aspect_ratio >= 0.6 ;

# Event layer (evaluation order matters: later rules may reference
# earlier ones via UNLESS / SEQ).
EVENT net_play := HOLDS zone = net FOR 8 ;
EVENT service  := HOLDS (zone = baseline AND speed < 0.7 AND NOT side = center) FOR 6 BRIDGE 2 ;
EVENT rally    := HOLDS (zone != net AND speed >= 0.7) FOR 12 BRIDGE 4
                  REQUIRE mean_speed >= 1.2 AND direction_changes >= 1 ;
EVENT baseline_play := HOLDS zone = baseline FOR 12 UNLESS rally, service ;
EVENT attack   := SEQ baseline_play THEN net_play WITHIN 60 ;
"""


def tennis_grammar() -> ConceptGrammar:
    """Parse and return the default tennis grammar."""
    return parse_grammar(TENNIS_GRAMMAR_TEXT)
