"""MPEG-7-style XML export of the meta-index.

The paper positions COBRA as "in line with the latest development in
MPEG-7, distinguishing four distinct layers within video content".
This module materialises that alignment: the meta-index serialises to an
MPEG-7-flavoured XML document — per video a ``TemporalDecomposition``
into shots (``VideoSegment`` with ``MediaTime``), per tennis shot a
``SpatioTemporalDecomposition`` with the tracked ``MovingRegion``, and
events as ``Semantic``/``Event`` annotations referencing their segment.

This is a pragmatic MPEG-7 *profile*, not the full 1000-page standard:
element names and nesting follow MPEG-7 MDS conventions so downstream
tooling recognises the structure, and everything the COBRA layers
record round-trips through :func:`export_mpeg7` / :func:`import_mpeg7`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.core.model import CobraModel

__all__ = ["export_mpeg7", "import_mpeg7", "MPEG7_NS"]

#: Pseudo-namespace identifying this profile.
MPEG7_NS = "urn:mpeg:mpeg7:schema:2001"


def _media_time(parent: ET.Element, start: int, stop: int, fps: float) -> None:
    media_time = ET.SubElement(parent, "MediaTime")
    ET.SubElement(media_time, "MediaTimePoint").text = f"{start / fps:.3f}s"
    ET.SubElement(media_time, "MediaDuration").text = f"{(stop - start) / fps:.3f}s"
    # Frame-accurate attributes keep the import lossless.
    media_time.set("startFrame", str(start))
    media_time.set("stopFrame", str(stop))


def export_mpeg7(model: CobraModel) -> str:
    """Serialise the meta-index to MPEG-7-style XML text."""
    root = ET.Element("Mpeg7", xmlns=MPEG7_NS)
    description = ET.SubElement(root, "Description", type="ContentEntityType")

    for video in model.videos:
        content = ET.SubElement(description, "MultimediaContent", type="VideoType")
        video_el = ET.SubElement(
            content,
            "Video",
            id=f"video-{video.video_id}",
            name=video.name,
            fps=f"{video.fps}",
            frames=str(video.n_frames),
        )
        if video.match_id is not None:
            video_el.set("matchRef", str(video.match_id))
        decomposition = ET.SubElement(video_el, "TemporalDecomposition", gap="true")

        for shot in model.shots_of(video.video_id):
            segment = ET.SubElement(
                decomposition,
                "VideoSegment",
                id=f"shot-{shot.shot_id}",
                category=shot.category,
            )
            _media_time(segment, shot.start, shot.stop, video.fps)
            if shot.features:
                features_el = ET.SubElement(segment, "Features")
                for name, value in sorted(shot.features.items()):
                    ET.SubElement(features_el, "Feature", name=name).text = f"{value!r}"

            for obj in model.objects_of(shot.shot_id):
                std = ET.SubElement(segment, "SpatioTemporalDecomposition")
                region = ET.SubElement(
                    std,
                    "MovingRegion",
                    id=f"object-{obj.object_id}",
                    label=obj.label,
                )
                trajectory_el = ET.SubElement(region, "SpatioTemporalLocator")
                for index, position in enumerate(obj.trajectory):
                    point = ET.SubElement(trajectory_el, "FigureTrajectory", frame=str(index))
                    if position is None:
                        point.set("lost", "true")
                    else:
                        point.set("row", f"{position[0]:.2f}")
                        point.set("col", f"{position[1]:.2f}")

        semantic = ET.SubElement(video_el, "Semantic")
        for event in model.events_of(video.video_id):
            event_el = ET.SubElement(
                semantic,
                "Event",
                id=f"event-{event.event_id}",
                label=event.label,
                segment=f"shot-{event.shot_id}",
                confidence=f"{event.confidence}",
            )
            if event.object_id is not None:
                event_el.set("agent", f"object-{event.object_id}")
            _media_time(event_el, event.start, event.stop, video.fps)

    return ET.tostring(root, encoding="unicode")


def import_mpeg7(xml_text: str) -> CobraModel:
    """Rebuild a :class:`CobraModel` from :func:`export_mpeg7` output.

    Identifiers are reassigned (the model owns id allocation); ordering
    and all layer content are preserved.
    """
    root = ET.fromstring(xml_text)
    # Strip the default-namespace qualification ElementTree applies.
    for element in root.iter():
        if element.tag.startswith("{"):
            element.tag = element.tag.split("}", 1)[1]
    if root.tag != "Mpeg7":
        raise ValueError(f"not an Mpeg7 document (root {root.tag!r})")
    model = CobraModel()
    for content in root.iter("MultimediaContent"):
        video_el = content.find("Video")
        if video_el is None:
            raise ValueError("MultimediaContent without Video element")
        match_ref = video_el.get("matchRef")
        video = model.add_video(
            name=video_el.get("name"),
            fps=float(video_el.get("fps")),
            n_frames=int(video_el.get("frames")),
            match_id=int(match_ref) if match_ref is not None else None,
        )
        shot_ids: dict[str, int] = {}
        object_ids: dict[str, int] = {}
        decomposition = video_el.find("TemporalDecomposition")
        if decomposition is not None:
            for segment in decomposition.findall("VideoSegment"):
                time_el = segment.find("MediaTime")
                features = {
                    f.get("name"): float(f.text)
                    for f in segment.findall("Features/Feature")
                }
                shot = model.add_shot(
                    video.video_id,
                    start=int(time_el.get("startFrame")),
                    stop=int(time_el.get("stopFrame")),
                    category=segment.get("category"),
                    features=features,
                )
                shot_ids[segment.get("id")] = shot.shot_id
                for region in segment.findall(
                    "SpatioTemporalDecomposition/MovingRegion"
                ):
                    trajectory: list[tuple[float, float] | None] = []
                    for point in region.findall(
                        "SpatioTemporalLocator/FigureTrajectory"
                    ):
                        if point.get("lost") == "true":
                            trajectory.append(None)
                        else:
                            trajectory.append(
                                (float(point.get("row")), float(point.get("col")))
                            )
                    obj = model.add_object(
                        shot.shot_id, label=region.get("label"), trajectory=trajectory
                    )
                    object_ids[region.get("id")] = obj.object_id
        semantic = video_el.find("Semantic")
        if semantic is not None:
            for event_el in semantic.findall("Event"):
                time_el = event_el.find("MediaTime")
                agent = event_el.get("agent")
                model.add_event(
                    shot_ids[event_el.get("segment")],
                    label=event_el.get("label"),
                    start=int(time_el.get("startFrame")),
                    stop=int(time_el.get("stopFrame")),
                    confidence=float(event_el.get("confidence")),
                    object_id=object_ids.get(agent) if agent else None,
                )
    return model
