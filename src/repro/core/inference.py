"""Grammar rule evaluation over trajectories and observations.

The inference engine turns a parsed :class:`~repro.core.grammars.ConceptGrammar`
into detections:

- event rules are evaluated frame-wise over a :class:`TrajectoryContext`
  (positions, court zones, speeds) to produce event intervals, with
  aggregate constraints checked per candidate run;
- object rules classify blobs from their shape features.

This is the "white-box detector" path of the FDE: the rules themselves
are data, authored in the grammar, and the engine interprets them.
"""

from __future__ import annotations


import numpy as np

from repro.core.grammars import (
    AggConstraint,
    And,
    Comparison,
    ConceptGrammar,
    GrammarError,
    HoldsRule,
    Not,
    ObjectRule,
    Or,
    SeqRule,
)
from repro.core.temporal import Interval
from repro.events.quantize import SIDE_NAMES, ZONE_NAMES, CourtZones
from repro.events.rules import DetectedEvent

__all__ = ["TrajectoryContext", "GrammarEventDetector", "ObjectClassifier"]


def _compare(values: np.ndarray, op: str, target: float) -> np.ndarray:
    if op == "=":
        return values == target
    if op == "!=":
        return values != target
    if op == ">=":
        return values >= target
    if op == "<=":
        return values <= target
    if op == ">":
        return values > target
    return values < target


def _compare_scalar(value: float, op: str, target: float) -> bool:
    return bool(_compare(np.asarray([value]), op, target)[0])


class TrajectoryContext:
    """Frame-wise fields derived from one shot trajectory.

    Args:
        trajectory: per-frame positions (``None`` = tracker miss).
        zones: court zoning used to resolve the ``zone`` field.
        smooth: half-width of a median filter applied to the positions —
            the same jitter suppression the black-box rule detector uses,
            so grammar rules see equally clean fields.  0 disables.
    """

    def __init__(
        self,
        trajectory: list[tuple[float, float] | None],
        zones: CourtZones,
        smooth: int = 1,
    ):
        if smooth < 0:
            raise ValueError(f"smooth must be >= 0, got {smooth}")
        self.zones = zones
        self.n_frames = len(trajectory)
        self.valid = np.array([p is not None for p in trajectory], dtype=bool)
        self.rows = self._median_filter(
            np.array(
                [p[0] if p is not None else np.nan for p in trajectory],
                dtype=np.float64,
            ),
            smooth,
        )
        self.cols = self._median_filter(
            np.array(
                [p[1] if p is not None else np.nan for p in trajectory],
                dtype=np.float64,
            ),
            smooth,
        )
        self.speeds = np.abs(np.diff(self.cols, prepend=self.cols[:1]))
        zone_index = np.full(self.n_frames, -1, dtype=np.int64)
        side_index = np.full(self.n_frames, -1, dtype=np.int64)
        for i in range(self.n_frames):
            if self.valid[i]:
                zone_index[i] = zones.zone(float(self.rows[i]))
                side_index[i] = zones.side(float(self.cols[i]))
        self.zone_index = zone_index
        self.side_index = side_index

    @staticmethod
    def _median_filter(values: np.ndarray, k: int) -> np.ndarray:
        if k < 1 or len(values) < 3:
            return values
        out = values.copy()
        for i in range(len(values)):
            lo = max(0, i - k)
            hi = min(len(values), i + k + 1)
            window = values[lo:hi]
            window = window[~np.isnan(window)]
            if window.size:
                out[i] = np.median(window)
        return out

    def field(self, name: str) -> np.ndarray:
        """Frame-wise values of a grammar field."""
        if name == "row":
            return self.rows
        if name == "col":
            return self.cols
        if name == "speed":
            return self.speeds
        if name == "zone":
            return self.zone_index
        if name == "side":
            return self.side_index
        raise GrammarError(f"unknown frame field {name!r}")

    # -- aggregates over a run ------------------------------------------- #

    def aggregate(self, name: str, start: int, stop: int) -> float:
        """Aggregate value of a field over frames ``[start, stop)``."""
        if name == "duration":
            return float(stop - start)
        speeds = self.speeds[start:stop]
        speeds = speeds[~np.isnan(speeds)]
        if name == "mean_speed":
            return float(speeds.mean()) if speeds.size else 0.0
        if name == "max_speed":
            return float(speeds.max()) if speeds.size else 0.0
        if name == "direction_changes":
            cols = self.cols[start:stop]
            deltas = np.diff(cols[~np.isnan(cols)])
            signs = np.sign(deltas[np.abs(deltas) > 0.2])
            if len(signs) < 2:
                return 0.0
            return float(np.sum(signs[1:] != signs[:-1]))
        raise GrammarError(f"unknown aggregate field {name!r}")


def _evaluate_predicate(node, context: TrajectoryContext) -> np.ndarray:
    """Frame-wise boolean evaluation of a predicate AST."""
    if isinstance(node, Comparison):
        if node.fieldname in ("zone", "side"):
            names = ZONE_NAMES if node.fieldname == "zone" else SIDE_NAMES
            if node.value not in names:
                raise GrammarError(
                    f"unknown {node.fieldname} {node.value!r}; expected one of {names}"
                )
            target = names.index(node.value)
            values = context.field(node.fieldname)
            result = _compare(values, node.op, target)
        else:
            values = context.field(node.fieldname)
            with np.errstate(invalid="ignore"):
                result = _compare(values, node.op, float(node.value))
            result = np.where(np.isnan(values), False, result)
        return result & context.valid
    if isinstance(node, And):
        out = _evaluate_predicate(node.items[0], context)
        for item in node.items[1:]:
            out = out & _evaluate_predicate(item, context)
        return out
    if isinstance(node, Or):
        out = _evaluate_predicate(node.items[0], context)
        for item in node.items[1:]:
            out = out | _evaluate_predicate(item, context)
        return out
    if isinstance(node, Not):
        return ~_evaluate_predicate(node.item, context) & context.valid
    raise GrammarError(f"unknown predicate node {node!r}")


def _bridge(flags: np.ndarray, max_gap: int) -> np.ndarray:
    """Fill internal False gaps of at most *max_gap* frames."""
    if max_gap <= 0:
        return flags
    out = flags.copy()
    n = len(flags)
    i = 0
    while i < n:
        if not out[i]:
            gap_start = i
            while i < n and not out[i]:
                i += 1
            if 0 < gap_start and i < n and (i - gap_start) <= max_gap:
                out[gap_start:i] = True
        else:
            i += 1
    return out


def _runs(flags: np.ndarray, min_length: int) -> list[Interval]:
    intervals: list[Interval] = []
    start = None
    for i, flag in enumerate(flags):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            if i - start >= min_length:
                intervals.append(Interval(start, i))
            start = None
    if start is not None and len(flags) - start >= min_length:
        intervals.append(Interval(start, len(flags)))
    return intervals


class GrammarEventDetector:
    """Evaluate a grammar's event rules over one shot trajectory.

    Rules are evaluated in declaration order, so SEQ and UNLESS clauses
    see the detections of earlier rules — the dependency order the
    grammar's reference checker guarantees is well-founded.
    """

    def __init__(self, grammar: ConceptGrammar, zones: CourtZones, smooth: int = 1):
        self.grammar = grammar
        self.zones = zones
        self.smooth = smooth

    def detect(
        self, trajectory: list[tuple[float, float] | None]
    ) -> list[DetectedEvent]:
        """All grammar events found in the trajectory, sorted by start."""
        context = TrajectoryContext(trajectory, self.zones, smooth=self.smooth)
        detections: dict[str, list[Interval]] = {}
        for rule in self.grammar.event_rules:
            if isinstance(rule, HoldsRule):
                detections[rule.name] = self._holds(rule, context, detections)
            elif isinstance(rule, SeqRule):
                detections[rule.name] = self._seq(rule, detections)
            else:  # pragma: no cover - parser only yields the two kinds
                raise GrammarError(f"unknown rule type {type(rule).__name__}")
        events = [
            DetectedEvent(start=iv.start, stop=iv.stop, label=name)
            for name, intervals in detections.items()
            for iv in intervals
        ]
        return sorted(events, key=lambda e: (e.start, e.label))

    def _holds(
        self,
        rule: HoldsRule,
        context: TrajectoryContext,
        detections: dict[str, list[Interval]],
    ) -> list[Interval]:
        flags = _evaluate_predicate(rule.predicate, context)
        flags = _bridge(flags, rule.bridge)
        for other in rule.unless:
            for interval in detections.get(other, []):
                flags[interval.start : interval.stop] = False
        candidates = _runs(flags, rule.min_frames)
        accepted = []
        for interval in candidates:
            if self._requires_hold(rule.requires, context, interval):
                accepted.append(interval)
        return accepted

    @staticmethod
    def _requires_hold(
        requires: tuple[AggConstraint, ...],
        context: TrajectoryContext,
        interval: Interval,
    ) -> bool:
        for constraint in requires:
            value = context.aggregate(constraint.fieldname, interval.start, interval.stop)
            if not _compare_scalar(value, constraint.op, constraint.value):
                return False
        return True

    @staticmethod
    def _seq(rule: SeqRule, detections: dict[str, list[Interval]]) -> list[Interval]:
        firsts = detections.get(rule.first, [])
        thens = detections.get(rule.then, [])
        out: list[Interval] = []
        for a in firsts:
            for b in thens:
                gap = a.gap_to(b)
                if 0 <= gap <= rule.within:
                    out.append(a.union_span(b))
        return sorted(set(out))


class ObjectClassifier:
    """Classify object blobs with the grammar's OBJECT rules.

    A blob is described by a feature mapping with the
    :data:`~repro.core.grammars.OBJECT_FIELDS` keys; the classifier
    returns the first matching rule's name (declaration order), or
    ``None``.
    """

    def __init__(self, grammar: ConceptGrammar):
        self.grammar = grammar

    def classify(self, features: dict[str, float]) -> str | None:
        for rule in self.grammar.object_rules:
            if self._matches(rule, features):
                return rule.name
        return None

    def _matches(self, rule: ObjectRule, features: dict[str, float]) -> bool:
        return bool(self._eval(rule.predicate, features))

    def _eval(self, node, features: dict[str, float]) -> bool:
        if isinstance(node, Comparison):
            if node.fieldname not in features:
                raise GrammarError(f"blob features missing field {node.fieldname!r}")
            return _compare_scalar(features[node.fieldname], node.op, float(node.value))
        if isinstance(node, And):
            return all(self._eval(item, features) for item in node.items)
        if isinstance(node, Or):
            return any(self._eval(item, features) for item in node.items)
        if isinstance(node, Not):
            return not self._eval(node.item, features)
        raise GrammarError(f"unknown predicate node {node!r}")
