"""COBRA entities: the things the meta-index stores.

Identifiers are plain ints assigned by the meta-index; entities
themselves are immutable records, so layers can be rebuilt incrementally
without aliasing surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.temporal import Interval

__all__ = ["Video", "ShotRecord", "VideoObject", "Event"]


@dataclass(frozen=True)
class Video:
    """Raw-data layer: one video in the library.

    Attributes:
        video_id: meta-index identifier.
        name: human-readable name (e.g. ``"final_2001_set3"``).
        fps: frames per second.
        n_frames: total frame count.
        match_id: optional link into the conceptual (webspace) layer —
            which tournament match this video records.
        degraded: True when the video was committed with incomplete
            meta-data — one or more detectors failed or were skipped
            during indexing (see :mod:`repro.grammar.runtime`).  Queries
            still serve the layers that were extracted; revalidation
            retries the missing ones.
    """

    video_id: int
    name: str
    fps: float
    n_frames: int
    match_id: int | None = None
    degraded: bool = False

    @property
    def duration(self) -> float:
        return self.n_frames / self.fps


@dataclass(frozen=True)
class ShotRecord:
    """Feature layer: one classified shot with its features.

    Attributes:
        shot_id: meta-index identifier.
        video_id: owning video.
        start: first frame (inclusive).
        stop: one past the last frame.
        category: tennis/closeup/audience/other.
        features: flat name -> value mapping of the extracted shot
            features (court coverage, skin ratio, entropy, ...).
    """

    shot_id: int
    video_id: int
    start: int
    stop: int
    category: str
    features: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid shot range [{self.start}, {self.stop})")

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.stop)

    @property
    def length(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class VideoObject:
    """Object layer: a spatial entity tracked through a shot.

    Attributes:
        object_id: meta-index identifier.
        shot_id: the shot the object lives in.
        label: object class (``"player"``).
        trajectory: per-frame ``(row, col)`` centroids, shot-relative,
            ``None`` where the tracker lost the object.
        dominant_color: mean RGB of the object's pixels.
        mean_area: average blob area over found frames.
    """

    object_id: int
    shot_id: int
    label: str
    trajectory: tuple[tuple[float, float] | None, ...]
    dominant_color: tuple[float, float, float] = (0.0, 0.0, 0.0)
    mean_area: float = 0.0

    @property
    def found_fraction(self) -> float:
        if not self.trajectory:
            return 0.0
        return sum(p is not None for p in self.trajectory) / len(self.trajectory)


@dataclass(frozen=True)
class Event:
    """Event layer: a temporal entity recognised in a shot.

    Attributes:
        event_id: meta-index identifier.
        shot_id: the shot the event occurs in.
        label: event class (``"net_play"``, ``"rally"``, ...).
        start: first frame, *video*-relative (so events from different
            shots are directly comparable on the video timeline).
        stop: one past the last frame, video-relative.
        confidence: recogniser confidence in ``(0, 1]``.
        object_id: the object realising the event, if any.
    """

    event_id: int
    shot_id: int
    label: str
    start: int
    stop: int
    confidence: float = 1.0
    object_id: int | None = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid event range [{self.start}, {self.stop})")
        if not 0 < self.confidence <= 1:
            raise ValueError(f"confidence must be in (0, 1], got {self.confidence}")

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.stop)
