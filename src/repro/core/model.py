"""The four-layer COBRA model container.

:class:`CobraModel` is the in-memory meta-index for a *library* of
videos: it assigns identifiers, keeps the layer inventories consistent,
and answers the layer-crossing lookups the query engine needs (events of
a video, objects of a shot, shots of a category...).

Persistence and set-oriented querying live in :mod:`repro.storage`; this
class is the typed object view the extraction pipeline works against.
"""

from __future__ import annotations

from dataclasses import replace
from enum import Enum

from repro.core.entities import Event, ShotRecord, Video, VideoObject

__all__ = ["CobraModel", "Layer"]


class Layer(str, Enum):
    """The four COBRA content layers."""

    RAW = "raw"
    FEATURE = "feature"
    OBJECT = "object"
    EVENT = "event"


class CobraModel:
    """Mutable meta-index over the four COBRA layers."""

    def __init__(self) -> None:
        self._videos: dict[int, Video] = {}
        self._shots: dict[int, ShotRecord] = {}
        self._objects: dict[int, VideoObject] = {}
        self._events: dict[int, Event] = {}
        self._next_id = {Layer.RAW: 1, Layer.FEATURE: 1, Layer.OBJECT: 1, Layer.EVENT: 1}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def _take_id(self, layer: Layer) -> int:
        value = self._next_id[layer]
        self._next_id[layer] = value + 1
        return value

    def add_video(
        self, name: str, fps: float, n_frames: int, match_id: int | None = None
    ) -> Video:
        """Register a raw-layer video and return its record."""
        video = Video(
            video_id=self._take_id(Layer.RAW),
            name=name,
            fps=fps,
            n_frames=n_frames,
            match_id=match_id,
        )
        self._videos[video.video_id] = video
        return video

    def add_shot(
        self,
        video_id: int,
        start: int,
        stop: int,
        category: str,
        features: dict[str, float] | None = None,
    ) -> ShotRecord:
        """Register a feature-layer shot; the video must exist."""
        if video_id not in self._videos:
            raise KeyError(f"unknown video id {video_id}")
        shot = ShotRecord(
            shot_id=self._take_id(Layer.FEATURE),
            video_id=video_id,
            start=start,
            stop=stop,
            category=category,
            features=dict(features or {}),
        )
        self._shots[shot.shot_id] = shot
        return shot

    def add_object(
        self,
        shot_id: int,
        label: str,
        trajectory: list[tuple[float, float] | None],
        dominant_color: tuple[float, float, float] = (0.0, 0.0, 0.0),
        mean_area: float = 0.0,
    ) -> VideoObject:
        """Register an object-layer entity; the shot must exist."""
        if shot_id not in self._shots:
            raise KeyError(f"unknown shot id {shot_id}")
        obj = VideoObject(
            object_id=self._take_id(Layer.OBJECT),
            shot_id=shot_id,
            label=label,
            trajectory=tuple(trajectory),
            dominant_color=dominant_color,
            mean_area=mean_area,
        )
        self._objects[obj.object_id] = obj
        return obj

    def add_event(
        self,
        shot_id: int,
        label: str,
        start: int,
        stop: int,
        confidence: float = 1.0,
        object_id: int | None = None,
    ) -> Event:
        """Register an event-layer entity (video-relative frames)."""
        if shot_id not in self._shots:
            raise KeyError(f"unknown shot id {shot_id}")
        if object_id is not None and object_id not in self._objects:
            raise KeyError(f"unknown object id {object_id}")
        event = Event(
            event_id=self._take_id(Layer.EVENT),
            shot_id=shot_id,
            label=label,
            start=start,
            stop=stop,
            confidence=confidence,
            object_id=object_id,
        )
        self._events[event.event_id] = event
        return event

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #

    @property
    def videos(self) -> list[Video]:
        return list(self._videos.values())

    @property
    def shots(self) -> list[ShotRecord]:
        return list(self._shots.values())

    @property
    def objects(self) -> list[VideoObject]:
        return list(self._objects.values())

    @property
    def events(self) -> list[Event]:
        return list(self._events.values())

    def video(self, video_id: int) -> Video:
        return self._videos[video_id]

    def shot(self, shot_id: int) -> ShotRecord:
        return self._shots[shot_id]

    def object(self, object_id: int) -> VideoObject:
        return self._objects[object_id]

    def event(self, event_id: int) -> Event:
        return self._events[event_id]

    def shots_of(self, video_id: int, category: str | None = None) -> list[ShotRecord]:
        """Shots of a video, optionally filtered by category, in time order."""
        shots = [s for s in self._shots.values() if s.video_id == video_id]
        if category is not None:
            shots = [s for s in shots if s.category == category]
        return sorted(shots, key=lambda s: s.start)

    def objects_of(self, shot_id: int) -> list[VideoObject]:
        return [o for o in self._objects.values() if o.shot_id == shot_id]

    def events_of(
        self, video_id: int | None = None, label: str | None = None
    ) -> list[Event]:
        """Events, optionally restricted to one video and/or one label."""
        events = list(self._events.values())
        if video_id is not None:
            shot_ids = {s.shot_id for s in self._shots.values() if s.video_id == video_id}
            events = [e for e in events if e.shot_id in shot_ids]
        if label is not None:
            events = [e for e in events if e.label == label]
        return sorted(events, key=lambda e: e.start)

    def mark_degraded(self, video_id: int, degraded: bool = True) -> Video:
        """Set (or clear) a video's degraded-indexing flag.

        Entities are immutable records, so the raw-layer entry is
        replaced; the returned record is the current one.
        """
        if video_id not in self._videos:
            raise KeyError(f"unknown video id {video_id}")
        video = replace(self._videos[video_id], degraded=degraded)
        self._videos[video_id] = video
        return video

    def set_video_frames(self, video_id: int, n_frames: int) -> Video:
        """Update a video's frame count (streaming ingest grows it).

        Entities are immutable records, so the raw-layer entry is
        replaced in place; dict order (and hence catalog row order) is
        preserved.
        """
        if video_id not in self._videos:
            raise KeyError(f"unknown video id {video_id}")
        video = replace(self._videos[video_id], n_frames=n_frames)
        self._videos[video_id] = video
        return video

    @property
    def degraded_videos(self) -> list[Video]:
        """Videos committed with incomplete meta-data, by id."""
        return sorted(
            (v for v in self._videos.values() if v.degraded),
            key=lambda v: v.video_id,
        )

    def video_of_shot(self, shot_id: int) -> Video:
        return self._videos[self._shots[shot_id].video_id]

    def video_of_event(self, event_id: int) -> Video:
        return self.video_of_shot(self._events[event_id].shot_id)

    # ------------------------------------------------------------------ #
    # Invalidation (FDE revalidation replaces stale meta-data)
    # ------------------------------------------------------------------ #

    def clear_events_of_video(self, video_id: int) -> int:
        """Remove all events of a video; returns how many were removed."""
        shot_ids = {s.shot_id for s in self._shots.values() if s.video_id == video_id}
        doomed = [e for e in self._events.values() if e.shot_id in shot_ids]
        for event in doomed:
            del self._events[event.event_id]
        return len(doomed)

    def clear_objects_of_video(self, video_id: int) -> int:
        """Remove all objects of a video (cascades to their events)."""
        self.clear_events_of_video(video_id)
        shot_ids = {s.shot_id for s in self._shots.values() if s.video_id == video_id}
        doomed = [o for o in self._objects.values() if o.shot_id in shot_ids]
        for obj in doomed:
            del self._objects[obj.object_id]
        return len(doomed)

    def clear_shots_of_video(self, video_id: int) -> int:
        """Remove all shots of a video (cascades to objects and events)."""
        self.clear_objects_of_video(video_id)
        doomed = [s for s in self._shots.values() if s.video_id == video_id]
        for shot in doomed:
            del self._shots[shot.shot_id]
        return len(doomed)

    def remove_video(self, video_id: int) -> None:
        """Remove a video and all meta-data derived from it."""
        if video_id not in self._videos:
            raise KeyError(f"unknown video id {video_id}")
        self.clear_shots_of_video(video_id)
        del self._videos[video_id]

    def counts(self) -> dict[str, int]:
        """Entity counts per layer (used by reports and tests)."""
        return {
            Layer.RAW.value: len(self._videos),
            Layer.FEATURE.value: len(self._shots),
            Layer.OBJECT.value: len(self._objects),
            Layer.EVENT.value: len(self._events),
        }
