"""Temporal intervals and Allen's interval algebra.

Event-layer entities "are characterized by prominent temporal
dimensions"; the event grammars reason about how their intervals relate.
Allen's thirteen relations are the standard vocabulary for that
reasoning.

Intervals are half-open frame ranges ``[start, stop)``, matching the
shot and event conventions used throughout the package.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Interval", "allen_relation", "ALLEN_RELATIONS", "invert_relation"]

#: The thirteen Allen relations (seven base + six inverses; equals is its
#: own inverse).
ALLEN_RELATIONS = (
    "before",
    "meets",
    "overlaps",
    "starts",
    "during",
    "finishes",
    "equals",
    "after",
    "met_by",
    "overlapped_by",
    "started_by",
    "contains",
    "finished_by",
)

_INVERSES = {
    "before": "after",
    "meets": "met_by",
    "overlaps": "overlapped_by",
    "starts": "started_by",
    "during": "contains",
    "finishes": "finished_by",
    "equals": "equals",
}
_INVERSES.update({v: k for k, v in _INVERSES.items()})


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open frame interval ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError(f"empty interval [{self.start}, {self.stop})")

    @property
    def length(self) -> int:
        return self.stop - self.start

    def contains_frame(self, frame: int) -> bool:
        return self.start <= frame < self.stop

    def intersects(self, other: "Interval") -> bool:
        return self.start < other.stop and other.start < self.stop

    def intersection(self, other: "Interval") -> "Interval | None":
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        return Interval(start, stop) if start < stop else None

    def union_span(self, other: "Interval") -> "Interval":
        """Smallest interval covering both (even if disjoint)."""
        return Interval(min(self.start, other.start), max(self.stop, other.stop))

    def gap_to(self, other: "Interval") -> int:
        """Frames between this interval's end and *other*'s start (may be < 0)."""
        return other.start - self.stop

    def shifted(self, offset: int) -> "Interval":
        return Interval(self.start + offset, self.stop + offset)


def allen_relation(a: Interval, b: Interval) -> str:
    """The unique Allen relation holding between intervals *a* and *b*.

    Uses the half-open convention: ``a meets b`` iff ``a.stop == b.start``.
    """
    if a.stop < b.start:
        return "before"
    if a.stop == b.start:
        return "meets"
    if b.stop < a.start:
        return "after"
    if b.stop == a.start:
        return "met_by"
    if a.start == b.start and a.stop == b.stop:
        return "equals"
    if a.start == b.start:
        return "starts" if a.stop < b.stop else "started_by"
    if a.stop == b.stop:
        return "finishes" if a.start > b.start else "finished_by"
    if b.start < a.start and a.stop < b.stop:
        return "during"
    if a.start < b.start and b.stop < a.stop:
        return "contains"
    return "overlaps" if a.start < b.start else "overlapped_by"


def invert_relation(relation: str) -> str:
    """The Allen relation of (b, a) given the relation of (a, b)."""
    if relation not in _INVERSES:
        raise ValueError(f"unknown Allen relation {relation!r}")
    return _INVERSES[relation]
