"""The COBRA video data model — the paper's core contribution.

COBRA ("COntent-Based RetrievAl") distinguishes four layers within video
content, "in line with the latest development in MPEG-7":

1. **raw data** — the video itself (:class:`repro.core.entities.Video`),
2. **feature** — extracted low-level features
   (:class:`repro.core.entities.ShotRecord` and per-frame features),
3. **object** — entities with prominent *spatial* dimensions
   (:class:`repro.core.entities.VideoObject`),
4. **event** — entities with prominent *temporal* dimensions
   (:class:`repro.core.entities.Event`).

The model "is enriched with a few extensions ... object and event
grammars aimed at formalizing the descriptions of high-level concepts,
as well as facilitating their extraction based on spatio-temporal
reasoning":

- :mod:`repro.core.temporal` — intervals and Allen's interval algebra,
- :mod:`repro.core.spatial` — spatial predicates over positions/boxes,
- :mod:`repro.core.grammars` — the object/event grammar language
  (tokeniser, parser, AST),
- :mod:`repro.core.inference` — grammar rule evaluation over
  trajectories and observations.
"""

from repro.core.entities import Video, ShotRecord, VideoObject, Event
from repro.core.model import CobraModel, Layer
from repro.core.temporal import Interval, allen_relation, ALLEN_RELATIONS
from repro.core.spatial import (
    left_of,
    right_of,
    above,
    below,
    near,
    boxes_overlap,
    inside,
)
from repro.core.grammars import ConceptGrammar, parse_grammar, GrammarError
from repro.core.inference import GrammarEventDetector, ObjectClassifier, TrajectoryContext

__all__ = [
    "Video",
    "ShotRecord",
    "VideoObject",
    "Event",
    "CobraModel",
    "Layer",
    "Interval",
    "allen_relation",
    "ALLEN_RELATIONS",
    "left_of",
    "right_of",
    "above",
    "below",
    "near",
    "boxes_overlap",
    "inside",
    "ConceptGrammar",
    "parse_grammar",
    "GrammarError",
    "GrammarEventDetector",
    "ObjectClassifier",
    "TrajectoryContext",
]
