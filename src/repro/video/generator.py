"""Broadcast assembly: shots + transitions -> clip + ground truth.

:class:`BroadcastGenerator` is the main entry point of the video
substrate.  It samples a sequence of shot specs (or takes an explicit
list), renders each shot, splices them with hard cuts and gradual
transitions, and returns the :class:`~repro.video.frames.VideoClip`
together with the :class:`~repro.video.ground_truth.GroundTruth` that
the benchmark harness scores against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.court import CAMERA_PRESETS
from repro.video.frames import FRAME_HEIGHT, FRAME_WIDTH, VideoClip
from repro.video.ground_truth import EventTruth, GroundTruth, ShotTruth, TransitionTruth
from repro.video.players import SCRIPT_KINDS
from repro.video.shots import (
    AudienceSpec,
    CloseUpSpec,
    CourtShotSpec,
    OtherSpec,
    RenderedShot,
    ShotCategory,
)
from repro.video.transitions import dissolve_frames, fade_frames

__all__ = ["BroadcastConfig", "BroadcastGenerator"]

ShotSpec = CourtShotSpec | CloseUpSpec | AudienceSpec | OtherSpec

_SPEC_CATEGORIES = {
    CourtShotSpec: ShotCategory.TENNIS,
    CloseUpSpec: ShotCategory.CLOSEUP,
    AudienceSpec: ShotCategory.AUDIENCE,
    OtherSpec: ShotCategory.OTHER,
}


def _spec_category(spec: ShotSpec) -> str:
    return _SPEC_CATEGORIES[type(spec)]


@dataclass(frozen=True)
class BroadcastConfig:
    """Parameters of a synthetic broadcast.

    Attributes:
        height: frame height in pixels.
        width: frame width in pixels.
        fps: frames per second.
        noise_sigma: per-pixel Gaussian noise std (grey levels).
        gradual_fraction: probability that a shot change is gradual rather
            than a hard cut.
        gradual_length: ``(min, max)`` frame count of gradual transitions.
        category_weights: sampling weights for (tennis, closeup, audience,
            other) when shot specs are drawn randomly.
        shot_length: ``(min, max)`` shot length in frames.
    """

    height: int = FRAME_HEIGHT
    width: int = FRAME_WIDTH
    fps: float = 25.0
    noise_sigma: float = 6.0
    gradual_fraction: float = 0.2
    gradual_length: tuple[int, int] = (10, 18)
    category_weights: tuple[float, float, float, float] = (0.45, 0.2, 0.2, 0.15)
    shot_length: tuple[int, int] = (30, 70)
    gain_range: tuple[float, float] = (0.85, 1.15)

    def __post_init__(self) -> None:
        if self.height < 32 or self.width < 32:
            raise ValueError("frames must be at least 32x32")
        if not 0 <= self.gradual_fraction <= 1:
            raise ValueError("gradual_fraction must be in [0, 1]")
        if self.gradual_length[0] < 2 or self.gradual_length[1] < self.gradual_length[0]:
            raise ValueError(f"bad gradual_length range {self.gradual_length}")
        if self.shot_length[0] < 10 or self.shot_length[1] < self.shot_length[0]:
            raise ValueError(f"bad shot_length range {self.shot_length}")
        if any(w < 0 for w in self.category_weights) or sum(self.category_weights) <= 0:
            raise ValueError(f"bad category weights {self.category_weights}")


class BroadcastGenerator:
    """Deterministic synthetic broadcast factory.

    Args:
        config: broadcast parameters.
        seed: seed for the internal :class:`numpy.random.Generator`; the
            same (config, seed) pair always yields the same broadcast.
    """

    def __init__(self, config: BroadcastConfig | None = None, seed: int = 0):
        self.config = config or BroadcastConfig()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Spec sampling
    # ------------------------------------------------------------------ #

    def sample_spec(self, previous: ShotSpec | None = None) -> ShotSpec:
        """Draw one random shot spec according to the category weights.

        When *previous* is given, the new shot is kept visually distinct
        from it: a repeat of the same category is redrawn once (broadcast
        direction rarely cuts between identical framings), and when the
        category does repeat the camera gain is forced at least 0.12 away
        from the previous shot's and, for tennis, a different camera
        preset is used.
        """
        cfg = self.config
        weights = np.asarray(cfg.category_weights, dtype=np.float64)
        weights = weights / weights.sum()
        category = ShotCategory.ALL[int(self._rng.choice(len(ShotCategory.ALL), p=weights))]
        prev_category = _spec_category(previous) if previous is not None else None
        if category == prev_category:
            category = ShotCategory.ALL[int(self._rng.choice(len(ShotCategory.ALL), p=weights))]

        n_frames = int(self._rng.integers(cfg.shot_length[0], cfg.shot_length[1] + 1))
        gain = self._sample_gain(previous if category == prev_category else None)
        if category == ShotCategory.TENNIS:
            script = SCRIPT_KINDS[int(self._rng.integers(0, len(SCRIPT_KINDS)))]
            geometry = self._sample_camera(
                previous if isinstance(previous, CourtShotSpec) and category == prev_category else None
            )
            return CourtShotSpec(n_frames=n_frames, script=script, gain=gain, geometry=geometry)
        if category == ShotCategory.CLOSEUP:
            return CloseUpSpec(n_frames=n_frames, gain=gain)
        if category == ShotCategory.AUDIENCE:
            return AudienceSpec(n_frames=n_frames, gain=gain)
        return OtherSpec(n_frames=n_frames, gain=gain)

    def _sample_gain(self, previous: ShotSpec | None) -> float:
        """Camera gain, at least 0.12 from the previous shot's when repeating."""
        low, high = self.config.gain_range
        for _ in range(16):
            gain = float(self._rng.uniform(low, high))
            if previous is None or abs(gain - previous.gain) >= 0.12:
                return gain
        # Degenerate gain_range; fall back to the range edge furthest away.
        if previous is None:
            return float(self._rng.uniform(low, high))
        return low if abs(low - previous.gain) > abs(high - previous.gain) else high

    def _sample_camera(self, previous: CourtShotSpec | None):
        """A camera preset, different from the previous court shot's."""
        names = list(CAMERA_PRESETS)
        if previous is not None:
            names = [n for n in names if CAMERA_PRESETS[n] != previous.geometry] or names
        return CAMERA_PRESETS[names[int(self._rng.integers(0, len(names)))]]

    def sample_specs(self, n_shots: int) -> list[ShotSpec]:
        """Draw *n_shots* random shot specs, consecutive ones kept distinct."""
        if n_shots < 1:
            raise ValueError(f"need at least one shot, got {n_shots}")
        specs: list[ShotSpec] = []
        for _ in range(n_shots):
            specs.append(self.sample_spec(specs[-1] if specs else None))
        return specs

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #

    def generate(self, n_shots: int = 12, name: str = "broadcast") -> tuple[VideoClip, GroundTruth]:
        """Generate a random broadcast of *n_shots* shots."""
        return self.assemble(self.sample_specs(n_shots), name=name)

    def assemble(
        self, specs: list[ShotSpec], name: str = "broadcast"
    ) -> tuple[VideoClip, GroundTruth]:
        """Render *specs* in order and splice them with transitions.

        The first shot always starts at frame 0; each subsequent shot is
        joined to its predecessor by a hard cut (probability
        ``1 - gradual_fraction``) or a fade/dissolve.
        """
        if not specs:
            raise ValueError("need at least one shot spec")
        cfg = self.config
        frames: list[np.ndarray] = []
        truth = GroundTruth()

        for index, spec in enumerate(specs):
            rendered = spec.render(cfg.height, cfg.width, self._rng, cfg.noise_sigma)
            if index > 0:
                self._splice(frames, rendered, truth)
            start = len(frames)
            frames.extend(rendered.frames)
            self._record_shot(rendered, start, truth)

        clip = VideoClip(frames, fps=cfg.fps, name=name)
        truth.validate(len(clip))
        return clip, truth

    def _splice(
        self, frames: list[np.ndarray], incoming: RenderedShot, truth: GroundTruth
    ) -> None:
        """Append transition frames (if gradual) and record the transition."""
        cfg = self.config
        if self._rng.random() >= cfg.gradual_fraction:
            truth.transitions.append(TransitionTruth(frame=len(frames), kind="cut"))
            return
        length = int(self._rng.integers(cfg.gradual_length[0], cfg.gradual_length[1] + 1))
        kind = "dissolve" if self._rng.random() < 0.5 else "fade"
        make = dissolve_frames if kind == "dissolve" else fade_frames
        transition = make(frames[-1], incoming.frames[0], length)
        truth.transitions.append(
            TransitionTruth(frame=len(frames), kind=kind, length=len(transition))
        )
        frames.extend(transition)

    @staticmethod
    def _record_shot(rendered: RenderedShot, start: int, truth: GroundTruth) -> None:
        stop = start + len(rendered.frames)
        shot_index = len(truth.shots)
        truth.shots.append(
            ShotTruth(
                start=start,
                stop=stop,
                category=rendered.category,
                trajectory=rendered.trajectory,
                far_trajectory=rendered.far_trajectory,
            )
        )
        for offset_start, offset_stop, label in rendered.events:
            truth.events.append(
                EventTruth(
                    start=start + offset_start,
                    stop=start + offset_stop,
                    label=label,
                    shot_index=shot_index,
                )
            )

    # ------------------------------------------------------------------ #
    # Convenience clips
    # ------------------------------------------------------------------ #

    def tennis_clip(
        self, script: str = "rally", n_frames: int = 60, name: str = "tennis"
    ) -> tuple[VideoClip, GroundTruth]:
        """A single court shot — the tracker and event tests start here."""
        spec = CourtShotSpec(n_frames=n_frames, script=script)
        return self.assemble([spec], name=name)
