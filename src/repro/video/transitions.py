"""Shot transitions: hard cuts, fades and dissolves.

Hard cuts are what the paper's histogram-difference detector targets;
gradual transitions (fade through black, cross-dissolve) are the classic
failure mode of a naive threshold and the reason the boundary module also
ships a twin-comparison detector.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dissolve_frames", "fade_frames"]


def dissolve_frames(
    last_frame: np.ndarray, next_frame: np.ndarray, length: int
) -> list[np.ndarray]:
    """Cross-dissolve: *length* frames interpolating between two shots.

    Frame ``k`` (0-based) blends with weight ``(k+1)/(length+1)`` toward the
    incoming shot, so the transition never duplicates either endpoint.
    """
    if length < 1:
        raise ValueError(f"dissolve length must be >= 1, got {length}")
    a = last_frame.astype(np.float64)
    b = next_frame.astype(np.float64)
    frames = []
    for k in range(length):
        w = (k + 1) / (length + 1)
        frames.append(np.clip((1.0 - w) * a + w * b, 0, 255).astype(np.uint8))
    return frames


def fade_frames(
    last_frame: np.ndarray, next_frame: np.ndarray, length: int
) -> list[np.ndarray]:
    """Fade out to black then in from black over *length* frames total."""
    if length < 2:
        raise ValueError(f"fade length must be >= 2, got {length}")
    out_len = length // 2
    in_len = length - out_len
    black = np.zeros_like(last_frame)
    frames = dissolve_frames(last_frame, black, out_len)
    frames.extend(dissolve_frames(black, next_frame, in_len))
    return frames
