"""Shot renderers for the four broadcast categories.

The paper's segment detector classifies shots into four categories:
``tennis``, ``close-up``, ``audience`` and ``other``.  Each renderer here
produces frames with that category's signature statistics:

- **tennis** — court colour dominates; two player sprites move according
  to a :class:`repro.video.players.MotionScript`.
- **closeup** — a large face fills the frame, so the skin-pixel ratio is
  high (the paper's close-up criterion).
- **audience** — a crowd texture with high intensity entropy and variance.
- **other** — studio graphics: flat panels and bars, low entropy, no
  court colour, no significant skin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.court import CourtGeometry, CourtStyle, DEFAULT_GEOMETRY, AUSTRALIAN_OPEN_STYLE, render_court
from repro.video.noise import add_gaussian_noise
from repro.video.players import (
    FAR_PLAYER,
    NEAR_PLAYER,
    PlayerAppearance,
    draw_player,
    far_player_positions,
    motion_script,
)

__all__ = [
    "apply_gain",
    "ShotCategory",
    "RenderedShot",
    "CourtShotSpec",
    "CloseUpSpec",
    "AudienceSpec",
    "OtherSpec",
]


def apply_gain(frame: np.ndarray, gain: float) -> np.ndarray:
    """Scale a frame's brightness by the camera *gain* (clipped to uint8)."""
    if gain <= 0:
        raise ValueError(f"gain must be positive, got {gain}")
    if gain == 1.0:
        return frame
    return np.clip(frame.astype(np.float64) * gain, 0, 255).astype(np.uint8)


class ShotCategory:
    """The four shot categories of the paper's segment detector."""

    TENNIS = "tennis"
    CLOSEUP = "closeup"
    AUDIENCE = "audience"
    OTHER = "other"

    ALL = (TENNIS, CLOSEUP, AUDIENCE, OTHER)


@dataclass
class RenderedShot:
    """Output of a shot renderer.

    Attributes:
        frames: list of rendered RGB frames.
        category: the ground-truth category.
        trajectory: near player's true centroids (tennis only).
        far_trajectory: far player's true centroids (tennis only).
        events: ``(start_offset, stop_offset, label)`` relative to the shot.
    """

    frames: list[np.ndarray]
    category: str
    trajectory: tuple[tuple[float, float], ...] = ()
    far_trajectory: tuple[tuple[float, float], ...] = ()
    events: tuple[tuple[int, int, str], ...] = ()


@dataclass(frozen=True)
class CourtShotSpec:
    """A tennis (court) shot driven by a motion script.

    Attributes:
        n_frames: shot length in frames.
        script: motion script kind (see :data:`repro.video.players.SCRIPT_KINDS`).
        style: court colours.
        geometry: court geometry.
        near: appearance of the tracked near player.
        far: appearance of the far player.
        gain: camera gain (brightness scale).
        pan_speed: lateral camera pan in pixels/frame (positive pans the
            camera right, so the scene slides left in view).  Ground
            truth trajectories are reported in *view* coordinates.
    """

    n_frames: int = 60
    script: str = "rally"
    style: CourtStyle = AUSTRALIAN_OPEN_STYLE
    geometry: CourtGeometry = DEFAULT_GEOMETRY
    near: PlayerAppearance = NEAR_PLAYER
    far: PlayerAppearance = FAR_PLAYER
    gain: float = 1.0
    pan_speed: float = 0.0

    def render(
        self, height: int, width: int, rng: np.random.Generator, noise_sigma: float
    ) -> RenderedShot:
        # The scene lives on a canvas wide enough for the whole pan; each
        # frame is a width-sized crop at the camera's current offset.
        pan_extent = int(np.ceil(abs(self.pan_speed) * self.n_frames)) + 1
        canvas_width = width + (pan_extent if self.pan_speed != 0.0 else 0)
        scene_x0 = pan_extent if self.pan_speed < 0 else 0

        canvas = np.empty((height, canvas_width, 3), dtype=np.uint8)
        canvas[:] = self.style.surround
        court = render_court(height, width, style=self.style, geometry=self.geometry)
        canvas[:, scene_x0 : scene_x0 + width] = court

        script = motion_script(
            self.script, self.n_frames, rng, height, width, geometry=self.geometry
        )
        far_positions = far_player_positions(
            self.n_frames, rng, height, width, geometry=self.geometry
        )

        frames = []
        view_trajectory: list[tuple[float, float]] = []
        view_far: list[tuple[float, float]] = []
        for t, ((row, col), (frow, fcol)) in enumerate(
            zip(script.positions, far_positions)
        ):
            offset = int(round(self.pan_speed * t)) + (0 if self.pan_speed >= 0 else pan_extent)
            frame = canvas.copy()
            draw_player(frame, frow, fcol + scene_x0, self.far)
            draw_player(frame, row, col + scene_x0, self.near)
            view = frame[:, offset : offset + width]
            frames.append(
                add_gaussian_noise(apply_gain(np.ascontiguousarray(view), self.gain), noise_sigma, rng)
            )
            view_trajectory.append((row, col + scene_x0 - offset))
            view_far.append((frow, fcol + scene_x0 - offset))
        return RenderedShot(
            frames=frames,
            category=ShotCategory.TENNIS,
            trajectory=tuple(view_trajectory),
            far_trajectory=tuple(view_far),
            events=script.events,
        )


@dataclass(frozen=True)
class CloseUpSpec:
    """A close-up (interview / player reaction) shot.

    A large skin-coloured face ellipse with hair and a shirt fills the
    frame, giving the high skin ratio the paper's close-up rule keys on.
    """

    n_frames: int = 40
    skin: tuple[int, int, int] = (222, 170, 116)
    hair: tuple[int, int, int] = (60, 42, 30)
    shirt: tuple[int, int, int] = (70, 70, 160)
    backdrop: tuple[int, int, int] = (90, 95, 105)
    gain: float = 1.0

    def render(
        self, height: int, width: int, rng: np.random.Generator, noise_sigma: float
    ) -> RenderedShot:
        base = np.empty((height, width, 3), dtype=np.uint8)
        base[:] = self.backdrop
        centre_col = width / 2.0 + rng.uniform(-width * 0.05, width * 0.05)
        centre_row = height * 0.45
        face_h = height * 0.36
        face_w = width * 0.21
        frames = []
        for i in range(self.n_frames):
            frame = base.copy()
            # Subtle head bob, as in a real interview shot.
            row = centre_row + 1.5 * np.sin(i / 7.0)
            col = centre_col + 1.0 * np.sin(i / 11.0)
            # Shirt: a wide band at the bottom of the frame.
            shoulder = int(row + face_h * 0.9)
            frame[shoulder:, :] = self.shirt
            _fill_ellipse(frame, row - face_h * 0.55, col, face_h * 0.35, face_w * 1.1, self.hair)
            _fill_ellipse(frame, row, col, face_h, face_w, self.skin)
            frames.append(add_gaussian_noise(apply_gain(frame, self.gain), noise_sigma, rng))
        return RenderedShot(frames=frames, category=ShotCategory.CLOSEUP)


@dataclass(frozen=True)
class AudienceSpec:
    """A crowd shot: a high-entropy mosaic of small coloured patches.

    A fraction of patches is refreshed every frame, so consecutive frames
    are similar (no false cuts) while the texture stays lively.
    """

    n_frames: int = 30
    patch: int = 4
    refresh_fraction: float = 0.03
    gain: float = 1.0

    def render(
        self, height: int, width: int, rng: np.random.Generator, noise_sigma: float
    ) -> RenderedShot:
        ph = (height + self.patch - 1) // self.patch
        pw = (width + self.patch - 1) // self.patch
        palette = _crowd_palette(rng)
        patches = rng.integers(0, len(palette), size=(ph, pw))
        frames = []
        for _ in range(self.n_frames):
            refresh = rng.random(size=patches.shape) < self.refresh_fraction
            patches = np.where(
                refresh, rng.integers(0, len(palette), size=patches.shape), patches
            )
            mosaic = palette[patches]
            frame = np.repeat(np.repeat(mosaic, self.patch, axis=0), self.patch, axis=1)
            frame = frame[:height, :width].astype(np.uint8)
            frames.append(add_gaussian_noise(apply_gain(frame, self.gain), noise_sigma, rng))
        return RenderedShot(frames=frames, category=ShotCategory.AUDIENCE)


@dataclass(frozen=True)
class OtherSpec:
    """Studio graphics / scoreboard: flat panels, low entropy, static."""

    n_frames: int = 25
    background: tuple[int, int, int] = (18, 24, 60)
    panel: tuple[int, int, int] = (200, 210, 60)
    text_bar: tuple[int, int, int] = (240, 240, 240)
    gain: float = 1.0

    def render(
        self, height: int, width: int, rng: np.random.Generator, noise_sigma: float
    ) -> RenderedShot:
        base = np.empty((height, width, 3), dtype=np.uint8)
        base[:] = self.background
        # A title panel and a few "text" bars.
        base[int(height * 0.1) : int(height * 0.25), int(width * 0.1) : int(width * 0.9)] = self.panel
        for k in range(3):
            top = int(height * (0.40 + 0.15 * k))
            base[top : top + max(2, height // 30), int(width * 0.15) : int(width * 0.7)] = self.text_bar
        bright = apply_gain(base, self.gain)
        frames = [
            add_gaussian_noise(bright, noise_sigma, rng) for _ in range(self.n_frames)
        ]
        return RenderedShot(frames=frames, category=ShotCategory.OTHER)


def _crowd_palette(rng: np.random.Generator, size: int = 64) -> np.ndarray:
    """Crowd colours: mostly clothing tones that fail the skin rules.

    Real crowds contain a few faces, so a small fraction of the palette is
    skin-like — enough to be realistic, far below the close-up ratio.
    """
    palette = rng.integers(10, 220, size=(size, 3), dtype=np.int64)
    # Suppress red dominance for all but the last few entries: clothing is
    # rendered with green/blue at least matching red, which breaks the
    # "r > g and r > b" skin rule.
    clothing = palette[:-4]
    clothing[:, 1] = np.maximum(clothing[:, 1], clothing[:, 0])
    # Leave palette[-4:] unconstrained — occasional skin-like faces.
    return palette


def _fill_ellipse(
    frame: np.ndarray,
    centre_row: float,
    centre_col: float,
    half_height: float,
    half_width: float,
    color: tuple[int, int, int],
) -> None:
    """Paint a filled ellipse clipped to the frame (local helper)."""
    h, w, _ = frame.shape
    r0 = max(0, int(centre_row - half_height))
    r1 = min(h, int(centre_row + half_height) + 1)
    c0 = max(0, int(centre_col - half_width))
    c1 = min(w, int(centre_col + half_width) + 1)
    if r0 >= r1 or c0 >= c1:
        return
    rows = np.arange(r0, r1).reshape(-1, 1)
    cols = np.arange(c0, c1).reshape(1, -1)
    mask = ((rows - centre_row) / max(half_height, 1e-6)) ** 2 + (
        (cols - centre_col) / max(half_width, 1e-6)
    ) ** 2 <= 1.0
    frame[r0:r1, c0:c1][mask] = color
