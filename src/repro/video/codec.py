"""A small lossless video codec for the raw-data layer.

The paper's raw layer stores MPEG files; a digital library must be able
to keep clips on disk and decode them on demand.  This codec is a
deliberately simple stand-in with MPEG's two core ideas — temporal
prediction and entropy coding — in lossless form:

- frame 0 is an I-frame (stored as-is);
- every later frame is a P-frame: the unsigned wrap-around difference
  to its predecessor (mod-256), which is near-constant on static
  content and therefore compresses extremely well;
- the concatenated payload is entropy-coded with zlib.

Container layout (``.rvc`` — "repro video container")::

    magic "RVC1" | height u16 | width u16 | n_frames u32 | fps f64
    | zlib(payload)

Round-trip is bit-exact (tests assert it), and typical synthetic
broadcasts compress ~3-10x depending on noise.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np

from repro.video.frames import VideoClip

__all__ = ["encode_clip", "decode_clip", "save_clip", "load_clip", "CodecError"]

_MAGIC = b"RVC1"
_HEADER = struct.Struct(">4sHHId")


class CodecError(ValueError):
    """Raised for malformed containers."""


def encode_clip(clip: VideoClip, level: int = 6) -> bytes:
    """Encode a clip to container bytes.

    Args:
        clip: the video.
        level: zlib compression level (0..9).
    """
    if not 0 <= level <= 9:
        raise ValueError(f"zlib level must be 0..9, got {level}")
    height, width = clip.shape
    frames = np.stack([clip[i] for i in range(len(clip))])
    payload = np.empty_like(frames)
    payload[0] = frames[0]
    # P-frames: wrap-around deltas (uint8 arithmetic is mod-256, which
    # makes the transform exactly invertible without sign handling).
    payload[1:] = frames[1:] - frames[:-1]
    header = _HEADER.pack(_MAGIC, height, width, len(clip), clip.fps)
    return header + zlib.compress(payload.tobytes(), level)


def decode_clip(data: bytes, name: str = "decoded") -> VideoClip:
    """Decode container bytes back into a bit-exact clip."""
    if len(data) < _HEADER.size:
        raise CodecError("container too short")
    magic, height, width, n_frames, fps = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    raw = zlib.decompress(data[_HEADER.size :])
    expected = n_frames * height * width * 3
    if len(raw) != expected:
        raise CodecError(
            f"payload size mismatch: got {len(raw)}, expected {expected}"
        )
    payload = np.frombuffer(raw, dtype=np.uint8).reshape(n_frames, height, width, 3)
    frames = np.empty_like(payload)
    frames[0] = payload[0]
    # Invert the P-frame deltas with a cumulative mod-256 sum.
    np.cumsum(payload, axis=0, dtype=np.uint8, out=frames)
    return VideoClip(list(frames), fps=fps, name=name)


def save_clip(clip: VideoClip, path: str | Path, level: int = 6) -> int:
    """Encode *clip* to *path*; returns the encoded size in bytes."""
    data = encode_clip(clip, level=level)
    Path(path).write_bytes(data)
    return len(data)


def load_clip(path: str | Path, name: str | None = None) -> VideoClip:
    """Load a clip saved by :func:`save_clip`."""
    path = Path(path)
    return decode_clip(path.read_bytes(), name=name or path.stem)
