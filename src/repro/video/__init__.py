"""Synthetic tennis-broadcast video substrate.

The paper indexes real Australian Open broadcast video.  That footage is
unavailable, so this package synthesises broadcasts with the same
*statistical* structure the paper's detectors consume:

- court shots dominated by a known court colour, containing two moving
  player blobs whose scripted trajectories realise tennis events
  (rallies, net approaches, services),
- close-up shots dominated by skin-coloured pixels,
- audience shots with high intensity entropy,
- "other" shots (studio graphics) with low entropy and no court colour,
- hard cuts and gradual transitions between shots,

together with frame-accurate ground truth (shot boundaries, categories,
player trajectories, event intervals) so every pipeline stage can be
scored.

Entry point: :class:`repro.video.generator.BroadcastGenerator`.
"""

from repro.video.frames import VideoClip, FRAME_HEIGHT, FRAME_WIDTH
from repro.video.ground_truth import (
    GroundTruth,
    ShotTruth,
    EventTruth,
    TransitionTruth,
)
from repro.video.court import CourtStyle, render_court
from repro.video.players import PlayerAppearance, MotionScript, motion_script
from repro.video.shots import (
    ShotCategory,
    CourtShotSpec,
    CloseUpSpec,
    AudienceSpec,
    OtherSpec,
)
from repro.video.generator import BroadcastGenerator, BroadcastConfig

__all__ = [
    "VideoClip",
    "FRAME_HEIGHT",
    "FRAME_WIDTH",
    "GroundTruth",
    "ShotTruth",
    "EventTruth",
    "TransitionTruth",
    "CourtStyle",
    "render_court",
    "PlayerAppearance",
    "MotionScript",
    "motion_script",
    "ShotCategory",
    "CourtShotSpec",
    "CloseUpSpec",
    "AudienceSpec",
    "OtherSpec",
    "BroadcastGenerator",
    "BroadcastConfig",
]
