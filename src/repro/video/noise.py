"""Pixel noise models.

Broadcast video is never clean: sensor noise, compression artefacts and
lighting flicker all perturb the colour statistics the detectors rely on.
The generator applies additive Gaussian noise and optional global
brightness flicker so detector thresholds are exercised realistically and
the benchmarks can sweep noise levels.
"""

from __future__ import annotations

import numpy as np

__all__ = ["add_gaussian_noise", "apply_flicker"]


def add_gaussian_noise(
    frame: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Return *frame* with zero-mean Gaussian noise of std *sigma* added.

    ``sigma = 0`` returns a copy unchanged; typical broadcast-like values
    are 2..8 grey levels.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return frame.copy()
    noisy = frame.astype(np.float64) + rng.normal(0.0, sigma, frame.shape)
    return np.clip(noisy, 0, 255).astype(np.uint8)


def apply_flicker(
    frame: np.ndarray, amount: float, rng: np.random.Generator
) -> np.ndarray:
    """Scale global brightness by a random factor in ``1 ± amount``.

    Models lighting/exposure flicker; at ``amount = 0`` the frame is
    returned as a copy.
    """
    if not 0 <= amount < 1:
        raise ValueError(f"amount must be in [0, 1), got {amount}")
    if amount == 0:
        return frame.copy()
    gain = 1.0 + rng.uniform(-amount, amount)
    scaled = frame.astype(np.float64) * gain
    return np.clip(scaled, 0, 255).astype(np.uint8)
