"""Video clip container.

A :class:`VideoClip` is the raw-data layer of the COBRA model: an ordered
sequence of RGB frames with a frame rate.  Frames are materialised
``uint8`` arrays — synthetic broadcasts are short enough that lazy decode
machinery would only add complexity.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

__all__ = ["VideoClip", "FRAME_HEIGHT", "FRAME_WIDTH"]

#: Default synthetic frame size (rows, cols).  Small enough for fast tests,
#: large enough that blobs, lines and histograms behave like real frames.
FRAME_HEIGHT = 96
FRAME_WIDTH = 128


class VideoClip:
    """An in-memory video: frames + frame rate + a name.

    Args:
        frames: sequence of ``(H, W, 3)`` uint8 arrays, all the same shape.
        fps: frames per second (> 0), defaults to 25 (PAL, as in 2002 .au
            broadcast material).
        name: identifier used by the meta-index.
    """

    def __init__(self, frames: Sequence[np.ndarray], fps: float = 25.0, name: str = "clip"):
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        materialised = [np.asarray(f) for f in frames]
        if not materialised:
            raise ValueError("a VideoClip needs at least one frame")
        shape = materialised[0].shape
        for i, frame in enumerate(materialised):
            if frame.shape != shape:
                raise ValueError(
                    f"frame {i} has shape {frame.shape}, expected {shape}"
                )
            if frame.ndim != 3 or frame.shape[2] != 3:
                raise ValueError(f"frame {i} is not an (H, W, 3) RGB image")
            if frame.dtype != np.uint8:
                raise ValueError(f"frame {i} has dtype {frame.dtype}, expected uint8")
        self._frames = materialised
        self.fps = float(fps)
        self.name = name
        self._stacked: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._frames)

    def __getitem__(self, index: int) -> np.ndarray:
        return self._frames[index]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._frames)

    def as_array(self) -> np.ndarray:
        """The clip as one ``(N, H, W, 3)`` uint8 array, stacked once.

        The batched vision kernels take this array and make a single
        vectorised pass instead of per-frame calls; the stack is cached
        on the clip (frames are treated as immutable).
        """
        if self._stacked is None:
            self._stacked = np.stack(self._frames)
        return self._stacked

    @property
    def shape(self) -> tuple[int, int]:
        """(height, width) of every frame."""
        h, w, _ = self._frames[0].shape
        return h, w

    @property
    def duration(self) -> float:
        """Clip duration in seconds."""
        return len(self._frames) / self.fps

    def frame_time(self, index: int) -> float:
        """Timestamp (seconds) of frame *index*."""
        if not 0 <= index < len(self._frames):
            raise IndexError(f"frame index {index} out of range 0..{len(self) - 1}")
        return index / self.fps

    def subclip(self, start: int, stop: int, name: str | None = None) -> "VideoClip":
        """A new clip holding frames ``[start, stop)`` (shared arrays)."""
        if not 0 <= start < stop <= len(self._frames):
            raise ValueError(
                f"invalid subclip range [{start}, {stop}) for {len(self)} frames"
            )
        return VideoClip(
            self._frames[start:stop],
            fps=self.fps,
            name=name or f"{self.name}[{start}:{stop}]",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        h, w = self.shape
        return f"VideoClip(name={self.name!r}, frames={len(self)}, size={w}x{h}, fps={self.fps})"
