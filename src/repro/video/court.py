"""Tennis court rendering.

Draws the broadcast camera view of a tennis court: surround, court
surface in a configurable colour (Rebound Ace blue/green for the
Australian Open), white lines, and the net band.  The geometry is a
simple trapezoid-free orthographic view — what matters to the detectors
is colour statistics and the vertical position of the net, not
perspective fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.frames import FRAME_HEIGHT, FRAME_WIDTH

__all__ = ["CourtStyle", "CourtGeometry", "render_court", "AUSTRALIAN_OPEN_STYLE"]


@dataclass(frozen=True)
class CourtStyle:
    """Colours of the rendered court scene (RGB triples)."""

    surface: tuple[int, int, int] = (40, 130, 80)  # rebound ace green
    surround: tuple[int, int, int] = (25, 70, 110)  # darker surround
    line: tuple[int, int, int] = (235, 235, 235)
    net: tuple[int, int, int] = (20, 20, 25)


#: Style used by the dataset generator for Australian Open matches.
AUSTRALIAN_OPEN_STYLE = CourtStyle()


@dataclass(frozen=True)
class CourtGeometry:
    """Pixel geometry of the court inside a frame.

    All values are fractions of frame height/width so the same geometry
    works at any resolution.
    """

    top: float = 0.12  # far baseline
    bottom: float = 0.95  # near baseline
    left: float = 0.15
    right: float = 0.85
    net_row: float = 0.52  # the net's vertical position
    net_half_height: float = 0.015
    line_thickness: int = 1

    def rows(self, height: int) -> tuple[int, int, int]:
        """(top_row, net_row, bottom_row) in pixels."""
        return (
            int(self.top * height),
            int(self.net_row * height),
            int(self.bottom * height),
        )

    def cols(self, width: int) -> tuple[int, int]:
        """(left_col, right_col) in pixels."""
        return int(self.left * width), int(self.right * width)


DEFAULT_GEOMETRY = CourtGeometry()

#: Broadcast camera presets.  Consecutive court shots in a real broadcast
#: come from different cameras (wide master, tight baseline camera), which
#: is what makes same-category cuts detectable at all.
CAMERA_PRESETS: dict[str, CourtGeometry] = {
    "standard": DEFAULT_GEOMETRY,
    "wide": CourtGeometry(top=0.08, bottom=0.97, left=0.10, right=0.90, net_row=0.50),
    "tight": CourtGeometry(top=0.15, bottom=0.92, left=0.18, right=0.82, net_row=0.54),
}


def render_court(
    height: int = FRAME_HEIGHT,
    width: int = FRAME_WIDTH,
    style: CourtStyle = AUSTRALIAN_OPEN_STYLE,
    geometry: CourtGeometry = DEFAULT_GEOMETRY,
) -> np.ndarray:
    """Render the static court scene as an ``(H, W, 3)`` uint8 frame.

    The court surface dominates the frame (the basis of the paper's
    dominant-colour court recognition); white baselines, sidelines, a
    service line and the dark net band are drawn on top.
    """
    frame = np.empty((height, width, 3), dtype=np.uint8)
    frame[:] = style.surround

    top, net, bottom = geometry.rows(height)
    left, right = geometry.cols(width)
    frame[top:bottom, left:right] = style.surface

    t = geometry.line_thickness
    # Baselines and sidelines.
    frame[top : top + t, left:right] = style.line
    frame[bottom - t : bottom, left:right] = style.line
    frame[top:bottom, left : left + t] = style.line
    frame[top:bottom, right - t : right] = style.line
    # Service lines halfway between each baseline and the net.
    for service_row in ((top + net) // 2, (net + bottom) // 2):
        frame[service_row : service_row + t, left:right] = style.line
    # Centre service line.
    centre = (left + right) // 2
    frame[(top + net) // 2 : (net + bottom) // 2, centre : centre + t] = style.line
    # The net band.
    half = max(1, int(geometry.net_half_height * height))
    frame[net - half : net + half, left:right] = style.net
    return frame
