"""Player sprites and scripted motion.

A player is rendered as a shirt-coloured body ellipse topped by a
skin-coloured head — enough structure for the tracker's "not court
colour" segmentation and for the skin model to behave as it does on real
footage.  Motion scripts move the near player through trajectories that
*realise semantic events*: a rally is sustained lateral movement along
the baseline, a net approach drives the player into the net zone, a
service starts from a still stance at the baseline corner.

The scripts return both the per-frame positions (the tracker's target)
and the event intervals they realise (the event recogniser's target).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.court import CourtGeometry, DEFAULT_GEOMETRY

__all__ = [
    "PlayerAppearance",
    "MotionScript",
    "motion_script",
    "draw_player",
    "NEAR_PLAYER",
    "FAR_PLAYER",
    "SCRIPT_KINDS",
]


@dataclass(frozen=True)
class PlayerAppearance:
    """Visual parameters of a player sprite.

    Attributes:
        shirt: RGB shirt colour — chosen far from court/skin colours.
        skin: RGB skin colour — inside :class:`repro.vision.skin.SkinColorModel`.
        body_height: body ellipse height in pixels.
        body_width: body ellipse width in pixels.
        head_radius: head circle radius in pixels.
    """

    shirt: tuple[int, int, int] = (200, 40, 40)
    skin: tuple[int, int, int] = (224, 172, 120)
    body_height: int = 14
    body_width: int = 7
    head_radius: int = 3


NEAR_PLAYER = PlayerAppearance()
FAR_PLAYER = PlayerAppearance(
    shirt=(230, 210, 60), body_height=9, body_width=5, head_radius=2
)


@dataclass(frozen=True)
class MotionScript:
    """A scripted trajectory plus the events it realises.

    Attributes:
        kind: script name (one of :data:`SCRIPT_KINDS`).
        positions: per-frame ``(row, col)`` centroids in pixels.
        events: ``(start_offset, stop_offset, label)`` intervals relative to
            the first frame of the shot.
    """

    kind: str
    positions: tuple[tuple[float, float], ...]
    events: tuple[tuple[int, int, str], ...]

    def __len__(self) -> int:
        return len(self.positions)


SCRIPT_KINDS = ("rally", "net_approach", "service", "baseline_play")


def _lateral_wave(
    n: int, centre: float, amplitude: float, period: float, rng: np.random.Generator
) -> np.ndarray:
    """Sinusoidal lateral motion with a random phase."""
    phase = rng.uniform(0.0, 2.0 * np.pi)
    t = np.arange(n)
    return centre + amplitude * np.sin(2.0 * np.pi * t / period + phase)


def motion_script(
    kind: str,
    n_frames: int,
    rng: np.random.Generator,
    height: int,
    width: int,
    geometry: CourtGeometry = DEFAULT_GEOMETRY,
) -> MotionScript:
    """Build the near player's trajectory for a shot of *n_frames* frames.

    Args:
        kind: one of :data:`SCRIPT_KINDS`.
        n_frames: shot length; must be >= 10 so events are observable.
        rng: randomness source (phases, jitter, pauses).
        height: frame height in pixels.
        width: frame width in pixels.
        geometry: court geometry the trajectory moves within.

    Returns:
        A :class:`MotionScript` whose positions stay inside the near half
        of the court and whose ``events`` mark the realised semantics.
    """
    if kind not in SCRIPT_KINDS:
        raise ValueError(f"unknown motion script {kind!r}; expected one of {SCRIPT_KINDS}")
    if n_frames < 10:
        raise ValueError(f"shots need >= 10 frames for events, got {n_frames}")

    top, net, bottom = geometry.rows(height)
    left, right = geometry.cols(width)
    baseline_row = bottom - 0.08 * height  # just inside the near baseline
    net_zone_row = net + 0.10 * height  # "at the net" boundary
    centre_col = (left + right) / 2.0
    lateral_room = (right - left) / 2.0 - 6.0

    jitter = rng.normal(0.0, 0.6, size=(n_frames, 2))
    events: list[tuple[int, int, str]] = []

    if kind == "rally":
        cols = _lateral_wave(n_frames, centre_col, 0.8 * lateral_room, period=30.0, rng=rng)
        rows = np.full(n_frames, baseline_row) + rng.normal(0.0, 1.0, n_frames)
        events.append((0, n_frames, "rally"))

    elif kind == "baseline_play":
        cols = _lateral_wave(n_frames, centre_col, 0.15 * lateral_room, period=45.0, rng=rng)
        rows = np.full(n_frames, baseline_row)
        events.append((0, n_frames, "baseline_play"))

    elif kind == "service":
        # Still stance at the baseline corner, then a short step forward.
        corner_col = right - 0.12 * width if rng.random() < 0.5 else left + 0.12 * width
        still = max(6, int(n_frames * 0.4))
        rows = np.concatenate(
            [
                np.full(still, baseline_row),
                np.linspace(baseline_row, baseline_row - 0.05 * height, n_frames - still),
            ]
        )
        cols = np.full(n_frames, corner_col)
        events.append((0, still, "service"))

    else:  # net_approach
        # Rally briefly, then run from the baseline into the net zone and
        # volley there.  The frames spent inside the net zone are the
        # net_play event.
        approach_start = max(3, int(n_frames * 0.25))
        arrive = max(approach_start + 3, int(n_frames * 0.6))
        target_row = net_zone_row - 0.02 * height
        rows = np.concatenate(
            [
                np.full(approach_start, baseline_row),
                np.linspace(baseline_row, target_row, arrive - approach_start),
                np.full(n_frames - arrive, target_row),
            ]
        )
        cols = _lateral_wave(n_frames, centre_col, 0.25 * lateral_room, period=40.0, rng=rng)
        inside = np.nonzero(rows <= net_zone_row)[0]
        if inside.size:
            events.append((int(inside[0]), n_frames, "net_play"))

    rows = np.clip(rows + jitter[:, 0], top + 4, bottom - 4)
    cols = np.clip(cols + jitter[:, 1], left + 6, right - 6)
    positions = tuple((float(r), float(c)) for r, c in zip(rows, cols))
    return MotionScript(kind=kind, positions=positions, events=tuple(events))


def far_player_positions(
    n_frames: int,
    rng: np.random.Generator,
    height: int,
    width: int,
    geometry: CourtGeometry = DEFAULT_GEOMETRY,
) -> tuple[tuple[float, float], ...]:
    """A gentle lateral drift for the far player (not the tracked target)."""
    top, net, _bottom = geometry.rows(height)
    left, right = geometry.cols(width)
    row = top + 0.35 * (net - top)
    cols = _lateral_wave(
        n_frames, (left + right) / 2.0, 0.3 * ((right - left) / 2.0), period=50.0, rng=rng
    )
    rows = np.full(n_frames, row) + rng.normal(0.0, 0.5, n_frames)
    return tuple((float(r), float(c)) for r, c in zip(rows, cols))


def _paint_ellipse(
    frame: np.ndarray,
    centre_row: float,
    centre_col: float,
    half_height: float,
    half_width: float,
    color: tuple[int, int, int],
) -> None:
    """Paint a filled axis-aligned ellipse, clipped to the frame."""
    h, w, _ = frame.shape
    r0 = max(0, int(np.floor(centre_row - half_height)))
    r1 = min(h, int(np.ceil(centre_row + half_height)) + 1)
    c0 = max(0, int(np.floor(centre_col - half_width)))
    c1 = min(w, int(np.ceil(centre_col + half_width)) + 1)
    if r0 >= r1 or c0 >= c1:
        return
    rows = np.arange(r0, r1).reshape(-1, 1)
    cols = np.arange(c0, c1).reshape(1, -1)
    mask = ((rows - centre_row) / max(half_height, 1e-6)) ** 2 + (
        (cols - centre_col) / max(half_width, 1e-6)
    ) ** 2 <= 1.0
    frame[r0:r1, c0:c1][mask] = color


def draw_player(
    frame: np.ndarray,
    row: float,
    col: float,
    appearance: PlayerAppearance = NEAR_PLAYER,
) -> None:
    """Paint a player sprite centred at body position ``(row, col)`` in place.

    The body ellipse is centred on the given point; the head sits on top of
    it.  The sprite's true centroid (what ground truth records) is the body
    centre.
    """
    _paint_ellipse(
        frame,
        row,
        col,
        appearance.body_height / 2.0,
        appearance.body_width / 2.0,
        appearance.shirt,
    )
    head_row = row - appearance.body_height / 2.0 - appearance.head_radius + 1
    _paint_ellipse(
        frame,
        head_row,
        col,
        appearance.head_radius,
        appearance.head_radius,
        appearance.skin,
    )
