"""Frame-accurate ground truth for synthetic broadcasts.

Real broadcast video has no machine-readable truth; synthetic video does.
Every generated clip carries a :class:`GroundTruth` recording what the
pipeline is supposed to recover: shot boundaries and categories, gradual
transitions, the tracked player's trajectory, and event intervals.  The
benchmark harness scores detectors against these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ShotTruth", "TransitionTruth", "EventTruth", "GroundTruth"]


@dataclass(frozen=True)
class ShotTruth:
    """One shot in the generated broadcast.

    Attributes:
        start: first frame index of the shot (inclusive).
        stop: one past the last frame (exclusive).
        category: one of ``tennis``, ``closeup``, ``audience``, ``other``.
        trajectory: for tennis shots, the near player's true centroid per
            frame as ``(row, col)`` tuples, aligned with ``range(start, stop)``;
            empty for other categories.
        far_trajectory: the far player's true centroid per frame (tennis only).
    """

    start: int
    stop: int
    category: str
    trajectory: tuple[tuple[float, float], ...] = ()
    far_trajectory: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid shot range [{self.start}, {self.stop})")

    @property
    def length(self) -> int:
        return self.stop - self.start

    def contains(self, frame: int) -> bool:
        return self.start <= frame < self.stop


@dataclass(frozen=True)
class TransitionTruth:
    """A transition between consecutive shots.

    Attributes:
        frame: for a ``cut``, the index of the first frame of the new shot;
            for gradual kinds, the first frame of the transition span.
        kind: ``cut``, ``fade`` or ``dissolve``.
        length: number of transition frames (0 for a cut).
    """

    frame: int
    kind: str
    length: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("cut", "fade", "dissolve"):
            raise ValueError(f"unknown transition kind {self.kind!r}")
        if self.kind == "cut" and self.length != 0:
            raise ValueError("a cut has no duration")
        if self.kind != "cut" and self.length <= 0:
            raise ValueError(f"gradual transition needs length > 0, got {self.length}")

    @property
    def span(self) -> tuple[int, int]:
        """Frame range ``[start, stop)`` occupied by the transition."""
        return self.frame, self.frame + max(self.length, 1)


@dataclass(frozen=True)
class EventTruth:
    """A semantic event realised by a scripted trajectory.

    Attributes:
        start: first frame of the event (inclusive, clip coordinates).
        stop: one past the last frame.
        label: event name (``net_play``, ``rally``, ``service``, ``baseline_play``).
        shot_index: index of the enclosing shot in ``GroundTruth.shots``.
    """

    start: int
    stop: int
    label: str
    shot_index: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid event range [{self.start}, {self.stop})")

    def overlap(self, start: int, stop: int) -> int:
        """Number of frames shared with ``[start, stop)``."""
        return max(0, min(self.stop, stop) - max(self.start, start))


@dataclass
class GroundTruth:
    """Everything the pipeline should recover from one clip."""

    shots: list[ShotTruth] = field(default_factory=list)
    transitions: list[TransitionTruth] = field(default_factory=list)
    events: list[EventTruth] = field(default_factory=list)

    @property
    def cut_frames(self) -> list[int]:
        """Frame indices of hard cuts (first frame of each new shot)."""
        return [t.frame for t in self.transitions if t.kind == "cut"]

    @property
    def gradual_spans(self) -> list[tuple[int, int]]:
        """Frame ranges of gradual transitions."""
        return [t.span for t in self.transitions if t.kind != "cut"]

    def shot_at(self, frame: int) -> ShotTruth | None:
        """The shot containing *frame*, or ``None`` if inside a transition."""
        for shot in self.shots:
            if shot.contains(frame):
                return shot
        return None

    def category_at(self, frame: int) -> str | None:
        shot = self.shot_at(frame)
        return shot.category if shot else None

    def events_labelled(self, label: str) -> list[EventTruth]:
        return [e for e in self.events if e.label == label]

    def validate(self, total_frames: int) -> None:
        """Sanity-check internal consistency against the clip length."""
        for shot in self.shots:
            if shot.stop > total_frames:
                raise ValueError(f"shot {shot} exceeds clip length {total_frames}")
            if shot.category == "tennis" and len(shot.trajectory) != shot.length:
                raise ValueError(
                    f"tennis shot [{shot.start},{shot.stop}) has "
                    f"{len(shot.trajectory)} trajectory points, expected {shot.length}"
                )
        for event in self.events:
            if event.stop > total_frames:
                raise ValueError(f"event {event} exceeds clip length {total_frames}")
            if not 0 <= event.shot_index < len(self.shots):
                raise ValueError(f"event {event} references unknown shot")
